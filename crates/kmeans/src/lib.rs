//! k-means clustering on a two-level memory (§VII future work).
//!
//! The paper reports preliminary k-means algorithms that "run a factor of ρ
//! faster using scratchpad for many sizes of data and k". The mechanism is
//! simple and instructive: Lloyd's algorithm is a bandwidth-bound streaming
//! kernel — every iteration reads all `n·d` coordinates once while the
//! `k·d` centroids stay cache-resident. Staging the points in the
//! scratchpad once lets every subsequent iteration stream at `ρ×` the DRAM
//! bandwidth.
//!
//! Two implementations share the same numerics (identical results for
//! identical seeds) and differ only in data placement:
//!
//! * [`kmeans_far`] — points stream from DRAM every iteration (baseline).
//! * [`kmeans_near`] — points are tiled into the scratchpad once; iterations
//!   stream the resident fraction from near memory and only the overflow
//!   (when `n·d` exceeds the scratchpad) from DRAM.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use tlmm_scratchpad::trace::with_lane;
use tlmm_scratchpad::{Dir, FarArray, SpError, TwoLevel};

/// Charge a cooperative streaming transfer striped across `lanes` (the
/// whole node participates in bulk passes, so no single core's issue rate
/// should gate them).
fn charge_striped(tl: &TwoLevel, near: bool, dir: Dir, bytes: u64, lanes: usize) {
    let lanes = lanes.max(1) as u64;
    let per = bytes.div_ceil(lanes);
    let mut at = 0u64;
    let mut lane = 0usize;
    while at < bytes {
        let take = per.min(bytes - at);
        with_lane(lane, || {
            if near {
                tl.charge_near_io(dir, take);
            } else {
                tl.charge_far_io(dir, take);
            }
        });
        at += take;
        lane = (lane + 1) % lanes as usize;
    }
}

/// Tuning for both k-means variants.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Clusters.
    pub k: usize,
    /// Dimensions per point.
    pub dim: usize,
    /// Iteration cap.
    pub max_iters: u32,
    /// Convergence threshold on squared centroid displacement.
    pub tol: f64,
    /// Seed for centroid initialisation.
    pub seed: u64,
    /// Virtual lanes (simulated cores).
    pub sim_lanes: usize,
    /// Real host parallelism.
    pub parallel: bool,
    /// For [`kmeans_tiled`]: mark tile loads overlappable (DMA prefetching,
    /// §VII). `false` models the paper's blocking prototype.
    pub prefetch: bool,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            dim: 4,
            max_iters: 50,
            tol: 1e-9,
            seed: 0xBEEF,
            sim_lanes: 8,
            parallel: true,
            prefetch: true,
        }
    }
}

/// Output of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Flat `k × dim` centroid matrix.
    pub centroids: Vec<f64>,
    /// Cluster index per point.
    pub assignments: Vec<u32>,
    /// Iterations executed (including the converging one).
    pub iterations: u32,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

/// Generate `n` points in `dim` dimensions around `k` Gaussian blobs
/// (Box–Muller; no external distribution crate needed). Returns the flat
/// `n × dim` coordinate array.
pub fn generate_blobs(n: usize, dim: usize, k: usize, spread: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<f64> = (0..k.max(1) * dim)
        .map(|_| rng.gen_range(-100.0..100.0))
        .collect();
    let gauss = move |rng: &mut StdRng| {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        (-2.0 * u1.ln()).sqrt() * u2.cos()
    };
    let mut out = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = i % k.max(1);
        for j in 0..dim {
            out.push(centers[c * dim + j] + spread * gauss(&mut rng));
        }
    }
    out
}

/// k-means++ seeding (Arthur & Vassilvitskii): the first centroid is
/// uniform, each further one is drawn with probability proportional to its
/// squared distance from the nearest chosen centroid. Costs one streaming
/// pass over the points per centroid, charged to far memory (seeding
/// happens before any scratchpad staging).
fn init_centroids(tl: &TwoLevel, points: &[f64], n: usize, cfg: &KMeansConfig) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let d = cfg.dim.max(1);
    let n = n.max(1);
    let mut centroids = Vec::with_capacity(cfg.k * d);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(&points[first * d..(first + 1) * d]);
    tl.charge_far_random(Dir::Read, 1, (d * 8) as u64);

    let mut dist2 = vec![f64::INFINITY; n];
    for _ in 1..cfg.k {
        let newest = &centroids[centroids.len() - d..];
        let mut total = 0.0;
        for (i, p) in points.chunks_exact(d).enumerate() {
            let mut s = 0.0;
            for j in 0..d {
                let diff = p[j] - newest[j];
                s += diff * diff;
            }
            dist2[i] = dist2[i].min(s);
            total += dist2[i];
        }
        // One streaming pass over the points per added centroid, striped
        // across the node's lanes.
        charge_striped(
            tl,
            false,
            Dir::Read,
            (points.len() * 8) as u64,
            cfg.sim_lanes,
        );
        tl.charge_compute((n * d) as u64);
        let pick = if total > 0.0 {
            let target = rng.gen_range(0.0..total);
            let mut acc = 0.0;
            let mut idx = n - 1;
            for (i, &w) in dist2.iter().enumerate() {
                acc += w;
                if acc >= target {
                    idx = i;
                    break;
                }
            }
            idx
        } else {
            rng.gen_range(0..n)
        };
        centroids.extend_from_slice(&points[pick * d..(pick + 1) * d]);
        tl.charge_far_random(Dir::Read, 1, (d * 8) as u64);
    }
    centroids
}

/// One assignment+accumulate pass over a stripe of points. Returns
/// `(sums, counts, inertia, changed)`.
#[allow(clippy::type_complexity)]
fn assign_stripe(
    points: &[f64],
    centroids: &[f64],
    assignments: &mut [u32],
    k: usize,
    d: usize,
) -> (Vec<f64>, Vec<u64>, f64, u64) {
    let mut sums = vec![0.0f64; k * d];
    let mut counts = vec![0u64; k];
    let mut inertia = 0.0f64;
    let mut changed = 0u64;
    for (p, a) in points.chunks_exact(d).zip(assignments.iter_mut()) {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..k {
            let mut dist = 0.0;
            for j in 0..d {
                let diff = p[j] - centroids[c * d + j];
                dist += diff * diff;
            }
            if dist < best_d {
                best_d = dist;
                best = c;
            }
        }
        if *a != best as u32 {
            changed += 1;
        }
        *a = best as u32;
        inertia += best_d;
        counts[best] += 1;
        for j in 0..d {
            sums[best * d + j] += p[j];
        }
    }
    (sums, counts, inertia, changed)
}

/// Shared Lloyd's loop; the first `near_elems` of the flat array live in
/// the scratchpad, the rest in DRAM (0 = pure baseline).
fn lloyd(tl: &TwoLevel, points: &[f64], near_elems: usize, cfg: &KMeansConfig) -> KMeansResult {
    let d = cfg.dim.max(1);
    let k = cfg.k.max(1);
    let n = points.len() / d;
    let lanes = cfg.sim_lanes.max(1);
    let mut centroids = init_centroids(tl, points, n, cfg);
    let mut assignments = vec![u32::MAX; n];
    let mut iterations = 0;
    let mut inertia = 0.0;

    // Stripe the points across lanes (whole points, not raw elements).
    let per_lane_pts = n.div_ceil(lanes).max(1);

    for _iter in 0..cfg.max_iters {
        iterations += 1;
        tl.begin_phase("kmeans.iter");
        let stripes: Vec<(usize, &[f64], &mut [u32])> = {
            let mut res = Vec::new();
            let mut pts = points;
            let mut asn = assignments.as_mut_slice();
            let mut idx = 0usize;
            while !pts.is_empty() {
                let take = per_lane_pts.min(pts.len() / d);
                let (pa, pb) = pts.split_at(take * d);
                let (aa, ab) = asn.split_at_mut(take);
                res.push((idx, pa, aa));
                pts = pb;
                asn = ab;
                idx += take;
            }
            res
        };
        let centroids_ref = &centroids;
        let work = |(lane, (base, pts, asn)): (usize, (usize, &[f64], &mut [u32]))| {
            with_lane(lane % lanes, || {
                // Stream this stripe's coordinates from wherever they live.
                let lo_elem = base * d;
                let hi_elem = lo_elem + pts.len();
                let near_part = hi_elem.min(near_elems).saturating_sub(lo_elem);
                let far_part = pts.len() - near_part;
                if near_part > 0 {
                    tl.charge_near_io(Dir::Read, (near_part * 8) as u64);
                }
                if far_part > 0 {
                    tl.charge_far_io(Dir::Read, (far_part * 8) as u64);
                }
                let r = assign_stripe(pts, centroids_ref, asn, k, d);
                // One multiply-add + compare per coordinate per centroid.
                tl.charge_compute((pts.len() * k) as u64);
                r
            })
        };
        let partials: Vec<(Vec<f64>, Vec<u64>, f64, u64)> = if cfg.parallel {
            stripes.into_par_iter().enumerate().map(work).collect()
        } else {
            stripes.into_iter().enumerate().map(work).collect()
        };

        // Reduce partials (k*d doubles — cache-resident, compute only).
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0u64; k];
        inertia = 0.0;
        let mut changed = 0u64;
        for (s, c, i, ch) in partials {
            for (a, b) in sums.iter_mut().zip(s) {
                *a += b;
            }
            for (a, b) in counts.iter_mut().zip(c) {
                *a += b;
            }
            inertia += i;
            changed += ch;
        }
        tl.charge_compute((k * d) as u64);

        // Update step with convergence test.
        let mut max_shift = 0.0f64;
        for c in 0..k {
            if counts[c] == 0 {
                continue; // keep the old centroid for empty clusters
            }
            let mut shift = 0.0;
            for j in 0..d {
                let newv = sums[c * d + j] / counts[c] as f64;
                let diff = newv - centroids[c * d + j];
                shift += diff * diff;
                centroids[c * d + j] = newv;
            }
            max_shift = max_shift.max(shift);
        }
        tl.end_phase();
        if changed == 0 || max_shift < cfg.tol {
            break;
        }
    }
    KMeansResult {
        centroids,
        assignments,
        iterations,
        inertia,
    }
}

/// Baseline: points stream from DRAM every iteration.
pub fn kmeans_far(tl: &TwoLevel, points: &FarArray<f64>, cfg: &KMeansConfig) -> KMeansResult {
    lloyd(tl, points.as_slice_uncharged(), 0, cfg)
}

/// Prefetching variant (§VII: k-means "which take advantage of
/// prefetching"): points that do not fit the scratchpad are streamed
/// through it in double-buffered tiles whose loads are marked
/// overlappable, so the simulator (like DMA hardware) hides the far-memory
/// traffic behind the previous tile's distance computations. Numerics are
/// identical to [`kmeans_far`]/[`kmeans_near`].
pub fn kmeans_tiled(
    tl: &TwoLevel,
    points: &FarArray<f64>,
    cfg: &KMeansConfig,
) -> Result<KMeansResult, SpError> {
    let d = cfg.dim.max(1);
    let k = cfg.k.max(1);
    let pts = points.as_slice_uncharged();
    let n = pts.len() / d;
    let lanes = cfg.sim_lanes.max(1);

    // Geometry: resident region + two tile buffers, whole points only.
    let avail = tl.near_available_elems::<f64>().saturating_sub(1024);
    let tile_elems = ((avail / 8) / d).max(1) * d;
    let resident_elems = (avail.saturating_sub(2 * tile_elems) / d).min(n) * d;
    let _resident = tl.near_alloc::<f64>(resident_elems)?;
    let _tiles = tl.near_alloc::<f64>(2 * tile_elems)?;

    let mut centroids = init_centroids(tl, pts, n, cfg);
    let mut assignments = vec![u32::MAX; n];
    let mut iterations = 0;
    let mut inertia = 0.0;

    // One-off staging of the resident region.
    tl.begin_phase("kmeans.load");
    charge_striped(tl, false, Dir::Read, (resident_elems * 8) as u64, lanes);
    charge_striped(tl, true, Dir::Write, (resident_elems * 8) as u64, lanes);
    tl.end_phase();

    for _iter in 0..cfg.max_iters {
        iterations += 1;
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0u64; k];
        inertia = 0.0;
        let mut changed = 0u64;
        let mut fold = |r: (Vec<f64>, Vec<u64>, f64, u64)| {
            for (a, b) in sums.iter_mut().zip(r.0) {
                *a += b;
            }
            for (a, b) in counts.iter_mut().zip(r.1) {
                *a += b;
            }
            inertia += r.2;
            changed += r.3;
        };

        // Resident part: streams from the scratchpad.
        tl.begin_phase("kmeans.iter");
        if resident_elems > 0 {
            charge_striped(tl, true, Dir::Read, (resident_elems * 8) as u64, lanes);
            let res_pts = resident_elems / d;
            fold(assign_stripe(
                &pts[..resident_elems],
                &centroids,
                &mut assignments[..res_pts],
                k,
                d,
            ));
            charge_compute_striped(tl, (resident_elems * k) as u64, lanes);
        }

        // Non-resident tail: double-buffered tiles. Each load phase is
        // overlappable — it hides behind the previous tile's assign phase.
        let mut off = resident_elems;
        while off < n * d {
            let hi = (off + tile_elems).min(n * d);
            tl.begin_phase("kmeans.tile.load");
            if cfg.prefetch {
                tl.mark_phase_overlappable();
            }
            charge_striped(tl, false, Dir::Read, ((hi - off) * 8) as u64, lanes);
            charge_striped(tl, true, Dir::Write, ((hi - off) * 8) as u64, lanes);
            tl.begin_phase("kmeans.tile.assign");
            charge_striped(tl, true, Dir::Read, ((hi - off) * 8) as u64, lanes);
            fold(assign_stripe(
                &pts[off..hi],
                &centroids,
                &mut assignments[off / d..hi / d],
                k,
                d,
            ));
            charge_compute_striped(tl, ((hi - off) * k) as u64, lanes);
            tl.end_phase();
            off = hi;
        }

        tl.charge_compute((k * d) as u64);
        let mut max_shift = 0.0f64;
        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            let mut shift = 0.0;
            for j in 0..d {
                let newv = sums[c * d + j] / counts[c] as f64;
                let diff = newv - centroids[c * d + j];
                shift += diff * diff;
                centroids[c * d + j] = newv;
            }
            max_shift = max_shift.max(shift);
        }
        tl.end_phase();
        if changed == 0 || max_shift < cfg.tol {
            break;
        }
    }
    Ok(KMeansResult {
        centroids,
        assignments,
        iterations,
        inertia,
    })
}

/// Charge compute split evenly across lanes.
fn charge_compute_striped(tl: &TwoLevel, ops: u64, lanes: usize) {
    let lanes = lanes.max(1) as u64;
    let per = ops.div_ceil(lanes);
    let mut at = 0u64;
    let mut lane = 0usize;
    while at < ops {
        let take = per.min(ops - at);
        with_lane(lane, || tl.charge_compute(take));
        at += take;
        lane = (lane + 1) % lanes as usize;
    }
}

/// Scratchpad variant: stage as many points as fit into near memory once,
/// then iterate streaming the resident part at scratchpad bandwidth.
pub fn kmeans_near(
    tl: &TwoLevel,
    points: &FarArray<f64>,
    cfg: &KMeansConfig,
) -> Result<KMeansResult, SpError> {
    let total = points.len();
    let d = cfg.dim.max(1);
    // Whole points only; leave a little headroom for centroids/bookkeeping.
    let avail = tl.near_available_elems::<f64>().saturating_sub(1024);
    let near_pts = (avail / d).min(total / d);
    let near_elems = near_pts * d;
    let _resident = tl.near_alloc::<f64>(near_elems)?;
    tl.begin_phase("kmeans.load");
    // One streaming copy DRAM -> scratchpad, striped across lanes.
    charge_striped(tl, false, Dir::Read, (near_elems * 8) as u64, cfg.sim_lanes);
    charge_striped(tl, true, Dir::Write, (near_elems * 8) as u64, cfg.sim_lanes);
    tl.end_phase();
    Ok(lloyd(tl, points.as_slice_uncharged(), near_elems, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn cfg(k: usize, d: usize) -> KMeansConfig {
        KMeansConfig {
            k,
            dim: d,
            ..Default::default()
        }
    }

    #[test]
    fn blobs_have_expected_shape() {
        let pts = generate_blobs(1000, 3, 4, 0.5, 1);
        assert_eq!(pts.len(), 3000);
        assert!(pts.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn converges_on_separated_blobs() {
        let tl = tl();
        let pts = generate_blobs(2000, 2, 4, 0.1, 2);
        let arr = tl.far_from_vec(pts);
        let r = kmeans_far(&tl, &arr, &cfg(4, 2));
        assert!(r.iterations < 50, "should converge, took {}", r.iterations);
        // Tight, well-separated blobs with k-means++ seeding: inertia per
        // point should be on the order of dim·spread², far below the
        // blob-merging local optima (~10^3 here).
        let per_point = r.inertia / 2000.0;
        assert!(per_point < 1.0, "inertia/pt {per_point}");
    }

    #[test]
    fn near_and_far_agree_numerically() {
        let tl = tl();
        let pts = generate_blobs(3000, 3, 5, 1.0, 3);
        let arr = tl.far_from_vec(pts);
        let a = kmeans_far(&tl, &arr, &cfg(5, 3));
        let b = kmeans_near(&tl, &arr, &cfg(5, 3)).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.iterations, b.iterations);
        for (x, y) in a.centroids.iter().zip(&b.centroids) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn far_variant_never_touches_scratchpad() {
        let tl = tl();
        let arr = tl.far_from_vec(generate_blobs(1000, 2, 3, 1.0, 4));
        kmeans_far(&tl, &arr, &cfg(3, 2));
        assert_eq!(tl.ledger().snapshot().near_bytes, 0);
    }

    #[test]
    fn near_variant_moves_iteration_traffic_to_scratchpad() {
        // 1000 pts * 2 dims * 8 B = 16 KB fits the 1 MiB scratchpad fully.
        let tl = tl();
        let arr = tl.far_from_vec(generate_blobs(1000, 2, 3, 1.0, 5));
        let r = kmeans_near(&tl, &arr, &cfg(3, 2)).unwrap();
        let s = tl.ledger().snapshot();
        let data_bytes = 16_000u64;
        // Far traffic: one staging pass plus k-1 k-means++ seeding passes —
        // independent of the iteration count.
        assert!(
            s.far_bytes < 4 * data_bytes,
            "far bytes {} should be ~3 passes",
            s.far_bytes
        );
        // Near traffic: one write + one read per iteration.
        assert!(
            s.near_bytes >= data_bytes * (r.iterations as u64),
            "near bytes {} iterations {}",
            s.near_bytes,
            r.iterations
        );
    }

    #[test]
    fn partial_residency_splits_traffic() {
        // 1 MiB scratchpad, 131072 f64 capacity; make a 300k-element input.
        let tl = tl();
        let n = 50_000;
        let d = 6; // 300k elements = 2.4 MB > 1 MiB
        let arr = tl.far_from_vec(generate_blobs(n, d, 4, 1.0, 6));
        kmeans_near(&tl, &arr, &cfg(4, d)).unwrap();
        let s = tl.ledger().snapshot();
        assert!(s.near_bytes > 0);
        // Far per-iteration traffic exists (the non-resident tail).
        assert!(s.far_bytes > (n * d * 8) as u64);
    }

    #[test]
    fn tiled_matches_far_numerically() {
        let tl = tl();
        // 2.4 MB of points > 1 MiB scratchpad: forces real tiling.
        let n = 50_000;
        let d = 6;
        let pts = generate_blobs(n, d, 4, 1.0, 8);
        let arr = tl.far_from_vec(pts);
        let a = kmeans_far(&tl, &arr, &cfg(4, d));
        let b = kmeans_tiled(&tl, &arr, &cfg(4, d)).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.iterations, b.iterations);
        for (x, y) in a.centroids.iter().zip(&b.centroids) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn tiled_marks_tile_loads_overlappable() {
        let tl = tl();
        let n = 50_000;
        let d = 6;
        let arr = tl.far_from_vec(generate_blobs(n, d, 4, 1.0, 9));
        kmeans_tiled(&tl, &arr, &cfg(4, d)).unwrap();
        let t = tl.take_trace();
        let loads: Vec<_> = t
            .phases
            .iter()
            .filter(|p| p.name == "kmeans.tile.load")
            .collect();
        assert!(!loads.is_empty(), "oversized input must produce tiles");
        assert!(loads.iter().all(|p| p.overlappable));
        // Every load is followed by its assign phase.
        assert!(t.phases.iter().any(|p| p.name == "kmeans.tile.assign"));
    }

    #[test]
    fn tiled_fits_entirely_when_small() {
        let tl = tl();
        let arr = tl.far_from_vec(generate_blobs(2000, 2, 3, 1.0, 10));
        let r = kmeans_tiled(&tl, &arr, &cfg(3, 2)).unwrap();
        let t = tl.take_trace();
        // No tiles needed: everything resident.
        assert!(t.phases.iter().all(|p| p.name != "kmeans.tile.load"));
        assert!(r.iterations >= 1);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let tl = tl();
        let pts = generate_blobs(2000, 2, 4, 1.0, 7);
        let arr = tl.far_from_vec(pts);
        let mut c = cfg(4, 2);
        c.parallel = false;
        let a = kmeans_far(&tl, &arr, &c);
        c.parallel = true;
        let b = kmeans_far(&tl, &arr, &c);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn handles_k_larger_than_distinct_points() {
        let tl = tl();
        // 10 identical points, k=4: empty clusters keep old centroids.
        let pts = vec![1.0f64; 10 * 2];
        let arr = tl.far_from_vec(pts);
        let r = kmeans_far(&tl, &arr, &cfg(4, 2));
        assert_eq!(r.assignments.len(), 10);
        assert!(r.inertia < 1e-18);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let tl = tl();
        let pts = vec![0.0f64, 0.0, 2.0, 2.0, 4.0, 4.0];
        let arr = tl.far_from_vec(pts);
        let mut c = cfg(1, 2);
        c.max_iters = 10;
        let r = kmeans_far(&tl, &arr, &c);
        assert!((r.centroids[0] - 2.0).abs() < 1e-12);
        assert!((r.centroids[1] - 2.0).abs() < 1e-12);
    }
}
