//! Tiled dense kernels on a two-level memory.
//!
//! §VII of the paper closes with "It remains to determine what other kinds
//! of algorithms can run efficiently on a scratchpad architecture." This
//! crate answers with the classic data-reuse kernel: blocked matrix
//! multiply. `C = A·B` touches every element of `B` once **per tile-row of
//! A** — reuse the scratchpad monetizes directly, unlike the single-scan
//! kernels §I warns about.
//!
//! Two implementations share numerics exactly:
//!
//! * [`gemm_far`] — classic cache-blocked GEMM; every panel of `B` streams
//!   from DRAM each time it is needed.
//! * [`gemm_near`] — stages panels of `B` (and the active `A` stripe) in the
//!   scratchpad: `B`'s far traffic drops from `Θ(n³/√Z)` to one pass, the
//!   repeated reads hitting the `ρ×` channel instead.
//!
//! Matrices are dense, row-major `f64`, dimensions `m×k · k×n`.

use rayon::prelude::*;
use tlmm_scratchpad::trace::{current_lane, with_lane};
use tlmm_scratchpad::{Dir, FarArray, SpError, TwoLevel};

/// Tuning for the GEMM variants.
#[derive(Debug, Clone)]
pub struct GemmConfig {
    /// Tile edge in elements (square tiles). Default: sized so three tiles
    /// fit the cache (`3·t² ≤ Z/8`).
    pub tile: Option<usize>,
    /// Virtual lanes (simulated cores).
    pub sim_lanes: usize,
    /// Real host parallelism over output tile rows.
    pub parallel: bool,
}

impl Default for GemmConfig {
    fn default() -> Self {
        Self {
            tile: None,
            sim_lanes: 8,
            parallel: true,
        }
    }
}

/// Simple dense matrix in far memory (row-major).
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major backing array in far memory.
    pub data: FarArray<f64>,
}

impl Matrix {
    /// Wrap a row-major vector as a far-memory matrix.
    pub fn from_vec(tl: &TwoLevel, rows: usize, cols: usize, v: Vec<f64>) -> Self {
        assert_eq!(v.len(), rows * cols, "dimension mismatch");
        Self {
            rows,
            cols,
            data: tl.far_from_vec(v),
        }
    }

    /// Random matrix with entries in [-1, 1).
    pub fn random(tl: &TwoLevel, rows: usize, cols: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let v: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Self::from_vec(tl, rows, cols, v)
    }
}

/// Tiles must fit a lane's *share* of the cache: `3·t² ≤ Z/(8·lanes)`.
fn default_tile(tl: &TwoLevel, lanes: usize) -> usize {
    let z_elems = tl.params().cache_bytes as usize / 8 / lanes.max(1);
    (((z_elems / 3) as f64).sqrt() as usize).clamp(4, 512)
}

fn charge_striped(tl: &TwoLevel, near: bool, dir: Dir, bytes: u64, lanes: usize) {
    let lanes = lanes.max(1) as u64;
    let per = bytes.div_ceil(lanes);
    let base = current_lane();
    let mut at = 0u64;
    let mut lane = 0usize;
    while at < bytes {
        let take = per.min(bytes - at);
        with_lane(base + lane, || {
            if near {
                tl.charge_near_io(dir, take);
            } else {
                tl.charge_far_io(dir, take);
            }
        });
        at += take;
        lane = (lane + 1) % lanes as usize;
    }
}

/// The compute kernel: C_tile += A_tile · B_tile (all dense row-major
/// slices with explicit strides).
#[allow(clippy::too_many_arguments)]
fn tile_kernel(
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    mt: usize,
    nt: usize,
    kt: usize,
) {
    for i in 0..mt {
        for p in 0..kt {
            let aip = a[i * lda + p];
            let brow = &b[p * ldb..p * ldb + nt];
            let crow = &mut c[i * ldc..i * ldc + nt];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aip * bv;
            }
        }
    }
}

/// Shared blocked GEMM; `stage_b_near` selects whether the repeated reads
/// of `B` (and the `A` stripe) are charged to near or far memory.
fn gemm_impl(
    tl: &TwoLevel,
    a: &Matrix,
    b: &Matrix,
    cfg: &GemmConfig,
    stage_b_near: bool,
) -> Result<Matrix, SpError> {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let lanes = cfg.sim_lanes.max(1);
    let t = cfg.tile.unwrap_or_else(|| default_tile(tl, lanes)).max(4);
    let mut c = vec![0.0f64; m * n];
    let av = a.data.as_slice_uncharged();
    let bv = b.data.as_slice_uncharged();

    // Staging: the near variant holds all of B plus one A stripe resident.
    let _resident = if stage_b_near {
        let need = k * n + t * k;
        let avail = tl.near_available_elems::<f64>();
        if need > avail {
            return Err(SpError::NearCapacityExceeded {
                requested: (need * 8) as u64,
                available: (avail * 8) as u64,
            });
        }
        let res = tl.near_alloc::<f64>(need)?;
        tl.begin_phase("gemm.stage_b");
        charge_striped(tl, false, Dir::Read, (k * n * 8) as u64, lanes);
        charge_striped(tl, true, Dir::Write, (k * n * 8) as u64, lanes);
        tl.end_phase();
        Some(res)
    } else {
        None
    };

    tl.begin_phase("gemm.compute");
    // One work item per tile-row of C; each lane owns whole tile-rows.
    let tile_rows: Vec<usize> = (0..m).step_by(t).collect();
    let c_rows: Vec<&mut [f64]> = {
        let mut out = Vec::with_capacity(tile_rows.len());
        let mut rest = c.as_mut_slice();
        for &i0 in &tile_rows {
            let rows_here = t.min(m - i0);
            let (head, tail) = rest.split_at_mut(rows_here * n);
            out.push(head);
            rest = tail;
        }
        out
    };
    let base = current_lane();
    let n_jt = n.div_ceil(t);
    let work = |(wi, (&i0, c_stripe)): (usize, (&usize, &mut [f64]))| {
        let mt = t.min(m - i0);
        if stage_b_near {
            // The A stripe for this tile-row is staged far -> near once;
            // its repeated tile reads below then hit the scratchpad.
            with_lane(base + (wi * n_jt) % lanes, || {
                tl.charge_far_io(Dir::Read, (mt * k * 8) as u64);
                tl.charge_near_io(Dir::Write, (mt * k * 8) as u64);
            });
        }
        for (ji, j0) in (0..n).step_by(t).enumerate() {
            // Each (tile-row, tile-col) pair is one lane's work item, so a
            // many-core node sees n²/t² parallel units, not n/t.
            with_lane(base + (wi * n_jt + ji) % lanes, || {
                let nt = t.min(n - j0);
                for p0 in (0..k).step_by(t) {
                    let kt = t.min(k - p0);
                    // A tiles stream from DRAM (or the staged stripe);
                    // B tiles are re-read once per tile-row of A — the
                    // reused traffic the scratchpad accelerates.
                    if stage_b_near {
                        tl.charge_near_io(Dir::Read, ((mt * kt + kt * nt) * 8) as u64);
                    } else {
                        tl.charge_far_io(Dir::Read, ((mt * kt + kt * nt) * 8) as u64);
                    }
                    tile_kernel(
                        &av[i0 * k + p0..],
                        k,
                        &bv[p0 * n + j0..],
                        n,
                        &mut c_stripe[j0..],
                        n,
                        mt,
                        nt,
                        kt,
                    );
                    // One RAM-model op per multiply-add.
                    tl.charge_compute((mt * nt * kt) as u64);
                }
                // The finished C tile streams back to DRAM once.
                tl.charge_far_io(Dir::Write, (mt * nt * 8) as u64);
            })
        }
    };
    if cfg.parallel {
        tile_rows
            .par_iter()
            .zip(c_rows.into_par_iter())
            .enumerate()
            .for_each(work);
    } else {
        tile_rows.iter().zip(c_rows).enumerate().for_each(work);
    }
    tl.end_phase();
    Ok(Matrix::from_vec(tl, m, n, c))
}

/// Cache-blocked GEMM with all operands in far memory.
pub fn gemm_far(tl: &TwoLevel, a: &Matrix, b: &Matrix, cfg: &GemmConfig) -> Matrix {
    gemm_impl(tl, a, b, cfg, false).expect("far GEMM cannot exhaust the scratchpad")
}

/// Blocked GEMM with `B` (and the active `A` stripe) staged in the
/// scratchpad. Fails if `B` does not fit.
pub fn gemm_near(
    tl: &TwoLevel,
    a: &Matrix,
    b: &Matrix,
    cfg: &GemmConfig,
) -> Result<Matrix, SpError> {
    gemm_impl(tl, a, b, cfg, true)
}

/// Reference O(n³) multiply for test oracles.
pub fn gemm_reference(a: &Matrix, b: &Matrix) -> Vec<f64> {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let av = a.data.as_slice_uncharged();
    let bv = b.data.as_slice_uncharged();
    let mut c = vec![0.0; m * n];
    for i in 0..m {
        for p in 0..k {
            for j in 0..n {
                c[i * n + j] += av[i * k + p] * bv[p * n + j];
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 4 << 20, 64 << 10).unwrap())
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn far_matches_reference() {
        let tl = tl();
        for (m, k, n) in [(1, 1, 1), (7, 5, 3), (32, 32, 32), (50, 33, 71)] {
            let a = Matrix::random(&tl, m, k, 1);
            let b = Matrix::random(&tl, k, n, 2);
            let c = gemm_far(&tl, &a, &b, &GemmConfig::default());
            assert_close(c.data.as_slice_uncharged(), &gemm_reference(&a, &b));
        }
    }

    #[test]
    fn near_matches_far_exactly() {
        let tl = tl();
        let a = Matrix::random(&tl, 64, 48, 3);
        let b = Matrix::random(&tl, 48, 80, 4);
        let cfg = GemmConfig::default();
        let cf = gemm_far(&tl, &a, &b, &cfg);
        let cn = gemm_near(&tl, &a, &b, &cfg).unwrap();
        assert_eq!(
            cf.data.as_slice_uncharged(),
            cn.data.as_slice_uncharged(),
            "identical numerics"
        );
    }

    #[test]
    fn near_moves_b_from_far_only_once() {
        let tl = tl();
        let n = 128usize;
        let a = Matrix::random(&tl, n, n, 5);
        let b = Matrix::random(&tl, n, n, 6);
        let cfg = GemmConfig {
            tile: Some(16),
            parallel: false,
            ..Default::default()
        };
        gemm_near(&tl, &a, &b, &cfg).unwrap();
        let s_near = tl.ledger().snapshot();

        let tl2 = self::tests::tl();
        let a = Matrix::random(&tl2, n, n, 5);
        let b = Matrix::random(&tl2, n, n, 6);
        gemm_far(&tl2, &a, &b, &cfg);
        let s_far = tl2.ledger().snapshot();

        // Far variant re-reads B per tile-row: n/t = 8 passes of B.
        assert!(
            s_far.far_bytes > 4 * s_near.far_bytes,
            "far {} vs near {}",
            s_far.far_bytes,
            s_near.far_bytes
        );
        assert!(s_near.near_bytes > 0);
        assert_eq!(s_far.near_bytes, 0);
    }

    #[test]
    fn near_rejects_oversized_b() {
        let tl = tl();
        // B = 1024x1024 f64 = 8 MB > 4 MiB scratchpad.
        let a = Matrix::random(&tl, 8, 1024, 7);
        let b = Matrix::random(&tl, 1024, 1024, 8);
        assert!(gemm_near(&tl, &a, &b, &GemmConfig::default()).is_err());
    }

    #[test]
    fn parallel_and_sequential_identical() {
        let tl = tl();
        let a = Matrix::random(&tl, 40, 40, 9);
        let b = Matrix::random(&tl, 40, 40, 10);
        let mut cfg = GemmConfig {
            parallel: false,
            ..Default::default()
        };
        let c1 = gemm_far(&tl, &a, &b, &cfg);
        cfg.parallel = true;
        let c2 = gemm_far(&tl, &a, &b, &cfg);
        assert_eq!(c1.data.as_slice_uncharged(), c2.data.as_slice_uncharged());
    }

    #[test]
    fn lanes_receive_work() {
        let tl = tl();
        tl.begin_phase("test");
        let a = Matrix::random(&tl, 64, 32, 11);
        let b = Matrix::random(&tl, 32, 64, 12);
        gemm_far(
            &tl,
            &a,
            &b,
            &GemmConfig {
                tile: Some(8),
                sim_lanes: 8,
                parallel: false,
            },
        );
        let t = tl.take_trace();
        let active: usize = t.phases.iter().map(|p| p.active_lanes()).max().unwrap();
        assert!(active >= 8, "active lanes {active}");
    }
}
