//! Property tests: blocked GEMM equals the reference product for arbitrary
//! shapes and tilings, in both placements.

use proptest::prelude::*;
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_tile::{gemm_far, gemm_near, gemm_reference, GemmConfig, Matrix};

fn tl() -> TwoLevel {
    TwoLevel::new(ScratchpadParams::new(64, 4.0, 4 << 20, 64 << 10).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_gemm_matches_reference(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        tile in 4usize..24,
        lanes in 1usize..16,
        seed in any::<u64>(),
    ) {
        let tl = tl();
        let a = Matrix::random(&tl, m, k, seed);
        let b = Matrix::random(&tl, k, n, seed ^ 1);
        let expect = gemm_reference(&a, &b);
        let cfg = GemmConfig { tile: Some(tile), sim_lanes: lanes, parallel: false };

        let cf = gemm_far(&tl, &a, &b, &cfg);
        for (x, y) in cf.data.as_slice_uncharged().iter().zip(&expect) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        let cn = gemm_near(&tl, &a, &b, &cfg).unwrap();
        prop_assert_eq!(cf.data.as_slice_uncharged(), cn.data.as_slice_uncharged());
    }

    #[test]
    fn near_gemm_far_traffic_is_bounded_by_three_passes(
        n in 16usize..64,
        tile in 4usize..16,
    ) {
        // Staged GEMM touches DRAM ~3 matrix volumes: stage B once, stage
        // each A stripe once, write C once (plus rounding slack).
        let tl = tl();
        let a = Matrix::random(&tl, n, n, 7);
        let b = Matrix::random(&tl, n, n, 8);
        let cfg = GemmConfig { tile: Some(tile), sim_lanes: 4, parallel: false };
        gemm_near(&tl, &a, &b, &cfg).unwrap();
        let s = tl.ledger().snapshot();
        let vol = (n * n * 8) as u64;
        prop_assert!(s.far_bytes <= 3 * vol + vol / 2, "far {} vs 3 passes {}", s.far_bytes, 3 * vol);
    }
}
