//! Deterministic multi-worker transfer executor (Theorem 10's `p′`).
//!
//! The paper's parallel result (§IV-C, Theorem 10) assumes `p′` processors
//! can make *simultaneous block transfers*; bandwidth limits may force
//! `p′ < p`. The rest of the runtime only *attributes* transfer volume to
//! virtual lanes — this module makes the contention real: an [`Executor`]
//! installed on a [`crate::TwoLevel`] arbitrates every charged transfer over
//! a bounded pool of `p′` **transfer slots**, and (optionally) executes
//! stage fan-outs on its own worker pool.
//!
//! Two modes:
//!
//! * [`ExecMode::Deterministic`] — a virtual-time scheduler. Stage tasks run
//!   sequentially on the calling thread in a seeded permutation ("schedule
//!   fuzzing"); each transfer request is granted the best transfer slot in
//!   virtual time (1 unit = 1 byte through one slot), with seeded
//!   tie-breaks. Every statistic — per-worker wait, per-slot busy time, the
//!   makespan — is replayable **bit-for-bit** from `(seed, p, p′)`. The
//!   charge ledger is *never* touched by arbitration, so it is invariant
//!   across seeds and worker counts and identical to an executor-free run.
//! * [`ExecMode::Host`] — a real worker pool (`p` OS threads pulling from a
//!   shared queue) contending on a real counting semaphore of `p′` permits.
//!   Wall-clock waits land in telemetry; the virtual-time fields stay zero
//!   so traces remain deterministic.
//!
//! The arbitration granularity is one **charge call**: every far- or
//! near-memory charge of `b` bytes occupies one slot for `b` virtual units
//! (both channel crossings of a far↔near copy are charged separately, so
//! both occupy the shared transfer machinery — the NoC view of §V).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Condvar;

/// Environment variable holding the deterministic scheduler seed.
/// When set, [`ExecConfig::from_env`] yields a deterministic executor.
pub const EXEC_SEED_ENV: &str = "TLMM_EXEC_SEED";
/// Environment variable overriding the worker count `p` (default 8).
pub const EXEC_WORKERS_ENV: &str = "TLMM_EXEC_WORKERS";
/// Environment variable overriding the transfer-slot count `p′`
/// (default = workers).
pub const EXEC_SLOTS_ENV: &str = "TLMM_EXEC_SLOTS";

/// Typed validation errors for an [`ExecConfig`] — surfaced at API edges
/// instead of a panic deep inside `Executor::new`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecConfigError {
    /// `p = 0`: no worker could ever run a stage task.
    ZeroWorkers,
    /// `p′ = 0`: no transfer could ever be granted a slot.
    ZeroSlots,
    /// `p′ > p`: a slot no worker can drive would be meaningless.
    SlotsExceedWorkers,
}

impl core::fmt::Display for ExecConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            ExecConfigError::ZeroWorkers => "executor workers (p) must be >= 1",
            ExecConfigError::ZeroSlots => "transfer slots (p') must be >= 1",
            ExecConfigError::SlotsExceedWorkers => {
                "transfer slots (p') must not exceed workers (p)"
            }
        })
    }
}

impl std::error::Error for ExecConfigError {}

/// How the executor schedules stage tasks and measures slot waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Virtual-time round-robin with seeded tie-breaks; single host thread;
    /// bit-for-bit replayable from `(seed, p, p′)`.
    Deterministic,
    /// Real worker threads contending on a real semaphore; waits measured in
    /// wall-clock nanoseconds (telemetry only).
    Host,
}

/// Configuration of an [`Executor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Workers `p` executing stage tasks (and owning virtual clocks).
    pub workers: usize,
    /// Simultaneous transfer slots `p′` (the bandwidth bound of Theorem 10).
    pub transfer_slots: usize,
    /// Seed for the schedule permutation and arbitration tie-breaks.
    pub seed: u64,
    /// Scheduling mode.
    pub mode: ExecMode,
}

impl ExecConfig {
    /// A deterministic (virtual-time) configuration.
    pub fn deterministic(workers: usize, transfer_slots: usize, seed: u64) -> Self {
        Self {
            workers,
            transfer_slots,
            seed,
            mode: ExecMode::Deterministic,
        }
    }

    /// A host-threaded configuration (waits measured in wall time).
    pub fn host(workers: usize, transfer_slots: usize) -> Self {
        Self {
            workers,
            transfer_slots,
            seed: 0,
            mode: ExecMode::Host,
        }
    }

    /// Validate the configuration: both pools must be non-empty, and
    /// `p′ ≤ p` (a slot no worker can drive would be meaningless).
    pub fn validate(&self) -> Result<(), ExecConfigError> {
        if self.workers == 0 {
            return Err(ExecConfigError::ZeroWorkers);
        }
        if self.transfer_slots == 0 {
            return Err(ExecConfigError::ZeroSlots);
        }
        if self.transfer_slots > self.workers {
            return Err(ExecConfigError::SlotsExceedWorkers);
        }
        Ok(())
    }

    /// Build a deterministic config from `TLMM_EXEC_SEED` (+ optional
    /// `TLMM_EXEC_WORKERS` / `TLMM_EXEC_SLOTS`); `None` when the seed
    /// variable is unset or unparsable.
    pub fn from_env() -> Option<Self> {
        let seed: u64 = std::env::var(EXEC_SEED_ENV).ok()?.trim().parse().ok()?;
        let workers: usize = std::env::var(EXEC_WORKERS_ENV)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(8)
            .max(1);
        let slots: usize = std::env::var(EXEC_SLOTS_ENV)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(workers)
            .clamp(1, workers);
        Some(Self::deterministic(workers, slots, seed))
    }
}

// SplitMix64 — the same cheap seeded hash the fault injector uses; here it
// drives schedule permutations and arbitration tie-breaks.
use crate::backoff::splitmix64;

/// Virtual-time arbiter state (deterministic mode).
#[derive(Debug)]
struct VirtualState {
    /// Virtual time at which each transfer slot becomes free.
    slot_free: Vec<u64>,
    /// Cumulative busy units per slot (occupancy numerator).
    slot_busy: Vec<u64>,
    /// Each worker's virtual clock.
    worker_clock: Vec<u64>,
    /// Monotone request counter (tie-break salt).
    seq: u64,
}

/// Per-worker statistics, updated lock-free (host mode charges concurrently).
#[derive(Debug, Default)]
struct WorkerCell {
    transfers: AtomicU64,
    bytes: AtomicU64,
    wait_units: AtomicU64,
    host_wait_ns: AtomicU64,
}

/// Counting semaphore for host mode (`p′` permits).
#[derive(Debug)]
struct Slots {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Slots {
    fn acquire(&self) {
        let mut g = self.permits.lock();
        while *g == 0 {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        *g -= 1;
    }

    fn release(&self) {
        let mut g = self.permits.lock();
        *g += 1;
        self.cv.notify_one();
    }
}

/// Per-worker row of an [`ExecReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerReport {
    /// Arbitrated transfers issued by this worker.
    pub transfers: u64,
    /// Bytes moved through the arbiter by this worker.
    pub bytes: u64,
    /// Virtual units spent waiting for a slot (deterministic mode).
    pub wait_units: u64,
    /// Wall nanoseconds spent waiting for a permit (host mode).
    pub host_wait_ns: u64,
    /// Final virtual clock (deterministic mode; 0 in host mode).
    pub clock_units: u64,
}

/// Snapshot of an executor's arbitration statistics — serializable so bench
/// artifacts can record contention next to the trace they replay.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Workers `p`.
    pub workers: usize,
    /// Transfer slots `p′`.
    pub transfer_slots: usize,
    /// Scheduler seed.
    pub seed: u64,
    /// Was the run virtual-time deterministic?
    pub deterministic: bool,
    /// Max worker virtual clock — the simulated makespan in byte-units
    /// (deterministic mode; 0 in host mode).
    pub makespan_units: u64,
    /// Total virtual wait across workers.
    pub total_wait_units: u64,
    /// Total wall nanoseconds waited (host mode).
    pub total_host_wait_ns: u64,
    /// Total bytes arbitrated.
    pub total_bytes: u64,
    /// Total arbitrated transfers.
    pub transfers: u64,
    /// Cumulative busy units per transfer slot (deterministic mode); the
    /// occupancy of slot `i` is `per_slot_busy_units[i] / makespan_units`.
    pub per_slot_busy_units: Vec<u64>,
    /// Per-worker breakdown, index = worker id.
    pub per_worker: Vec<WorkerReport>,
}

impl ExecReport {
    /// Arbitrated throughput in bytes per virtual unit: `p′` when the run
    /// is bandwidth-saturated, up to `p` when it is not (deterministic
    /// mode only; 0 without a makespan).
    pub fn throughput_units(&self) -> f64 {
        if self.makespan_units == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.makespan_units as f64
        }
    }
}

/// RAII grant of one arbitrated transfer. In host mode, dropping releases
/// the slot permit; in deterministic mode the grant is inert (the virtual
/// occupancy is already booked).
#[derive(Debug)]
pub struct TransferGrant {
    ex: Option<std::sync::Arc<Executor>>,
    /// Virtual byte-units waited to acquire the slot (deterministic mode).
    pub wait_units: u64,
    /// The arbiter's issue/grant/retire stamps for the flight recorder:
    /// virtual byte-units + slot id in deterministic mode, telemetry-epoch
    /// wall nanoseconds (no slot) in host mode. `None` for 0-byte grants.
    pub timing: Option<tlmm_telemetry::flight::TransferTiming>,
}

impl Drop for TransferGrant {
    fn drop(&mut self) {
        if let Some(ex) = self.ex.take() {
            ex.slots.release();
        }
    }
}

/// Per-tenant slot-quota bookkeeping for the service layer: how many of the
/// `p′` transfer slots each tenant currently holds a *lease* on. A lease is
/// a scheduling reservation — the arbiter itself keeps granting individual
/// transfers per lane — so leases bound how much parallelism a scheduler
/// may assign a tenant, deterministically (plain integer state, a
/// `BTreeMap` so iteration order never depends on hashing).
#[derive(Debug, Default)]
struct QuotaState {
    /// Per-tenant cap on leased slots; `None` = all of `p′`.
    tenant_cap: Option<usize>,
    leased: BTreeMap<u64, usize>,
    total: usize,
    preemptions: u64,
}

/// The executor: a transfer-slot arbiter plus a stage worker pool. Install
/// on a [`crate::TwoLevel`] with [`crate::TwoLevel::install_executor`];
/// every charged transfer is then arbitrated here.
#[derive(Debug)]
pub struct Executor {
    cfg: ExecConfig,
    vstate: Mutex<VirtualState>,
    slots: Slots,
    cells: Vec<WorkerCell>,
    /// Per-call-site stage counter salting the schedule permutation, so
    /// successive stages of one run get distinct (but replayable) orders.
    stage_seq: AtomicU64,
    quota: Mutex<QuotaState>,
}

impl Executor {
    /// Build an executor; panics on an invalid config (validate with
    /// [`ExecConfig::validate`] first at API edges).
    pub fn new(cfg: ExecConfig) -> Self {
        cfg.validate().expect("invalid executor config");
        Self {
            vstate: Mutex::new(VirtualState {
                slot_free: vec![0; cfg.transfer_slots],
                slot_busy: vec![0; cfg.transfer_slots],
                worker_clock: vec![0; cfg.workers],
                seq: 0,
            }),
            slots: Slots {
                permits: Mutex::new(cfg.transfer_slots),
                cv: Condvar::new(),
            },
            cells: (0..cfg.workers).map(|_| WorkerCell::default()).collect(),
            stage_seq: AtomicU64::new(0),
            quota: Mutex::new(QuotaState::default()),
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Per-tenant slot quotas (service-layer leases over the p′ pool)
    // ------------------------------------------------------------------

    /// Total transfer slots `p′` available for leasing.
    pub fn slots_total(&self) -> usize {
        self.cfg.transfer_slots
    }

    /// Cap how many slots any single tenant may lease (`None` = up to all
    /// of `p′`). Existing leases are not revoked — the cap applies to new
    /// grants; schedulers revoke at phase boundaries via
    /// [`Self::release_lease`].
    pub fn set_tenant_slot_cap(&self, cap: Option<usize>) {
        self.quota.lock().tenant_cap = cap;
    }

    /// Try to lease up to `want` slots for `tenant`. Grants
    /// `min(want, free slots, tenant's remaining quota)` — possibly 0 —
    /// and returns the granted count. Pure integer state: replayable.
    pub fn try_lease(&self, tenant: u64, want: usize) -> usize {
        let mut q = self.quota.lock();
        let held = q.leased.get(&tenant).copied().unwrap_or(0);
        let tenant_room = q
            .tenant_cap
            .unwrap_or(self.cfg.transfer_slots)
            .saturating_sub(held);
        let free = self.cfg.transfer_slots.saturating_sub(q.total);
        let grant = want.min(tenant_room).min(free);
        if grant > 0 {
            *q.leased.entry(tenant).or_insert(0) += grant;
            q.total += grant;
            tlmm_telemetry::counter!("executor.lease_granted").add(grant as u64);
        } else if want > 0 {
            tlmm_telemetry::counter!("executor.lease_denied").incr();
        }
        grant
    }

    /// Return `n` leased slots from `tenant` to the pool (saturating: a
    /// tenant can never go negative).
    pub fn release_lease(&self, tenant: u64, n: usize) {
        let mut q = self.quota.lock();
        let held = q.leased.get(&tenant).copied().unwrap_or(0);
        let give = n.min(held);
        if give == 0 {
            return;
        }
        if held == give {
            q.leased.remove(&tenant);
        } else if let Some(h) = q.leased.get_mut(&tenant) {
            *h -= give;
        }
        q.total -= give;
        tlmm_telemetry::counter!("executor.lease_released").add(give as u64);
    }

    /// Slots currently leased by `tenant`.
    pub fn leased(&self, tenant: u64) -> usize {
        self.quota.lock().leased.get(&tenant).copied().unwrap_or(0)
    }

    /// Slots currently leased across all tenants.
    pub fn total_leased(&self) -> usize {
        self.quota.lock().total
    }

    /// Record that a scheduler preempted `yielded` slots from `tenant` at a
    /// phase boundary (the slots themselves move via
    /// [`Self::release_lease`] / [`Self::try_lease`]).
    pub fn note_preemption(&self, tenant: u64, yielded: usize) {
        self.quota.lock().preemptions += 1;
        tlmm_telemetry::counter!("executor.preemptions").incr();
        tlmm_telemetry::counter!("executor.preempted_slots").add(yielded as u64);
        if tlmm_telemetry::sink::enabled() {
            use serde::Value;
            tlmm_telemetry::sink::emit(
                "preempt",
                vec![
                    ("tenant".to_string(), Value::U64(tenant)),
                    ("slots".to_string(), Value::U64(yielded as u64)),
                ],
            );
        }
    }

    /// Preemptions recorded so far.
    pub fn preemptions(&self) -> u64 {
        self.quota.lock().preemptions
    }

    /// The configuration this executor was built with.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Is this executor in virtual-time deterministic mode?
    pub fn is_deterministic(&self) -> bool {
        self.cfg.mode == ExecMode::Deterministic
    }

    /// Which worker owns virtual lane `lane` (lanes fold onto workers
    /// round-robin, mirroring how memsim folds lanes onto cores).
    #[inline]
    pub fn worker_of(&self, lane: usize) -> usize {
        lane % self.cfg.workers
    }

    /// Acquire a transfer slot for `bytes` from `lane`, recording stats.
    /// In host mode the permit is LEFT HELD — callers release it (or hand
    /// it to a [`TransferGrant`]). Returns the virtual wait in byte-units
    /// (0 in host mode, where the wait is wall time in telemetry instead)
    /// plus the arbiter's stamps for the flight recorder.
    fn issue(&self, lane: usize, bytes: u64) -> (u64, tlmm_telemetry::flight::TransferTiming) {
        let w = self.worker_of(lane);
        let cell = &self.cells[w];
        cell.transfers.fetch_add(1, Ordering::Relaxed);
        cell.bytes.fetch_add(bytes, Ordering::Relaxed);
        tlmm_telemetry::counter!("executor.transfers").incr();
        match self.cfg.mode {
            ExecMode::Deterministic => {
                let timing = self.acquire_virtual(w, bytes);
                let wait = timing.grant - timing.issue;
                if wait > 0 {
                    cell.wait_units.fetch_add(wait, Ordering::Relaxed);
                    tlmm_telemetry::counter!("executor.slot_wait_units").add(wait);
                    tlmm_telemetry::histogram!("executor.wait_per_transfer").record(wait);
                }
                (wait, timing)
            }
            ExecMode::Host => {
                let t0 = tlmm_telemetry::now_ns();
                self.slots.acquire();
                let granted = tlmm_telemetry::now_ns();
                let ns = granted.saturating_sub(t0);
                if ns > 0 {
                    cell.host_wait_ns.fetch_add(ns, Ordering::Relaxed);
                    tlmm_telemetry::counter!("executor.host_wait_ns").add(ns);
                }
                (
                    0,
                    tlmm_telemetry::flight::TransferTiming {
                        slot: tlmm_telemetry::flight::NO_SLOT,
                        issue: t0,
                        grant: granted,
                        retire: granted,
                    },
                )
            }
        }
    }

    /// Arbitrate one transfer of `bytes` issued from `lane`, releasing the
    /// slot immediately. Returns the virtual wait in byte-units. Never
    /// touches the charge ledger.
    pub fn transfer(&self, lane: usize, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let (wait, _) = self.issue(lane, bytes);
        if self.cfg.mode == ExecMode::Host {
            self.slots.release();
        }
        wait
    }

    /// Arbitrate one transfer and return a grant that — in host mode —
    /// holds the slot permit until dropped, so `p′` genuinely bounds how
    /// many charged operations run concurrently. Deterministic mode
    /// resolves the wait immediately (virtual occupancy is already booked
    /// on the slot timeline) and the grant is inert.
    pub fn begin_transfer(self: &std::sync::Arc<Self>, lane: usize, bytes: u64) -> TransferGrant {
        if bytes == 0 {
            return TransferGrant {
                ex: None,
                wait_units: 0,
                timing: None,
            };
        }
        let (wait_units, timing) = self.issue(lane, bytes);
        TransferGrant {
            ex: (self.cfg.mode == ExecMode::Host).then(|| std::sync::Arc::clone(self)),
            wait_units,
            timing: Some(timing),
        }
    }

    /// Virtual-time slot grant: reuse a slot that is already free at the
    /// worker's clock when one exists (latest-free first — a worker
    /// streaming back-to-back stays on one slot, leaving the others open);
    /// otherwise wait for the earliest-free slot. Ties break by a seeded
    /// hash of `(seed, request, slot)`, so the whole schedule is a pure
    /// function of `(seed, p, p′)` and the request order. Returns the full
    /// issue/grant/retire stamps (`grant - issue` is the slot wait).
    fn acquire_virtual(&self, worker: usize, bytes: u64) -> tlmm_telemetry::flight::TransferTiming {
        let mut st = self.vstate.lock();
        let now = st.worker_clock[worker];
        let salt = splitmix64(self.cfg.seed ^ st.seq);
        st.seq += 1;
        let tie = |slot: usize| splitmix64(salt ^ slot as u64);
        let slot = {
            let free_now = st
                .slot_free
                .iter()
                .enumerate()
                .filter(|&(_, &f)| f <= now)
                .max_by_key(|&(i, &f)| (f, tie(i)));
            match free_now {
                Some((i, _)) => i,
                None => st
                    .slot_free
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &f)| (f, tie(i)))
                    .map(|(i, _)| i)
                    .expect("p' >= 1"),
            }
        };
        let grant = now.max(st.slot_free[slot]);
        let fin = grant + bytes;
        st.slot_free[slot] = fin;
        st.slot_busy[slot] += bytes;
        st.worker_clock[worker] = fin;
        tlmm_telemetry::flight::TransferTiming {
            slot: slot as u32,
            issue: now,
            grant,
            retire: fin,
        }
    }

    /// A seeded permutation of `0..n` — the schedule-fuzzing order for one
    /// stage. Each call advances the stage counter, so successive stages
    /// get different (but replay-stable) orders.
    pub fn permutation(&self, n: usize) -> Vec<usize> {
        let salt = splitmix64(self.cfg.seed ^ self.stage_seq.fetch_add(1, Ordering::Relaxed));
        let mut order: Vec<usize> = (0..n).collect();
        // Seeded Fisher–Yates.
        for i in (1..n).rev() {
            let j = (splitmix64(salt ^ i as u64) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }

    /// Execute one stage of tasks on the executor's workers.
    ///
    /// Deterministic mode runs the tasks sequentially on the calling thread
    /// in a seeded permutation (the schedule fuzz); host mode fans them out
    /// to `min(p, tasks)` OS threads pulling from a shared queue. Tasks are
    /// responsible for their own lane attribution ([`crate::with_lane`]);
    /// the charges they make are arbitrated like any other.
    pub fn run_tasks<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        tlmm_telemetry::counter!("executor.stages").incr();
        match self.cfg.mode {
            ExecMode::Deterministic => {
                let mut cells: Vec<Option<Box<dyn FnOnce() + Send + 'env>>> =
                    tasks.into_iter().map(Some).collect();
                for i in self.permutation(n) {
                    (cells[i].take().expect("permutation visits each task once"))();
                }
            }
            ExecMode::Host => {
                let threads = self.cfg.workers.min(n);
                if threads <= 1 {
                    for t in tasks {
                        t();
                    }
                    return;
                }
                let queue: Mutex<VecDeque<Box<dyn FnOnce() + Send + 'env>>> =
                    Mutex::new(tasks.into());
                std::thread::scope(|s| {
                    for _ in 0..threads {
                        s.spawn(|| loop {
                            let task = queue.lock().pop_front();
                            match task {
                                Some(t) => t(),
                                None => break,
                            }
                        });
                    }
                });
            }
        }
    }

    /// Snapshot the arbitration statistics.
    pub fn report(&self) -> ExecReport {
        let st = self.vstate.lock();
        let per_worker: Vec<WorkerReport> = self
            .cells
            .iter()
            .enumerate()
            .map(|(w, c)| WorkerReport {
                transfers: c.transfers.load(Ordering::Relaxed),
                bytes: c.bytes.load(Ordering::Relaxed),
                wait_units: c.wait_units.load(Ordering::Relaxed),
                host_wait_ns: c.host_wait_ns.load(Ordering::Relaxed),
                clock_units: st.worker_clock[w],
            })
            .collect();
        ExecReport {
            workers: self.cfg.workers,
            transfer_slots: self.cfg.transfer_slots,
            seed: self.cfg.seed,
            deterministic: self.is_deterministic(),
            makespan_units: st.worker_clock.iter().copied().max().unwrap_or(0),
            total_wait_units: per_worker.iter().map(|w| w.wait_units).sum(),
            total_host_wait_ns: per_worker.iter().map(|w| w.host_wait_ns).sum(),
            total_bytes: per_worker.iter().map(|w| w.bytes).sum(),
            transfers: per_worker.iter().map(|w| w.transfers).sum(),
            per_slot_busy_units: st.slot_busy.clone(),
            per_worker,
        }
    }

    /// Reset all arbitration state and statistics (between measured runs on
    /// one memory; the ledger has its own reset).
    pub fn reset(&self) {
        let mut st = self.vstate.lock();
        st.slot_free.iter_mut().for_each(|f| *f = 0);
        st.slot_busy.iter_mut().for_each(|b| *b = 0);
        st.worker_clock.iter_mut().for_each(|c| *c = 0);
        st.seq = 0;
        drop(st);
        for c in &self.cells {
            c.transfers.store(0, Ordering::Relaxed);
            c.bytes.store(0, Ordering::Relaxed);
            c.wait_units.store(0, Ordering::Relaxed);
            c.host_wait_ns.store(0, Ordering::Relaxed);
        }
        self.stage_seq.store(0, Ordering::Relaxed);
        *self.quota.lock() = QuotaState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(p: usize, slots: usize, seed: u64) -> Executor {
        Executor::new(ExecConfig::deterministic(p, slots, seed))
    }

    #[test]
    fn config_validation_rejects_degenerate_pools() {
        assert!(ExecConfig::deterministic(0, 1, 0).validate().is_err());
        assert!(ExecConfig::deterministic(1, 0, 0).validate().is_err());
        assert!(ExecConfig::deterministic(2, 4, 0).validate().is_err());
        assert!(ExecConfig::deterministic(4, 4, 0).validate().is_ok());
        assert!(ExecConfig::host(8, 2).validate().is_ok());
    }

    #[test]
    fn no_contention_when_slots_match_workers() {
        let ex = det(4, 4, 7);
        for round in 0..8 {
            for w in 0..4 {
                assert_eq!(ex.transfer(w, 1000), 0, "round {round} worker {w}");
            }
        }
        let r = ex.report();
        assert_eq!(r.total_wait_units, 0);
        assert_eq!(r.makespan_units, 8 * 1000);
        assert_eq!(r.total_bytes, 32 * 1000);
    }

    #[test]
    fn contention_appears_once_workers_exceed_slots() {
        // 4 workers, 1 slot: total demand serializes; makespan = total bytes.
        let ex = det(4, 1, 7);
        let mut waited = 0;
        for w in 0..4 {
            for _ in 0..4 {
                waited += ex.transfer(w, 500);
            }
        }
        let r = ex.report();
        assert_eq!(r.makespan_units, 16 * 500);
        assert!(waited > 0, "one slot must force waits");
        assert_eq!(r.total_wait_units, waited);
        assert_eq!(r.per_slot_busy_units, vec![16 * 500]);
    }

    #[test]
    fn throughput_saturates_at_slot_count() {
        // Fixed per-worker demand; the makespan knee sits at p = p'.
        let makespan = |p: usize, slots: usize| {
            let ex = det(p, slots, 3);
            for w in 0..p {
                for _ in 0..8 {
                    ex.transfer(w, 1 << 10);
                }
            }
            ex.report().makespan_units
        };
        // p <= p': each worker streams on its own slot, makespan flat.
        assert_eq!(makespan(1, 1), 8 << 10);
        assert_eq!(makespan(2, 2), 8 << 10);
        assert_eq!(makespan(4, 4), 8 << 10);
        // p > p': bandwidth-bound, makespan grows with p/p'.
        assert_eq!(makespan(4, 2), 16 << 10);
        assert_eq!(makespan(8, 2), 32 << 10);
    }

    #[test]
    fn replay_is_bit_identical_for_fixed_seed() {
        let run = |seed: u64| {
            let ex = det(5, 2, seed);
            for i in 0..40 {
                ex.transfer(i % 5, 100 + (i as u64 * 37) % 900);
            }
            ex.report()
        };
        assert_eq!(run(11), run(11));
        assert_eq!(run(99), run(99));
        // Different seeds may legitimately produce different schedules, but
        // conserved quantities stay fixed.
        let (a, b) = (run(11), run(99));
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.transfers, b.transfers);
    }

    #[test]
    fn busy_units_are_conserved() {
        let ex = det(6, 3, 42);
        let mut total = 0u64;
        for i in 0..60 {
            let b = 64 * (1 + (i as u64 % 7));
            total += b;
            ex.transfer(i % 6, b);
        }
        let r = ex.report();
        assert_eq!(r.per_slot_busy_units.iter().sum::<u64>(), total);
        assert_eq!(r.total_bytes, total);
        assert!(r.makespan_units >= total / 3);
        assert!(r.makespan_units <= total);
    }

    #[test]
    fn permutations_are_replayable_and_cover() {
        let a = det(4, 2, 5);
        let b = det(4, 2, 5);
        for n in [0usize, 1, 2, 7, 32] {
            let pa = a.permutation(n);
            let pb = b.permutation(n);
            assert_eq!(pa, pb);
            let mut sorted = pa.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
        // Stage counter advanced in lockstep; next stage differs from the
        // first at this size (overwhelmingly likely, fixed seed = fixed
        // outcome, so this is a deterministic assertion).
        assert_ne!(a.permutation(32), a.permutation(32));
    }

    #[test]
    fn run_tasks_executes_everything_in_both_modes() {
        for cfg in [ExecConfig::deterministic(4, 2, 9), ExecConfig::host(4, 2)] {
            let ex = Executor::new(cfg);
            let hits = std::sync::atomic::AtomicU64::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..37)
                .map(|_| {
                    let hits = &hits;
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            ex.run_tasks(tasks);
            assert_eq!(hits.load(Ordering::Relaxed), 37);
        }
    }

    #[test]
    fn host_mode_semaphore_survives_concurrent_hammering() {
        let ex = std::sync::Arc::new(Executor::new(ExecConfig::host(8, 2)));
        std::thread::scope(|s| {
            for t in 0..8 {
                let ex = std::sync::Arc::clone(&ex);
                s.spawn(move || {
                    for i in 0..500 {
                        ex.transfer(t, 64 + i % 128);
                    }
                });
            }
        });
        let r = ex.report();
        assert_eq!(r.transfers, 8 * 500);
        assert_eq!(r.makespan_units, 0, "host mode has no virtual clock");
    }

    #[test]
    fn reset_clears_all_state() {
        let ex = det(3, 2, 1);
        for w in 0..3 {
            ex.transfer(w, 4096);
        }
        ex.permutation(8);
        ex.reset();
        let r = ex.report();
        assert_eq!(r.total_bytes, 0);
        assert_eq!(r.makespan_units, 0);
        assert_eq!(r.transfers, 0);
        assert_eq!(r.per_slot_busy_units, vec![0, 0]);
    }

    #[test]
    fn leases_respect_pool_and_tenant_caps() {
        let ex = det(8, 4, 1);
        assert_eq!(ex.slots_total(), 4);
        // Tenant 1 can take the whole pool when uncapped.
        assert_eq!(ex.try_lease(1, 10), 4);
        assert_eq!(ex.try_lease(2, 1), 0, "pool exhausted");
        ex.release_lease(1, 2);
        assert_eq!(ex.leased(1), 2);
        assert_eq!(ex.total_leased(), 2);
        // Per-tenant cap of 1: tenant 2 gets one slot even though two are free.
        ex.set_tenant_slot_cap(Some(1));
        assert_eq!(ex.try_lease(2, 5), 1);
        assert_eq!(ex.try_lease(2, 1), 0, "tenant cap reached");
        // Over-release saturates instead of underflowing.
        ex.release_lease(2, 99);
        assert_eq!(ex.leased(2), 0);
        ex.release_lease(1, 2);
        assert_eq!(ex.total_leased(), 0);
        ex.note_preemption(1, 2);
        assert_eq!(ex.preemptions(), 1);
        ex.reset();
        assert_eq!(ex.preemptions(), 0);
    }

    #[test]
    fn validation_errors_are_typed() {
        assert_eq!(
            ExecConfig::deterministic(0, 1, 0).validate(),
            Err(ExecConfigError::ZeroWorkers)
        );
        assert_eq!(
            ExecConfig::deterministic(1, 0, 0).validate(),
            Err(ExecConfigError::ZeroSlots)
        );
        assert_eq!(
            ExecConfig::deterministic(2, 4, 0).validate(),
            Err(ExecConfigError::SlotsExceedWorkers)
        );
    }

    #[test]
    fn from_env_parses_knobs() {
        // Serialize env access: tests in this module run in one process.
        std::env::set_var(EXEC_SEED_ENV, "1234");
        std::env::set_var(EXEC_WORKERS_ENV, "16");
        std::env::set_var(EXEC_SLOTS_ENV, "4");
        let cfg = ExecConfig::from_env().expect("seed set");
        assert_eq!(cfg.seed, 1234);
        assert_eq!(cfg.workers, 16);
        assert_eq!(cfg.transfer_slots, 4);
        assert_eq!(cfg.mode, ExecMode::Deterministic);
        std::env::remove_var(EXEC_SLOTS_ENV);
        std::env::remove_var(EXEC_WORKERS_ENV);
        std::env::remove_var(EXEC_SEED_ENV);
        assert!(ExecConfig::from_env().is_none());
    }
}
