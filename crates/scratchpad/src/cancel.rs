//! Cooperative cancellation and deadline tokens.
//!
//! A [`CancelToken`] is installed on a [`crate::TwoLevel`] (one job at a
//! time) and consulted by [`crate::TwoLevel::checkpoint`], which the sort
//! engines call **at phase boundaries only** — between Phase-1 chunks,
//! between Phase-2 batches, between merge rounds. Cancellation therefore
//! never interrupts a transfer mid-flight: everything already charged stays
//! charged (honest accounting of abandoned work), scratchpad buffers
//! unwind through `NearArray`'s RAII release, and the arena is immediately
//! reusable by the next job — asserted by the cancellation proptests.
//!
//! Deadlines are expressed in *charged virtual units* (far + near bytes
//! booked in the cost ledger since the token was installed), not wall
//! clock, so a deadline trips at a deterministic, replayable point in the
//! job's execution.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const NO_BUDGET: u64 = u64::MAX;

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Charged-unit budget before the token self-cancels; `NO_BUDGET` when
    /// the token only cancels explicitly.
    unit_budget: AtomicU64,
}

/// A cloneable cancellation handle shared between a job's submitter and the
/// runtime. Cheap to clone; all clones observe the same state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that cancels only when [`Self::cancel`] is called.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                unit_budget: AtomicU64::new(NO_BUDGET),
            }),
        }
    }

    /// A token that additionally self-cancels once the owning job has
    /// charged `units` far+near bytes since the token was installed — the
    /// deterministic deadline used by the service layer.
    pub fn with_unit_budget(units: u64) -> Self {
        let t = Self::new();
        t.inner.unit_budget.store(units, Ordering::Relaxed);
        t
    }

    /// Request cancellation. Idempotent; takes effect at the job's next
    /// phase-boundary checkpoint.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has cancellation been requested (or a budget tripped)?
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The charged-unit budget, if one is set.
    pub fn unit_budget(&self) -> Option<u64> {
        match self.inner.unit_budget.load(Ordering::Relaxed) {
            NO_BUDGET => None,
            b => Some(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn budget_is_visible() {
        assert_eq!(CancelToken::new().unit_budget(), None);
        assert_eq!(
            CancelToken::with_unit_budget(1024).unit_budget(),
            Some(1024)
        );
    }
}
