//! Deterministic fault injection for the two-level runtime.
//!
//! A production two-level memory does not fail cleanly: scratchpad
//! allocations hit transient pressure, far↔near transfers time out or
//! deliver corrupt payloads, and DMA engines abort in-flight issues. The
//! paper's algorithms are *provably correct under any memory regime*
//! (§IV-D falls back to sub-splitting and DRAM-direct merging when buckets
//! outgrow the scratchpad); this module lets tests and benchmarks exercise
//! that robustness deterministically.
//!
//! A [`FaultPlan`] describes *what* may fail (per-operation-class
//! probabilities in permille, plus explicit "fail the k-th op" triggers)
//! and is installed on a [`crate::TwoLevel`] as a [`FaultInjector`] — the
//! runtime consults it on every hooked operation. Decisions are pure
//! functions of `(seed, op class, op index)`: with a sequential execution
//! the fault sequence is exactly reproducible from the seed, and under
//! host parallelism the *multiset* of decisions per class is preserved
//! (only their interleaving varies).
//!
//! Fault semantics are honest about traffic: an injected transfer failure
//! models a payload that moved and was then discarded, so the aborted
//! attempt is still charged to the [`tlmm_model::CostLedger`] — degraded
//! runs can only cost *more* than clean runs, never less. See DESIGN.md §9
//! for the full degradation ladder.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Operation classes a [`FaultPlan`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOp {
    /// A near (scratchpad) allocation — the modified `malloc` of §VI-B.2
    /// under transient pressure.
    NearAlloc,
    /// A bulk DRAM → scratchpad transfer.
    FarToNear,
    /// A bulk scratchpad → DRAM transfer.
    NearToFar,
    /// A far-memory ↔ cache staging stream (run formation, buffer refills).
    FarStage,
    /// A near-memory ↔ cache staging stream.
    NearStage,
    /// A background DMA issue (aborted in flight).
    DmaIssue,
}

impl FaultOp {
    /// Every operation class, in [`Self::index`] order.
    pub const ALL: [FaultOp; 6] = [
        FaultOp::NearAlloc,
        FaultOp::FarToNear,
        FaultOp::NearToFar,
        FaultOp::FarStage,
        FaultOp::NearStage,
        FaultOp::DmaIssue,
    ];

    /// Stable short name (telemetry counters, artifacts).
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::NearAlloc => "near_alloc",
            FaultOp::FarToNear => "far_to_near",
            FaultOp::NearToFar => "near_to_far",
            FaultOp::FarStage => "far_stage",
            FaultOp::NearStage => "near_stage",
            FaultOp::DmaIssue => "dma_issue",
        }
    }

    /// Dense index into per-class counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultOp::NearAlloc => 0,
            FaultOp::FarToNear => 1,
            FaultOp::NearToFar => 2,
            FaultOp::FarStage => 3,
            FaultOp::NearStage => 4,
            FaultOp::DmaIssue => 5,
        }
    }

    /// Does this class move data (and therefore admit *delay* faults)?
    pub fn is_transfer(self) -> bool {
        !matches!(self, FaultOp::NearAlloc)
    }

    fn fail_permille(self, plan: &FaultPlan) -> u32 {
        match self {
            FaultOp::NearAlloc => plan.near_alloc_fail_permille,
            FaultOp::FarToNear | FaultOp::NearToFar => plan.transfer_fail_permille,
            FaultOp::FarStage | FaultOp::NearStage => plan.stage_fail_permille,
            FaultOp::DmaIssue => plan.dma_abort_permille,
        }
    }
}

/// What happened to an operation the injector examined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The operation failed outright (payload lost, allocation refused,
    /// DMA issue aborted).
    Fail,
    /// The transfer completed but needed a link-level retransmission —
    /// extra traffic, no error surfaced.
    Delay,
}

/// One injected fault, for inspection and artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The operation class hit.
    pub op: FaultOp,
    /// Fail or delay.
    pub kind: FaultKind,
    /// 0-based index of the operation within its class.
    pub index: u64,
}

/// Environment variable holding the default fault seed; when set,
/// [`FaultPlan::from_env`] returns the mixed-profile plan
/// [`FaultPlan::seeded`] built from it.
pub const FAULT_SEED_ENV: &str = "TLMM_FAULT_SEED";

/// A deterministic description of which operations fail.
///
/// Probabilities are expressed in permille (0–1000). Whether the k-th
/// operation of a class faults is a pure function of
/// `(seed, class, k)` — no global RNG state, no wall clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-operation decision hash.
    pub seed: u64,
    /// Permille chance a [`FaultOp::NearAlloc`] is refused.
    pub near_alloc_fail_permille: u32,
    /// Permille chance a bulk far↔near transfer aborts.
    pub transfer_fail_permille: u32,
    /// Permille chance a cache staging stream aborts.
    pub stage_fail_permille: u32,
    /// Permille chance a transfer-class op is *delayed* (retransmitted)
    /// rather than failed.
    pub transfer_delay_permille: u32,
    /// Permille chance a DMA issue is aborted in flight.
    pub dma_abort_permille: u32,
    /// Explicit `(class, k)` pairs that always fail, independent of the
    /// probabilistic rolls ("fail the k-th `near_alloc`").
    pub fail_nth: Vec<(FaultOp, u64)>,
    /// Upper bound on total *failures* injected (delays excluded); `None`
    /// is unbounded. A budget guarantees overall progress even under
    /// pathological probabilities.
    pub max_faults: Option<u64>,
}

impl FaultPlan {
    /// A plan that never fires (useful as a sweep baseline).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            near_alloc_fail_permille: 0,
            transfer_fail_permille: 0,
            stage_fail_permille: 0,
            transfer_delay_permille: 0,
            dma_abort_permille: 0,
            fail_nth: Vec::new(),
            max_faults: None,
        }
    }

    /// The standard mixed fault profile: moderate allocation pressure,
    /// occasional transfer aborts and delays, frequent DMA aborts, with a
    /// progress-guaranteeing budget. This is the profile behind
    /// [`FAULT_SEED_ENV`] and the fault-matrix sweeps.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            near_alloc_fail_permille: 40,
            transfer_fail_permille: 15,
            stage_fail_permille: 5,
            transfer_delay_permille: 10,
            dma_abort_permille: 150,
            fail_nth: Vec::new(),
            max_faults: Some(512),
        }
    }

    /// Build the seeded profile from [`FAULT_SEED_ENV`] if it is set to a
    /// parsable integer.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var(FAULT_SEED_ENV).ok()?;
        raw.trim().parse::<u64>().ok().map(Self::seeded)
    }

    /// Add an explicit "fail the k-th op of this class" trigger.
    pub fn fail_kth(mut self, op: FaultOp, k: u64) -> Self {
        self.fail_nth.push((op, k));
        self
    }

    /// Does this plan ever fire?
    pub fn is_active(&self) -> bool {
        !self.fail_nth.is_empty()
            || FaultOp::ALL.iter().any(|op| op.fail_permille(self) > 0)
            || self.transfer_delay_permille > 0
    }
}

/// The decision the injector hands back for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Execute normally.
    Proceed,
    /// The operation fails; the payload (if any) moved and was lost. The
    /// carried value is the op's 0-based index within its class.
    Fail(u64),
    /// The transfer completes after a retransmission (charge it twice).
    Delay(u64),
}

use crate::backoff::splitmix64;

fn roll(seed: u64, op: FaultOp, k: u64, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(((op.index() as u64) << 56) ^ k ^ (salt << 48))) % 1000
}

thread_local! {
    static SUPPRESS_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Are fault decisions suppressed on this thread (see
/// [`with_faults_suppressed`])?
pub fn faults_suppressed() -> bool {
    SUPPRESS_DEPTH.with(|d| d.get() > 0)
}

/// Run `f` with fault injection disabled on this thread — the last rung of
/// every degradation ladder, guaranteeing forward progress after bounded
/// retries. Nestable.
pub fn with_faults_suppressed<R>(f: impl FnOnce() -> R) -> R {
    SUPPRESS_DEPTH.with(|d| d.set(d.get() + 1));
    let r = f();
    SUPPRESS_DEPTH.with(|d| d.set(d.get() - 1));
    r
}

/// Runtime state of an installed [`FaultPlan`]: per-class operation
/// counters, the injected-fault budget, and an event log.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    op_counts: [AtomicU64; 6],
    injected: AtomicU64,
    delayed: AtomicU64,
    log: Mutex<Vec<FaultEvent>>,
}

impl FaultInjector {
    /// Fresh state for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            op_counts: Default::default(),
            injected: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of the next operation of class `op`, consuming one
    /// index of that class.
    pub fn decide(&self, op: FaultOp) -> FaultDecision {
        let k = self.op_counts[op.index()].fetch_add(1, Ordering::Relaxed);
        let explicit = self.plan.fail_nth.iter().any(|&(o, i)| o == op && i == k);
        let budget_ok = self
            .plan
            .max_faults
            .map(|m| self.injected.load(Ordering::Relaxed) < m)
            .unwrap_or(true);
        if budget_ok
            && (explicit || roll(self.plan.seed, op, k, 1) < op.fail_permille(&self.plan) as u64)
        {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.log.lock().push(FaultEvent {
                op,
                kind: FaultKind::Fail,
                index: k,
            });
            return FaultDecision::Fail(k);
        }
        if op.is_transfer()
            && roll(self.plan.seed, op, k, 2) < self.plan.transfer_delay_permille as u64
        {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            self.log.lock().push(FaultEvent {
                op,
                kind: FaultKind::Delay,
                index: k,
            });
            return FaultDecision::Delay(k);
        }
        FaultDecision::Proceed
    }

    /// Failures injected so far (delays excluded).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Delays injected so far.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Operations of class `op` examined so far.
    pub fn op_count(&self, op: FaultOp) -> u64 {
        self.op_counts[op.index()].load(Ordering::Relaxed)
    }

    /// Snapshot of every injected event, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.log.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_seed_and_index() {
        let a = FaultInjector::new(FaultPlan::seeded(7));
        let b = FaultInjector::new(FaultPlan::seeded(7));
        let da: Vec<FaultDecision> = (0..500).map(|_| a.decide(FaultOp::FarToNear)).collect();
        let db: Vec<FaultDecision> = (0..500).map(|_| b.decide(FaultOp::FarToNear)).collect();
        assert_eq!(da, db);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(FaultPlan::seeded(1));
        let b = FaultInjector::new(FaultPlan::seeded(2));
        let da: Vec<FaultDecision> = (0..2000).map(|_| a.decide(FaultOp::NearAlloc)).collect();
        let db: Vec<FaultDecision> = (0..2000).map(|_| b.decide(FaultOp::NearAlloc)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn explicit_kth_failure_fires() {
        let plan = FaultPlan::none(0).fail_kth(FaultOp::NearAlloc, 2);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(FaultOp::NearAlloc), FaultDecision::Proceed);
        assert_eq!(inj.decide(FaultOp::NearAlloc), FaultDecision::Proceed);
        assert_eq!(inj.decide(FaultOp::NearAlloc), FaultDecision::Fail(2));
        assert_eq!(inj.decide(FaultOp::NearAlloc), FaultDecision::Proceed);
        assert_eq!(inj.injected(), 1);
        assert_eq!(inj.op_count(FaultOp::NearAlloc), 4);
    }

    #[test]
    fn budget_caps_failures() {
        let mut plan = FaultPlan::seeded(3);
        plan.near_alloc_fail_permille = 1000; // every alloc would fail...
        plan.max_faults = Some(5); // ...but only 5 are allowed
        let inj = FaultInjector::new(plan);
        let fails = (0..100)
            .filter(|_| matches!(inj.decide(FaultOp::NearAlloc), FaultDecision::Fail(_)))
            .count();
        assert_eq!(fails, 5);
    }

    #[test]
    fn probabilities_are_roughly_respected() {
        let mut plan = FaultPlan::none(11);
        plan.transfer_fail_permille = 100; // 10 %
        let inj = FaultInjector::new(plan);
        let fails = (0..10_000)
            .filter(|_| matches!(inj.decide(FaultOp::NearToFar), FaultDecision::Fail(_)))
            .count();
        assert!((500..2_000).contains(&fails), "fails = {fails}");
    }

    #[test]
    fn alloc_class_never_delays() {
        let mut plan = FaultPlan::none(5);
        plan.transfer_delay_permille = 1000;
        let inj = FaultInjector::new(plan);
        for _ in 0..200 {
            assert!(!matches!(
                inj.decide(FaultOp::NearAlloc),
                FaultDecision::Delay(_)
            ));
        }
        assert!(matches!(
            inj.decide(FaultOp::FarToNear),
            FaultDecision::Delay(_)
        ));
    }

    #[test]
    fn suppression_nests() {
        assert!(!faults_suppressed());
        with_faults_suppressed(|| {
            assert!(faults_suppressed());
            with_faults_suppressed(|| assert!(faults_suppressed()));
            assert!(faults_suppressed());
        });
        assert!(!faults_suppressed());
    }

    #[test]
    fn none_plan_is_inactive() {
        assert!(!FaultPlan::none(9).is_active());
        assert!(FaultPlan::seeded(9).is_active());
        assert!(FaultPlan::none(9)
            .fail_kth(FaultOp::DmaIssue, 0)
            .is_active());
    }
}
