//! Typed arrays living in one region of the two-level memory.

use crate::mem::TwoLevelInner;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// An array resident in **far memory** (conventional DRAM).
///
/// Far memory is arbitrarily large; allocation never fails. Algorithms reach
/// the contents through the charged staging methods on
/// [`crate::TwoLevel`]; the `*_uncharged` accessors exist for verification
/// (checking sortedness after an experiment) and must not appear on an
/// algorithm's data path.
#[derive(Debug)]
pub struct FarArray<T> {
    pub(crate) data: Vec<T>,
    // Kept so a far array pins its memory instance alive (and for future
    // same-instance assertions), mirroring NearArray.
    #[allow(dead_code)]
    pub(crate) owner: Arc<TwoLevelInner>,
}

impl<T: Copy> FarArray<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<T>()) as u64
    }

    /// Borrow the contents **without charging** any transfer.
    ///
    /// Verification only (assertions, test oracles). Using this inside an
    /// algorithm under measurement silently falsifies the ledger.
    pub fn as_slice_uncharged(&self) -> &[T] {
        &self.data
    }

    /// Mutable uncharged access; same caveat as
    /// [`Self::as_slice_uncharged`].
    pub fn as_mut_slice_uncharged(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the array, returning the backing vector (uncharged; for
    /// harvesting results after the measured region ends).
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

/// An array resident in **near memory** (the scratchpad).
///
/// Near capacity is limited to the model's `M`; allocations are checked and
/// the bytes are returned to the scratchpad when the array drops.
#[derive(Debug)]
pub struct NearArray<T> {
    pub(crate) data: Vec<T>,
    /// Bytes this allocation holds against the scratchpad budget.
    pub(crate) reserved_bytes: u64,
    pub(crate) owner: Arc<TwoLevelInner>,
}

impl<T: Copy> NearArray<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.reserved_bytes
    }

    /// Borrow the contents **without charging**; verification only.
    pub fn as_slice_uncharged(&self) -> &[T] {
        &self.data
    }

    /// Mutable uncharged access; verification only.
    pub fn as_mut_slice_uncharged(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for NearArray<T> {
    fn drop(&mut self) {
        self.owner
            .near_used
            .fetch_sub(self.reserved_bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use crate::TwoLevel;
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    #[test]
    fn far_array_basics() {
        let tl = tl();
        let a = tl.far_from_vec(vec![3u32, 1, 2]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.bytes(), 12);
        assert_eq!(a.as_slice_uncharged(), &[3, 1, 2]);
        assert_eq!(a.into_vec(), vec![3, 1, 2]);
    }

    #[test]
    fn near_drop_returns_capacity() {
        let tl = tl();
        let before = tl.near_used_bytes();
        {
            let _a = tl.near_alloc::<u64>(1024).unwrap();
            assert_eq!(tl.near_used_bytes(), before + 8192);
        }
        assert_eq!(tl.near_used_bytes(), before);
    }

    #[test]
    fn uncharged_access_charges_nothing() {
        let tl = tl();
        let mut a = tl.near_alloc::<u64>(16).unwrap();
        a.as_mut_slice_uncharged()[0] = 42;
        assert_eq!(a.as_slice_uncharged()[0], 42);
        assert_eq!(tl.ledger().snapshot().total_blocks(), 0);
    }
}
