//! Generation-based linear staging arena with an offset allocator and
//! pending-transfer retirement.
//!
//! The ad-hoc buffer paths moved far↔near bytes through exclusive
//! [`crate::NearArray`]s: every gather owned its destination, so a chunk's
//! ingest could never proceed while the previous chunk was being sorted —
//! the overlap promised by §VI-B/§VII of the paper was not even
//! *representable*. This module replaces that with the staging-arena
//! design used by GPU upload heaps (lahar's `StagingArena`, lazy_vulkan's
//! allocator with `pending_transfers`/`pending_frees`):
//!
//! * [`OffsetAlloc`] — a first-fit offset allocator over a linear byte
//!   range with free-list coalescing. The arena's address space models
//!   scratchpad placement; the backing store is host memory, consistent
//!   with the rest of the runtime (what makes near memory "near" is the
//!   accounting, not the silicon).
//! * [`StagingArena`] — a self-growing arena carved out of scratchpad
//!   capacity. Growth is **exact-fit** (it reserves exactly the bytes the
//!   failing allocation needs, never a doubling) so `near_used_bytes`
//!   stays byte-identical to what direct `near_alloc` calls would have
//!   reserved — admission control and capacity errors see no difference.
//!   Growth beyond the configured near cap `M` is rejected up front with
//!   the typed [`tlmm_model::params::ParamError::StagingBeyondNearCap`].
//! * **Generations** — every allocation gets a fresh generation number,
//!   never reused. A transfer issued against a dropped buffer's
//!   generation fails with [`SpError::StaleGeneration`] instead of
//!   silently writing into whoever reused the offset.
//! * **Pending transfers** — every far↔near movement is issued as a
//!   [`TransferId`] and later retired. A buffer dropped while a transfer
//!   is in flight lands on the pending-free list and its offsets return
//!   to the free list only when the last transfer retires; reading a
//!   destination before retirement panics (an always-on invariant, not a
//!   debug assert).
//!
//! The capacity reserved from the scratchpad is returned when the last
//! arena handle drops (RAII, like `NearArray`), so leak checks that
//! assert `near_used_bytes() == 0` after a job keep working unchanged.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use tlmm_model::ledger::Dir;

use crate::error::SpError;
use crate::fault::{FaultDecision, FaultOp};
use crate::mem::TwoLevel;

// ---------------------------------------------------------------------
// Offset allocator
// ---------------------------------------------------------------------

/// First-fit offset allocator over a linear `0..capacity` byte range.
///
/// Free blocks are kept sorted by offset and coalesced on free, so a
/// fully drained arena always collapses back to one block and reuse is
/// deterministic: the same alloc/free sequence always yields the same
/// offsets (the schedule-fuzz tests rely on this).
#[derive(Debug, Default)]
pub struct OffsetAlloc {
    capacity: u64,
    used: u64,
    /// Sorted, non-adjacent `(offset, len)` free blocks.
    free: Vec<(u64, u64)>,
}

impl OffsetAlloc {
    /// An empty allocator (capacity 0 — every alloc needs a grow first).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total byte range managed.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Append `bytes` of fresh capacity at the end of the range,
    /// coalescing with a trailing free block if one exists.
    pub fn grow(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let start = self.capacity;
        self.capacity += bytes;
        self.release(start, bytes);
    }

    /// Allocate `bytes`, returning the placed offset, or `None` if no
    /// free block fits (caller decides whether to grow).
    pub fn alloc(&mut self, bytes: u64) -> Option<u64> {
        if bytes == 0 {
            // Zero-sized allocations take no space but still get a
            // distinct conceptual slot; place them at the current end.
            return Some(self.capacity);
        }
        let ix = self.free.iter().position(|&(_, len)| len >= bytes)?;
        let (off, len) = self.free[ix];
        if len == bytes {
            self.free.remove(ix);
        } else {
            self.free[ix] = (off + bytes, len - bytes);
        }
        self.used += bytes;
        Some(off)
    }

    /// Return `bytes` at `offset` to the free list, coalescing with
    /// adjacent free blocks.
    pub fn free(&mut self, offset: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        debug_assert!(self.used >= bytes, "free of bytes never allocated");
        self.used -= bytes;
        self.release(offset, bytes);
    }

    fn release(&mut self, offset: u64, bytes: u64) {
        let ix = self
            .free
            .iter()
            .position(|&(off, _)| off > offset)
            .unwrap_or(self.free.len());
        self.free.insert(ix, (offset, bytes));
        // Coalesce with the successor, then the predecessor.
        if ix + 1 < self.free.len() && self.free[ix].0 + self.free[ix].1 == self.free[ix + 1].0 {
            self.free[ix].1 += self.free[ix + 1].1;
            self.free.remove(ix + 1);
        }
        if ix > 0 && self.free[ix - 1].0 + self.free[ix - 1].1 == self.free[ix].0 {
            self.free[ix - 1].1 += self.free[ix].1;
            self.free.remove(ix);
        }
    }

    /// Largest single free block (0 when the free list is empty).
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|&(_, len)| len).max().unwrap_or(0)
    }

    /// Number of free blocks (fragmentation probe for tests).
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }
}

// ---------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------

/// Identifier of one pending (or already retired) arena transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(u64);

impl TransferId {
    /// The raw id (1-based issue order).
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct LiveSlot {
    offset: u64,
    bytes: u64,
    /// Transfers issued against this generation and not yet retired.
    inflight: u32,
    /// The owning buffer was dropped while transfers were in flight; the
    /// slot frees when the last one retires.
    free_deferred: bool,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    generation: Option<u64>,
    dir: Dir,
    bytes: u64,
}

/// Cumulative arena statistics — cheap counters, snapshot with
/// [`StagingArena::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Allocations served (including after growth).
    pub allocs: u64,
    /// Exact-fit growth steps taken.
    pub grows: u64,
    /// Slots freed immediately on drop.
    pub frees: u64,
    /// Slots whose free was deferred behind an in-flight transfer.
    pub deferred_frees: u64,
    /// Pending transfers issued (slot-bound and external).
    pub issued: u64,
    /// Pending transfers retired.
    pub retired: u64,
    /// Synchronous transfers recorded via
    /// [`StagingArena::note_sync_transfer`] (issued and retired in one
    /// step — by definition never overlapped).
    pub sync_transfers: u64,
    /// Peak bytes allocated inside the arena.
    pub peak_used: u64,
    /// Peak capacity reserved from the scratchpad.
    pub peak_capacity: u64,
}

impl ArenaStats {
    /// Fraction of all recorded transfers that went through the pending
    /// (overlappable) path rather than the synchronous one. The flow
    /// engine reports *realized* overlap; this reports *exposed* overlap.
    pub fn overlap_fraction(&self) -> f64 {
        let total = self.retired + self.sync_transfers;
        if total == 0 {
            return 0.0;
        }
        self.retired as f64 / total as f64
    }
}

#[derive(Debug, Default)]
struct ArenaState {
    alloc: OffsetAlloc,
    live: BTreeMap<u64, LiveSlot>,
    pending: BTreeMap<u64, Pending>,
    next_gen: u64,
    next_transfer: u64,
    stats: ArenaStats,
}

#[derive(Debug)]
struct ArenaInner {
    tl: TwoLevel,
    state: Mutex<ArenaState>,
}

impl Drop for ArenaInner {
    fn drop(&mut self) {
        // Return the whole reservation; live slots (there should be none
        // — buffers hold an Arc to the inner, so they outlive us only by
        // bug) are covered by the capacity release.
        let cap = self.state.get_mut().alloc.capacity();
        if cap > 0 {
            self.tl.release_near_bytes(cap);
        }
    }
}

/// A self-growing, generation-based staging arena carved out of
/// scratchpad capacity. Cheap to clone (a handle); the underlying
/// reservation is released when the last handle *and* the last
/// [`ArenaBuf`] drop.
#[derive(Debug, Clone)]
pub struct StagingArena {
    inner: Arc<ArenaInner>,
}

impl StagingArena {
    /// An empty arena on `tl` — no capacity reserved until the first
    /// allocation.
    pub fn new(tl: &TwoLevel) -> Self {
        Self {
            inner: Arc::new(ArenaInner {
                tl: tl.clone(),
                state: Mutex::new(ArenaState::default()),
            }),
        }
    }

    /// An arena pre-grown to `bytes` of capacity.
    pub fn with_capacity(tl: &TwoLevel, bytes: u64) -> Result<Self, SpError> {
        let arena = Self::new(tl);
        arena.grow(bytes)?;
        Ok(arena)
    }

    /// Grow the arena by exactly `bytes`, validating against the near
    /// cap and reserving scratchpad capacity.
    fn grow(&self, bytes: u64) -> Result<(), SpError> {
        let mut st = self.inner.state.lock();
        let total = st.alloc.capacity() + bytes;
        self.inner
            .tl
            .params()
            .check_staging(total)
            .map_err(SpError::BadParams)?;
        self.inner.tl.reserve_near_bytes(bytes)?;
        st.alloc.grow(bytes);
        st.stats.grows += 1;
        st.stats.peak_capacity = st.stats.peak_capacity.max(st.alloc.capacity());
        Ok(())
    }

    /// Allocate a `len`-element staging buffer, growing the arena
    /// exact-fit when no free block is large enough. Subject to the same
    /// `NearAlloc` fault class as [`TwoLevel::near_alloc`], so existing
    /// degradation ladders (chunk shrinking, alloc retries) behave
    /// identically over arena-backed buffers.
    pub fn alloc_array<T: Copy + Default>(&self, len: usize) -> Result<ArenaBuf<T>, SpError> {
        if let FaultDecision::Fail(index) = self.inner.tl.preflight(FaultOp::NearAlloc) {
            return Err(SpError::FaultInjected {
                op: FaultOp::NearAlloc,
                index,
            });
        }
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        {
            let st = self.inner.state.lock();
            if bytes > 0 && st.alloc.largest_free() < bytes {
                let total = st.alloc.capacity() + bytes;
                drop(st);
                // Validate + reserve outside the first lock scope; grow
                // re-locks. A concurrent grow only adds capacity, which
                // never invalidates this one.
                self.inner
                    .tl
                    .params()
                    .check_staging(total)
                    .map_err(SpError::BadParams)?;
                self.grow(bytes)?;
            }
        }
        let mut st = self.inner.state.lock();
        let offset = match st.alloc.alloc(bytes) {
            Some(off) => off,
            None => {
                // A concurrent allocation raced us to the grown block;
                // grow again under the same validation.
                drop(st);
                self.grow(bytes)?;
                st = self.inner.state.lock();
                st.alloc
                    .alloc(bytes)
                    .expect("exact-fit growth must satisfy the allocation")
            }
        };
        let generation = st.next_gen;
        st.next_gen += 1;
        st.live.insert(
            generation,
            LiveSlot {
                offset,
                bytes,
                inflight: 0,
                free_deferred: false,
            },
        );
        st.stats.allocs += 1;
        st.stats.peak_used = st.stats.peak_used.max(st.alloc.used());
        if let Some(pct) = (st.alloc.used() * 100).checked_div(st.alloc.capacity()) {
            tlmm_telemetry::histogram!("arena.occupancy_pct").record(pct);
        }
        tlmm_telemetry::counter!("arena.alloc_bytes").add(bytes);
        drop(st);
        Ok(ArenaBuf {
            data: vec![T::default(); len],
            generation,
            inner: Arc::clone(&self.inner),
        })
    }

    /// Issue a pending transfer against a live generation. Fails with
    /// [`SpError::StaleGeneration`] when the generation has been freed —
    /// the aliasing bug this arena exists to make impossible.
    pub fn issue_transfer(
        &self,
        generation: u64,
        dir: Dir,
        bytes: u64,
    ) -> Result<TransferId, SpError> {
        let mut st = self.inner.state.lock();
        match st.live.get_mut(&generation) {
            Some(slot) if !slot.free_deferred => slot.inflight += 1,
            _ => return Err(SpError::StaleGeneration { generation }),
        }
        Ok(Self::record_issue(&mut st, Some(generation), dir, bytes))
    }

    /// Issue a slot-less pending transfer (the [`crate::dma::DmaEngine`]
    /// path, where the destination is an exclusive array rather than an
    /// arena slot).
    pub fn issue_external(&self, dir: Dir, bytes: u64) -> TransferId {
        let mut st = self.inner.state.lock();
        Self::record_issue(&mut st, None, dir, bytes)
    }

    fn record_issue(
        st: &mut ArenaState,
        generation: Option<u64>,
        dir: Dir,
        bytes: u64,
    ) -> TransferId {
        st.next_transfer += 1;
        let id = st.next_transfer;
        st.pending.insert(
            id,
            Pending {
                generation,
                dir,
                bytes,
            },
        );
        st.stats.issued += 1;
        tlmm_telemetry::counter!("arena.transfer_issued").incr();
        TransferId(id)
    }

    /// Retire a pending transfer. Exactly-once: a second retire of the
    /// same id (or a retire of an id never issued) fails with
    /// [`SpError::TransferNotPending`]. Retiring the last in-flight
    /// transfer of a dropped buffer performs its deferred free.
    pub fn retire(&self, id: TransferId) -> Result<(), SpError> {
        let mut st = self.inner.state.lock();
        let Some(p) = st.pending.remove(&id.0) else {
            return Err(SpError::TransferNotPending { id: id.0 });
        };
        if let Some(generation) = p.generation {
            let slot = st
                .live
                .get_mut(&generation)
                .expect("live slot outlives its pending transfers");
            slot.inflight -= 1;
            if slot.free_deferred && slot.inflight == 0 {
                let slot = st.live.remove(&generation).expect("just looked up");
                st.alloc.free(slot.offset, slot.bytes);
                st.stats.frees += 1;
            }
        }
        st.stats.retired += 1;
        tlmm_telemetry::counter!("arena.transfer_retired").incr();
        drop(st);
        if tlmm_telemetry::flight::enabled() {
            let flags = match p.dir {
                Dir::Read => 0,
                Dir::Write => tlmm_telemetry::flight::FLAG_WRITE,
            };
            tlmm_telemetry::flight::arena_retire_event(id.0, p.bytes, flags);
        }
        Ok(())
    }

    /// Record a transfer that was performed synchronously (charged and
    /// copied inline): issued and retired in one step. Keeps the arena's
    /// transfer ledger complete for paths that cannot overlap — Phase 2
    /// gathers, oblivious ingest/writeback, DMA sync fallbacks.
    pub fn note_sync_transfer(&self, dir: Dir, bytes: u64) {
        let _ = dir;
        let mut st = self.inner.state.lock();
        st.stats.sync_transfers += 1;
        let _ = bytes;
        tlmm_telemetry::counter!("arena.sync_transfer").incr();
        drop(st);
    }

    /// Bytes of scratchpad capacity this arena has reserved.
    pub fn capacity_bytes(&self) -> u64 {
        self.inner.state.lock().alloc.capacity()
    }

    /// Bytes currently allocated to live buffers.
    pub fn used_bytes(&self) -> u64 {
        self.inner.state.lock().alloc.used()
    }

    /// Live (not yet dropped, or drop-deferred) allocations.
    pub fn live_allocations(&self) -> usize {
        self.inner.state.lock().live.len()
    }

    /// Transfers issued and not yet retired.
    pub fn pending_transfers(&self) -> usize {
        self.inner.state.lock().pending.len()
    }

    /// Snapshot the cumulative statistics.
    pub fn stats(&self) -> ArenaStats {
        self.inner.state.lock().stats
    }

    fn release_slot(&self, generation: u64) {
        let mut st = self.inner.state.lock();
        let Some(slot) = st.live.get_mut(&generation) else {
            debug_assert!(false, "double release of generation {generation}");
            return;
        };
        if slot.inflight > 0 {
            slot.free_deferred = true;
            st.stats.deferred_frees += 1;
            tlmm_telemetry::counter!("arena.deferred_free").incr();
            return;
        }
        let slot = st.live.remove(&generation).expect("just looked up");
        st.alloc.free(slot.offset, slot.bytes);
        st.stats.frees += 1;
    }

    fn assert_settled(&self, generation: u64, what: &str) {
        let st = self.inner.state.lock();
        let slot = st
            .live
            .get(&generation)
            .expect("accessing a buffer that is still alive");
        assert!(
            slot.inflight == 0,
            "read-before-retire: {what} of arena generation {generation} \
             with {} transfer(s) still in flight",
            slot.inflight
        );
    }
}

// ---------------------------------------------------------------------
// ArenaBuf
// ---------------------------------------------------------------------

/// A typed staging buffer inside a [`StagingArena`].
///
/// Plain accessors enforce the read-before-retire invariant: touching
/// the contents while a pending transfer targets this buffer panics.
/// The transfer engine itself writes through [`ArenaBuf::transfer_fill`]
/// / [`ArenaBuf::transfer_slice_mut`], which bypass the guard (the
/// in-flight transfer *is* the writer).
#[derive(Debug)]
pub struct ArenaBuf<T> {
    data: Vec<T>,
    generation: u64,
    inner: Arc<ArenaInner>,
}

impl<T: Copy + Default> ArenaBuf<T> {
    /// Elements in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// This buffer's never-reused generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The arena this buffer lives in.
    pub fn arena(&self) -> StagingArena {
        StagingArena {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Issue a pending transfer targeting this buffer.
    pub fn issue(&self, dir: Dir, bytes: u64) -> Result<TransferId, SpError> {
        self.arena().issue_transfer(self.generation, dir, bytes)
    }

    /// Read access without a ledger charge (mirrors
    /// [`crate::NearArray`]'s accessor). Panics if a pending transfer
    /// still targets this buffer — the read-before-retire guard.
    pub fn as_slice_uncharged(&self) -> &[T] {
        self.arena().assert_settled(self.generation, "read");
        &self.data
    }

    /// Write access without a ledger charge. Panics if a pending
    /// transfer still targets this buffer.
    pub fn as_mut_slice_uncharged(&mut self) -> &mut [T] {
        self.arena().assert_settled(self.generation, "write");
        &mut self.data
    }

    /// The transfer engine's write path: copy `src` into the buffer
    /// starting at `at`, bypassing the read-before-retire guard (the
    /// pending transfer is the one doing the writing). No charges — the
    /// issuer charges at issue time.
    pub fn transfer_fill(&mut self, src: &[T], at: usize) {
        self.data[at..at + src.len()].copy_from_slice(src);
    }

    /// The transfer engine's read path for outbound (near→far) pending
    /// transfers: the raw contents, guard bypassed.
    pub fn transfer_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw contents for in-place compute that is itself the
    /// retiring writer (sorting a chunk the moment its ingest retired is
    /// *not* this — use [`Self::as_mut_slice_uncharged`] there so the
    /// guard fires on schedule bugs).
    pub fn transfer_slice_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for ArenaBuf<T> {
    fn drop(&mut self) {
        StagingArena {
            inner: Arc::clone(&self.inner),
        }
        .release_slot(self.generation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_model::params::ParamError;
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 3.0, 1 << 20, 64 << 10).unwrap())
    }

    #[test]
    fn offset_alloc_first_fit_and_coalesce() {
        let mut a = OffsetAlloc::new();
        assert_eq!(a.alloc(64), None);
        a.grow(256);
        let x = a.alloc(64).unwrap();
        let y = a.alloc(64).unwrap();
        let z = a.alloc(64).unwrap();
        assert_eq!((x, y, z), (0, 64, 128));
        assert_eq!(a.used(), 192);
        // Free the middle, then the first: blocks coalesce into 0..128.
        a.free(y, 64);
        a.free(x, 64);
        assert_eq!(a.free_blocks(), 2); // [0..128) and [192..256)
        assert_eq!(a.largest_free(), 128);
        // First-fit places a 128-byte alloc back at 0.
        assert_eq!(a.alloc(128).unwrap(), 0);
        // Drain everything: one block again.
        a.free(z, 64);
        a.free(0, 128);
        assert_eq!(a.free_blocks(), 1);
        assert_eq!(a.largest_free(), 256);
        assert_eq!(a.used(), 0);
    }

    #[test]
    fn offset_alloc_coalesces_across_grow_boundary() {
        let mut a = OffsetAlloc::new();
        a.grow(64);
        let x = a.alloc(64).unwrap();
        a.grow(64);
        a.free(x, 64);
        // The freed head merges with the grown tail.
        assert_eq!(a.free_blocks(), 1);
        assert_eq!(a.largest_free(), 128);
    }

    #[test]
    fn arena_reserves_and_releases_scratchpad_capacity() {
        let tl = tl();
        {
            let arena = StagingArena::new(&tl);
            let a = arena.alloc_array::<u64>(100).unwrap();
            assert_eq!(tl.near_used_bytes(), 800);
            assert_eq!(arena.capacity_bytes(), 800);
            drop(a);
            // Freed slot returns to the free list; capacity is retained
            // for reuse, so the reservation stands…
            assert_eq!(arena.used_bytes(), 0);
            assert_eq!(tl.near_used_bytes(), 800);
            // …and reuse does not grow.
            let b = arena.alloc_array::<u64>(100).unwrap();
            assert_eq!(tl.near_used_bytes(), 800);
            assert_eq!(arena.stats().grows, 1);
            drop(b);
        }
        // …until the arena itself drops.
        assert_eq!(tl.near_used_bytes(), 0);
    }

    #[test]
    fn generations_are_never_reused_even_when_offsets_are() {
        let tl = tl();
        let arena = StagingArena::new(&tl);
        let a = arena.alloc_array::<u64>(8).unwrap();
        let g0 = a.generation();
        drop(a);
        let b = arena.alloc_array::<u64>(8).unwrap();
        assert_ne!(b.generation(), g0);
        // The dead generation is unusable.
        let err = arena.issue_transfer(g0, Dir::Read, 64).unwrap_err();
        assert_eq!(err, SpError::StaleGeneration { generation: g0 });
    }

    #[test]
    fn retire_is_exactly_once() {
        let tl = tl();
        let arena = StagingArena::new(&tl);
        let buf = arena.alloc_array::<u64>(8).unwrap();
        let id = buf.issue(Dir::Read, 64).unwrap();
        arena.retire(id).unwrap();
        let err = arena.retire(id).unwrap_err();
        assert_eq!(err, SpError::TransferNotPending { id: id.raw() });
        // Retiring an id that was never issued is the same error.
        let err = arena.retire(TransferId(999)).unwrap_err();
        assert_eq!(err, SpError::TransferNotPending { id: 999 });
    }

    #[test]
    #[should_panic(expected = "read-before-retire")]
    fn reading_a_pending_destination_panics() {
        let tl = tl();
        let arena = StagingArena::new(&tl);
        let buf = arena.alloc_array::<u64>(8).unwrap();
        let _id = buf.issue(Dir::Read, 64).unwrap();
        let _ = buf.as_slice_uncharged();
    }

    #[test]
    fn drop_with_inflight_transfer_defers_the_free_until_retire() {
        let tl = tl();
        let arena = StagingArena::new(&tl);
        let buf = arena.alloc_array::<u64>(8).unwrap();
        let id = buf.issue(Dir::Read, 64).unwrap();
        drop(buf);
        // Offsets are NOT reusable yet: the in-flight transfer still
        // owns them.
        assert_eq!(arena.used_bytes(), 64);
        assert_eq!(arena.live_allocations(), 1);
        assert_eq!(arena.stats().deferred_frees, 1);
        arena.retire(id).unwrap();
        assert_eq!(arena.used_bytes(), 0);
        assert_eq!(arena.live_allocations(), 0);
        assert_eq!(arena.stats().frees, 1);
    }

    #[test]
    fn issue_against_drop_deferred_generation_is_stale() {
        let tl = tl();
        let arena = StagingArena::new(&tl);
        let buf = arena.alloc_array::<u64>(8).unwrap();
        let g = buf.generation();
        let id = buf.issue(Dir::Read, 64).unwrap();
        drop(buf);
        let err = arena.issue_transfer(g, Dir::Read, 64).unwrap_err();
        assert_eq!(err, SpError::StaleGeneration { generation: g });
        arena.retire(id).unwrap();
    }

    #[test]
    fn growth_beyond_near_cap_is_typed() {
        let tl = tl();
        let arena = StagingArena::new(&tl);
        // M = 1 MiB; ask for 2 MiB of u64s.
        let err = arena.alloc_array::<u64>(1 << 18).unwrap_err();
        assert_eq!(
            err,
            SpError::BadParams(ParamError::StagingBeyondNearCap {
                requested: 2 << 20,
                cap: 1 << 20,
            })
        );
        // The failed growth reserved nothing.
        assert_eq!(tl.near_used_bytes(), 0);
        assert_eq!(arena.capacity_bytes(), 0);
    }

    #[test]
    fn growth_respects_other_near_tenants() {
        let tl = tl();
        // A direct near allocation holds most of the scratchpad.
        let _resident = tl.near_alloc::<u64>(120_000).unwrap(); // 960 KB
        let arena = StagingArena::new(&tl);
        // Staging validation passes (128 KB ≤ M) but the reservation
        // itself must fail: capacity is shared with the resident tenant.
        let err = arena.alloc_array::<u64>(16 << 10).unwrap_err();
        assert!(matches!(err, SpError::NearCapacityExceeded { .. }), "{err}");
        assert_eq!(arena.capacity_bytes(), 0);
    }

    #[test]
    fn transfer_fill_bypasses_guard_and_lands_bytes() {
        let tl = tl();
        let arena = StagingArena::new(&tl);
        let mut buf = arena.alloc_array::<u64>(4).unwrap();
        let id = buf.issue(Dir::Read, 32).unwrap();
        buf.transfer_fill(&[1, 2], 1);
        arena.retire(id).unwrap();
        assert_eq!(buf.as_slice_uncharged(), &[0, 1, 2, 0]);
    }

    #[test]
    fn stats_and_overlap_fraction() {
        let tl = tl();
        let arena = StagingArena::new(&tl);
        let buf = arena.alloc_array::<u64>(8).unwrap();
        let id = buf.issue(Dir::Read, 64).unwrap();
        arena.retire(id).unwrap();
        arena.note_sync_transfer(Dir::Write, 64);
        arena.note_sync_transfer(Dir::Read, 64);
        let s = arena.stats();
        assert_eq!(s.issued, 1);
        assert_eq!(s.retired, 1);
        assert_eq!(s.sync_transfers, 2);
        assert!((s.overlap_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.peak_used, 64);
        assert_eq!(s.peak_capacity, 64);
    }

    #[test]
    fn external_transfers_pend_without_a_slot() {
        let tl = tl();
        let arena = StagingArena::new(&tl);
        let id = arena.issue_external(Dir::Read, 4096);
        assert_eq!(arena.pending_transfers(), 1);
        arena.retire(id).unwrap();
        assert_eq!(arena.pending_transfers(), 0);
    }

    #[test]
    fn near_alloc_fault_class_applies_to_arena_allocs() {
        use crate::fault::FaultPlan;
        let tl = tl();
        tl.install_fault_plan(FaultPlan::none(7).fail_kth(FaultOp::NearAlloc, 0));
        let arena = StagingArena::new(&tl);
        let err = arena.alloc_array::<u64>(8).unwrap_err();
        assert!(err.is_injected(), "{err}");
        tl.clear_faults();
        arena.alloc_array::<u64>(8).unwrap();
    }
}
