//! One deterministic retry policy behind every degradation ladder.
//!
//! Before this module, the runtime had three independently grown retry
//! loops — the DMA engine's retry→sync fallback, NMsort's re-stage and
//! alloc-retry ladders, and extsort's run-formation re-read — each with its
//! own attempt counter and telemetry. [`Backoff`] centralizes the policy:
//! bounded attempts per [`RetryClass`], per-class counters (both the
//! unified `backoff.*` family and the pre-existing `degradation.*` names,
//! so dashboards keep working), and *advisory* seeded jitter derived from
//! the same splitmix64 hash the fault injector rolls with.
//!
//! The jitter is advisory only: [`Backoff::advice_units`] is a virtual-time
//! hint for schedulers (the service layer turns it into `retry_after`
//! values) and is never charged to the cost ledger — retry behavior stays
//! byte-identical to the pre-unification ladders.

use crate::error::SpError;
use crate::fault::with_faults_suppressed;
use crate::mem::TwoLevel;

/// The splitmix64 increment (golden-ratio gamma).
pub const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer — the one seeded hash the whole runtime shares:
/// fault-injection rolls, executor schedule permutations and arbitration
/// tie-breaks, and backoff jitter all mix through here.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(SPLITMIX_GAMMA);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which degradation ladder a [`Backoff`] instance is pacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// DMA transfer retry before the engine forces the transfer through
    /// with injection suppressed.
    Dma,
    /// NMsort staged-copy re-stage (Phase-1 ingest / writeback).
    Stage,
    /// Small near-allocation retry (pivot residence, bucket totals).
    Alloc,
    /// Chunk-buffer allocation: each retry halves the chunk.
    Shrink,
    /// extsort run-formation re-read after an aborted staging stream.
    Restage,
}

impl RetryClass {
    /// Every class, for sweeps and counter registration.
    pub const ALL: [RetryClass; 5] = [
        RetryClass::Dma,
        RetryClass::Stage,
        RetryClass::Alloc,
        RetryClass::Shrink,
        RetryClass::Restage,
    ];

    /// Stable short name (telemetry, artifacts).
    pub fn name(self) -> &'static str {
        match self {
            RetryClass::Dma => "dma",
            RetryClass::Stage => "stage",
            RetryClass::Alloc => "alloc",
            RetryClass::Shrink => "shrink",
            RetryClass::Restage => "restage",
        }
    }

    /// Dense index (jitter salt).
    pub fn index(self) -> usize {
        match self {
            RetryClass::Dma => 0,
            RetryClass::Stage => 1,
            RetryClass::Alloc => 2,
            RetryClass::Shrink => 3,
            RetryClass::Restage => 4,
        }
    }

    /// Default bounded attempts — exactly the bounds the ad-hoc ladders
    /// used, so unification never changes ledger-visible behavior.
    pub fn default_attempts(self) -> u32 {
        match self {
            RetryClass::Dma => 2,
            RetryClass::Stage => 3,
            RetryClass::Alloc => 3,
            RetryClass::Shrink => 3,
            RetryClass::Restage => 1,
        }
    }

    /// Pre-unification `degradation.*` counter incremented per retry.
    fn legacy_retry(self) {
        match self {
            RetryClass::Dma => tlmm_telemetry::counter!("degradation.dma_retry").incr(),
            RetryClass::Stage => tlmm_telemetry::counter!("degradation.transfer_retry").incr(),
            RetryClass::Alloc => tlmm_telemetry::counter!("degradation.alloc_retry").incr(),
            RetryClass::Shrink => tlmm_telemetry::counter!("degradation.chunk_shrink").incr(),
            RetryClass::Restage => tlmm_telemetry::counter!("degradation.extsort_restage").incr(),
        }
    }

    /// Pre-unification `degradation.*` counter incremented when the ladder
    /// gives up retrying and forces the operation through.
    fn legacy_forced(self) {
        match self {
            RetryClass::Dma => tlmm_telemetry::counter!("degradation.dma_forced").incr(),
            RetryClass::Stage => tlmm_telemetry::counter!("degradation.transfer_forced").incr(),
            RetryClass::Alloc | RetryClass::Shrink => {
                tlmm_telemetry::counter!("degradation.alloc_forced").incr()
            }
            RetryClass::Restage => tlmm_telemetry::counter!("degradation.extsort_forced").incr(),
        }
    }

    fn unified_retry(self) {
        match self {
            RetryClass::Dma => tlmm_telemetry::counter!("backoff.dma.retry").incr(),
            RetryClass::Stage => tlmm_telemetry::counter!("backoff.stage.retry").incr(),
            RetryClass::Alloc => tlmm_telemetry::counter!("backoff.alloc.retry").incr(),
            RetryClass::Shrink => tlmm_telemetry::counter!("backoff.shrink.retry").incr(),
            RetryClass::Restage => tlmm_telemetry::counter!("backoff.restage.retry").incr(),
        }
    }

    fn unified_forced(self) {
        match self {
            RetryClass::Dma => tlmm_telemetry::counter!("backoff.dma.forced").incr(),
            RetryClass::Stage => tlmm_telemetry::counter!("backoff.stage.forced").incr(),
            RetryClass::Alloc => tlmm_telemetry::counter!("backoff.alloc.forced").incr(),
            RetryClass::Shrink => tlmm_telemetry::counter!("backoff.shrink.forced").incr(),
            RetryClass::Restage => tlmm_telemetry::counter!("backoff.restage.forced").incr(),
        }
    }
}

/// Bounded, seeded, deterministic retry state for one operation.
///
/// Usage is a two-verb protocol: call [`Backoff::again`] when an attempt
/// failed with an *injected* error — `true` means "retry permitted" (the
/// attempt is counted and the advisory jitter recorded), `false` means the
/// budget is exhausted; then call [`Backoff::give_up`] before taking the
/// final forced rung. [`Backoff::run_forced`] packages the whole ladder for
/// result-shaped operations.
#[derive(Debug, Clone)]
pub struct Backoff {
    class: RetryClass,
    max_attempts: u32,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A ladder of `class` with its default attempt bound. The seed feeds
    /// only the advisory jitter, never the retry decision.
    pub fn new(class: RetryClass, seed: u64) -> Self {
        Self {
            class,
            max_attempts: class.default_attempts(),
            seed,
            attempt: 0,
        }
    }

    /// A ladder seeded from the memory's installed fault plan (0 when no
    /// plan is installed) — the "existing fault-hash splitmix" seed.
    pub fn for_memory(tl: &TwoLevel, class: RetryClass) -> Self {
        let seed = tl.fault_injector().map(|i| i.plan().seed).unwrap_or(0);
        Self::new(class, seed)
    }

    /// Override the attempt bound (tests, service-layer policies).
    pub fn with_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// The ladder's class.
    pub fn class(&self) -> RetryClass {
        self.class
    }

    /// Retries consumed so far.
    pub fn attempts_used(&self) -> u32 {
        self.attempt
    }

    /// Has the retry budget run out?
    pub fn exhausted(&self) -> bool {
        self.attempt >= self.max_attempts
    }

    /// Advisory virtual-time wait before the *next* retry: exponential in
    /// the attempt number with a seeded jitter term. Pure function of
    /// `(seed, class, attempt)`; never charged anywhere.
    pub fn advice_units(&self) -> u64 {
        let span = 1u64 << (self.attempt.min(16) + 5);
        let salt = ((self.class.index() as u64) << 56) ^ self.attempt as u64;
        span + splitmix64(self.seed ^ splitmix64(salt)) % span
    }

    /// One attempt failed with an injected error: may the caller retry?
    /// Counts the retry (unified + legacy counters, jitter histogram) when
    /// permitted.
    pub fn again(&mut self) -> bool {
        if self.attempt >= self.max_attempts {
            return false;
        }
        tlmm_telemetry::histogram!("backoff.advice_units").record(self.advice_units());
        self.attempt += 1;
        self.class.unified_retry();
        self.class.legacy_retry();
        true
    }

    /// The ladder is giving up on retries and will force the operation
    /// through with injection suppressed — count the final rung.
    pub fn give_up(&self) {
        self.class.unified_forced();
        self.class.legacy_forced();
    }

    /// Run `op` under the full ladder: injected failures are retried up to
    /// the attempt bound, then the operation is forced through with fault
    /// injection suppressed so progress is guaranteed. Genuine errors
    /// (capacity, bounds) propagate immediately. Every failed attempt has
    /// already been charged in full by the runtime, so retries stay
    /// honestly visible in the ledger.
    pub fn run_forced<R>(
        mut self,
        mut op: impl FnMut() -> Result<R, SpError>,
    ) -> Result<R, SpError> {
        loop {
            match op() {
                Err(e) if e.is_injected() => {
                    if !self.again() {
                        self.give_up();
                        return with_faults_suppressed(&mut op);
                    }
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use tlmm_model::ScratchpadParams;

    #[test]
    fn bounds_match_the_ladders_they_replaced() {
        assert_eq!(RetryClass::Dma.default_attempts(), 2);
        assert_eq!(RetryClass::Stage.default_attempts(), 3);
        assert_eq!(RetryClass::Alloc.default_attempts(), 3);
        assert_eq!(RetryClass::Shrink.default_attempts(), 3);
        assert_eq!(RetryClass::Restage.default_attempts(), 1);
    }

    #[test]
    fn again_is_bounded_and_counts() {
        let mut bo = Backoff::new(RetryClass::Stage, 7);
        assert!(bo.again());
        assert!(bo.again());
        assert!(bo.again());
        assert!(!bo.again());
        assert!(bo.exhausted());
        assert_eq!(bo.attempts_used(), 3);
    }

    #[test]
    fn advice_is_deterministic_and_grows() {
        let mk = |attempt: u32| Backoff {
            class: RetryClass::Dma,
            max_attempts: 8,
            seed: 42,
            attempt,
        };
        assert_eq!(mk(0).advice_units(), mk(0).advice_units());
        // Exponential floor: attempt k's advice is at least 2^(k+5).
        for k in 0..8 {
            let a = mk(k).advice_units();
            assert!(a >= 1 << (k + 5), "attempt {k}: advice {a}");
            assert!(a < 1 << (k + 6), "attempt {k}: advice {a}");
        }
        // Different seeds jitter differently (fixed seeds, deterministic).
        let other = Backoff { seed: 43, ..mk(0) };
        assert_ne!(other.advice_units(), mk(0).advice_units());
    }

    #[test]
    fn run_forced_retries_then_forces() {
        let tl = TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap());
        // Every near-alloc preflight fails: the ladder must exhaust its
        // retries and still succeed via the suppressed final rung.
        let mut plan = FaultPlan::none(3);
        plan.near_alloc_fail_permille = 1000;
        tl.install_fault_plan(plan);
        let res = Backoff::for_memory(&tl, RetryClass::Alloc)
            .run_forced(|| tl.near_alloc::<u64>(16).map(|_| ()));
        assert!(res.is_ok());
        // 1 initial + 3 retries all hit injected failures.
        assert_eq!(tl.faults_injected(), 4);
    }

    #[test]
    fn run_forced_propagates_genuine_errors() {
        let tl = TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap());
        let res = Backoff::for_memory(&tl, RetryClass::Alloc)
            .run_forced(|| tl.near_alloc::<u64>(1 << 30).map(|_| ()));
        assert!(matches!(res, Err(SpError::NearCapacityExceeded { .. })));
    }

    #[test]
    fn splitmix_matches_known_sequence() {
        // Pin the hash: fault decisions, executor schedules, and jitter all
        // depend on these exact values staying put.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
