//! Chunked streaming access to far/near arrays.
//!
//! Many scratchpad algorithms are scans: read a buffer's worth, compute,
//! write a buffer's worth. These helpers package that pattern with the
//! charging built in, so application code (and the examples) don't need to
//! hand-roll offset arithmetic around the staging API.

use crate::array::{FarArray, NearArray};
use crate::error::SpError;
use crate::mem::TwoLevel;

/// Streams a far array into cache-sized pieces (charged far reads).
pub struct FarReader<'a, T> {
    tl: &'a TwoLevel,
    src: &'a FarArray<T>,
    pos: usize,
    end: usize,
    chunk_elems: usize,
}

impl<'a, T: Copy> FarReader<'a, T> {
    /// Stream `src` in pieces of `chunk_elems` (clamped to at least 1).
    pub fn new(tl: &'a TwoLevel, src: &'a FarArray<T>, chunk_elems: usize) -> Self {
        Self::with_range(tl, src, 0..src.len(), chunk_elems)
    }

    /// Stream only `range` of `src` (a lane's stripe of a shared scan).
    pub fn with_range(
        tl: &'a TwoLevel,
        src: &'a FarArray<T>,
        range: std::ops::Range<usize>,
        chunk_elems: usize,
    ) -> Self {
        Self {
            tl,
            src,
            pos: range.start.min(src.len()),
            end: range.end.min(src.len()),
            chunk_elems: chunk_elems.max(1),
        }
    }

    /// Elements not yet read.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    /// Read the next piece into `buf` (cleared first). Returns the number
    /// of elements read; 0 at end of stream.
    pub fn next_chunk(&mut self, buf: &mut Vec<T>) -> Result<usize, SpError> {
        let end = (self.pos + self.chunk_elems).min(self.end);
        if self.pos >= end {
            buf.clear();
            return Ok(0);
        }
        self.tl.load_far(self.src, self.pos..end, buf)?;
        let n = end - self.pos;
        self.pos = end;
        Ok(n)
    }
}

/// Appends to a far array in charged, buffered writes.
pub struct FarWriter<'a, T> {
    tl: &'a TwoLevel,
    dst: &'a mut FarArray<T>,
    pos: usize,
}

impl<'a, T: Copy> FarWriter<'a, T> {
    /// Write into `dst` starting at element 0.
    pub fn new(tl: &'a TwoLevel, dst: &'a mut FarArray<T>) -> Self {
        Self { tl, dst, pos: 0 }
    }

    /// Append `data`; fails if the destination is full.
    pub fn append(&mut self, data: &[T]) -> Result<(), SpError> {
        self.tl.store_far(self.dst, self.pos, data)?;
        self.pos += data.len();
        Ok(())
    }

    /// Elements written so far.
    pub fn written(&self) -> usize {
        self.pos
    }
}

/// Streams a near array into cache-sized pieces (charged near reads).
pub struct NearReader<'a, T> {
    tl: &'a TwoLevel,
    src: &'a NearArray<T>,
    pos: usize,
    end: usize,
    chunk_elems: usize,
}

impl<'a, T: Copy> NearReader<'a, T> {
    /// Stream `src` in pieces of `chunk_elems`.
    pub fn new(tl: &'a TwoLevel, src: &'a NearArray<T>, chunk_elems: usize) -> Self {
        Self::with_range(tl, src, 0..src.len(), chunk_elems)
    }

    /// Stream only `range` of `src`.
    pub fn with_range(
        tl: &'a TwoLevel,
        src: &'a NearArray<T>,
        range: std::ops::Range<usize>,
        chunk_elems: usize,
    ) -> Self {
        Self {
            tl,
            src,
            pos: range.start.min(src.len()),
            end: range.end.min(src.len()),
            chunk_elems: chunk_elems.max(1),
        }
    }

    /// Read the next piece into `buf`; returns elements read (0 = done).
    pub fn next_chunk(&mut self, buf: &mut Vec<T>) -> Result<usize, SpError> {
        let end = (self.pos + self.chunk_elems).min(self.end);
        if self.pos >= end {
            buf.clear();
            return Ok(0);
        }
        self.tl.load_near(self.src, self.pos..end, buf)?;
        let n = end - self.pos;
        self.pos = end;
        Ok(n)
    }
}

/// One full charged pass over a far array, applying `f` to each piece —
/// the shape of every bandwidth-bound scan kernel in the paper. Charges to
/// the ambient lane; for a cooperative multi-core scan use
/// [`par_scan_far`].
pub fn scan_far<T: Copy, A>(
    tl: &TwoLevel,
    src: &FarArray<T>,
    chunk_elems: usize,
    mut acc: A,
    mut f: impl FnMut(A, &[T]) -> A,
) -> Result<A, SpError> {
    let mut reader = FarReader::new(tl, src, chunk_elems);
    let mut buf = Vec::new();
    while reader.next_chunk(&mut buf)? > 0 {
        acc = f(acc, &buf);
    }
    Ok(acc)
}

/// A cooperative scan: `lanes` virtual lanes each stream a contiguous
/// stripe of `src`, folding with `f` into per-lane accumulators that are
/// returned for the caller to reduce. The stripes are charged to their
/// lanes, so the simulator applies aggregate channel bandwidth.
pub fn par_scan_far<T: Copy, A: Default>(
    tl: &TwoLevel,
    src: &FarArray<T>,
    chunk_elems: usize,
    lanes: usize,
    mut f: impl FnMut(A, &[T]) -> A,
) -> Result<Vec<A>, SpError> {
    let lanes = lanes.max(1);
    let n = src.len();
    let per = n.div_ceil(lanes).max(1);
    let base = crate::trace::current_lane();
    let mut accs = Vec::new();
    let mut lo = 0usize;
    let mut lane = 0usize;
    while lo < n {
        let hi = (lo + per).min(n);
        let acc = crate::trace::with_lane(base + lane, || -> Result<A, SpError> {
            let mut reader = FarReader::with_range(tl, src, lo..hi, chunk_elems);
            let mut buf = Vec::new();
            let mut acc = A::default();
            while reader.next_chunk(&mut buf)? > 0 {
                acc = f(acc, &buf);
            }
            Ok(acc)
        })?;
        accs.push(acc);
        lo = hi;
        lane += 1;
    }
    Ok(accs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    #[test]
    fn far_reader_covers_array_and_charges() {
        let tl = tl();
        let src = tl.far_from_vec((0u64..10_000).collect::<Vec<_>>());
        let mut r = FarReader::new(&tl, &src, 1024);
        let mut buf = Vec::new();
        let mut seen = Vec::new();
        while r.next_chunk(&mut buf).unwrap() > 0 {
            seen.extend_from_slice(&buf);
        }
        assert_eq!(seen, src.as_slice_uncharged());
        assert_eq!(r.remaining(), 0);
        let s = tl.ledger().snapshot();
        assert_eq!(s.far_bytes, 80_000);
        assert_eq!(s.near_bytes, 0);
    }

    #[test]
    fn far_writer_appends() {
        let tl = tl();
        let mut dst = tl.far_alloc::<u32>(100);
        let mut w = FarWriter::new(&tl, &mut dst);
        w.append(&[1, 2, 3]).unwrap();
        w.append(&[4, 5]).unwrap();
        assert_eq!(w.written(), 5);
        assert!(w.append(&[0; 100]).is_err(), "overflow must fail");
        assert_eq!(&dst.as_slice_uncharged()[..5], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn near_reader_round_trips() {
        let tl = tl();
        let mut near = tl.near_alloc::<u16>(500).unwrap();
        for (i, v) in near.as_mut_slice_uncharged().iter_mut().enumerate() {
            *v = i as u16;
        }
        let mut r = NearReader::new(&tl, &near, 64);
        let mut buf = Vec::new();
        let mut total = 0;
        while r.next_chunk(&mut buf).unwrap() > 0 {
            total += buf.len();
        }
        assert_eq!(total, 500);
        assert!(tl.ledger().snapshot().near_bytes > 0);
    }

    #[test]
    fn scan_far_folds_in_order() {
        let tl = tl();
        let src = tl.far_from_vec((1u64..=1000).collect::<Vec<_>>());
        let sum = scan_far(&tl, &src, 37, 0u64, |acc, piece| {
            acc + piece.iter().sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 1000 * 1001 / 2);
        // Exactly one pass of far traffic.
        assert_eq!(tl.ledger().snapshot().far_bytes, 8000);
    }

    #[test]
    fn empty_array_streams_nothing() {
        let tl = tl();
        let src = tl.far_from_vec(Vec::<u64>::new());
        let mut r = FarReader::new(&tl, &src, 16);
        let mut buf = vec![1, 2, 3];
        assert_eq!(r.next_chunk(&mut buf).unwrap(), 0);
        assert!(buf.is_empty());
    }
}
