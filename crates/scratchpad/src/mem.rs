//! The [`TwoLevel`] memory handle: allocation, transfers, staging, phases.

use crate::array::{FarArray, NearArray};
use crate::cancel::CancelToken;
use crate::error::SpError;
use crate::executor::{ExecConfig, ExecConfigError, Executor};
use crate::fault::{self, FaultDecision, FaultInjector, FaultOp, FaultPlan};
use crate::trace::{PhaseTrace, TraceRecorder};
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tlmm_model::ledger::{CostLedger, Dir, Level};
use tlmm_model::ScratchpadParams;

/// Shared state behind a [`TwoLevel`] handle.
#[derive(Debug)]
pub struct TwoLevelInner {
    pub(crate) params: ScratchpadParams,
    pub(crate) ledger: CostLedger,
    pub(crate) recorder: TraceRecorder,
    pub(crate) near_used: AtomicU64,
    pub(crate) faults: Mutex<Option<Arc<FaultInjector>>>,
    /// Fast-path gate so un-faulted runs never take the `faults` lock.
    pub(crate) has_faults: AtomicBool,
    pub(crate) executor: Mutex<Option<Arc<Executor>>>,
    /// Fast-path gate so executor-free runs never take the `executor` lock.
    pub(crate) has_executor: AtomicBool,
    /// The current job's cancel token plus the ledger unit count at install
    /// time (deadline budgets are measured from there).
    pub(crate) cancel: Mutex<Option<(CancelToken, u64)>>,
    /// Fast-path gate so cancel-free runs never take the `cancel` lock.
    pub(crate) has_cancel: AtomicBool,
}

/// Handle to a two-level main memory. Cheap to clone; clones share the
/// ledger, trace and scratchpad budget.
///
/// All methods are `&self` and thread-safe. Charged data movement comes in
/// two flavours:
///
/// * **Transfers** between the two memories ([`Self::far_to_near`] …): data
///   passes through the cache, so *both* sides are charged (a far-side
///   read/write in `B`-byte blocks, a near-side write/read in `ρB`-byte
///   blocks).
/// * **Staging** between one memory and the cache ([`Self::load_near`],
///   [`Self::store_far`] …): the compute side. One side is charged; the host
///   `Vec` standing in for the cache is free, like cache hits in the model.
#[derive(Debug, Clone)]
pub struct TwoLevel {
    inner: Arc<TwoLevelInner>,
}

fn range_check(r: &Range<usize>, len: usize) -> Result<(), SpError> {
    if r.start > r.end || r.end > len {
        Err(SpError::RangeOutOfBounds {
            start: r.start,
            end: r.end,
            len,
        })
    } else {
        Ok(())
    }
}

impl TwoLevel {
    /// Create a two-level memory with the given model parameters; panics on
    /// invalid parameters. Prefer [`Self::try_new`] at API edges where the
    /// parameters come from a caller.
    pub fn new(params: ScratchpadParams) -> Self {
        Self::try_new(params).expect("invalid scratchpad parameters")
    }

    /// Create a two-level memory, surfacing invalid parameters (zero
    /// scratchpad, near block larger than `M`, bad ρ, …) as a typed
    /// [`SpError::BadParams`] instead of a panic now or an arithmetic
    /// underflow later inside `near_alloc`.
    pub fn try_new(params: ScratchpadParams) -> Result<Self, SpError> {
        params.validate().map_err(SpError::BadParams)?;
        Ok(Self {
            inner: Arc::new(TwoLevelInner {
                params,
                ledger: CostLedger::new(),
                recorder: TraceRecorder::new(),
                near_used: AtomicU64::new(0),
                faults: Mutex::new(None),
                has_faults: AtomicBool::new(false),
                executor: Mutex::new(None),
                has_executor: AtomicBool::new(false),
                cancel: Mutex::new(None),
                has_cancel: AtomicBool::new(false),
            }),
        })
    }

    /// The model parameters this memory was built with.
    pub fn params(&self) -> &ScratchpadParams {
        &self.inner.params
    }

    /// The block-transfer ledger (model-unit ground truth).
    pub fn ledger(&self) -> &CostLedger {
        &self.inner.ledger
    }

    /// Bytes currently allocated in the scratchpad.
    pub fn near_used_bytes(&self) -> u64 {
        self.inner.near_used.load(Ordering::Relaxed)
    }

    /// Bytes still available in the scratchpad.
    pub fn near_available_bytes(&self) -> u64 {
        self.inner
            .params
            .scratchpad_bytes
            .saturating_sub(self.near_used_bytes())
    }

    /// How many `T`s could still be allocated in the scratchpad.
    pub fn near_available_elems<T>(&self) -> usize {
        (self.near_available_bytes() as usize) / std::mem::size_of::<T>().max(1)
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Install `plan` on this memory; every hooked operation from now on
    /// consults the returned injector. Replaces any previous plan.
    pub fn install_fault_plan(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        let inj = Arc::new(FaultInjector::new(plan));
        *self.inner.faults.lock() = Some(Arc::clone(&inj));
        self.inner.has_faults.store(true, Ordering::Release);
        inj
    }

    /// Install the standard seeded profile from `TLMM_FAULT_SEED` if the
    /// variable is set; returns the injector when it is.
    pub fn install_faults_from_env(&self) -> Option<Arc<FaultInjector>> {
        FaultPlan::from_env().map(|p| self.install_fault_plan(p))
    }

    /// Remove any installed fault plan.
    pub fn clear_faults(&self) {
        *self.inner.faults.lock() = None;
        self.inner.has_faults.store(false, Ordering::Release);
    }

    /// The currently installed injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        if !self.inner.has_faults.load(Ordering::Acquire) {
            return None;
        }
        self.inner.faults.lock().clone()
    }

    /// Failures injected so far (0 when no plan is installed).
    pub fn faults_injected(&self) -> u64 {
        self.fault_injector().map(|i| i.injected()).unwrap_or(0)
    }

    /// Run `f` with fault injection disabled on this thread — the final
    /// rung of a degradation ladder after bounded retries.
    pub fn with_faults_suppressed<R>(&self, f: impl FnOnce() -> R) -> R {
        fault::with_faults_suppressed(f)
    }

    /// Consult the fault plan for one logical operation of class `op`
    /// *without* moving any data. Algorithm kernels that charge explicitly
    /// (rather than calling the transfer methods) gate their staging steps
    /// on this, so injected faults reach the raw-slice hot paths too.
    ///
    /// A `Fail`/`Delay` decision is recorded in the open phase's fault
    /// count and in telemetry; honest recharging is the caller's job
    /// (the caller knows the volume it was about to move).
    pub fn preflight(&self, op: FaultOp) -> FaultDecision {
        if !self.inner.has_faults.load(Ordering::Acquire) || fault::faults_suppressed() {
            return FaultDecision::Proceed;
        }
        let Some(inj) = self.inner.faults.lock().clone() else {
            return FaultDecision::Proceed;
        };
        let d = inj.decide(op);
        match d {
            FaultDecision::Proceed => {}
            FaultDecision::Fail(_) => {
                self.inner.recorder.record_fault();
                tlmm_telemetry::counter!("fault.injected").incr();
                if tlmm_telemetry::flight::enabled() {
                    tlmm_telemetry::flight::fault_event(&format!("{op:?}.fail"));
                }
                match op {
                    FaultOp::NearAlloc => tlmm_telemetry::counter!("fault.near_alloc").incr(),
                    FaultOp::FarToNear => tlmm_telemetry::counter!("fault.far_to_near").incr(),
                    FaultOp::NearToFar => tlmm_telemetry::counter!("fault.near_to_far").incr(),
                    FaultOp::FarStage => tlmm_telemetry::counter!("fault.far_stage").incr(),
                    FaultOp::NearStage => tlmm_telemetry::counter!("fault.near_stage").incr(),
                    FaultOp::DmaIssue => tlmm_telemetry::counter!("fault.dma_issue").incr(),
                }
            }
            FaultDecision::Delay(_) => {
                self.inner.recorder.record_fault();
                tlmm_telemetry::counter!("fault.delayed").incr();
                if tlmm_telemetry::flight::enabled() {
                    tlmm_telemetry::flight::fault_event(&format!("{op:?}.delay"));
                }
            }
        }
        d
    }

    // ------------------------------------------------------------------
    // Cooperative cancellation (phase-boundary checkpoints)
    // ------------------------------------------------------------------

    /// Install `token` as the current job's cancel/deadline token; any
    /// unit budget on the token is measured from the ledger's charge total
    /// at this instant. Replaces any previous token.
    pub fn install_cancel(&self, token: CancelToken) {
        let snap = self.inner.ledger.snapshot();
        *self.inner.cancel.lock() = Some((token, snap.far_bytes + snap.near_bytes));
        self.inner.has_cancel.store(true, Ordering::Release);
    }

    /// Remove any installed cancel token (end of job).
    pub fn clear_cancel(&self) {
        *self.inner.cancel.lock() = None;
        self.inner.has_cancel.store(false, Ordering::Release);
    }

    /// The currently installed cancel token, if any.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        if !self.inner.has_cancel.load(Ordering::Acquire) {
            return None;
        }
        self.inner.cancel.lock().as_ref().map(|(t, _)| t.clone())
    }

    /// Cooperative cancellation point. Sort engines call this **at phase
    /// boundaries**; it returns [`SpError::Cancelled`] when the installed
    /// token was cancelled or its charged-unit deadline budget has been
    /// exhausted (the token is then cancelled too, so every later
    /// checkpoint agrees). Near allocations held by the caller unwind via
    /// RAII on the resulting early return, leaving the arena reusable.
    /// Free when no token is installed (one atomic load).
    pub fn checkpoint(&self) -> Result<(), SpError> {
        if !self.inner.has_cancel.load(Ordering::Acquire) {
            return Ok(());
        }
        let guard = self.inner.cancel.lock();
        let Some((token, base_units)) = guard.as_ref() else {
            return Ok(());
        };
        if token.is_cancelled() {
            tlmm_telemetry::counter!("cancel.checkpoint_trips").incr();
            return Err(SpError::Cancelled);
        }
        if let Some(budget) = token.unit_budget() {
            let snap = self.inner.ledger.snapshot();
            let spent = (snap.far_bytes + snap.near_bytes).saturating_sub(*base_units);
            if spent >= budget {
                token.cancel();
                tlmm_telemetry::counter!("cancel.deadline_trips").incr();
                return Err(SpError::Cancelled);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Executor (Theorem 10 `p′` transfer arbitration)
    // ------------------------------------------------------------------

    /// Install an executor on this memory; from now on every charged
    /// transfer contends for its `p′` transfer slots and stage fan-outs
    /// routed through [`Self::run_stage`] execute on its workers. Replaces
    /// any previous executor. Arbitration never touches the charge ledger —
    /// only waits (trace `slot_wait_units` + telemetry) are added — so the
    /// ledger stays byte-identical to an executor-free run.
    pub fn install_executor(&self, cfg: ExecConfig) -> Result<Arc<Executor>, ExecConfigError> {
        cfg.validate()?;
        let ex = Arc::new(Executor::new(cfg));
        *self.inner.executor.lock() = Some(Arc::clone(&ex));
        self.inner.has_executor.store(true, Ordering::Release);
        Ok(ex)
    }

    /// Install a deterministic executor from `TLMM_EXEC_SEED` (plus
    /// `TLMM_EXEC_WORKERS` / `TLMM_EXEC_SLOTS`) if set; returns the
    /// executor when one was installed.
    pub fn install_executor_from_env(&self) -> Option<Arc<Executor>> {
        ExecConfig::from_env().and_then(|cfg| self.install_executor(cfg).ok())
    }

    /// Remove any installed executor.
    pub fn clear_executor(&self) {
        *self.inner.executor.lock() = None;
        self.inner.has_executor.store(false, Ordering::Release);
    }

    /// The currently installed executor, if any.
    pub fn executor(&self) -> Option<Arc<Executor>> {
        if !self.inner.has_executor.load(Ordering::Acquire) {
            return None;
        }
        self.inner.executor.lock().clone()
    }

    /// Execute one stage of tasks: on the installed executor's worker pool
    /// (seeded-permutation sequential in deterministic mode, OS threads in
    /// host mode) when one is installed, otherwise sequentially in the
    /// given order. Tasks handle their own lane attribution.
    pub fn run_stage<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        match self.executor() {
            Some(ex) => ex.run_tasks(tasks),
            None => {
                for t in tasks {
                    t();
                }
            }
        }
    }

    /// Arbitrate one charged transfer of `bytes` over the executor's
    /// transfer slots (no-op without an executor). Virtual waits are
    /// recorded against the current lane in the open phase. The returned
    /// grant is held across the charge so that in host mode `p′` genuinely
    /// bounds concurrent charged operations.
    #[inline]
    fn arbitrate(&self, bytes: u64) -> Option<crate::executor::TransferGrant> {
        if !self.inner.has_executor.load(Ordering::Acquire) {
            return None;
        }
        let ex = self.inner.executor.lock().clone()?;
        let grant = ex.begin_transfer(crate::trace::current_lane(), bytes);
        if grant.wait_units > 0 {
            let wait = grant.wait_units;
            self.inner.recorder.charge(|w| w.slot_wait_units += wait);
        }
        Some(grant)
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Move a host vector into far memory. Free: the data is *defined* to
    /// start in DRAM, exactly like a freshly produced input array.
    pub fn far_from_vec<T: Copy>(&self, v: Vec<T>) -> FarArray<T> {
        FarArray {
            data: v,
            owner: Arc::clone(&self.inner),
        }
    }

    /// Allocate a zero-initialised far array. Far memory is arbitrarily
    /// large; this cannot fail.
    pub fn far_alloc<T: Copy + Default>(&self, len: usize) -> FarArray<T> {
        self.far_from_vec(vec![T::default(); len])
    }

    /// Allocate a near (scratchpad) array, failing if capacity `M` would be
    /// exceeded — the modified `malloc` of §VI-B.2.
    pub fn near_alloc<T: Copy + Default>(&self, len: usize) -> Result<NearArray<T>, SpError> {
        if let FaultDecision::Fail(index) = self.preflight(FaultOp::NearAlloc) {
            return Err(SpError::FaultInjected {
                op: FaultOp::NearAlloc,
                index,
            });
        }
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let cap = self.inner.params.scratchpad_bytes;
        // Reserve optimistically; roll back on overflow.
        let prev = self.inner.near_used.fetch_add(bytes, Ordering::Relaxed);
        if prev + bytes > cap {
            self.inner.near_used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(SpError::NearCapacityExceeded {
                requested: bytes,
                available: cap.saturating_sub(prev),
            });
        }
        Ok(NearArray {
            data: vec![T::default(); len],
            reserved_bytes: bytes,
            owner: Arc::clone(&self.inner),
        })
    }

    /// Reserve `bytes` of scratchpad capacity without materialising an
    /// array — the staging arena's growth path. Same optimistic
    /// reserve/rollback protocol (and the same error numbers) as
    /// [`Self::near_alloc`], so arena growth is indistinguishable from a
    /// direct allocation in capacity accounting.
    pub(crate) fn reserve_near_bytes(&self, bytes: u64) -> Result<(), SpError> {
        let cap = self.inner.params.scratchpad_bytes;
        let prev = self.inner.near_used.fetch_add(bytes, Ordering::Relaxed);
        if prev + bytes > cap {
            self.inner.near_used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(SpError::NearCapacityExceeded {
                requested: bytes,
                available: cap.saturating_sub(prev),
            });
        }
        Ok(())
    }

    /// Return `bytes` of scratchpad capacity reserved with
    /// [`Self::reserve_near_bytes`].
    pub(crate) fn release_near_bytes(&self, bytes: u64) {
        self.inner.near_used.fetch_sub(bytes, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Charging primitives
    // ------------------------------------------------------------------

    /// Mirror one charged transfer into the flight recorder (no-op when
    /// no recorder is installed). `ledger_bytes` is the byte volume the
    /// cost ledger booked — the flight trace is cross-checkable against
    /// `CostSnapshot` byte-for-byte — while the grant's timing reflects
    /// the *arbitrated* occupancy (they differ for random access).
    #[inline]
    fn flight_transfer(
        &self,
        dir: Dir,
        ledger_bytes: u64,
        extra_flags: u32,
        grant: &Option<crate::executor::TransferGrant>,
    ) {
        if !tlmm_telemetry::flight::enabled() {
            return;
        }
        let mut flags = extra_flags;
        if matches!(dir, Dir::Write) {
            flags |= tlmm_telemetry::flight::FLAG_WRITE;
        }
        let timing = grant.as_ref().and_then(|g| g.timing);
        tlmm_telemetry::flight::transfer_event(ledger_bytes, flags, timing);
    }

    fn charge_far(&self, dir: Dir, bytes: u64) {
        let grant = self.arbitrate(bytes);
        let blocks = self.inner.params.far_blocks_for(bytes);
        self.inner.ledger.charge(Level::Far, dir, blocks, bytes);
        self.inner.recorder.charge(|w| match dir {
            Dir::Read => w.far_read_bytes += bytes,
            Dir::Write => w.far_write_bytes += bytes,
        });
        match dir {
            Dir::Read => tlmm_telemetry::counter!("scratchpad.far.read_bytes").add(bytes),
            Dir::Write => tlmm_telemetry::counter!("scratchpad.far.write_bytes").add(bytes),
        }
        tlmm_telemetry::histogram!("scratchpad.far.transfer_bytes").record(bytes);
        self.flight_transfer(dir, bytes, tlmm_telemetry::flight::FLAG_FAR, &grant);
    }

    fn charge_near(&self, dir: Dir, bytes: u64) {
        let grant = self.arbitrate(bytes);
        let blocks = self.inner.params.near_blocks_for(bytes);
        self.inner.ledger.charge(Level::Near, dir, blocks, bytes);
        self.inner.recorder.charge(|w| match dir {
            Dir::Read => w.near_read_bytes += bytes,
            Dir::Write => w.near_write_bytes += bytes,
        });
        match dir {
            Dir::Read => tlmm_telemetry::counter!("scratchpad.near.read_bytes").add(bytes),
            Dir::Write => tlmm_telemetry::counter!("scratchpad.near.write_bytes").add(bytes),
        }
        tlmm_telemetry::histogram!("scratchpad.near.transfer_bytes").record(bytes);
        self.flight_transfer(dir, bytes, 0, &grant);
    }

    /// Record `n` RAM-model operations (comparisons, arithmetic).
    pub fn charge_compute(&self, n: u64) {
        self.inner.ledger.charge_compute(n);
        self.inner.recorder.charge(|w| w.compute_ops += n);
        tlmm_telemetry::counter!("scratchpad.compute_ops").add(n);
        if tlmm_telemetry::flight::enabled() {
            tlmm_telemetry::flight::compute_event(n);
        }
    }

    // Low-level charging API.
    //
    // The staging methods below ([`Self::load_near`] …) move data *and*
    // charge. Performance-critical algorithm kernels (the `tlmm-core` sorts)
    // instead operate on raw slices and charge explicitly through these
    // primitives, mirroring exactly the staging they logically perform but
    // without the extra copies. Accounting is identical either way.

    /// Charge a contiguous far-memory transfer of `bytes` bytes
    /// (`⌈bytes/B⌉` blocks).
    pub fn charge_far_io(&self, dir: Dir, bytes: u64) {
        self.charge_far(dir, bytes);
    }

    /// Charge a contiguous near-memory transfer of `bytes` bytes
    /// (`⌈bytes/ρB⌉` blocks).
    pub fn charge_near_io(&self, dir: Dir, bytes: u64) {
        self.charge_near(dir, bytes);
    }

    /// Charge `accesses` *random* far-memory accesses moving `bytes` bytes
    /// in total: each random access costs a full block regardless of how few
    /// bytes it uses (e.g. gathering a random sample, §III-A).
    pub fn charge_far_random(&self, dir: Dir, accesses: u64, bytes: u64) {
        // Random accesses occupy the transfer machinery for their full
        // block volume, matching what the trace records below.
        let grant = self.arbitrate(accesses * self.inner.params.block_bytes);
        self.inner.ledger.charge(Level::Far, dir, accesses, bytes);
        self.inner.recorder.charge(|w| match dir {
            Dir::Read => w.far_read_bytes += accesses * self.inner.params.block_bytes,
            Dir::Write => w.far_write_bytes += accesses * self.inner.params.block_bytes,
        });
        self.flight_transfer(
            dir,
            bytes,
            tlmm_telemetry::flight::FLAG_FAR | tlmm_telemetry::flight::FLAG_RANDOM,
            &grant,
        );
    }

    /// Charge `accesses` random near-memory accesses moving `bytes` bytes.
    pub fn charge_near_random(&self, dir: Dir, accesses: u64, bytes: u64) {
        let blk = self.inner.params.near_block_bytes();
        let grant = self.arbitrate(accesses * blk);
        self.inner.ledger.charge(Level::Near, dir, accesses, bytes);
        self.inner.recorder.charge(|w| match dir {
            Dir::Read => w.near_read_bytes += accesses * blk,
            Dir::Write => w.near_write_bytes += accesses * blk,
        });
        self.flight_transfer(dir, bytes, tlmm_telemetry::flight::FLAG_RANDOM, &grant);
    }

    // ------------------------------------------------------------------
    // Transfers between memories (both sides charged)
    // ------------------------------------------------------------------

    /// Copy `src[src_range]` into `dst[dst_at..]`. Charges a far read and a
    /// near write.
    pub fn far_to_near<T: Copy>(
        &self,
        src: &FarArray<T>,
        src_range: Range<usize>,
        dst: &mut NearArray<T>,
        dst_at: usize,
    ) -> Result<(), SpError> {
        range_check(&src_range, src.data.len())?;
        let n = src_range.len();
        range_check(&(dst_at..dst_at + n), dst.data.len())?;
        let bytes = (n * std::mem::size_of::<T>()) as u64;
        match self.preflight(FaultOp::FarToNear) {
            FaultDecision::Fail(index) => {
                // The payload moved and was lost: charge the aborted
                // attempt in full, deliver nothing.
                tlmm_telemetry::flight::with_fault_retry(|| {
                    self.charge_far(Dir::Read, bytes);
                    self.charge_near(Dir::Write, bytes);
                });
                return Err(SpError::FaultInjected {
                    op: FaultOp::FarToNear,
                    index,
                });
            }
            FaultDecision::Delay(_) => {
                // Link-level retransmission: the transfer lands, but the
                // traffic crossed both channels twice.
                tlmm_telemetry::flight::with_fault_retry(|| {
                    self.charge_far(Dir::Read, bytes);
                    self.charge_near(Dir::Write, bytes);
                });
            }
            FaultDecision::Proceed => {}
        }
        dst.data[dst_at..dst_at + n].copy_from_slice(&src.data[src_range]);
        self.charge_far(Dir::Read, bytes);
        self.charge_near(Dir::Write, bytes);
        Ok(())
    }

    /// Copy `src[src_range]` into `dst[dst_at..]`. Charges a near read and a
    /// far write.
    pub fn near_to_far<T: Copy>(
        &self,
        src: &NearArray<T>,
        src_range: Range<usize>,
        dst: &mut FarArray<T>,
        dst_at: usize,
    ) -> Result<(), SpError> {
        range_check(&src_range, src.data.len())?;
        let n = src_range.len();
        range_check(&(dst_at..dst_at + n), dst.data.len())?;
        let bytes = (n * std::mem::size_of::<T>()) as u64;
        match self.preflight(FaultOp::NearToFar) {
            FaultDecision::Fail(index) => {
                tlmm_telemetry::flight::with_fault_retry(|| {
                    self.charge_near(Dir::Read, bytes);
                    self.charge_far(Dir::Write, bytes);
                });
                return Err(SpError::FaultInjected {
                    op: FaultOp::NearToFar,
                    index,
                });
            }
            FaultDecision::Delay(_) => {
                tlmm_telemetry::flight::with_fault_retry(|| {
                    self.charge_near(Dir::Read, bytes);
                    self.charge_far(Dir::Write, bytes);
                });
            }
            FaultDecision::Proceed => {}
        }
        dst.data[dst_at..dst_at + n].copy_from_slice(&src.data[src_range]);
        self.charge_near(Dir::Read, bytes);
        self.charge_far(Dir::Write, bytes);
        Ok(())
    }

    /// Far-to-far copy (e.g. the baseline shuffling data within DRAM):
    /// charges a far read *and* a far write.
    pub fn far_to_far<T: Copy>(
        &self,
        src: &FarArray<T>,
        src_range: Range<usize>,
        dst: &mut FarArray<T>,
        dst_at: usize,
    ) -> Result<(), SpError> {
        range_check(&src_range, src.data.len())?;
        let n = src_range.len();
        range_check(&(dst_at..dst_at + n), dst.data.len())?;
        dst.data[dst_at..dst_at + n].copy_from_slice(&src.data[src_range]);
        let bytes = (n * std::mem::size_of::<T>()) as u64;
        self.charge_far(Dir::Read, bytes);
        self.charge_far(Dir::Write, bytes);
        Ok(())
    }

    /// Near-to-near copy within the scratchpad.
    pub fn near_to_near<T: Copy>(
        &self,
        src: &NearArray<T>,
        src_range: Range<usize>,
        dst: &mut NearArray<T>,
        dst_at: usize,
    ) -> Result<(), SpError> {
        range_check(&src_range, src.data.len())?;
        let n = src_range.len();
        range_check(&(dst_at..dst_at + n), dst.data.len())?;
        dst.data[dst_at..dst_at + n].copy_from_slice(&src.data[src_range]);
        let bytes = (n * std::mem::size_of::<T>()) as u64;
        self.charge_near(Dir::Read, bytes);
        self.charge_near(Dir::Write, bytes);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Staging between a memory and the cache (one side charged)
    // ------------------------------------------------------------------

    /// Stream `src[range]` into the cache-resident buffer `dst` (cleared
    /// first). Charges a near read.
    pub fn load_near<T: Copy>(
        &self,
        src: &NearArray<T>,
        range: Range<usize>,
        dst: &mut Vec<T>,
    ) -> Result<(), SpError> {
        range_check(&range, src.data.len())?;
        dst.clear();
        dst.extend_from_slice(&src.data[range.clone()]);
        self.charge_near(Dir::Read, (range.len() * std::mem::size_of::<T>()) as u64);
        Ok(())
    }

    /// Stream the cache-resident `src` into `dst[at..]`. Charges a near
    /// write.
    pub fn store_near<T: Copy>(
        &self,
        dst: &mut NearArray<T>,
        at: usize,
        src: &[T],
    ) -> Result<(), SpError> {
        range_check(&(at..at + src.len()), dst.data.len())?;
        dst.data[at..at + src.len()].copy_from_slice(src);
        self.charge_near(Dir::Write, std::mem::size_of_val(src) as u64);
        Ok(())
    }

    /// Stream `src[range]` into the cache-resident buffer `dst` (cleared
    /// first). Charges a far read.
    pub fn load_far<T: Copy>(
        &self,
        src: &FarArray<T>,
        range: Range<usize>,
        dst: &mut Vec<T>,
    ) -> Result<(), SpError> {
        range_check(&range, src.data.len())?;
        dst.clear();
        dst.extend_from_slice(&src.data[range.clone()]);
        self.charge_far(Dir::Read, (range.len() * std::mem::size_of::<T>()) as u64);
        Ok(())
    }

    /// Stream the cache-resident `src` into `dst[at..]`. Charges a far
    /// write.
    pub fn store_far<T: Copy>(
        &self,
        dst: &mut FarArray<T>,
        at: usize,
        src: &[T],
    ) -> Result<(), SpError> {
        range_check(&(at..at + src.len()), dst.data.len())?;
        dst.data[at..at + src.len()].copy_from_slice(src);
        self.charge_far(Dir::Write, std::mem::size_of_val(src) as u64);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Phases
    // ------------------------------------------------------------------

    /// Begin a named phase; subsequent charges land in it. Returns a guard
    /// that ends the phase when dropped.
    pub fn phase(&self, name: &str) -> PhaseGuard<'_> {
        self.inner.recorder.begin_phase(name);
        PhaseGuard { tl: self }
    }

    /// Begin a named phase without a guard.
    pub fn begin_phase(&self, name: &str) {
        self.inner.recorder.begin_phase(name);
    }

    /// End the open phase.
    pub fn end_phase(&self) {
        self.inner.recorder.end_phase();
    }

    /// Mark the open phase overlappable (its transfers may proceed behind
    /// the next phase's compute — DMA semantics).
    pub fn mark_phase_overlappable(&self) {
        self.inner.recorder.mark_overlappable();
    }

    /// Snapshot the phase trace recorded so far.
    pub fn trace(&self) -> PhaseTrace {
        self.inner.recorder.trace()
    }

    /// Take the phase trace and reset the recorder.
    pub fn take_trace(&self) -> PhaseTrace {
        self.inner.recorder.take_trace()
    }

    /// Reset ledger and trace (e.g. after a warm-up run). Scratchpad
    /// allocations are untouched.
    pub fn reset_accounting(&self) {
        self.inner.ledger.reset();
        self.inner.recorder.reset();
    }
}

/// Ends the phase it guards when dropped.
pub struct PhaseGuard<'a> {
    tl: &'a TwoLevel,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.tl.end_phase();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::with_lane;

    fn tl() -> TwoLevel {
        // B=64, rho=4 (near block 256B), M=1MiB, Z=16KiB.
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    #[test]
    fn near_alloc_respects_capacity() {
        let tl = tl();
        let a = tl.near_alloc::<u64>((1 << 20) / 8).unwrap(); // fills M
        assert!(tl.near_alloc::<u64>(1).is_err());
        drop(a);
        assert!(tl.near_alloc::<u64>(1).is_ok());
    }

    #[test]
    fn near_alloc_error_reports_availability() {
        let tl = tl();
        let _a = tl.near_alloc::<u8>((1 << 20) - 100).unwrap();
        match tl.near_alloc::<u8>(200) {
            Err(SpError::NearCapacityExceeded {
                requested,
                available,
            }) => {
                assert_eq!(requested, 200);
                assert_eq!(available, 100);
            }
            other => panic!("expected capacity error, got {other:?}"),
        }
    }

    #[test]
    fn transfer_charges_both_sides_in_model_units() {
        let tl = tl();
        let far = tl.far_from_vec((0u64..512).collect::<Vec<_>>());
        let mut near = tl.near_alloc::<u64>(512).unwrap();
        tl.far_to_near(&far, 0..512, &mut near, 0).unwrap();
        let s = tl.ledger().snapshot();
        // 4096 bytes: 64 far blocks read, 16 near blocks written.
        assert_eq!(s.far_read_blocks, 64);
        assert_eq!(s.near_write_blocks, 16);
        assert_eq!(s.far_bytes, 4096);
        assert_eq!(s.near_bytes, 4096);
        assert_eq!(near.as_slice_uncharged()[511], 511);
    }

    #[test]
    fn round_trip_preserves_data() {
        let tl = tl();
        let far = tl.far_from_vec((0u32..1000).rev().collect::<Vec<_>>());
        let mut near = tl.near_alloc::<u32>(1000).unwrap();
        tl.far_to_near(&far, 0..1000, &mut near, 0).unwrap();
        let mut out = tl.far_alloc::<u32>(1000);
        tl.near_to_far(&near, 0..1000, &mut out, 0).unwrap();
        assert_eq!(far.as_slice_uncharged(), out.as_slice_uncharged());
    }

    #[test]
    fn staging_charges_one_side_only() {
        let tl = tl();
        let near = {
            let mut a = tl.near_alloc::<u64>(128).unwrap();
            a.as_mut_slice_uncharged()
                .iter_mut()
                .enumerate()
                .for_each(|(i, v)| *v = i as u64);
            a
        };
        let mut buf = Vec::new();
        tl.load_near(&near, 32..64, &mut buf).unwrap();
        assert_eq!(buf.len(), 32);
        assert_eq!(buf[0], 32);
        let s = tl.ledger().snapshot();
        assert_eq!(s.near_read_blocks, 1); // 256 bytes = exactly one rho*B block
        assert_eq!(s.far_blocks(), 0);
        assert_eq!(s.near_write_blocks, 0);
    }

    #[test]
    fn store_far_charges_write() {
        let tl = tl();
        let mut far = tl.far_alloc::<u16>(100);
        tl.store_far(&mut far, 10, &[7u16; 20]).unwrap();
        let s = tl.ledger().snapshot();
        assert_eq!(s.far_write_blocks, 1); // 40 bytes -> 1 block
        assert_eq!(far.as_slice_uncharged()[29], 7);
        assert_eq!(far.as_slice_uncharged()[30], 0);
    }

    #[test]
    fn out_of_bounds_is_reported_not_panicking() {
        let tl = tl();
        let far = tl.far_from_vec(vec![1u8; 10]);
        let mut near = tl.near_alloc::<u8>(10).unwrap();
        assert!(matches!(
            tl.far_to_near(&far, 5..15, &mut near, 0),
            Err(SpError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            tl.far_to_near(&far, 0..8, &mut near, 5),
            Err(SpError::RangeOutOfBounds { .. })
        ));
        // Nothing charged on failure.
        assert_eq!(tl.ledger().snapshot().total_blocks(), 0);
    }

    #[test]
    fn phases_collect_lane_work() {
        let tl = tl();
        let far = tl.far_from_vec(vec![0u64; 1024]);
        let mut near = tl.near_alloc::<u64>(1024).unwrap();
        {
            let _p = tl.phase("ingest");
            with_lane(1, || tl.far_to_near(&far, 0..1024, &mut near, 0).unwrap());
        }
        {
            let _p = tl.phase("compute");
            tl.charge_compute(500);
        }
        let t = tl.take_trace();
        assert_eq!(t.phases.len(), 2);
        assert_eq!(t.phases[0].name, "ingest");
        assert_eq!(t.phases[0].lanes[1].far_read_bytes, 8192);
        assert_eq!(t.phases[1].total().compute_ops, 500);
    }

    #[test]
    fn reset_accounting_clears_everything() {
        let tl = tl();
        let far = tl.far_from_vec(vec![0u8; 64]);
        let mut buf = Vec::new();
        tl.load_far(&far, 0..64, &mut buf).unwrap();
        tl.reset_accounting();
        assert_eq!(tl.ledger().snapshot().total_blocks(), 0);
        assert!(tl.take_trace().phases.is_empty());
    }

    #[test]
    fn clone_shares_budget_and_ledger() {
        let tl = tl();
        let tl2 = tl.clone();
        let _a = tl.near_alloc::<u8>(1 << 20).unwrap();
        assert!(tl2.near_alloc::<u8>(1).is_err());
        let far = tl2.far_from_vec(vec![0u8; 64]);
        let mut buf = Vec::new();
        tl2.load_far(&far, 0..64, &mut buf).unwrap();
        assert_eq!(tl.ledger().snapshot().far_read_blocks, 1);
    }

    #[test]
    fn concurrent_transfers_charge_losslessly() {
        let tl = tl();
        let far = tl.far_from_vec(vec![1u64; 64 * 128]);
        std::thread::scope(|s| {
            for t in 0..8 {
                let tl = tl.clone();
                let far = &far;
                s.spawn(move || {
                    with_lane(t, || {
                        let mut buf = Vec::new();
                        for i in 0..16 {
                            let start = (t * 16 + i) * 64;
                            tl.load_far(far, start..start + 64, &mut buf).unwrap();
                        }
                    })
                });
            }
        });
        // 128 loads of 512 bytes = 8 far blocks each.
        assert_eq!(tl.ledger().snapshot().far_read_blocks, 128 * 8);
        let t = tl.trace();
        assert_eq!(t.total().far_read_bytes, 128 * 512);
        assert_eq!(t.phases[0].active_lanes(), 8);
    }
}
