//! Runtime errors of the two-level memory.

use tlmm_model::params::ParamError;

/// Errors raised by allocation and transfer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpError {
    /// The [`tlmm_model::ScratchpadParams`] handed to
    /// [`crate::TwoLevel::try_new`] are invalid (zero scratchpad, near
    /// block larger than the scratchpad, bad ρ, …) — surfaced as a typed
    /// error at construction instead of a panic or an underflow deep in
    /// `near_alloc`.
    BadParams(ParamError),
    /// A cooperative cancellation point fired: the job's
    /// [`crate::CancelToken`] was cancelled or its deadline budget ran out.
    /// Raised only from [`crate::TwoLevel::checkpoint`] at phase
    /// boundaries, so scratchpad state is always consistent (and near
    /// allocations are released by RAII on unwind-free early return).
    Cancelled,
    /// A near (scratchpad) allocation would exceed the capacity `M`.
    /// This is the defining constraint of the architecture: the scratchpad
    /// "cannot replace DRAM entirely" (§I).
    NearCapacityExceeded {
        /// Bytes the allocation asked for.
        requested: u64,
        /// Bytes still available in the scratchpad.
        available: u64,
    },
    /// A transfer or staging range fell outside an array's bounds.
    RangeOutOfBounds {
        /// Offending half-open range start.
        start: usize,
        /// Offending half-open range end.
        end: usize,
        /// Length of the array the range was applied to.
        len: usize,
    },
    /// Source and destination ranges of a transfer have different lengths.
    LengthMismatch {
        /// Source elements.
        src: usize,
        /// Destination elements.
        dst: usize,
    },
    /// An installed [`crate::fault::FaultPlan`] failed this operation.
    /// Injected transfer failures are charged in full (the payload moved
    /// and was lost); callers are expected to degrade, not crash.
    FaultInjected {
        /// The operation class that was hit.
        op: crate::fault::FaultOp,
        /// 0-based index of the operation within its class.
        index: u64,
    },
    /// A transfer was issued against a staging-arena generation that has
    /// already been freed. Generations are never reused while live, so
    /// this always means the caller kept a handle past the buffer's drop.
    StaleGeneration {
        /// The dead generation the caller presented.
        generation: u64,
    },
    /// A retire was presented for a transfer id that is not pending:
    /// either it was never issued or it has already been retired
    /// (double-retire). The arena keeps issue/retire strictly paired.
    TransferNotPending {
        /// The offending transfer id.
        id: u64,
    },
}

impl SpError {
    /// Is this error a deliberate injection (as opposed to a genuine
    /// capacity or bounds violation)? Degradation ladders retry these.
    pub fn is_injected(&self) -> bool {
        matches!(self, SpError::FaultInjected { .. })
    }
}

impl core::fmt::Display for SpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpError::BadParams(e) => write!(f, "invalid scratchpad parameters: {e}"),
            SpError::Cancelled => write!(f, "job cancelled at a phase boundary"),
            SpError::NearCapacityExceeded {
                requested,
                available,
            } => write!(
                f,
                "scratchpad capacity exceeded: requested {requested} B, {available} B available"
            ),
            SpError::RangeOutOfBounds { start, end, len } => {
                write!(f, "range {start}..{end} out of bounds for length {len}")
            }
            SpError::LengthMismatch { src, dst } => {
                write!(f, "transfer length mismatch: src {src} elements, dst {dst}")
            }
            SpError::FaultInjected { op, index } => {
                write!(f, "injected fault: {} op #{index}", op.name())
            }
            SpError::StaleGeneration { generation } => {
                write!(
                    f,
                    "transfer issued against dead arena generation {generation}"
                )
            }
            SpError::TransferNotPending { id } => {
                write!(
                    f,
                    "transfer #{id} is not pending (never issued or already retired)"
                )
            }
        }
    }
}

impl std::error::Error for SpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpError::NearCapacityExceeded {
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));
        let e = SpError::RangeOutOfBounds {
            start: 5,
            end: 9,
            len: 7,
        };
        assert!(e.to_string().contains("5..9"));
        let e = SpError::LengthMismatch { src: 3, dst: 4 };
        assert!(e.to_string().contains("src 3"));
    }
}
