//! Phase traces: what the runtime records and the simulator replays.
//!
//! A run of an algorithm on the two-level memory produces a sequence of
//! **phases** (e.g. "phase1.chunk_sort", "phase2.merge"). Within a phase,
//! work is attributed to **virtual lanes** — the simulated cores. Lanes are
//! virtual so that a laptop with 8 host threads can produce the trace of a
//! 256-core machine: the algorithm partitions its work into `lanes` pieces
//! and wraps each piece in [`with_lane`], no matter which host thread runs
//! it.
//!
//! The resulting [`PhaseTrace`] contains, per phase and lane, the exact byte
//! volumes moved against each memory and the RAM-model operation count. The
//! `tlmm-memsim` crate turns this into simulated wall-clock time under a
//! machine configuration (Fig. 4 of the paper).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Run `f` with all runtime charges on this thread attributed to virtual
/// lane `lane`. Nestable; the previous lane is restored afterwards.
///
/// Delegates to [`tlmm_telemetry::with_lane`] so that telemetry spans and
/// events opened inside the closure carry the same lane attribution the
/// cost trace uses — one thread-local, one source of truth.
pub fn with_lane<R>(lane: usize, f: impl FnOnce() -> R) -> R {
    tlmm_telemetry::with_lane(lane, f)
}

/// The lane charges on this thread are currently attributed to.
/// Outside any [`with_lane`] scope, charges land on lane 0.
pub fn current_lane() -> usize {
    tlmm_telemetry::current_lane().unwrap_or(0)
}

/// Work attributed to one virtual lane within one phase. All byte fields are
/// raw bytes moved (the model-unit block counts live in the
/// [`tlmm_model::CostLedger`]; the simulator wants bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneWork {
    /// Bytes read from far memory (DRAM → cache).
    pub far_read_bytes: u64,
    /// Bytes written to far memory.
    pub far_write_bytes: u64,
    /// Bytes read from near memory (scratchpad → cache).
    pub near_read_bytes: u64,
    /// Bytes written to near memory.
    pub near_write_bytes: u64,
    /// RAM-model operations (comparisons, arithmetic) executed.
    pub compute_ops: u64,
    /// Virtual byte-units this lane's worker spent waiting for a transfer
    /// slot under an installed deterministic [`crate::executor::Executor`]
    /// (Theorem 10's `p′` arbitration). Zero when no executor is installed,
    /// in host mode, and whenever `p ≤ p′` demand never collides.
    pub slot_wait_units: u64,
}

impl LaneWork {
    /// Total bytes that cross the far-memory channels.
    pub fn far_bytes(&self) -> u64 {
        self.far_read_bytes + self.far_write_bytes
    }

    /// Total bytes that cross the near-memory channels.
    pub fn near_bytes(&self) -> u64 {
        self.near_read_bytes + self.near_write_bytes
    }

    /// Total bytes through the on-chip network (everything crosses it).
    pub fn noc_bytes(&self) -> u64 {
        self.far_bytes() + self.near_bytes()
    }

    /// Is this lane entirely idle?
    pub fn is_idle(&self) -> bool {
        self.noc_bytes() == 0 && self.compute_ops == 0
    }

    /// Element-wise sum.
    pub fn merged(&self, o: &LaneWork) -> LaneWork {
        LaneWork {
            far_read_bytes: self.far_read_bytes + o.far_read_bytes,
            far_write_bytes: self.far_write_bytes + o.far_write_bytes,
            near_read_bytes: self.near_read_bytes + o.near_read_bytes,
            near_write_bytes: self.near_write_bytes + o.near_write_bytes,
            compute_ops: self.compute_ops + o.compute_ops,
            slot_wait_units: self.slot_wait_units + o.slot_wait_units,
        }
    }
}

/// One recorded phase: a name and per-lane work vectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Human-readable phase name (e.g. `"nmsort.p1.sort_chunk"`).
    pub name: String,
    /// Per-virtual-lane work. Index = lane id; lanes never charged are
    /// absent only if beyond the maximum charged lane.
    pub lanes: Vec<LaneWork>,
    /// Hint that this phase's transfers may be overlapped with the *next*
    /// phase's compute (set for DMA-issued transfers; §VII future work).
    pub overlappable: bool,
    /// Number of injected faults (failures and delays) that fired while this
    /// phase was open. Zero on clean runs; lets memsim replay distinguish
    /// degraded traces.
    pub faults: u64,
}

impl PhaseRecord {
    /// Aggregate work over all lanes.
    pub fn total(&self) -> LaneWork {
        self.lanes
            .iter()
            .fold(LaneWork::default(), |a, l| a.merged(l))
    }

    /// Number of non-idle lanes.
    pub fn active_lanes(&self) -> usize {
        self.lanes.iter().filter(|l| !l.is_idle()).count()
    }

    /// The busiest lane's work (the critical path if the phase is
    /// compute-limited).
    pub fn max_lane(&self) -> LaneWork {
        self.lanes
            .iter()
            .copied()
            .max_by_key(|l| (l.compute_ops, l.noc_bytes()))
            .unwrap_or_default()
    }
}

/// The full trace of a run: an ordered list of phases.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseTrace {
    /// Phases in execution order.
    pub phases: Vec<PhaseRecord>,
}

impl PhaseTrace {
    /// Aggregate work over the whole run.
    pub fn total(&self) -> LaneWork {
        self.phases
            .iter()
            .fold(LaneWork::default(), |a, p| a.merged(&p.total()))
    }

    /// Maximum lane index charged anywhere, plus one.
    pub fn lane_count(&self) -> usize {
        self.phases.iter().map(|p| p.lanes.len()).max().unwrap_or(0)
    }

    /// Total injected faults recorded across all phases.
    pub fn faults(&self) -> u64 {
        self.phases.iter().map(|p| p.faults).sum()
    }

    /// Per-lane work summed across all phases (index = lane id).
    pub fn lane_totals(&self) -> Vec<LaneWork> {
        let mut totals = vec![LaneWork::default(); self.lane_count()];
        for p in &self.phases {
            for (i, l) in p.lanes.iter().enumerate() {
                totals[i] = totals[i].merged(l);
            }
        }
        totals
    }
}

/// Thread-safe trace recorder. One per [`crate::TwoLevel`].
///
/// Charging is coarse (one call per chunk transfer or buffer refill, not per
/// element), so a mutex is plenty; see DESIGN.md §5.1.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    inner: Mutex<RecorderInner>,
}

#[derive(Debug, Default)]
struct RecorderInner {
    finished: Vec<PhaseRecord>,
    open: Option<PhaseRecord>,
    /// Wall-clock telemetry span covering the open phase. Detached: phase
    /// begin/end may happen on different frames (or threads) than the
    /// charges inside it.
    open_span: Option<tlmm_telemetry::Span>,
}

impl RecorderInner {
    fn open_mut(&mut self) -> &mut PhaseRecord {
        self.open.get_or_insert_with(|| {
            self.open_span = Some(tlmm_telemetry::Span::detached("anonymous"));
            tlmm_telemetry::flight::phase_event(true, "anonymous");
            PhaseRecord {
                name: "anonymous".to_string(),
                ..Default::default()
            }
        })
    }

    fn close_open(&mut self) {
        if let Some(p) = self.open.take() {
            tlmm_telemetry::flight::phase_event(false, &p.name);
            self.finished.push(p);
        }
        if let Some(span) = self.open_span.take() {
            span.finish();
        }
    }
}

impl TraceRecorder {
    /// Fresh recorder with no phases.
    pub fn new() -> Self {
        Self::default()
    }

    /// Close the open phase (if any) and start a new one.
    pub fn begin_phase(&self, name: &str) {
        let mut g = self.inner.lock();
        g.close_open();
        tlmm_telemetry::flight::phase_event(true, name);
        g.open = Some(PhaseRecord {
            name: name.to_string(),
            ..Default::default()
        });
        g.open_span = Some(tlmm_telemetry::Span::detached(name));
    }

    /// Mark the open phase as overlappable (DMA semantics).
    pub fn mark_overlappable(&self) {
        let mut g = self.inner.lock();
        g.open_mut().overlappable = true;
    }

    /// Record that an injected fault fired inside the open phase (an
    /// anonymous phase is opened if none is).
    pub fn record_fault(&self) {
        let mut g = self.inner.lock();
        g.open_mut().faults += 1;
    }

    /// Close the open phase.
    pub fn end_phase(&self) {
        self.inner.lock().close_open();
    }

    /// Charge work to the current thread's virtual lane in the open phase
    /// (an anonymous phase is opened if none is).
    pub fn charge(&self, f: impl FnOnce(&mut LaneWork)) {
        let lane = current_lane();
        let mut g = self.inner.lock();
        let p = g.open_mut();
        if p.lanes.len() <= lane {
            p.lanes.resize(lane + 1, LaneWork::default());
        }
        f(&mut p.lanes[lane]);
    }

    /// Snapshot the trace so far (closing nothing); the open phase is
    /// included as-is.
    pub fn trace(&self) -> PhaseTrace {
        let g = self.inner.lock();
        let mut phases = g.finished.clone();
        if let Some(p) = &g.open {
            phases.push(p.clone());
        }
        PhaseTrace { phases }
    }

    /// Take the trace and reset the recorder.
    pub fn take_trace(&self) -> PhaseTrace {
        let mut g = self.inner.lock();
        g.close_open();
        PhaseTrace {
            phases: std::mem::take(&mut g.finished),
        }
    }

    /// Drop everything recorded so far.
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        g.finished.clear();
        if let Some(p) = g.open.take() {
            // Keep the flight recorder's phase events balanced even when
            // the phase record itself is discarded.
            tlmm_telemetry::flight::phase_event(false, &p.name);
        }
        if let Some(span) = g.open_span.take() {
            span.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_thread_local_and_nest() {
        assert_eq!(current_lane(), 0);
        with_lane(3, || {
            assert_eq!(current_lane(), 3);
            with_lane(5, || assert_eq!(current_lane(), 5));
            assert_eq!(current_lane(), 3);
        });
        assert_eq!(current_lane(), 0);
    }

    #[test]
    fn charges_land_in_named_phase_and_lane() {
        let r = TraceRecorder::new();
        r.begin_phase("p0");
        with_lane(2, || r.charge(|w| w.far_read_bytes += 100));
        r.begin_phase("p1");
        r.charge(|w| w.near_write_bytes += 7);
        r.end_phase();
        let t = r.take_trace();
        assert_eq!(t.phases.len(), 2);
        assert_eq!(t.phases[0].name, "p0");
        assert_eq!(t.phases[0].lanes.len(), 3);
        assert_eq!(t.phases[0].lanes[2].far_read_bytes, 100);
        assert_eq!(t.phases[1].lanes[0].near_write_bytes, 7);
    }

    #[test]
    fn anonymous_phase_catches_strays() {
        let r = TraceRecorder::new();
        r.charge(|w| w.compute_ops += 1);
        let t = r.take_trace();
        assert_eq!(t.phases.len(), 1);
        assert_eq!(t.phases[0].name, "anonymous");
        assert_eq!(t.total().compute_ops, 1);
    }

    #[test]
    fn totals_and_max_lane() {
        let p = PhaseRecord {
            name: "x".into(),
            lanes: vec![
                LaneWork {
                    compute_ops: 5,
                    far_read_bytes: 10,
                    ..Default::default()
                },
                LaneWork {
                    compute_ops: 9,
                    ..Default::default()
                },
                LaneWork::default(),
            ],
            overlappable: false,
            faults: 0,
        };
        assert_eq!(p.total().compute_ops, 14);
        assert_eq!(p.total().far_bytes(), 10);
        assert_eq!(p.max_lane().compute_ops, 9);
        assert_eq!(p.active_lanes(), 2);
    }

    #[test]
    fn trace_lane_count_and_total() {
        let r = TraceRecorder::new();
        r.begin_phase("a");
        with_lane(7, || r.charge(|w| w.compute_ops += 1));
        r.begin_phase("b");
        with_lane(1, || r.charge(|w| w.far_write_bytes += 64));
        let t = r.trace();
        assert_eq!(t.lane_count(), 8);
        assert_eq!(t.total().compute_ops, 1);
        assert_eq!(t.total().far_bytes(), 64);
        // trace() is non-destructive.
        assert_eq!(r.trace().phases.len(), 2);
    }

    #[test]
    fn concurrent_charges_from_many_lanes() {
        let r = std::sync::Arc::new(TraceRecorder::new());
        r.begin_phase("par");
        std::thread::scope(|s| {
            for lane in 0..16 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    with_lane(lane, || {
                        for _ in 0..1000 {
                            r.charge(|w| w.compute_ops += 1);
                        }
                    })
                });
            }
        });
        let t = r.take_trace();
        assert_eq!(t.total().compute_ops, 16_000);
        assert_eq!(t.phases[0].active_lanes(), 16);
    }

    #[test]
    fn lanework_is_idle() {
        assert!(LaneWork::default().is_idle());
        assert!(!LaneWork {
            compute_ops: 1,
            ..Default::default()
        }
        .is_idle());
    }
}
