//! User-controlled two-level main memory runtime.
//!
//! The scratchpad architecture of the paper (§VI) exposes near memory as a
//! separate physical address range reached with ordinary loads/stores; the
//! *application* decides what lives where. This crate is that programming
//! model in library form:
//!
//! * [`TwoLevel`] — a handle to a two-level memory: a capacity-limited
//!   **near** region (the scratchpad, size `M`) and an arbitrarily large
//!   **far** region (DRAM). Both are host RAM; what makes them different is
//!   the *accounting*: every transfer is charged to a
//!   [`tlmm_model::CostLedger`] in exact model units (`⌈bytes/B⌉` far
//!   blocks, `⌈bytes/ρB⌉` near blocks) and recorded in a [`trace::PhaseTrace`]
//!   that the `tlmm-memsim` crate replays through an architectural timing
//!   model.
//! * [`FarArray`] / [`NearArray`] — typed arrays living in one region.
//!   Allocating a [`NearArray`] beyond the scratchpad capacity fails, exactly
//!   like the modified `malloc` of §VI-B.2 would.
//! * Transfer and staging methods on [`TwoLevel`] ([`TwoLevel::far_to_near`],
//!   [`TwoLevel::load_near`], …): algorithms *choreograph* data movement
//!   explicitly, which is the whole point of a user-controlled hierarchy.
//! * [`dma::DmaEngine`] — background-thread transfers (§VII future work).
//! * [`executor::Executor`] — a worker-pool runtime arbitrating every
//!   charged transfer over a bounded pool of `p′` transfer slots
//!   (Theorem 10), with a seeded deterministic scheduler mode replayable
//!   bit-for-bit from `(seed, p, p′)`.
//! * [`trace`] — virtual-lane phase traces. Simulated parallelism (e.g. the
//!   256 cores of the paper's Fig. 4 machine) is expressed by charging work
//!   to *virtual lanes* via [`trace::with_lane`], independent of how many
//!   host threads actually execute.
//!
//! # Example
//!
//! ```
//! use tlmm_scratchpad::TwoLevel;
//! use tlmm_model::ScratchpadParams;
//!
//! let params = ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap();
//! let tl = TwoLevel::new(params);
//! let far = tl.far_from_vec((0u64..1000).rev().collect::<Vec<_>>());
//! let mut near = tl.near_alloc::<u64>(1000).unwrap();
//! tl.far_to_near(&far, 0..1000, &mut near, 0).unwrap();
//! let snap = tl.ledger().snapshot();
//! assert_eq!(snap.far_read_blocks, 125); // ⌈8000 B / 64 B⌉
//! assert_eq!(snap.near_write_blocks, 32); // ⌈8000 B / 256 B⌉ (ρB = 256)
//! ```

pub mod arena;
pub mod array;
pub mod backoff;
pub mod cancel;
pub mod dma;
pub mod error;
pub mod executor;
pub mod fault;
pub mod mem;
pub mod stream;
pub mod trace;

pub use arena::{ArenaBuf, ArenaStats, OffsetAlloc, StagingArena, TransferId};
pub use array::{FarArray, NearArray};
pub use backoff::{splitmix64, Backoff, RetryClass};
pub use cancel::CancelToken;
pub use error::SpError;
pub use executor::{
    ExecConfig, ExecConfigError, ExecMode, ExecReport, Executor, TransferGrant, WorkerReport,
    EXEC_SEED_ENV, EXEC_SLOTS_ENV, EXEC_WORKERS_ENV,
};
pub use fault::{
    with_faults_suppressed, FaultDecision, FaultEvent, FaultInjector, FaultKind, FaultOp,
    FaultPlan, FAULT_SEED_ENV,
};
pub use mem::TwoLevel;
pub use stream::{par_scan_far, scan_far, FarReader, FarWriter, NearReader};
pub use trace::{with_lane, LaneWork, PhaseRecord, PhaseTrace};

// Re-exported so algorithm crates can name transfer directions without
// depending on `tlmm-model` directly.
pub use tlmm_model::ledger::Dir;
