//! DMA engine: background transfers between far and near memory.
//!
//! §VI-B and §VII of the paper call out DMA engines that "transfer data
//! between the near and far memory in the background, allowing overlap of
//! computation and communication" as future work whose absence leaves the
//! reported NMsort numbers pessimistic ("our prototype implementation simply
//! waits for the transfer to complete").
//!
//! [`DmaEngine`] provides that capability: a transfer is *issued* (charged
//! immediately, and the open phase is marked overlappable so the simulator
//! may hide it behind the next phase's compute) and executed by a background
//! thread; [`DmaTransfer::wait`] joins it and returns the arrays.

use crate::arena::StagingArena;
use crate::array::{FarArray, NearArray};
use crate::backoff::{Backoff, RetryClass};
use crate::error::SpError;
use crate::fault::{FaultDecision, FaultOp};
use crate::mem::TwoLevel;
use crate::trace::{current_lane, with_lane};
use std::ops::Range;
use std::thread::JoinHandle;
use tlmm_model::ledger::Dir;

/// Issues background transfers on a [`TwoLevel`] memory.
///
/// Bound to a [`StagingArena`] (see [`DmaEngine::with_arena`]), every
/// issue becomes a pending-transfer record in the arena, retired when the
/// background copy completes — so arena occupancy and overlap statistics
/// cover engine-driven movement too, and the flight recorder sees a
/// retire event for each background transfer.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    tl: TwoLevel,
    arena: Option<StagingArena>,
}

/// An in-flight DMA transfer; [`wait`](Self::wait) returns the arrays.
///
/// When the engine aborts an issue (an injected [`FaultOp::DmaIssue`] fault),
/// the transfer is executed synchronously on the issuing thread instead and
/// the returned handle is already complete.
#[must_use = "a DMA transfer must be waited on to get the arrays back"]
pub struct DmaTransfer<S, D> {
    state: DmaState<S, D>,
}

enum DmaState<S, D> {
    Pending(JoinHandle<Result<(S, D), SpError>>),
    Done(Result<(S, D), SpError>),
}

impl<S, D> DmaTransfer<S, D> {
    /// Block until the transfer completes; returns the source and
    /// destination arrays (or the transfer's error).
    pub fn wait(self) -> Result<(S, D), SpError> {
        match self.state {
            DmaState::Pending(handle) => handle.join().expect("DMA worker thread panicked"),
            DmaState::Done(res) => res,
        }
    }

    /// Has the transfer finished (non-blocking)?
    pub fn is_done(&self) -> bool {
        match &self.state {
            DmaState::Pending(handle) => handle.is_finished(),
            DmaState::Done(_) => true,
        }
    }
}

/// Run a transfer under the unified [`Backoff`] ladder
/// ([`RetryClass::Dma`]): bounded retry of *injected* failures, then one
/// forced attempt with fault injection suppressed so the engine always
/// makes progress. Every failed attempt has already been charged in full by
/// the runtime, so retries are honestly visible in the ledger.
fn transfer_with_retry(
    tl: &TwoLevel,
    f: &mut impl FnMut() -> Result<(), SpError>,
) -> Result<(), SpError> {
    Backoff::for_memory(tl, RetryClass::Dma).run_forced(&mut *f)
}

impl DmaEngine {
    /// A DMA engine bound to a two-level memory.
    pub fn new(tl: &TwoLevel) -> Self {
        Self {
            tl: tl.clone(),
            arena: None,
        }
    }

    /// Bind a staging arena: every subsequent issue is tracked as a
    /// pending transfer in `arena` and retired on completion.
    pub fn with_arena(mut self, arena: &StagingArena) -> Self {
        self.arena = Some(arena.clone());
        self
    }

    /// Issue a slot-less pending record for `bytes` moving in `dir`
    /// (no-op without a bound arena); the caller retires it when the
    /// transfer completes.
    fn track_issue(
        &self,
        dir: Dir,
        bytes: u64,
    ) -> Option<(StagingArena, crate::arena::TransferId)> {
        self.arena
            .as_ref()
            .map(|a| (a.clone(), a.issue_external(dir, bytes)))
    }

    /// Issue a far→near transfer in the background. Charges are attributed
    /// to the issuing lane and the open phase is marked overlappable.
    pub fn far_to_near<T: Copy + Send + 'static>(
        &self,
        src: FarArray<T>,
        src_range: Range<usize>,
        mut dst: NearArray<T>,
        dst_at: usize,
    ) -> DmaTransfer<FarArray<T>, NearArray<T>> {
        self.tl.mark_phase_overlappable();
        let lane = current_lane();
        let bytes = (src_range.len() * std::mem::size_of::<T>()) as u64;
        record_issue("far_to_near", bytes, lane);
        let tracked = self.track_issue(Dir::Read, bytes);
        if let FaultDecision::Fail(_) = self.tl.preflight(FaultOp::DmaIssue) {
            // The engine rejected the descriptor: fall back to a synchronous
            // transfer on the issuing thread.
            tlmm_telemetry::counter!("degradation.dma_abort").incr();
            tlmm_telemetry::counter!("degradation.dma_sync_fallback").incr();
            let res = {
                let mut op = || {
                    self.tl
                        .far_to_near(&src, src_range.clone(), &mut dst, dst_at)
                };
                transfer_with_retry(&self.tl, &mut op)
            };
            if let Some((arena, id)) = tracked {
                arena
                    .retire(id)
                    .expect("sync fallback retires its own issue");
            }
            return DmaTransfer {
                state: DmaState::Done(res.map(|()| (src, dst))),
            };
        }
        let tl = self.tl.clone();
        let handle = std::thread::spawn(move || {
            with_lane(lane, || {
                let res = {
                    let mut op = || tl.far_to_near(&src, src_range.clone(), &mut dst, dst_at);
                    transfer_with_retry(&tl, &mut op)
                };
                if let Some((arena, id)) = tracked {
                    arena
                        .retire(id)
                        .expect("background transfer retires its own issue");
                }
                res.map(|()| (src, dst))
            })
        });
        DmaTransfer {
            state: DmaState::Pending(handle),
        }
    }

    /// Issue a near→far transfer in the background.
    pub fn near_to_far<T: Copy + Send + 'static>(
        &self,
        src: NearArray<T>,
        src_range: Range<usize>,
        mut dst: FarArray<T>,
        dst_at: usize,
    ) -> DmaTransfer<NearArray<T>, FarArray<T>> {
        self.tl.mark_phase_overlappable();
        let lane = current_lane();
        let bytes = (src_range.len() * std::mem::size_of::<T>()) as u64;
        record_issue("near_to_far", bytes, lane);
        let tracked = self.track_issue(Dir::Write, bytes);
        if let FaultDecision::Fail(_) = self.tl.preflight(FaultOp::DmaIssue) {
            tlmm_telemetry::counter!("degradation.dma_abort").incr();
            tlmm_telemetry::counter!("degradation.dma_sync_fallback").incr();
            let res = {
                let mut op = || {
                    self.tl
                        .near_to_far(&src, src_range.clone(), &mut dst, dst_at)
                };
                transfer_with_retry(&self.tl, &mut op)
            };
            if let Some((arena, id)) = tracked {
                arena
                    .retire(id)
                    .expect("sync fallback retires its own issue");
            }
            return DmaTransfer {
                state: DmaState::Done(res.map(|()| (src, dst))),
            };
        }
        let tl = self.tl.clone();
        let handle = std::thread::spawn(move || {
            with_lane(lane, || {
                let res = {
                    let mut op = || tl.near_to_far(&src, src_range.clone(), &mut dst, dst_at);
                    transfer_with_retry(&tl, &mut op)
                };
                if let Some((arena, id)) = tracked {
                    arena
                        .retire(id)
                        .expect("background transfer retires its own issue");
                }
                res.map(|()| (src, dst))
            })
        });
        DmaTransfer {
            state: DmaState::Pending(handle),
        }
    }
}

/// Telemetry for one issued DMA transfer: counters, the transfer-size
/// histogram, and (when the sink is on) a structured `dma` event.
fn record_issue(dir: &str, bytes: u64, lane: usize) {
    tlmm_telemetry::counter!("dma.transfers").incr();
    tlmm_telemetry::counter!("dma.bytes").add(bytes);
    tlmm_telemetry::histogram!("dma.transfer_bytes").record(bytes);
    if tlmm_telemetry::sink::enabled() {
        use serde::Value;
        tlmm_telemetry::sink::emit(
            "dma",
            vec![
                ("dir".to_string(), Value::Str(dir.to_string())),
                ("bytes".to_string(), Value::U64(bytes)),
                ("lane".to_string(), Value::U64(lane as u64)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    #[test]
    fn dma_round_trip() {
        let tl = tl();
        let dma = DmaEngine::new(&tl);
        let far = tl.far_from_vec((0u64..1024).collect::<Vec<_>>());
        let near = tl.near_alloc::<u64>(1024).unwrap();
        let t = dma.far_to_near(far, 0..1024, near, 0);
        let (_far, near) = t.wait().unwrap();
        assert_eq!(near.as_slice_uncharged()[1023], 1023);
        let out = tl.far_alloc::<u64>(1024);
        let t = dma.near_to_far(near, 0..1024, out, 0);
        let (_near, out) = t.wait().unwrap();
        assert_eq!(out.as_slice_uncharged()[7], 7);
        let s = tl.ledger().snapshot();
        assert_eq!(s.far_read_blocks, 128);
        assert_eq!(s.far_write_blocks, 128);
    }

    #[test]
    fn dma_overlaps_with_issuer_compute() {
        let tl = tl();
        let dma = DmaEngine::new(&tl);
        tl.begin_phase("overlapped");
        let far = tl.far_from_vec(vec![42u8; 4096]);
        let near = tl.near_alloc::<u8>(4096).unwrap();
        let t = dma.far_to_near(far, 0..4096, near, 0);
        // Compute while the transfer is in flight.
        tl.charge_compute(1000);
        let (_, near) = t.wait().unwrap();
        tl.end_phase();
        assert!(near.as_slice_uncharged().iter().all(|&b| b == 42));
        let trace = tl.take_trace();
        assert!(trace.phases[0].overlappable);
        assert_eq!(trace.phases[0].total().compute_ops, 1000);
        assert_eq!(trace.phases[0].total().far_read_bytes, 4096);
    }

    #[test]
    fn dma_propagates_errors() {
        let tl = tl();
        let dma = DmaEngine::new(&tl);
        let far = tl.far_from_vec(vec![0u8; 16]);
        let near = tl.near_alloc::<u8>(8).unwrap();
        let t = dma.far_to_near(far, 0..16, near, 0);
        assert!(t.wait().is_err());
    }

    #[test]
    fn dma_abort_falls_back_to_sync() {
        let tl = tl();
        tl.install_fault_plan(crate::fault::FaultPlan::none(7).fail_kth(FaultOp::DmaIssue, 0));
        let dma = DmaEngine::new(&tl);
        let far = tl.far_from_vec((0u64..256).collect::<Vec<_>>());
        let near = tl.near_alloc::<u64>(256).unwrap();
        let t = dma.far_to_near(far, 0..256, near, 0);
        // The aborted issue completed synchronously on this thread.
        assert!(t.is_done());
        let (_far, near) = t.wait().unwrap();
        assert_eq!(near.as_slice_uncharged()[255], 255);
        assert_eq!(tl.faults_injected(), 1);
    }

    #[test]
    fn dma_retries_injected_transfer_faults() {
        let tl = tl();
        // The first far→near transfer fails; the worker must retry and
        // deliver anyway, with the aborted attempt charged in full.
        tl.install_fault_plan(crate::fault::FaultPlan::none(7).fail_kth(FaultOp::FarToNear, 0));
        let dma = DmaEngine::new(&tl);
        let far = tl.far_from_vec((0u64..128).collect::<Vec<_>>());
        let near = tl.near_alloc::<u64>(128).unwrap();
        let (_far, near) = dma.far_to_near(far, 0..128, near, 0).wait().unwrap();
        assert_eq!(near.as_slice_uncharged()[127], 127);
        let s = tl.ledger().snapshot();
        // 128 * 8 B = 1024 B = 16 far blocks per attempt, two attempts.
        assert_eq!(s.far_read_blocks, 32);
    }

    #[test]
    fn arena_bound_engine_pends_and_retires() {
        let tl = tl();
        let arena = StagingArena::new(&tl);
        let dma = DmaEngine::new(&tl).with_arena(&arena);
        let far = tl.far_from_vec((0u64..256).collect::<Vec<_>>());
        let near = tl.near_alloc::<u64>(256).unwrap();
        let t = dma.far_to_near(far, 0..256, near, 0);
        let (_far, near) = t.wait().unwrap();
        assert_eq!(near.as_slice_uncharged()[255], 255);
        // The background worker retired its record before wait() returned.
        assert_eq!(arena.pending_transfers(), 0);
        let s = arena.stats();
        assert_eq!(s.issued, 1);
        assert_eq!(s.retired, 1);

        // The sync-fallback path retires too.
        tl.install_fault_plan(crate::fault::FaultPlan::none(7).fail_kth(FaultOp::DmaIssue, 0));
        let out = tl.far_alloc::<u64>(256);
        let t = dma.near_to_far(near, 0..256, out, 0);
        assert!(t.is_done());
        t.wait().unwrap();
        assert_eq!(arena.pending_transfers(), 0);
        assert_eq!(arena.stats().retired, 2);
    }

    #[test]
    fn dma_charges_to_issuing_lane() {
        let tl = tl();
        let dma = DmaEngine::new(&tl);
        let far = tl.far_from_vec(vec![0u64; 64]);
        let near = tl.near_alloc::<u64>(64).unwrap();
        let t = with_lane(5, || dma.far_to_near(far, 0..64, near, 0));
        t.wait().unwrap();
        let trace = tl.take_trace();
        assert_eq!(trace.phases[0].lanes[5].far_read_bytes, 512);
    }
}
