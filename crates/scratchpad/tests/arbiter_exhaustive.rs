//! Exhaustive small-case verification of the transfer-slot arbiter.
//!
//! No loom in the vendored toolchain, but the deterministic arbiter doesn't
//! need it: its entire behaviour is a pure function of the request order.
//! Enumerating EVERY interleaving of 3 workers × 2 transfers each (90
//! distinct orders, each under several slot counts and seeds) therefore
//! covers the complete schedule space of the small case — stronger than
//! sampling. Invariants checked on every schedule:
//!
//! * conservation — every issued byte is booked on exactly one slot;
//! * clock decomposition — each worker's final virtual clock is exactly
//!   its service (bytes) plus its recorded waits;
//! * makespan bounds — `total/p′ ≤ makespan ≤ total` and never below the
//!   busiest single worker;
//! * replay — the identical `(seed, p, p′, order)` reproduces the report
//!   bit-for-bit;
//! * zero waits whenever every worker has a private slot (`p′ = p`).

use tlmm_scratchpad::{ExecConfig, ExecReport, Executor};

const WORKERS: usize = 3;
const PER_WORKER: usize = 2;

/// Bytes of worker `w`'s `j`-th transfer — distinct sizes so slot busy
/// accounting can't accidentally cancel.
fn bytes_of(w: usize, j: usize) -> u64 {
    64 * (w as u64 + 1) + 17 * j as u64
}

/// All distinct interleavings of the multiset {0,0,1,1,2,2}: which worker
/// issues at each step. 6!/(2!·2!·2!) = 90.
fn interleavings() -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut seq = Vec::with_capacity(WORKERS * PER_WORKER);
    let mut left = [PER_WORKER; WORKERS];
    fn rec(seq: &mut Vec<usize>, left: &mut [usize; WORKERS], out: &mut Vec<Vec<usize>>) {
        if seq.len() == WORKERS * PER_WORKER {
            out.push(seq.clone());
            return;
        }
        for w in 0..WORKERS {
            if left[w] > 0 {
                left[w] -= 1;
                seq.push(w);
                rec(seq, left, out);
                seq.pop();
                left[w] += 1;
            }
        }
    }
    rec(&mut seq, &mut left, &mut out);
    out
}

fn run_schedule(order: &[usize], slots: usize, seed: u64) -> ExecReport {
    let ex = Executor::new(ExecConfig::deterministic(WORKERS, slots, seed));
    let mut next = [0usize; WORKERS];
    for &w in order {
        ex.transfer(w, bytes_of(w, next[w]));
        next[w] += 1;
    }
    ex.report()
}

#[test]
fn every_interleaving_upholds_the_arbiter_invariants() {
    let total: u64 = (0..WORKERS)
        .flat_map(|w| (0..PER_WORKER).map(move |j| bytes_of(w, j)))
        .sum();
    let orders = interleavings();
    assert_eq!(orders.len(), 90);
    for order in &orders {
        for slots in 1..=WORKERS {
            for seed in [0u64, 7, 0xFEED] {
                let r = run_schedule(order, slots, seed);
                let ctx = format!("order={order:?} p'={slots} seed={seed}");

                // Conservation.
                assert_eq!(r.total_bytes, total, "{ctx}");
                assert_eq!(r.transfers, (WORKERS * PER_WORKER) as u64, "{ctx}");
                assert_eq!(r.per_slot_busy_units.iter().sum::<u64>(), total, "{ctx}");

                // Clock decomposition and per-worker demand.
                let mut max_clock = 0;
                for (w, wr) in r.per_worker.iter().enumerate() {
                    let demand: u64 = (0..PER_WORKER).map(|j| bytes_of(w, j)).sum();
                    assert_eq!(wr.bytes, demand, "{ctx} worker {w}");
                    assert_eq!(wr.clock_units, wr.bytes + wr.wait_units, "{ctx} worker {w}");
                    max_clock = max_clock.max(wr.clock_units);
                }

                // Makespan bounds.
                assert_eq!(r.makespan_units, max_clock, "{ctx}");
                assert!(r.makespan_units >= total.div_ceil(slots as u64), "{ctx}");
                assert!(r.makespan_units <= total, "{ctx}");

                // Replay determinism: bit-for-bit.
                assert_eq!(r, run_schedule(order, slots, seed), "{ctx}");

                // Private slots => no contention, on every schedule.
                if slots == WORKERS {
                    assert_eq!(r.total_wait_units, 0, "{ctx}");
                    assert_eq!(
                        r.makespan_units,
                        r.per_worker.iter().map(|w| w.bytes).max().unwrap(),
                        "{ctx}"
                    );
                }

                // One slot => full serialization, on every schedule.
                if slots == 1 {
                    assert_eq!(r.makespan_units, total, "{ctx}");
                }
            }
        }
    }
}

#[test]
fn seeds_change_only_the_schedule_never_the_conserved_quantities() {
    for order in interleavings().iter().take(20) {
        let a = run_schedule(order, 2, 1);
        let b = run_schedule(order, 2, 2);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.transfers, b.transfers);
        assert_eq!(
            a.per_slot_busy_units.iter().sum::<u64>(),
            b.per_slot_busy_units.iter().sum::<u64>()
        );
        for (wa, wb) in a.per_worker.iter().zip(&b.per_worker) {
            assert_eq!(wa.bytes, wb.bytes);
            assert_eq!(wa.transfers, wb.transfers);
        }
    }
}

#[test]
fn charged_memory_arbitration_is_schedule_exhaustive_for_two_lanes() {
    // End-to-end smoke through TwoLevel: both orders of two lanes' charges
    // yield the identical ledger, and waits appear only with p' = 1.
    use tlmm_model::ScratchpadParams;
    use tlmm_scratchpad::{with_lane, TwoLevel};

    let run = |flip: bool, slots: usize| {
        let tl = TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap());
        tl.install_executor(ExecConfig::deterministic(2, slots, 5))
            .unwrap();
        let lanes: [usize; 2] = if flip { [1, 0] } else { [0, 1] };
        for &lane in &lanes {
            with_lane(lane, || {
                tl.charge_far_io(tlmm_scratchpad::Dir::Read, 4096);
                tl.charge_near_io(tlmm_scratchpad::Dir::Write, 4096);
            });
        }
        let wait = tl.take_trace().total().slot_wait_units;
        (tl.ledger().snapshot(), wait)
    };
    for slots in [1usize, 2] {
        let (snap_a, wait_a) = run(false, slots);
        let (snap_b, wait_b) = run(true, slots);
        assert_eq!(snap_a, snap_b, "ledger must be order-invariant");
        assert_eq!(wait_a, wait_b, "symmetric demand: symmetric waits");
        if slots == 1 {
            assert!(wait_a > 0, "p'=1 under 2 active lanes must wait");
        } else {
            assert_eq!(wait_a, 0, "p'=2 gives each lane a private slot");
        }
    }
}
