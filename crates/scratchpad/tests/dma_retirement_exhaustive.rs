//! Exhaustive small-case verification of host-threaded DMA retirement
//! over the staging arena.
//!
//! No loom in the vendored toolchain, but (as with the arbiter's
//! exhaustive suite) the arena doesn't need it: retirement behaviour is
//! a pure function of the order in which issue/retire/drop events reach
//! the arena's single lock. Enumerating EVERY interleaving of 2 workers
//! × 6 events each (C(12,6) = 924 orders), under all 4×4 per-worker
//! script variants (in-order vs reversed retirement × drop-before vs
//! drop-after retirement), covers the complete schedule space of the
//! double-buffer pipeline's small case. Invariants on every schedule:
//!
//! * **no retire-before-issue** — ids exist only after issue, and every
//!   retire of an already-retired (or never-issued) id fails typed;
//! * **no double-free of a generation** — each allocation's bytes return
//!   to the free list exactly once, whether the free was immediate or
//!   deferred behind in-flight transfers;
//! * **stale generations stay dead** — once a worker dropped its buffer,
//!   issuing against that generation fails on every later step;
//! * conservation — after the schedule drains, zero live allocations,
//!   zero pending transfers, zero used bytes, and `issued == retired`.
//!
//! A final non-enumerated test runs the same workload on two real OS
//! threads as a wilder smoke check of the lock itself.

use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::{ArenaBuf, Dir, SpError, StagingArena, TransferId, TwoLevel};

const WORKERS: usize = 2;
const EVENTS: usize = 6;

fn tl() -> TwoLevel {
    TwoLevel::new(ScratchpadParams::new(64, 3.0, 1 << 20, 64 << 10).unwrap())
}

/// One worker's script: the order its six events hit the arena.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Step {
    Alloc,
    Issue(usize),
    Retire(usize),
    Drop,
}

/// The four per-worker scripts: retirement order × drop position.
fn scripts() -> [[Step; EVENTS]; 4] {
    use Step::*;
    [
        // In-order retirement, drop after both retires.
        [Alloc, Issue(0), Issue(1), Retire(0), Retire(1), Drop],
        // Reversed retirement (the executor may grant out of order).
        [Alloc, Issue(0), Issue(1), Retire(1), Retire(0), Drop],
        // Drop with both transfers in flight: free defers to the last retire.
        [Alloc, Issue(0), Issue(1), Drop, Retire(0), Retire(1)],
        // Deferred free with reversed retirement.
        [Alloc, Issue(0), Issue(1), Drop, Retire(1), Retire(0)],
    ]
}

/// All distinct interleavings of the multiset {0×6, 1×6}: which worker
/// acts at each step. C(12,6) = 924.
fn interleavings() -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut seq = Vec::with_capacity(WORKERS * EVENTS);
    let mut left = [EVENTS; WORKERS];
    fn rec(seq: &mut Vec<usize>, left: &mut [usize; WORKERS], out: &mut Vec<Vec<usize>>) {
        if seq.len() == WORKERS * EVENTS {
            out.push(seq.clone());
            return;
        }
        for w in 0..WORKERS {
            if left[w] > 0 {
                left[w] -= 1;
                seq.push(w);
                rec(seq, left, out);
                seq.pop();
                left[w] += 1;
            }
        }
    }
    rec(&mut seq, &mut left, &mut out);
    out
}

#[derive(Default)]
struct WorkerState {
    buf: Option<ArenaBuf<u64>>,
    ids: [Option<TransferId>; 2],
    generation: u64,
    dropped: bool,
    deferred: bool,
}

fn run_schedule(order: &[usize], scripts: [&[Step; EVENTS]; WORKERS], ctx: &str) {
    let tl = tl();
    let arena = StagingArena::new(&tl);
    let mut ws: [WorkerState; WORKERS] = Default::default();
    let mut cursor = [0usize; WORKERS];
    let mut retired: Vec<TransferId> = Vec::new();

    for &w in order {
        let step = scripts[w][cursor[w]];
        cursor[w] += 1;
        let st = &mut ws[w];
        match step {
            Step::Alloc => {
                let buf = arena.alloc_array::<u64>(32).unwrap();
                st.generation = buf.generation();
                st.buf = Some(buf);
            }
            Step::Issue(j) => {
                let buf = st.buf.as_ref().expect("script issues before drop");
                st.ids[j] = Some(buf.issue(Dir::Read, 256).unwrap());
            }
            Step::Retire(j) => {
                let id = st.ids[j].take().expect("script retires after issue");
                arena.retire(id).unwrap_or_else(|e| panic!("{ctx}: {e}"));
                retired.push(id);
            }
            Step::Drop => {
                st.deferred = st.ids.iter().any(Option::is_some);
                st.dropped = true;
                st.buf = None; // drops the ArenaBuf
            }
        }
        // A dropped generation must reject new transfers at EVERY later
        // point of the schedule, deferred free or not.
        for st in ws.iter().filter(|s| s.dropped) {
            let err = arena
                .issue_transfer(st.generation, Dir::Read, 64)
                .unwrap_err();
            assert_eq!(
                err,
                SpError::StaleGeneration {
                    generation: st.generation
                },
                "{ctx}"
            );
        }
        // No retire-before-issue / no double retire: every id retired so
        // far stays retired.
        for &id in &retired {
            assert_eq!(
                arena.retire(id).unwrap_err(),
                SpError::TransferNotPending { id: id.raw() },
                "{ctx}"
            );
        }
    }

    // Drained: conservation and exactly-once frees.
    assert_eq!(arena.pending_transfers(), 0, "{ctx}");
    assert_eq!(arena.live_allocations(), 0, "{ctx}");
    assert_eq!(arena.used_bytes(), 0, "{ctx}");
    let s = arena.stats();
    assert_eq!(s.issued, (WORKERS * 2) as u64, "{ctx}");
    assert_eq!(s.retired, s.issued, "{ctx}");
    assert_eq!(s.allocs, WORKERS as u64, "{ctx}");
    // Exactly one free per allocation — double-free would overshoot,
    // a leak would undershoot.
    assert_eq!(s.frees, WORKERS as u64, "{ctx}");
    let want_deferred = ws.iter().filter(|s| s.deferred).count() as u64;
    assert_eq!(s.deferred_frees, want_deferred, "{ctx}");
    // Distinct generations per worker.
    assert_ne!(ws[0].generation, ws[1].generation, "{ctx}");
}

#[test]
fn every_interleaving_of_two_workers_retires_cleanly() {
    let orders = interleavings();
    assert_eq!(orders.len(), 924);
    let scripts = scripts();
    for order in &orders {
        for (si, a) in scripts.iter().enumerate() {
            for (sj, b) in scripts.iter().enumerate() {
                let ctx = format!("order={order:?} scripts=({si},{sj})");
                run_schedule(order, [a, b], &ctx);
            }
        }
    }
}

#[test]
fn two_real_threads_hammering_one_arena_settle_clean() {
    let tl = tl();
    let arena = StagingArena::new(&tl);
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let arena = arena.clone();
            s.spawn(move || {
                for round in 0..200u64 {
                    let mut buf = arena.alloc_array::<u64>(64).unwrap();
                    let id = buf.issue(Dir::Read, 512).unwrap();
                    buf.transfer_fill(&[t * 1000 + round; 64], 0);
                    arena.retire(id).unwrap();
                    assert_eq!(buf.as_slice_uncharged()[0], t * 1000 + round);
                    if round % 3 == 0 {
                        // Exercise the deferred-free path under real
                        // contention: drop with a transfer in flight.
                        let id = buf.issue(Dir::Write, 512).unwrap();
                        drop(buf);
                        arena.retire(id).unwrap();
                    }
                }
            });
        }
    });
    assert_eq!(arena.live_allocations(), 0);
    assert_eq!(arena.pending_transfers(), 0);
    assert_eq!(arena.used_bytes(), 0);
    let s = arena.stats();
    assert_eq!(s.issued, s.retired);
    assert_eq!(s.allocs, s.frees);
    assert_eq!(tl.near_used_bytes(), arena.capacity_bytes());
}
