//! Property tests for the staging arena and its offset allocator.
//!
//! Two families of invariants, each driven by arbitrary operation
//! sequences:
//!
//! * **Placement** — [`OffsetAlloc`] never hands out overlapping byte
//!   ranges, accounts `used()` exactly, coalesces a fully drained range
//!   back to one block, and replays the same schedule to the same
//!   offsets (the executor schedule-fuzz suites rely on that
//!   determinism).
//! * **Lifecycle** — [`StagingArena`] generations are never reused, a
//!   freed generation can never be the target of a new transfer, and a
//!   buffer dropped with transfers in flight releases its bytes only
//!   when the *last* transfer retires — never earlier, never twice.

use proptest::prelude::*;
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::{ArenaBuf, Dir, OffsetAlloc, SpError, StagingArena, TransferId, TwoLevel};

fn tl() -> TwoLevel {
    TwoLevel::new(ScratchpadParams::new(64, 3.0, 1 << 20, 64 << 10).unwrap())
}

// ---------------------------------------------------------------------
// OffsetAlloc placement properties
// ---------------------------------------------------------------------

/// One step of the allocator fuzz: `true` allocates `bytes`, `false`
/// frees the live block indexed by `pick` (modulo the live count).
type AllocOp = (bool, u64, usize);

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    proptest::collection::vec((any::<bool>(), 1u64..512, 0usize..32), 1..120)
}

/// Replay `ops`, returning every offset handed out in order plus the
/// final allocator (for end-state checks).
fn replay_alloc(ops: &[AllocOp]) -> (Vec<u64>, OffsetAlloc, Vec<(u64, u64)>) {
    let mut a = OffsetAlloc::new();
    let mut live: Vec<(u64, u64)> = Vec::new();
    let mut placed = Vec::new();
    for &(is_alloc, bytes, pick) in ops {
        if is_alloc {
            let off = match a.alloc(bytes) {
                Some(off) => off,
                None => {
                    a.grow(bytes);
                    a.alloc(bytes).expect("exact-fit growth satisfies alloc")
                }
            };
            // The new block lies inside the range and overlaps nothing.
            assert!(off + bytes <= a.capacity(), "block escapes the range");
            for &(o, l) in &live {
                assert!(
                    off + bytes <= o || o + l <= off,
                    "alias: new [{off},{}) overlaps live [{o},{})",
                    off + bytes,
                    o + l
                );
            }
            live.push((off, bytes));
            placed.push(off);
        } else if !live.is_empty() {
            let (off, len) = live.swap_remove(pick % live.len());
            a.free(off, len);
        }
        let in_use: u64 = live.iter().map(|&(_, l)| l).sum();
        assert_eq!(a.used(), in_use, "used() must track live bytes exactly");
        assert!(a.used() <= a.capacity());
    }
    (placed, a, live)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn offset_alloc_never_aliases_and_accounts_exactly(ops in alloc_ops()) {
        let (_, mut a, live) = replay_alloc(&ops);
        // Drain: everything coalesces back to a single free block.
        for (off, len) in live {
            a.free(off, len);
        }
        prop_assert_eq!(a.used(), 0);
        if a.capacity() > 0 {
            prop_assert_eq!(a.free_blocks(), 1, "drained arena must coalesce");
            prop_assert_eq!(a.largest_free(), a.capacity());
        }
    }

    #[test]
    fn offset_alloc_replays_deterministically(ops in alloc_ops()) {
        let (placed_a, a, _) = replay_alloc(&ops);
        let (placed_b, b, _) = replay_alloc(&ops);
        prop_assert_eq!(placed_a, placed_b, "same schedule, same offsets");
        prop_assert_eq!(a.capacity(), b.capacity());
        prop_assert_eq!(a.used(), b.used());
        prop_assert_eq!(a.free_blocks(), b.free_blocks());
    }
}

// ---------------------------------------------------------------------
// StagingArena lifecycle properties
// ---------------------------------------------------------------------

/// One step of the arena fuzz, dispatched over a table of up to 6 buffer
/// slots: 0 = alloc, 1 = issue a transfer, 2 = retire the oldest pending
/// transfer, 3 = drop the buffer (deferring its free if transfers are in
/// flight).
type ArenaOp = (u8, usize, usize);

fn arena_ops() -> impl Strategy<Value = Vec<ArenaOp>> {
    proptest::collection::vec((0u8..4, 0usize..6, 1usize..64), 1..80)
}

#[derive(Default)]
struct Slot {
    buf: Option<ArenaBuf<u64>>,
    /// Pending transfer ids issued against `buf`'s generation, oldest
    /// first; they survive the buffer's drop (deferred free).
    pending: Vec<TransferId>,
    generation: u64,
    /// The slot's buffer was dropped — its generation is dead (freed or
    /// drop-deferred) and must reject new transfers.
    dead: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arena_generations_and_deferred_frees_hold_under_any_schedule(ops in arena_ops()) {
        let tl = tl();
        {
            let arena = StagingArena::new(&tl);
            let mut slots: Vec<Slot> = (0..6).map(|_| Slot::default()).collect();
            let mut seen_generations = std::collections::BTreeSet::new();

            for &(kind, ix, len) in &ops {
                let slot = &mut slots[ix];
                match kind {
                    0 if slot.buf.is_none() && slot.pending.is_empty() => {
                        let buf = arena.alloc_array::<u64>(len).unwrap();
                        // Generations are globally fresh, even when the
                        // byte range is recycled.
                        prop_assert!(
                            seen_generations.insert(buf.generation()),
                            "generation {} reused", buf.generation()
                        );
                        slot.generation = buf.generation();
                        slot.dead = false;
                        slot.buf = Some(buf);
                    }
                    1 => {
                        if let Some(buf) = &slot.buf {
                            let id = buf.issue(Dir::Read, (len * 8) as u64).unwrap();
                            slot.pending.push(id);
                        } else if slot.dead {
                            // Dead or drop-deferred generation: issuing
                            // must fail typed, never alias a reused range.
                            let err = arena
                                .issue_transfer(slot.generation, Dir::Read, 64)
                                .unwrap_err();
                            prop_assert_eq!(
                                err,
                                SpError::StaleGeneration { generation: slot.generation }
                            );
                        }
                    }
                    2 => {
                        if !slot.pending.is_empty() {
                            let id = slot.pending.remove(0);
                            arena.retire(id).unwrap();
                            // Exactly-once: the same id can never retire twice.
                            let err = arena.retire(id).unwrap_err();
                            prop_assert_eq!(err, SpError::TransferNotPending { id: id.raw() });
                        }
                    }
                    _ => {
                        if let Some(buf) = slot.buf.take() {
                            let bytes_before = arena.used_bytes();
                            let had_inflight = !slot.pending.is_empty();
                            let buf_bytes = (buf.len() * 8) as u64;
                            slot.dead = true;
                            drop(buf);
                            if had_inflight {
                                // Deferred: the range is still owned by the
                                // in-flight transfers.
                                prop_assert_eq!(arena.used_bytes(), bytes_before);
                            } else {
                                prop_assert_eq!(arena.used_bytes(), bytes_before - buf_bytes);
                            }
                        }
                    }
                }

                // Global accounting, every step.
                let live_bytes: u64 = slots
                    .iter()
                    .map(|s| match &s.buf {
                        Some(b) => (b.len() * 8) as u64,
                        // Drop-deferred ranges still count as used.
                        None if !s.pending.is_empty() => 0, // counted below
                        None => 0,
                    })
                    .sum();
                prop_assert!(arena.used_bytes() >= live_bytes);
                prop_assert!(arena.capacity_bytes() <= tl.params().scratchpad_bytes);
                prop_assert_eq!(
                    arena.pending_transfers(),
                    slots.iter().map(|s| s.pending.len()).sum::<usize>()
                );
            }

            // Drain: drop every buffer, retire every transfer; the arena
            // must settle to zero live bytes and stay usable.
            for slot in &mut slots {
                slot.buf = None;
                for id in slot.pending.drain(..) {
                    arena.retire(id).unwrap();
                }
            }
            prop_assert_eq!(arena.used_bytes(), 0);
            prop_assert_eq!(arena.live_allocations(), 0);
            prop_assert_eq!(arena.pending_transfers(), 0);
            let st = arena.stats();
            prop_assert_eq!(st.issued, st.retired);
            // Every allocation was freed exactly once (no double-free):
            // immediate and deferred frees partition the allocs.
            prop_assert_eq!(st.allocs, st.frees);

            // Reusable after the storm: a fresh allocation still works and
            // reuses retained capacity where it fits.
            let again = arena.alloc_array::<u64>(16).unwrap();
            prop_assert!(seen_generations.insert(again.generation()));
            drop(again);
        }
        // RAII: the whole reservation returns to the scratchpad.
        prop_assert_eq!(tl.near_used_bytes(), 0);
    }
}

#[test]
fn deferred_free_holds_bytes_until_the_last_transfer_retires() {
    let tl = tl();
    let arena = StagingArena::new(&tl);
    let buf = arena.alloc_array::<u64>(64).unwrap();
    let a = buf.issue(Dir::Read, 256).unwrap();
    let b = buf.issue(Dir::Write, 256).unwrap();
    drop(buf);
    assert_eq!(arena.used_bytes(), 512);
    arena.retire(a).unwrap();
    // One of two still in flight: the free must keep waiting.
    assert_eq!(arena.used_bytes(), 512);
    assert_eq!(arena.live_allocations(), 1);
    arena.retire(b).unwrap();
    assert_eq!(arena.used_bytes(), 0);
    assert_eq!(arena.live_allocations(), 0);
    assert_eq!(arena.stats().deferred_frees, 1);
    assert_eq!(arena.stats().frees, 1);
}
