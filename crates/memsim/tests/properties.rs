//! Property tests on the simulator: timing monotonicity and conservation
//! laws that must hold for any trace.

use proptest::prelude::*;
use tlmm_memsim::cache::{Access, Cache, CacheConfig};
use tlmm_memsim::des::{simulate_des, DesOptions};
use tlmm_memsim::dram::MemorySide;
use tlmm_memsim::flow::simulate_flow;
use tlmm_memsim::MachineConfig;
use tlmm_scratchpad::{LaneWork, PhaseRecord, PhaseTrace};

fn arb_trace() -> impl Strategy<Value = PhaseTrace> {
    let lane = (0u64..2_000_000, 0u64..2_000_000, 0u64..2_000_000).prop_map(|(f, n, c)| LaneWork {
        far_read_bytes: f,
        near_read_bytes: n,
        compute_ops: c,
        ..Default::default()
    });
    let phase = (proptest::collection::vec(lane, 1..32), any::<bool>()).prop_map(
        |(lanes, overlappable)| PhaseRecord {
            name: "p".into(),
            lanes,
            overlappable,
            faults: 0,
        },
    );
    proptest::collection::vec(phase, 1..6).prop_map(|phases| PhaseTrace { phases })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flow_time_monotone_in_near_bandwidth(trace in arb_trace()) {
        let mut prev = f64::INFINITY;
        for rho in [1.0, 2.0, 4.0, 8.0] {
            let s = simulate_flow(&trace, &MachineConfig::fig4(32, rho)).seconds;
            prop_assert!(s.is_finite() && s >= 0.0);
            prop_assert!(s <= prev * 1.0001, "rho {} gave {} > prev {}", rho, s, prev);
            prev = s;
        }
    }

    #[test]
    fn flow_never_beats_physics(trace in arb_trace()) {
        // Simulated time can never be below the aggregate-bandwidth floor.
        let m = MachineConfig::fig4(64, 4.0);
        let r = simulate_flow(&trace, &m);
        let t = trace.total();
        let floor = (t.far_bytes() as f64 / m.far.sustained_bw())
            .max(t.near_bytes() as f64 / m.near.sustained_bw())
            / 2.0; // halved: overlappable pairs may hide one side
        prop_assert!(r.seconds >= floor, "sim {} < floor {}", r.seconds, floor);
    }

    #[test]
    fn flow_access_counts_match_trace(trace in arb_trace()) {
        let m = MachineConfig::fig4(16, 2.0);
        let r = simulate_flow(&trace, &m);
        let mut far = 0u64;
        let mut near = 0u64;
        for p in &trace.phases {
            for l in &p.lanes {
                far += l.far_read_bytes.div_ceil(64);
                near += l.near_read_bytes.div_ceil(64);
            }
        }
        prop_assert_eq!(r.far_accesses, far);
        prop_assert_eq!(r.near_accesses, near);
    }

    #[test]
    fn des_and_flow_agree_within_bounds(
        per_lane in 1024u64..1_000_000,
        lanes in 1usize..32,
    ) {
        // Plain bandwidth-bound phases: the engines must agree within ~2x.
        let trace = PhaseTrace {
            phases: vec![PhaseRecord {
                name: "scan".into(),
                lanes: vec![
                    LaneWork {
                        far_read_bytes: per_lane,
                        ..Default::default()
                    };
                    lanes
                ],
                overlappable: false,
                faults: 0,
            }],
        };
        let m = MachineConfig::fig4(lanes as u32, 4.0);
        let f = simulate_flow(&trace, &m).seconds;
        let d = simulate_des(&trace, &m, &DesOptions { req_bytes: 256, mlp: 8 }).seconds;
        let ratio = d / f;
        prop_assert!(ratio > 0.4 && ratio < 2.5, "flow {} des {} ratio {}", f, d, ratio);
    }

    #[test]
    fn dram_completions_monotone_per_channel(addrs in proptest::collection::vec(0u64..(1<<24), 1..200)) {
        let m = MachineConfig::fig4(8, 2.0);
        let mut side = MemorySide::new(&m.far, 64);
        let mut served = 0;
        for (i, a) in addrs.iter().enumerate() {
            let done = side.service(i as u64 * 100, a & !63);
            prop_assert!(done > i as u64 * 100, "completion after arrival");
            served += 1;
        }
        prop_assert_eq!(side.accesses(), served);
    }

    #[test]
    fn cache_hit_rate_bounded_and_capacity_held(
        addrs in proptest::collection::vec(0u64..(1<<20), 1..2000),
        writes in any::<bool>(),
    ) {
        let cfg = CacheConfig::fig7_l1();
        let mut c = Cache::new(cfg);
        for a in &addrs {
            c.access(*a, if writes { Access::Write } else { Access::Read });
        }
        prop_assert_eq!(c.hits + c.misses, addrs.len() as u64);
        prop_assert!(c.valid_lines() as u64 <= cfg.size_bytes / cfg.line_bytes);
        // Re-touching the last address immediately must hit.
        let last = *addrs.last().unwrap();
        prop_assert!(c.access(last, Access::Read).hit);
    }
}
