//! V-ADDR: validating the "ledger equals post-cache traffic" assumption.
//!
//! The phase-trace pipeline charges the blocks an algorithm *semantically*
//! streams and treats them as the memory-side traffic. That is only sound
//! if the L1/L2 hierarchy filters almost nothing for these access patterns.
//! Here we synthesize the address patterns the sorting kernels actually
//! produce (sequential chunk scans, k-way strided merge reads, random
//! metadata probes) and push them through the Fig. 7 hierarchy: streaming
//! patterns must reach memory nearly one line per touched line, while
//! genuinely reusable patterns (the resident pivot table) must be absorbed.

use tlmm_memsim::address::{patterns, run_hierarchy, Ref};
use tlmm_memsim::cache::Access;
use tlmm_memsim::MachineConfig;

fn m() -> MachineConfig {
    MachineConfig::fig4(256, 4.0)
}

/// k-way merge read pattern: round-robin consume k sorted runs
/// (each cursor advances sequentially; cursors interleave).
fn merge_pattern(k: usize, run_bytes: u64) -> Vec<Ref> {
    let mut refs = Vec::new();
    let lines = run_bytes / 64;
    for l in 0..lines {
        for r in 0..k {
            refs.push(Ref {
                addr: (r as u64) << 24 | (l * 64),
                kind: Access::Read,
                near: false,
            });
        }
    }
    refs
}

#[test]
fn sequential_chunk_scan_reaches_memory_unfiltered() {
    let refs = patterns::scan(0, 8 << 20, 64, false);
    let st = run_hierarchy(&refs, &m());
    let lines = (8 << 20) / 64;
    assert_eq!(
        st.far_lines, lines,
        "every line must reach DRAM exactly once"
    );
}

#[test]
fn kway_merge_reads_reach_memory_once_per_line() {
    // 16 runs of 256 KB: cursors fit in L1/L2 easily, so each line is
    // fetched exactly once despite the interleaving.
    let refs = merge_pattern(16, 256 << 10);
    let st = run_hierarchy(&refs, &m());
    let expect = 16 * (256 << 10) / 64;
    assert_eq!(st.far_lines, expect as u64);
    // Word-level reuse within each line is absorbed by L1 -- here each ref
    // is one line, so hits are zero and the assumption is tight.
    assert_eq!(st.l1_hits, 0);
}

#[test]
fn word_granular_merge_filters_only_intra_line_reuse() {
    // Consuming 8-byte elements: 7/8 of references hit in L1, but the
    // *memory-side* traffic still equals one fetch per line — exactly what
    // the ledger charges for the same scan.
    let refs = patterns::scan(0, 4 << 20, 8, false);
    let st = run_hierarchy(&refs, &m());
    assert_eq!(st.far_lines, (4 << 20) / 64);
    let total = refs.len() as u64;
    assert!(st.l1_hits * 8 >= total * 6, "intra-line hits expected");
}

#[test]
fn resident_pivot_probes_are_absorbed_by_cache() {
    // Binary-search probes into a 16 KB pivot table, repeated: after the
    // compulsory misses the table lives in L1 and memory sees nothing —
    // which is why the ledger does NOT charge per-probe traffic for the
    // resident sample (only lg(n) probes per boundary group).
    let mut refs = Vec::new();
    let mut x = 0x2545F4914F6CDD1Du64;
    for _ in 0..100_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        refs.push(Ref {
            addr: x % (16 << 10),
            kind: Access::Read,
            near: true,
        });
    }
    let st = run_hierarchy(&refs, &m());
    let table_lines = (16 << 10) / 64;
    assert!(
        st.near_lines <= table_lines + 8,
        "resident table must be fetched ~once: {} lines",
        st.near_lines
    );
}

#[test]
fn write_back_stream_doubles_memory_traffic() {
    // Writing a large region then scanning another evicts dirty lines:
    // memory sees fills + write-backs, matching the ledger's read+write
    // charges for a buffer that streams through.
    let mut refs: Vec<Ref> = (0..(4u64 << 20) / 64)
        .map(|i| Ref {
            addr: i * 64,
            kind: Access::Write,
            near: false,
        })
        .collect();
    refs.extend(patterns::scan(1 << 30, 4 << 20, 64, false));
    let st = run_hierarchy(&refs, &m());
    let lines = (4u64 << 20) / 64;
    // Fills for both regions, plus write-backs approaching the dirty volume
    // (the tail still resident in L2 never drains).
    assert_eq!(st.far_lines, 2 * lines);
    let l2_lines = (512u64 << 10) / 64;
    assert!(
        st.writebacks + l2_lines + 256 >= lines,
        "write-backs {} + resident {} must cover the dirty volume {}",
        st.writebacks,
        l2_lines,
        lines
    );
    assert!(st.writebacks <= lines);
}
