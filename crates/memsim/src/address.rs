//! Address-trace mode: run synthetic access streams through the L1/L2
//! hierarchy into the memory timing model (the Ariel-like path).
//!
//! The phase-trace replay works on post-cache volumes; this mode exists to
//! (a) validate the cache model against known access patterns, and (b) let
//! users study how a kernel's *address pattern* turns into memory traffic on
//! the Fig. 7 hierarchy.

use crate::cache::{Access, Cache, CacheConfig};
use crate::config::MachineConfig;
use crate::dram::{MemorySide, PS};

/// One memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ref {
    /// Byte address.
    pub addr: u64,
    /// Load or store.
    pub kind: Access,
    /// Targets the scratchpad address range rather than DRAM.
    pub near: bool,
}

/// Synthetic reference-stream generators.
pub mod patterns {
    use super::Ref;
    use crate::cache::Access;

    /// Sequential read scan of `bytes` bytes with `stride` between refs.
    pub fn scan(base: u64, bytes: u64, stride: u64, near: bool) -> Vec<Ref> {
        (0..bytes / stride.max(1))
            .map(|i| Ref {
                addr: base + i * stride,
                kind: Access::Read,
                near,
            })
            .collect()
    }

    /// `rounds` passes over a working set of `bytes` bytes (reuse).
    pub fn working_set(base: u64, bytes: u64, stride: u64, rounds: u32, near: bool) -> Vec<Ref> {
        let mut v = Vec::new();
        for _ in 0..rounds {
            v.extend(scan(base, bytes, stride, near));
        }
        v
    }

    /// Pseudo-random reads over a `span`-byte region.
    pub fn random(base: u64, span: u64, count: u64, near: bool) -> Vec<Ref> {
        let mut x = 0x9E3779B97F4A7C15u64;
        (0..count)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                Ref {
                    addr: base + (x % span.max(1)),
                    kind: Access::Read,
                    near,
                }
            })
            .collect()
    }
}

/// Results of pushing a reference stream through L1 → L2 → memory.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchyStats {
    /// L1 hits / misses.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (= memory line fetches).
    pub l2_misses: u64,
    /// Lines written back to memory.
    pub writebacks: u64,
    /// Far-memory line requests served.
    pub far_lines: u64,
    /// Near-memory line requests served.
    pub near_lines: u64,
    /// Simulated seconds for the whole stream (single in-order core: each
    /// memory fetch stalls the core).
    pub seconds: f64,
}

/// Run `refs` through one core's L1, a shared L2 slice and the two memory
/// sides of machine `m`.
pub fn run_hierarchy(refs: &[Ref], m: &MachineConfig) -> HierarchyStats {
    let mut l1 = Cache::new(CacheConfig {
        size_bytes: m.l1_bytes,
        ways: 2,
        line_bytes: m.line_bytes,
    });
    let mut l2 = Cache::new(CacheConfig {
        size_bytes: m.l2_bytes,
        ways: 16,
        line_bytes: m.line_bytes,
    });
    let mut far = MemorySide::new(&m.far, m.line_bytes);
    let mut near = MemorySide::new(&m.near, m.line_bytes);
    let mut st = HierarchyStats::default();
    let mut now_ps = 0u64;
    let l1_ps = 2_000u64; // 2 ns L1 (Fig. 7)
    let l2_ps = 10_000u64; // 10 ns L2 (Fig. 7)

    for r in refs {
        let res1 = l1.access(r.addr, r.kind);
        now_ps += l1_ps;
        if res1.hit {
            st.l1_hits += 1;
            continue;
        }
        st.l1_misses += 1;
        // L1 writeback goes to L2.
        if let Some(wb) = res1.writeback {
            l2.access(wb, Access::Write);
        }
        let res2 = l2.access(r.addr, Access::Read);
        now_ps += l2_ps;
        if res2.hit {
            st.l2_hits += 1;
            continue;
        }
        st.l2_misses += 1;
        let side = if r.near { &mut near } else { &mut far };
        let done = side.service(now_ps, r.addr);
        now_ps = done; // in-order core stalls on the fetch
        if r.near {
            st.near_lines += 1;
        } else {
            st.far_lines += 1;
        }
        if let Some(wb) = res2.writeback {
            st.writebacks += 1;
            // Write back to the same side the address belongs to.
            let side = if r.near { &mut near } else { &mut far };
            side.service(now_ps, wb);
        }
    }
    st.seconds = now_ps as f64 / PS;
    st
}

#[cfg(test)]
mod tests {
    use super::patterns::*;
    use super::*;

    fn m() -> MachineConfig {
        MachineConfig::fig4(256, 4.0)
    }

    #[test]
    fn cache_resident_working_set_stops_missing() {
        // 8 KB working set fits L1 (16 KB): after warm-up, all hits.
        let refs = working_set(0, 8 << 10, 64, 5, false);
        let st = run_hierarchy(&refs, &m());
        assert_eq!(st.l1_misses, 128, "only the first pass misses");
        assert_eq!(st.l2_misses, 128);
        assert_eq!(st.l1_hits, 4 * 128);
    }

    #[test]
    fn l2_resident_set_hits_in_l2() {
        // 256 KB set: misses L1 (16 KB) every pass, fits L2 (512 KB).
        let refs = working_set(0, 256 << 10, 64, 3, false);
        let st = run_hierarchy(&refs, &m());
        assert_eq!(st.l2_misses, 4096, "only first pass reaches memory");
        assert!(st.l2_hits >= 2 * 4096);
    }

    #[test]
    fn streaming_misses_everywhere() {
        let refs = scan(0, 4 << 20, 64, false);
        let st = run_hierarchy(&refs, &m());
        let lines = (4 << 20) / 64;
        assert_eq!(st.l1_misses, lines);
        assert_eq!(st.l2_misses, lines);
        assert_eq!(st.far_lines, lines);
    }

    #[test]
    fn near_refs_hit_scratchpad_not_dram() {
        let refs = scan(0, 1 << 20, 64, true);
        let st = run_hierarchy(&refs, &m());
        assert_eq!(st.far_lines, 0);
        assert_eq!(st.near_lines, (1 << 20) / 64);
    }

    #[test]
    fn word_granular_scan_hits_within_lines() {
        // Reading every 8 bytes: 7 of 8 refs hit the line brought in.
        let refs = scan(0, 1 << 20, 8, false);
        let st = run_hierarchy(&refs, &m());
        let total = (1u64 << 20) / 8;
        assert_eq!(st.l1_misses, total / 8);
        assert_eq!(st.l1_hits, total - total / 8);
    }

    #[test]
    fn random_large_span_is_slow() {
        let seq = scan(0, 1 << 20, 64, false);
        let rnd = random(0, 1 << 30, (1 << 20) / 64, false);
        let t_seq = run_hierarchy(&seq, &m()).seconds;
        let t_rnd = run_hierarchy(&rnd, &m()).seconds;
        // The in-order core's stall time is latency-dominated either way;
        // the row-miss penalty adds ~25 % on top.
        assert!(
            t_rnd > 1.15 * t_seq,
            "random {t_rnd} should be slower than sequential {t_seq}"
        );
    }

    #[test]
    fn dirty_data_writes_back() {
        // Write a set larger than L1+L2, then scan something else.
        let mut refs: Vec<Ref> = (0..(1u64 << 20) / 64)
            .map(|i| Ref {
                addr: i * 64,
                kind: Access::Write,
                near: false,
            })
            .collect();
        refs.extend(scan(1 << 30, 1 << 20, 64, false));
        let st = run_hierarchy(&refs, &m());
        assert!(st.writebacks > 0);
    }
}
