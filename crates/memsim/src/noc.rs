//! On-chip network model (the Merlin stand-in).
//!
//! Fig. 4/7: each quad-core group owns a 72 GB/s connection to the on-chip
//! network; requests pay link occupancy (bytes over the link rate) plus a
//! fixed one-way latency per hop. Links are modelled as busy-until
//! resources; per-link byte counters expose hot-spotting.

use crate::config::MachineConfig;
use crate::dram::{ps, PS};

/// The network: one link per core group.
#[derive(Debug)]
pub struct Noc {
    link_free: Vec<u64>,
    link_bytes: Vec<u64>,
    bytes_per_ps: f64,
    latency_ps: u64,
}

impl Noc {
    /// Build the NoC for a machine.
    pub fn new(m: &MachineConfig) -> Self {
        let links = m.groups().max(1) as usize;
        Self {
            link_free: vec![0; links],
            link_bytes: vec![0; links],
            bytes_per_ps: m.noc_link_bytes_per_sec / PS,
            latency_ps: ps(m.noc_latency_s),
        }
    }

    /// Number of links (= core groups).
    pub fn links(&self) -> usize {
        self.link_free.len()
    }

    /// Send `bytes` over `link` starting no earlier than `t`; returns the
    /// arrival time at the far side (occupancy + latency).
    pub fn traverse(&mut self, link: usize, t: u64, bytes: u64) -> u64 {
        let link = link % self.link_free.len();
        let busy = (bytes as f64 / self.bytes_per_ps).round() as u64;
        let start = t.max(self.link_free[link]);
        self.link_free[link] = start + busy;
        self.link_bytes[link] += bytes;
        self.link_free[link] + self.latency_ps
    }

    /// The response path back to the core: latency only (responses share
    /// a separate virtual channel in this model).
    pub fn response_latency(&self) -> u64 {
        self.latency_ps
    }

    /// Total bytes moved across all links.
    pub fn total_bytes(&self) -> u64 {
        self.link_bytes.iter().sum()
    }

    /// `(max, mean)` per-link byte loads — hot-spot diagnostics.
    pub fn load_imbalance(&self) -> (u64, f64) {
        let max = self.link_bytes.iter().copied().max().unwrap_or(0);
        let mean = self.total_bytes() as f64 / self.link_bytes.len().max(1) as f64;
        (max, mean)
    }

    /// Reset busy state between phases (byte stats are kept).
    pub fn reset_time(&mut self) {
        for l in &mut self.link_free {
            *l = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc() -> Noc {
        Noc::new(&MachineConfig::fig4(256, 4.0))
    }

    #[test]
    fn has_one_link_per_group() {
        assert_eq!(noc().links(), 64);
    }

    #[test]
    fn occupancy_serializes_same_link() {
        let mut n = noc();
        let a = n.traverse(0, 0, 64);
        let b = n.traverse(0, 0, 64);
        assert!(b > a, "same link must serialize");
        let c = n.traverse(1, 0, 64);
        assert_eq!(c, a, "different links are independent");
    }

    #[test]
    fn arrival_includes_latency_and_busy_time() {
        let mut n = noc();
        let t = n.traverse(0, 1000, 7200); // 7200 B at 72 GB/s = 100 ns
        let m = MachineConfig::fig4(256, 4.0);
        let expect = 1000 + ps(7200.0 / m.noc_link_bytes_per_sec) + ps(m.noc_latency_s);
        assert!(
            (t as i64 - expect as i64).abs() <= 1,
            "t={t} expect={expect}"
        );
    }

    #[test]
    fn byte_stats_accumulate() {
        let mut n = noc();
        n.traverse(0, 0, 100);
        n.traverse(3, 0, 50);
        n.traverse(0, 0, 100);
        assert_eq!(n.total_bytes(), 250);
        let (max, mean) = n.load_imbalance();
        assert_eq!(max, 200);
        assert!((mean - 250.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn reset_time_keeps_stats() {
        let mut n = noc();
        n.traverse(0, 0, 64);
        let busy_end = n.traverse(0, 0, 64);
        n.reset_time();
        let after = n.traverse(0, 0, 64);
        assert!(after < busy_end);
        assert_eq!(n.total_bytes(), 3 * 64);
    }

    #[test]
    fn out_of_range_link_wraps() {
        let mut n = noc();
        let t = n.traverse(1000, 0, 64); // wraps to 1000 % 64
        assert!(t > 0);
    }
}
