//! Discrete-event replay of a phase trace (the high-fidelity path).
//!
//! Each phase is simulated at memory-request granularity: every core (lanes
//! fold onto cores round-robin) turns its byte volumes into a stream of
//! line-sized requests with synthetic streaming addresses, issues them with
//! bounded memory-level parallelism, pays NoC link occupancy and latency,
//! and the channel/bank model of [`crate::dram`] serves them in arrival
//! order. A core's compute time is spread evenly between its requests as
//! issue gaps. Phase duration = latest completion; phases run back-to-back
//! with a barrier (overlappable phases merge with their successor like in
//! the analytic model).
//!
//! The analytic [`crate::flow`] replay is validated against this engine in
//! the integration tests (they agree within tens of percent — the gap is
//! queueing effects the analytic model ignores).

use crate::config::MachineConfig;
use crate::dram::{ps, MemorySide, PS};
use crate::noc::Noc;
use crate::stats::{line_accesses, Bottleneck, DesDetail, PhaseStat, SimReport};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use tlmm_scratchpad::{PhaseRecord, PhaseTrace};

/// DES tuning.
#[derive(Debug, Clone)]
pub struct DesOptions {
    /// Bytes per simulated request (coarsening factor; 64 = one line per
    /// request, larger values trade fidelity for speed).
    pub req_bytes: u64,
    /// Maximum outstanding requests per core (memory-level parallelism).
    pub mlp: u32,
}

impl Default for DesOptions {
    fn default() -> Self {
        Self {
            req_bytes: 64,
            mlp: 4,
        }
    }
}

#[derive(Debug)]
struct CoreState {
    far_left: u64,
    near_left: u64,
    far_total: u64,
    near_total: u64,
    /// Issue gap between requests (ps), from spreading compute time.
    gap_ps: u64,
    /// Completion times of in-flight requests.
    inflight: Vec<u64>,
    /// Earliest time the next request may issue.
    next_issue: u64,
    /// Synthetic stream addresses.
    far_addr: u64,
    near_addr: u64,
    /// Pure-compute remainder (cores with ops but no traffic).
    compute_end: u64,
}

/// Directory controller: bounds the outstanding requests one memory side
/// tracks (Fig. 7: "16K DC Entries"). The k-th request may enter service
/// only after the (k − entries)-th completed.
#[derive(Debug)]
struct DirectoryController {
    entries: usize,
    inflight: VecDeque<u64>,
}

impl DirectoryController {
    fn new(entries: u32) -> Self {
        Self {
            entries: entries.max(1) as usize,
            inflight: VecDeque::new(),
        }
    }

    /// Gate an arrival; returns the time the request may enter service.
    fn admit(&mut self, arrive: u64) -> u64 {
        if self.inflight.len() >= self.entries {
            let oldest = self.inflight.pop_front().unwrap_or(0);
            arrive.max(oldest)
        } else {
            arrive
        }
    }

    fn record_completion(&mut self, done: u64) {
        self.inflight.push_back(done);
    }

    fn reset(&mut self) {
        self.inflight.clear();
    }
}

/// Simulate one phase; returns its duration in ps plus per-side stats deltas.
#[allow(clippy::too_many_arguments)]
fn simulate_phase(
    p: &PhaseRecord,
    m: &MachineConfig,
    opt: &DesOptions,
    far: &mut MemorySide,
    near: &mut MemorySide,
    noc: &mut Noc,
    far_dc: &mut DirectoryController,
    near_dc: &mut DirectoryController,
) -> u64 {
    let cores = (m.cores.max(1) as usize).min(p.lanes.len().max(1));
    let req = opt.req_bytes.max(m.line_bytes);
    let core_rate = m.core_rate(); // ops per second

    // Fold lanes onto cores.
    let mut states: Vec<CoreState> = (0..cores)
        .map(|c| CoreState {
            far_left: 0,
            near_left: 0,
            far_total: 0,
            near_total: 0,
            gap_ps: 0,
            inflight: Vec::new(),
            next_issue: 0,
            // Disjoint per-core streaming regions, far and near separate.
            far_addr: (c as u64) << 32,
            near_addr: (c as u64) << 32,
            compute_end: 0,
        })
        .collect();
    let mut core_ops = vec![0u64; cores];
    for (i, l) in p.lanes.iter().enumerate() {
        let c = i % cores;
        states[c].far_total += l.far_bytes();
        states[c].near_total += l.near_bytes();
        core_ops[c] += l.compute_ops;
    }
    for (c, s) in states.iter_mut().enumerate() {
        s.far_left = s.far_total;
        s.near_left = s.near_total;
        let reqs = (s.far_total + s.near_total).div_ceil(req);
        let compute_ps = ps(core_ops[c] as f64 / core_rate);
        match compute_ps.checked_div(reqs) {
            Some(gap) => s.gap_ps = gap,
            None => s.compute_end = compute_ps,
        }
    }

    let groups = m.groups() as usize;

    // Event queue of (issue_time, core).
    let mut q: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (c, s) in states.iter().enumerate() {
        if s.far_left + s.near_left > 0 {
            q.push(Reverse((s.gap_ps, c)));
        }
    }

    let mut phase_end = states.iter().map(|s| s.compute_end).max().unwrap_or(0);
    while let Some(Reverse((t, c))) = q.pop() {
        let group = c % groups;
        let s = &mut states[c];
        if s.far_left + s.near_left == 0 {
            continue;
        }
        // MLP gate: wait for the oldest in-flight request if saturated.
        if s.inflight.len() >= opt.mlp.max(1) as usize {
            let oldest = *s.inflight.iter().min().unwrap();
            if t < oldest {
                q.push(Reverse((oldest, c)));
                continue;
            }
            let idx = s
                .inflight
                .iter()
                .position(|&x| x == oldest)
                .expect("oldest in-flight present");
            s.inflight.swap_remove(idx);
        }
        // Pick the side with the larger remaining fraction so both streams
        // finish together (interleaved issue).
        let pick_far = if s.near_total == 0 {
            true
        } else if s.far_total == 0 {
            false
        } else {
            s.far_left * s.near_total >= s.near_left * s.far_total
        };
        let (bytes, addr) = if pick_far {
            let b = s.far_left.min(req);
            s.far_left -= b;
            let a = s.far_addr;
            s.far_addr += b;
            (b, a)
        } else {
            let b = s.near_left.min(req);
            s.near_left -= b;
            let a = s.near_addr;
            s.near_addr += b;
            (b, a)
        };

        // Traverse the group's NoC link (occupancy + latency)...
        let arrive = noc.traverse(group, t, bytes);
        // ...pass the directory controller's entry limit...
        let (side, dc) = if pick_far {
            (&mut *far, &mut *far_dc)
        } else {
            (&mut *near, &mut *near_dc)
        };
        let admitted = dc.admit(arrive);
        // ...then the memory side serves each line of the request.
        let mut done = admitted;
        let lines = bytes.div_ceil(m.line_bytes);
        for l in 0..lines {
            done = done.max(side.service(admitted, addr + l * m.line_bytes));
        }
        let done = done + noc.response_latency();
        dc.record_completion(done);
        phase_end = phase_end.max(done);
        s.inflight.push(done);

        if s.far_left + s.near_left > 0 {
            s.next_issue = t + s.gap_ps;
            q.push(Reverse((s.next_issue, c)));
        }
    }
    phase_end + ps(m.phase_overhead_s)
}

/// Replay `trace` through the discrete-event engine on machine `m`.
pub fn simulate_des(trace: &PhaseTrace, m: &MachineConfig, opt: &DesOptions) -> SimReport {
    let mut far = MemorySide::new(&m.far, m.line_bytes);
    let mut near = MemorySide::new(&m.near, m.line_bytes);
    let mut noc = Noc::new(m);
    let mut far_dc = DirectoryController::new(m.far.dc_entries);
    let mut near_dc = DirectoryController::new(m.near.dc_entries);
    let mut phases: Vec<PhaseStat> = Vec::with_capacity(trace.phases.len());
    let mut total_ps = 0u64;
    let mut overlapped_pairs = 0u64;
    let mut overlap_saved_ps = 0u64;
    let mut i = 0usize;
    let reset_all = |far: &mut MemorySide,
                     near: &mut MemorySide,
                     noc: &mut Noc,
                     fdc: &mut DirectoryController,
                     ndc: &mut DirectoryController| {
        far.reset_time();
        near.reset_time();
        noc.reset_time();
        fdc.reset();
        ndc.reset();
    };
    while i < trace.phases.len() {
        let p = &trace.phases[i];
        reset_all(&mut far, &mut near, &mut noc, &mut far_dc, &mut near_dc);
        let t = simulate_phase(
            p,
            m,
            opt,
            &mut far,
            &mut near,
            &mut noc,
            &mut far_dc,
            &mut near_dc,
        );
        let tot = p.total();
        let visible = if p.overlappable && i + 1 < trace.phases.len() {
            reset_all(&mut far, &mut near, &mut noc, &mut far_dc, &mut near_dc);
            let q = &trace.phases[i + 1];
            let tq = simulate_phase(
                q,
                m,
                opt,
                &mut far,
                &mut near,
                &mut noc,
                &mut far_dc,
                &mut near_dc,
            );
            let qtot = q.total();
            let pair = t.max(tq);
            overlapped_pairs += 1;
            overlap_saved_ps += t + tq - pair;
            phases.push(PhaseStat {
                name: p.name.clone(),
                seconds: if t >= tq { pair as f64 / PS } else { 0.0 },
                bottleneck: Bottleneck::FarBandwidth,
                far_bytes: tot.far_bytes(),
                near_bytes: tot.near_bytes(),
                compute_ops: tot.compute_ops,
            });
            phases.push(PhaseStat {
                name: q.name.clone(),
                seconds: if tq > t { pair as f64 / PS } else { 0.0 },
                bottleneck: Bottleneck::Compute,
                far_bytes: qtot.far_bytes(),
                near_bytes: qtot.near_bytes(),
                compute_ops: qtot.compute_ops,
            });
            i += 2;
            pair
        } else {
            phases.push(PhaseStat {
                name: p.name.clone(),
                seconds: t as f64 / PS,
                bottleneck: Bottleneck::FarBandwidth,
                far_bytes: tot.far_bytes(),
                near_bytes: tot.near_bytes(),
                compute_ops: tot.compute_ops,
            });
            i += 1;
            t
        };
        total_ps += visible;
    }
    tlmm_telemetry::counter!("memsim.des.phases").add(phases.len() as u64);
    tlmm_telemetry::counter!("memsim.des.far_row_hits").add(far.row_hits());
    tlmm_telemetry::counter!("memsim.des.far_row_misses")
        .add(far.accesses().saturating_sub(far.row_hits()));
    tlmm_telemetry::counter!("memsim.des.near_row_hits").add(near.row_hits());
    tlmm_telemetry::counter!("memsim.des.near_row_misses")
        .add(near.accesses().saturating_sub(near.row_hits()));
    for stat in &phases {
        crate::stats::emit_phase_sim("des", stat);
    }
    let (far_accesses, near_accesses) = line_accesses(trace, m.line_bytes);
    let t_total = trace.total();
    let total_s = (total_ps as f64 / PS).max(f64::MIN_POSITIVE);
    let detail = DesDetail {
        far_row_hit_rate: far.row_hit_rate(),
        near_row_hit_rate: near.row_hit_rate(),
        far_bus_utilization: (far.busy_ps() as f64 / PS) / (total_s * m.far.channels.max(1) as f64),
        near_bus_utilization: (near.busy_ps() as f64 / PS)
            / (total_s * m.near.channels.max(1) as f64),
        noc_bytes: noc.total_bytes(),
        served_requests: far.accesses() + near.accesses(),
    };
    SimReport {
        seconds: total_ps as f64 / PS,
        phases,
        far_accesses,
        near_accesses,
        far_bytes: t_total.far_bytes(),
        near_bytes: t_total.near_bytes(),
        fault_events: trace.faults(),
        overlapped_pairs,
        overlap_saved_seconds: overlap_saved_ps as f64 / PS,
        detail: Some(detail),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::simulate_flow;
    use tlmm_scratchpad::LaneWork;

    fn phase(name: &str, lanes: Vec<LaneWork>, overlappable: bool) -> PhaseRecord {
        PhaseRecord {
            name: name.into(),
            lanes,
            overlappable,
            faults: 0,
        }
    }

    fn wide_lanes(far: u64, near: u64, ops: u64, n: usize) -> Vec<LaneWork> {
        vec![
            LaneWork {
                far_read_bytes: far,
                near_read_bytes: near,
                compute_ops: ops,
                ..Default::default()
            };
            n
        ]
    }

    #[test]
    fn bandwidth_bound_phase_agrees_with_flow() {
        let m = MachineConfig::fig4(256, 4.0);
        let trace = PhaseTrace {
            phases: vec![phase("scan", wide_lanes(1 << 20, 0, 0, 256), false)],
        };
        let des = simulate_des(&trace, &m, &DesOptions::default());
        let flow = simulate_flow(&trace, &m);
        let ratio = des.seconds / flow.seconds;
        assert!(
            ratio > 0.7 && ratio < 1.4,
            "des {} flow {} ratio {ratio}",
            des.seconds,
            flow.seconds
        );
    }

    #[test]
    fn near_traffic_scales_with_rho() {
        let run = |rho| {
            let m = MachineConfig::fig4(256, rho);
            let trace = PhaseTrace {
                phases: vec![phase("near", wide_lanes(0, 4 << 20, 0, 256), false)],
            };
            simulate_des(&trace, &m, &DesOptions::default()).seconds
        };
        let t2 = run(2.0);
        let t8 = run(8.0);
        let ratio = t2 / t8;
        assert!(ratio > 2.5 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn compute_bound_phase_duration() {
        let m = MachineConfig::fig4(256, 4.0);
        let ops = 1_000_000_000u64;
        let trace = PhaseTrace {
            phases: vec![phase("crunch", wide_lanes(64, 0, ops, 256), false)],
        };
        let r = simulate_des(&trace, &m, &DesOptions::default());
        let expect = ops as f64 / m.core_rate();
        assert!(
            (r.seconds / expect) > 0.9 && (r.seconds / expect) < 1.3,
            "sim {} expect {}",
            r.seconds,
            expect
        );
    }

    #[test]
    fn pure_compute_phase_without_traffic() {
        let m = MachineConfig::fig4(16, 4.0);
        let trace = PhaseTrace {
            phases: vec![phase("think", wide_lanes(0, 0, 1_700_000, 16), false)],
        };
        let r = simulate_des(&trace, &m, &DesOptions::default());
        let expect = 1_700_000.0 / m.core_rate();
        assert!((r.seconds - expect).abs() / expect < 0.1 + m.phase_overhead_s / expect);
    }

    #[test]
    fn phases_are_sequential() {
        let m = MachineConfig::fig4(64, 4.0);
        let one = PhaseTrace {
            phases: vec![phase("a", wide_lanes(1 << 20, 0, 0, 64), false)],
        };
        let two = PhaseTrace {
            phases: vec![
                phase("a", wide_lanes(1 << 20, 0, 0, 64), false),
                phase("b", wide_lanes(1 << 20, 0, 0, 64), false),
            ],
        };
        let t1 = simulate_des(&one, &m, &DesOptions::default()).seconds;
        let t2 = simulate_des(&two, &m, &DesOptions::default()).seconds;
        assert!(t2 > 1.8 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn overlappable_pair_shorter_than_sum() {
        let m = MachineConfig::fig4(256, 4.0);
        let mk = |overlap| PhaseTrace {
            phases: vec![
                phase("dma", wide_lanes(2 << 20, 0, 0, 256), overlap),
                phase("work", wide_lanes(0, 0, 40_000_000, 256), false),
            ],
        };
        let with = simulate_des(&mk(true), &m, &DesOptions::default()).seconds;
        let without = simulate_des(&mk(false), &m, &DesOptions::default()).seconds;
        assert!(with < without, "with={with} without={without}");
    }

    #[test]
    fn coarser_requests_are_close_to_fine() {
        let m = MachineConfig::fig4(64, 4.0);
        let trace = PhaseTrace {
            phases: vec![phase("scan", wide_lanes(1 << 20, 0, 0, 64), false)],
        };
        let fine = simulate_des(
            &trace,
            &m,
            &DesOptions {
                req_bytes: 64,
                mlp: 4,
            },
        )
        .seconds;
        let coarse = simulate_des(
            &trace,
            &m,
            &DesOptions {
                req_bytes: 1024,
                mlp: 4,
            },
        )
        .seconds;
        let ratio = fine / coarse;
        assert!(ratio > 0.6 && ratio < 1.6, "fine={fine} coarse={coarse}");
    }

    #[test]
    fn detail_reports_row_hits_and_utilization() {
        // A single streaming core keeps rows open (many cores thrash the
        // banks and drive the hit rate toward zero — also observable here).
        let m = MachineConfig::fig4(64, 4.0);
        let one = PhaseTrace {
            phases: vec![phase("scan", wide_lanes(1 << 20, 1 << 20, 0, 1), false)],
        };
        let r = simulate_des(&one, &m, &DesOptions::default());
        let d = r.detail.expect("DES must attach detail");
        assert!(d.far_row_hit_rate > 0.8, "far hits {}", d.far_row_hit_rate);
        assert!(d.far_bus_utilization <= 1.01);
        assert_eq!(d.noc_bytes, 2 * (1 << 20));
        assert_eq!(d.served_requests, 2 * (1 << 20) / 64);

        let many = PhaseTrace {
            phases: vec![phase("scan", wide_lanes(1 << 16, 0, 0, 64), false)],
        };
        let dm = simulate_des(&many, &m, &DesOptions::default())
            .detail
            .unwrap();
        assert!(
            dm.far_row_hit_rate < d.far_row_hit_rate,
            "interleaved streams must thrash rows"
        );
    }

    #[test]
    fn tiny_dc_entry_limit_throttles() {
        let mut m = MachineConfig::fig4(64, 4.0);
        let trace = PhaseTrace {
            phases: vec![phase("scan", wide_lanes(1 << 20, 0, 0, 64), false)],
        };
        let free = simulate_des(&trace, &m, &DesOptions::default()).seconds;
        m.far.dc_entries = 1; // one outstanding request node-wide
        let gated = simulate_des(&trace, &m, &DesOptions::default()).seconds;
        assert!(
            gated > 2.0 * free,
            "DC entry starvation must slow the run: {gated} vs {free}"
        );
    }

    #[test]
    fn access_counts_match_trace_volumes() {
        let m = MachineConfig::fig4(8, 4.0);
        let trace = PhaseTrace {
            phases: vec![phase("x", wide_lanes(6400, 640, 0, 8), false)],
        };
        let r = simulate_des(&trace, &m, &DesOptions::default());
        assert_eq!(r.far_accesses, 8 * 100);
        assert_eq!(r.near_accesses, 8 * 10);
    }
}
