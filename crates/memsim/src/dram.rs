//! Channel/bank timing model for both memory sides (the DRAMSim2 stand-in).
//!
//! Each memory side has `channels` independent channels, each with a data
//! bus and `banks_per_channel` banks holding one open row each. A request
//! occupies the bus for its burst time; hitting a closed row additionally
//! pays the precharge+activate penalty. Streaming access patterns therefore
//! reach close to peak bandwidth (one miss per `row_bytes`), while random
//! patterns pay a miss per access — exactly the behaviour the sustained
//! `efficiency` factor of the analytic model approximates.
//!
//! Time is in integer **picoseconds** throughout the DES layer.

use crate::config::MemSideConfig;

/// Picoseconds per second.
pub const PS: f64 = 1e12;

/// Convert seconds to picoseconds.
#[inline]
pub fn ps(seconds: f64) -> u64 {
    (seconds * PS).round() as u64
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Time the bank finishes its current activate/transfer (ps).
    free: u64,
}

/// One memory channel: a data bus plus banks.
#[derive(Debug)]
pub struct Channel {
    banks: Vec<Bank>,
    /// Bus free time (ps).
    next_free: u64,
    burst_ps: u64,
    miss_penalty_ps: u64,
    latency_ps: u64,
    row_bytes: u64,
    /// Served requests.
    pub accesses: u64,
    /// Row-buffer hits among them.
    pub row_hits: u64,
    /// Total bus-busy picoseconds.
    pub busy_ps: u64,
}

impl Channel {
    fn new(cfg: &MemSideConfig, line_bytes: u64) -> Self {
        Self {
            banks: vec![Bank::default(); cfg.banks_per_channel.max(1) as usize],
            next_free: 0,
            burst_ps: ps(cfg.row_hit_s * line_bytes as f64 / 64.0),
            miss_penalty_ps: ps(cfg.row_miss_penalty_s),
            latency_ps: ps(cfg.latency_s),
            row_bytes: cfg.row_bytes.max(64),
            accesses: 0,
            row_hits: 0,
            busy_ps: 0,
        }
    }

    /// Serve a line request at `addr` arriving at `t_arrive`; returns the
    /// completion time (data back at the requester's edge of the channel).
    ///
    /// Row activates happen *in the bank*, off the data bus, so independent
    /// streams pipeline: a row miss lengthens the request's latency but the
    /// bus keeps transferring at burst rate — the behaviour that lets many
    /// cores stream concurrently at near-peak bandwidth.
    pub fn service(&mut self, t_arrive: u64, addr: u64) -> u64 {
        let row = addr / self.row_bytes;
        // Multiplicative bank-bit hash (real controllers XOR/permute bank
        // bits): without it, power-of-two-strided streams from many cores
        // all land in one bank and serialize on activates.
        let bank_idx =
            ((row.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % self.banks.len() as u64) as usize;
        let bank = &mut self.banks[bank_idx];
        let hit = bank.open_row == Some(row);
        // Activates serialize within a bank but run off the data bus (the
        // controller pre-activates queued requests, FR-FCFS style), so other
        // banks' transfers keep the bus busy during a row miss.
        let ready = if hit {
            t_arrive
        } else {
            let s = t_arrive.max(bank.free);
            bank.free = s + self.miss_penalty_ps;
            bank.free
        };
        // Data transfer occupies the shared bus.
        let start = ready.max(self.next_free);
        self.next_free = start + self.burst_ps;
        bank.open_row = Some(row);
        self.accesses += 1;
        self.row_hits += hit as u64;
        self.busy_ps += self.burst_ps;
        self.next_free + self.latency_ps
    }

    /// Reset dynamic state (bus and banks), keeping configuration.
    pub fn reset_time(&mut self) {
        self.next_free = 0;
        for b in &mut self.banks {
            b.open_row = None;
            b.free = 0;
        }
    }
}

/// All channels of one memory side with line-interleaved routing.
#[derive(Debug)]
pub struct MemorySide {
    channels: Vec<Channel>,
    line_bytes: u64,
}

impl MemorySide {
    /// Build the side from its config and the machine line size.
    pub fn new(cfg: &MemSideConfig, line_bytes: u64) -> Self {
        Self {
            channels: (0..cfg.channels.max(1))
                .map(|_| Channel::new(cfg, line_bytes))
                .collect(),
            line_bytes: line_bytes.max(1),
        }
    }

    /// Serve a line request; channel chosen by line-address interleave.
    pub fn service(&mut self, t_arrive: u64, addr: u64) -> u64 {
        let ch = ((addr / self.line_bytes) % self.channels.len() as u64) as usize;
        self.channels[ch].service(t_arrive, addr)
    }

    /// Total served requests.
    pub fn accesses(&self) -> u64 {
        self.channels.iter().map(|c| c.accesses).sum()
    }

    /// Total requests that hit an open row buffer.
    pub fn row_hits(&self) -> u64 {
        self.channels.iter().map(|c| c.row_hits).sum()
    }

    /// Row-buffer hit fraction (0 when idle).
    pub fn row_hit_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            return 0.0;
        }
        self.channels.iter().map(|c| c.row_hits).sum::<u64>() as f64 / a as f64
    }

    /// Aggregate bus-busy picoseconds.
    pub fn busy_ps(&self) -> u64 {
        self.channels.iter().map(|c| c.busy_ps).sum()
    }

    /// Reset bus/bank state between phases (stats are kept).
    pub fn reset_time(&mut self) {
        for c in &mut self.channels {
            c.reset_time();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn far_side() -> MemorySide {
        let m = MachineConfig::fig4(256, 4.0);
        MemorySide::new(&m.far, m.line_bytes)
    }

    #[test]
    fn streaming_hits_rows() {
        let mut s = far_side();
        for i in 0..10_000u64 {
            s.service(0, i * 64);
        }
        assert_eq!(s.accesses(), 10_000);
        assert!(s.row_hit_rate() > 0.95, "hit rate {}", s.row_hit_rate());
    }

    #[test]
    fn random_access_misses_rows() {
        let mut s = far_side();
        let mut x = 0x12345678u64;
        for _ in 0..10_000 {
            // xorshift addresses over 4 GiB
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.service(0, (x % (4 << 30)) & !63);
        }
        assert!(s.row_hit_rate() < 0.2, "hit rate {}", s.row_hit_rate());
    }

    #[test]
    fn streaming_bandwidth_near_peak() {
        let m = MachineConfig::fig4(256, 4.0);
        let mut s = MemorySide::new(&m.far, m.line_bytes);
        let n = 1_000_000u64;
        let mut done = 0u64;
        for i in 0..n {
            done = done.max(s.service(0, i * 64));
        }
        let bytes = n * 64;
        let secs = done as f64 / PS;
        let bw = bytes as f64 / secs;
        let peak = m.far.channels as f64 * m.far.channel_bytes_per_sec;
        assert!(bw > 0.85 * peak, "bw {bw:.3e} vs peak {peak:.3e}");
        assert!(bw <= 1.01 * peak);
    }

    #[test]
    fn contention_serializes() {
        let mut s = far_side();
        // Two requests to the same channel (same line-interleave class).
        let t1 = s.service(0, 0);
        let t2 = s.service(0, 4 * 64); // 4 channels -> addr 256 maps to ch 0
        assert!(t2 > t1);
        // A request to another channel is not delayed.
        let t3 = s.service(0, 64);
        assert!(t3 <= t1);
    }

    #[test]
    fn near_side_faster_aggregate() {
        let m = MachineConfig::fig4(256, 8.0);
        let mut far = MemorySide::new(&m.far, 64);
        let mut near = MemorySide::new(&m.near, 64);
        let n = 100_000u64;
        let (mut tf, mut tn) = (0u64, 0u64);
        for i in 0..n {
            tf = tf.max(far.service(0, i * 64));
            tn = tn.max(near.service(0, i * 64));
        }
        let ratio = tf as f64 / tn as f64;
        assert!(ratio > 6.0, "near should be ~8x faster, got {ratio}");
    }

    #[test]
    fn reset_time_clears_bus() {
        let mut s = far_side();
        for i in 0..1000u64 {
            s.service(0, i * 64);
        }
        s.reset_time();
        let t = s.service(0, 0);
        // After reset the first request completes within service+latency.
        let m = MachineConfig::fig4(256, 4.0);
        let bound = ps(m.far.row_hit_s + m.far.row_miss_penalty_s + m.far.latency_s);
        assert!(t <= bound, "t={t} bound={bound}");
        assert_eq!(s.accesses(), 1001, "stats persist across reset");
    }
}
