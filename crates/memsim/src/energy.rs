//! Memory-system energy accounting.
//!
//! The paper's opening motivation for stacked near memory is "higher
//! bandwidth **and lower power** by stacking DRAM chips on the processor"
//! (§I, §VI-A: "considerably higher bandwidth rates … and lower power
//! consumption than existing memory technologies"). This module makes that
//! claim measurable: a per-byte energy model over the same phase traces the
//! timing simulators consume.
//!
//! Default coefficients follow the published rules of thumb for the paper's
//! era: off-package DDR costs ~20 pJ/bit end to end, on-package stacked
//! DRAM ~4–8 pJ/bit, on-chip wires ~0.1 pJ/bit/mm, and a simple core a few
//! pJ per operation. Absolute joules are indicative; the *ratio* between a
//! DRAM-heavy and a scratchpad-heavy run is the claim under test.

use serde::{Deserialize, Serialize};
use tlmm_scratchpad::PhaseTrace;

/// Energy coefficients (picojoules).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// pJ per byte moved against far memory (DDR DIMM, channel + device).
    pub far_pj_per_byte: f64,
    /// pJ per byte moved against near memory (stacked, short wires).
    pub near_pj_per_byte: f64,
    /// pJ per byte crossing the on-chip network.
    pub noc_pj_per_byte: f64,
    /// pJ per RAM-model operation (comparison with its bookkeeping).
    pub op_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            // 20 pJ/bit ~ 160 pJ/B for commodity DDR of the era.
            far_pj_per_byte: 160.0,
            // ~6 pJ/bit ~ 48 pJ/B for on-package stacked DRAM.
            near_pj_per_byte: 48.0,
            noc_pj_per_byte: 8.0,
            op_pj: 20.0,
        }
    }
}

/// Energy breakdown of one run, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Far-memory transfer energy.
    pub far_j: f64,
    /// Near-memory transfer energy.
    pub near_j: f64,
    /// On-chip network energy.
    pub noc_j: f64,
    /// Core compute energy.
    pub compute_j: f64,
}

impl EnergyReport {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.far_j + self.near_j + self.noc_j + self.compute_j
    }

    /// Fraction of the total spent moving data (vs computing).
    pub fn data_movement_fraction(&self) -> f64 {
        let m = self.far_j + self.near_j + self.noc_j;
        m / self.total_j().max(f64::MIN_POSITIVE)
    }
}

/// Evaluate `model` over a recorded trace.
pub fn estimate_energy(trace: &PhaseTrace, model: &EnergyModel) -> EnergyReport {
    let t = trace.total();
    let pj = EnergyReport {
        far_j: t.far_bytes() as f64 * model.far_pj_per_byte,
        near_j: t.near_bytes() as f64 * model.near_pj_per_byte,
        noc_j: t.noc_bytes() as f64 * model.noc_pj_per_byte,
        compute_j: t.compute_ops as f64 * model.op_pj,
    };
    EnergyReport {
        far_j: pj.far_j * 1e-12,
        near_j: pj.near_j * 1e-12,
        noc_j: pj.noc_j * 1e-12,
        compute_j: pj.compute_j * 1e-12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_scratchpad::{LaneWork, PhaseRecord};

    fn trace(far: u64, near: u64, ops: u64) -> PhaseTrace {
        PhaseTrace {
            phases: vec![PhaseRecord {
                name: "p".into(),
                lanes: vec![LaneWork {
                    far_read_bytes: far,
                    near_read_bytes: near,
                    compute_ops: ops,
                    ..Default::default()
                }],
                overlappable: false,
                faults: 0,
            }],
        }
    }

    #[test]
    fn arithmetic_is_exact() {
        let m = EnergyModel {
            far_pj_per_byte: 100.0,
            near_pj_per_byte: 10.0,
            noc_pj_per_byte: 1.0,
            op_pj: 2.0,
        };
        let r = estimate_energy(&trace(1_000, 500, 200), &m);
        assert!((r.far_j - 100e3 * 1e-12).abs() < 1e-18);
        assert!((r.near_j - 5e3 * 1e-12).abs() < 1e-18);
        assert!((r.noc_j - 1.5e3 * 1e-12).abs() < 1e-18);
        assert!((r.compute_j - 400.0 * 1e-12).abs() < 1e-18);
        assert!(r.total_j() > 0.0);
    }

    #[test]
    fn near_byte_cheaper_than_far_byte_by_default() {
        let m = EnergyModel::default();
        assert!(m.near_pj_per_byte < m.far_pj_per_byte / 2.0);
        let far_run = estimate_energy(&trace(1 << 20, 0, 0), &m);
        let near_run = estimate_energy(&trace(0, 1 << 20, 0), &m);
        assert!(near_run.total_j() < far_run.total_j() / 2.0);
    }

    #[test]
    fn movement_fraction_bounded() {
        let r = estimate_energy(&trace(1000, 1000, 1000), &EnergyModel::default());
        let f = r.data_movement_fraction();
        assert!((0.0..=1.0).contains(&f));
        let pure_compute = estimate_energy(&trace(0, 0, 1000), &EnergyModel::default());
        assert_eq!(pure_compute.data_movement_fraction(), 0.0);
    }
}
