//! Architectural simulator for two-level main memory nodes.
//!
//! The paper's experiments ran on Sandia's SST with the Ariel core model,
//! DRAMSim2 memory timing and the Merlin on-chip network. This crate is the
//! from-scratch Rust substitute (see DESIGN.md §2 for the substitution
//! argument):
//!
//! * [`config::MachineConfig`] — the simulated node, with
//!   [`config::MachineConfig::fig4`] reproducing the paper's Fig. 4 system
//!   (256 cores at 1.7 GHz in quad-core groups, 16 KB L1s, 512 KB L2s,
//!   72 GB/s NoC links, DDR-1066 ×4 far memory ≈ 60 GB/s STREAM, and a
//!   scratchpad with 2×/4×/8× that bandwidth at 50 ns latency).
//! * [`flow`] — fast analytic replay of a
//!   [`tlmm_scratchpad::PhaseTrace`]: each phase's duration is the maximum
//!   over its bottlenecks (per-lane compute, far channels, near channels,
//!   NoC, per-core issue bandwidth), with DMA-overlappable phases hidden
//!   behind their successors.
//! * [`des`] — a discrete-event engine at memory-request granularity:
//!   per-lane request streams with limited memory-level parallelism, NoC
//!   link occupancy, channel queues with bank/row-buffer timing from
//!   [`dram`]. Slower, higher fidelity; `flow` is validated against it.
//! * [`cache`] — a set-associative write-back cache model, exercised by
//!   [`address`]-level traces (the Ariel-like mode).
//! * [`stats`] — the quantities Table I reports: simulated seconds plus
//!   scratchpad/DRAM access counts at cache-line granularity.
//!
//! ```
//! use tlmm_memsim::config::MachineConfig;
//! use tlmm_memsim::flow::simulate_flow;
//! use tlmm_scratchpad::{LaneWork, PhaseRecord, PhaseTrace};
//!
//! let machine = MachineConfig::fig4(256, 4.0);
//! let trace = PhaseTrace {
//!     phases: vec![PhaseRecord {
//!         name: "scan".into(),
//!         lanes: vec![
//!             LaneWork { far_read_bytes: 1 << 30, ..Default::default() };
//!             256
//!         ],
//!         overlappable: false,
//!         faults: 0,
//!     }],
//! };
//! let report = simulate_flow(&trace, &machine);
//! // 256 GiB over ~60 GB/s of far bandwidth ≈ 4.6 s.
//! assert!(report.seconds > 3.0 && report.seconds < 7.0);
//! ```

pub mod address;
pub mod cache;
pub mod config;
pub mod crosscheck;
pub mod des;
pub mod dram;
pub mod energy;
pub mod flow;
pub mod noc;
pub mod stats;

pub use config::MachineConfig;
pub use flow::simulate_flow;
pub use stats::SimReport;
