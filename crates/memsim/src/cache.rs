//! Set-associative write-back cache model (the L1/L2 of Fig. 7).
//!
//! Used by the address-trace mode ([`crate::address`]) to model the on-chip
//! part of the hierarchy. The phase-trace replay paths do not re-simulate
//! caches: the runtime's ledger already records post-cache traffic (the
//! algorithms charge exactly the blocks they semantically stream), which is
//! the same quantity this model's miss stream would produce for streaming
//! kernels.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.size_bytes / (self.ways as u64 * self.line_bytes)).max(1)
    }

    /// The paper's L1: 16 KB, 2-way, 64 B lines.
    pub fn fig7_l1() -> Self {
        Self {
            size_bytes: 16 << 10,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// The paper's L2: 512 KB, 16-way, 64 B lines.
    pub fn fig7_l2() -> Self {
        Self {
            size_bytes: 512 << 10,
            ways: 16,
            line_bytes: 64,
        }
    }
}

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Load.
    Read,
    /// Store (write-allocate).
    Write,
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// The line was present.
    pub hit: bool,
    /// A dirty victim line was evicted; its base address must be written
    /// back to the next level.
    pub writeback: Option<u64>,
    /// On a miss, the line address that must be fetched from the next
    /// level.
    pub fill: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with true-LRU
/// replacement.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets * ways, row-major by set
    tick: u64,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl Cache {
    /// Build an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two() && cfg.line_bytes > 0);
        assert!(cfg.ways > 0);
        let n = cfg.sets() * cfg.ways as u64;
        Self {
            cfg,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0
                };
                n as usize
            ],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Perform one access at byte address `addr`.
    pub fn access(&mut self, addr: u64, kind: Access) -> AccessResult {
        self.tick += 1;
        let line_addr = addr / self.cfg.line_bytes;
        let sets = self.cfg.sets();
        let set = (line_addr % sets) as usize;
        let tag = line_addr / sets;
        let ways = self.cfg.ways as usize;
        let base = set * ways;
        let slots = &mut self.lines[base..base + ways];

        // Hit?
        if let Some(l) = slots.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = self.tick;
            if kind == Access::Write {
                l.dirty = true;
            }
            self.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
                fill: None,
            };
        }
        self.misses += 1;

        // Victim: invalid slot or true-LRU.
        let victim = slots
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("ways > 0");
        let writeback = if victim.valid && victim.dirty {
            self.writebacks += 1;
            Some((victim.tag * sets + set as u64) * self.cfg.line_bytes)
        } else {
            None
        };
        victim.tag = tag;
        victim.valid = true;
        victim.dirty = kind == Access::Write;
        victim.lru = self.tick;
        AccessResult {
            hit: false,
            writeback,
            fill: Some(line_addr * self.cfg.line_bytes),
        }
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Lines currently valid (for capacity invariants).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

impl Drop for Cache {
    fn drop(&mut self) {
        // Hit/miss telemetry flushes once per cache lifetime — per-access
        // global counter traffic would dominate the simulated access loop.
        if self.hits > 0 {
            tlmm_telemetry::counter!("memsim.cache.hits").add(self.hits);
        }
        if self.misses > 0 {
            tlmm_telemetry::counter!("memsim.cache.misses").add(self.misses);
        }
        if self.writebacks > 0 {
            tlmm_telemetry::counter!("memsim.cache.writebacks").add(self.writebacks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::fig7_l1();
        assert_eq!(c.sets(), (16 << 10) / (2 * 64));
        let c = CacheConfig::fig7_l2();
        assert_eq!(c.sets(), (512 << 10) / (16 * 64));
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = Cache::new(CacheConfig::fig7_l1());
        assert!(!c.access(0x1000, Access::Read).hit);
        assert!(c.access(0x1000, Access::Read).hit);
        assert!(c.access(0x1004, Access::Read).hit, "same line, other word");
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn streaming_never_hits_across_lines() {
        let mut c = Cache::new(CacheConfig::fig7_l1());
        for i in 0..10_000u64 {
            c.access(i * 64, Access::Read);
        }
        assert_eq!(c.hits, 0);
        assert_eq!(c.misses, 10_000);
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let cfg = CacheConfig::fig7_l1();
        let mut c = Cache::new(cfg);
        let lines = cfg.size_bytes / cfg.line_bytes; // 256 lines
        for round in 0..10 {
            for i in 0..lines {
                let r = c.access(i * 64, Access::Read);
                if round > 0 {
                    assert!(r.hit, "round {round} line {i} should hit");
                }
            }
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct the test at one set: 2-way; three conflicting lines.
        let cfg = CacheConfig {
            size_bytes: 2 * 64, // one set, 2 ways
            ways: 2,
            line_bytes: 64,
        };
        let mut c = Cache::new(cfg);
        assert_eq!(cfg.sets(), 1);
        c.access(0, Access::Read); // A
        c.access(64, Access::Read); // B
        c.access(0, Access::Read); // touch A -> B is LRU
        c.access(128, Access::Read); // C evicts B
        assert!(c.access(0, Access::Read).hit, "A still resident");
        assert!(!c.access(64, Access::Read).hit, "B was evicted");
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let cfg = CacheConfig {
            size_bytes: 64,
            ways: 1,
            line_bytes: 64,
        };
        let mut c = Cache::new(cfg);
        c.access(0, Access::Write);
        let r = c.access(64, Access::Read);
        assert_eq!(r.writeback, Some(0), "dirty line 0 must be written back");
        let r = c.access(128, Access::Read);
        assert_eq!(r.writeback, None, "clean line needs no writeback");
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let cfg = CacheConfig::fig7_l1();
        let mut c = Cache::new(cfg);
        for i in 0..100_000u64 {
            c.access((i * 2654435761) % (1 << 30), Access::Write);
        }
        assert!(c.valid_lines() as u64 <= cfg.size_bytes / cfg.line_bytes);
    }

    #[test]
    fn fill_address_is_line_aligned() {
        let mut c = Cache::new(CacheConfig::fig7_l1());
        let r = c.access(0x12345, Access::Read);
        assert_eq!(r.fill, Some(0x12345 / 64 * 64));
    }
}
