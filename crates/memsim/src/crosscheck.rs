//! Cross-check: flight-recorder critical path vs. flow-engine labels.
//!
//! Two independent views of the same run exist after PR 6: the flow
//! engine replays the *phase trace* analytically and labels each phase
//! with a [`Bottleneck`], while the critical-path analyzer walks the
//! *flight trace* and attributes the makespan to per-edge categories.
//! They model different clocks (seconds under a [`crate::MachineConfig`]
//! vs. executor byte-units), so the check is categorical, not
//! quantitative: the flow engine's dominant bottleneck (by simulated
//! seconds) must be *compatible* with the critical path's dominant
//! attribution. A mismatch flags either a trace bug or a model drift —
//! exactly the validation loop the paper runs between its analysis and
//! SST measurements (§V-A).

use serde::{Deserialize, Serialize};
use tlmm_telemetry::critical::{CriticalPathReport, PathCategory};

use crate::stats::{Bottleneck, SimReport};

/// Outcome of one cross-check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossCheck {
    /// Dominant critical-path category (its stable label).
    pub critical_dominant: String,
    /// Share of the critical path in that category.
    pub critical_share: f64,
    /// Flow-engine bottleneck dominating the simulated seconds.
    pub flow_dominant: String,
    /// Simulated seconds under that bottleneck.
    pub flow_seconds: f64,
    /// Are the two verdicts compatible (see [`compatible`])?
    pub agree: bool,
}

impl CrossCheck {
    /// One-line human summary.
    pub fn render(&self) -> String {
        format!(
            "critical-path says {} ({:.0}%), flow engine says {} ({:.3}s): {}",
            self.critical_dominant,
            100.0 * self.critical_share,
            self.flow_dominant,
            self.flow_seconds,
            if self.agree { "AGREE" } else { "MISMATCH" }
        )
    }
}

/// Is a critical-path attribution compatible with a flow bottleneck?
///
/// The mapping is deliberately loose where the models measure different
/// things: the NoC carries both channels' traffic, so a NoC-bound phase
/// is compatible with either bandwidth attribution; `CoreIssue` is the
/// flow engine's per-core serialization of *all* traffic, compatible
/// with any busy category; `Overhead` only fires on tiny phases and is
/// treated as compatible (the flight trace has no counterpart for it).
pub fn compatible(cat: PathCategory, b: Bottleneck) -> bool {
    match b {
        Bottleneck::FarBandwidth => {
            matches!(cat, PathCategory::FarBandwidth | PathCategory::FaultRetry)
        }
        Bottleneck::NearBandwidth => {
            matches!(cat, PathCategory::NearBandwidth | PathCategory::FaultRetry)
        }
        Bottleneck::SlotWait => cat == PathCategory::SlotWait,
        Bottleneck::Compute => matches!(cat, PathCategory::Compute | PathCategory::Idle),
        Bottleneck::Noc => matches!(
            cat,
            PathCategory::FarBandwidth | PathCategory::NearBandwidth | PathCategory::FaultRetry
        ),
        Bottleneck::CoreIssue => cat != PathCategory::Idle,
        Bottleneck::Overhead => true,
    }
}

/// All bottleneck kinds the flow engine can label a phase with.
pub const ALL_BOTTLENECKS: [Bottleneck; 7] = [
    Bottleneck::FarBandwidth,
    Bottleneck::NearBandwidth,
    Bottleneck::Compute,
    Bottleneck::Noc,
    Bottleneck::CoreIssue,
    Bottleneck::SlotWait,
    Bottleneck::Overhead,
];

/// The subset of bottlenecks that charge *memory movement* — what a
/// virtual-domain flight trace can actually see (the executor clock
/// advances one unit per byte through a transfer slot; compute runs on
/// the algorithm's comparison model, off that clock).
pub const TRANSFER_BOTTLENECKS: [Bottleneck; 4] = [
    Bottleneck::FarBandwidth,
    Bottleneck::NearBandwidth,
    Bottleneck::Noc,
    Bottleneck::SlotWait,
];

/// Aggregate the flow report's per-phase seconds over `kinds` and return
/// the dominant `(bottleneck, seconds)` pair.
pub fn flow_dominant_among(sim: &SimReport, kinds: &[Bottleneck]) -> Option<(Bottleneck, f64)> {
    kinds
        .iter()
        .map(|&k| (k, sim.seconds_bound_by(k)))
        .filter(|&(_, s)| s > 0.0)
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Aggregate the flow report's per-phase seconds by bottleneck and
/// return the dominant `(bottleneck, seconds)` pair.
pub fn flow_dominant(sim: &SimReport) -> Option<(Bottleneck, f64)> {
    flow_dominant_among(sim, &ALL_BOTTLENECKS)
}

/// Cross-check a critical-path report against a flow-engine report of
/// the same run.
///
/// When the critical path attributes no time to compute (the norm for
/// virtual-domain traces — see [`TRANSFER_BOTTLENECKS`]), the comparison
/// is restricted to the flow engine's memory-movement labels so the two
/// models are judged on the ground they share; a compute-bound overall
/// verdict is a statement about machine rates the executor clock never
/// models, not a disagreement about the trace.
pub fn cross_check(cp: &CriticalPathReport, sim: &SimReport) -> CrossCheck {
    let transfer_only = cp.totals.compute == 0;
    let kinds: &[Bottleneck] = if transfer_only {
        &TRANSFER_BOTTLENECKS
    } else {
        &ALL_BOTTLENECKS
    };
    let (fb, fs) = flow_dominant_among(sim, kinds)
        .or_else(|| flow_dominant(sim))
        .unwrap_or((Bottleneck::Overhead, 0.0));
    let agree = compatible(cp.dominant, fb) || sim.phases.is_empty() || cp.makespan == 0;
    CrossCheck {
        critical_dominant: cp.dominant.label().to_string(),
        critical_share: cp.share(cp.dominant),
        flow_dominant: format!("{fb:?}"),
        flow_seconds: fs,
        agree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::PhaseStat;
    use tlmm_telemetry::critical::CategoryTotals;
    use tlmm_telemetry::flight::ClockDomain;

    fn cp(dominant: PathCategory, units: u64) -> CriticalPathReport {
        let mut totals = CategoryTotals::default();
        match dominant {
            PathCategory::FarBandwidth => totals.far_bandwidth = units,
            PathCategory::SlotWait => totals.slot_wait = units,
            _ => totals.compute = units,
        }
        CriticalPathReport {
            domain: ClockDomain::Virtual,
            origin: 0,
            makespan: units,
            critical_worker: 0,
            transfers_on_path: 1,
            totals,
            dominant,
            segments: vec![],
        }
    }

    fn sim(b: Bottleneck) -> SimReport {
        SimReport {
            seconds: 1.0,
            phases: vec![PhaseStat {
                name: "p".into(),
                seconds: 1.0,
                bottleneck: b,
                far_bytes: 0,
                near_bytes: 0,
                compute_ops: 0,
            }],
            far_accesses: 0,
            near_accesses: 0,
            far_bytes: 0,
            near_bytes: 0,
            fault_events: 0,
            overlapped_pairs: 0,
            overlap_saved_seconds: 0.0,
            detail: None,
        }
    }

    #[test]
    fn matching_verdicts_agree() {
        let c = cross_check(
            &cp(PathCategory::FarBandwidth, 100),
            &sim(Bottleneck::FarBandwidth),
        );
        assert!(c.agree, "{}", c.render());
        let c = cross_check(&cp(PathCategory::SlotWait, 100), &sim(Bottleneck::SlotWait));
        assert!(c.agree);
    }

    #[test]
    fn noc_is_compatible_with_either_bandwidth() {
        assert!(compatible(PathCategory::FarBandwidth, Bottleneck::Noc));
        assert!(compatible(PathCategory::NearBandwidth, Bottleneck::Noc));
        assert!(!compatible(PathCategory::SlotWait, Bottleneck::Noc));
    }

    #[test]
    fn conflicting_verdicts_mismatch() {
        let c = cross_check(
            &cp(PathCategory::SlotWait, 100),
            &sim(Bottleneck::FarBandwidth),
        );
        assert!(!c.agree, "{}", c.render());
        assert!(c.render().contains("MISMATCH"));
    }
}
