//! Simulated machine configurations.

use serde::{Deserialize, Serialize};

/// Parameters of one memory side (far DRAM or near scratchpad).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemSideConfig {
    /// Independent channels.
    pub channels: u32,
    /// Peak bytes/second per channel.
    pub channel_bytes_per_sec: f64,
    /// Sustained-efficiency factor (calibrates peak to STREAM-like numbers).
    pub efficiency: f64,
    /// Access latency in seconds (queuing excluded).
    pub latency_s: f64,
    /// Row-buffer (open-page) hit service time in seconds per 64 B burst;
    /// used by the DES bank model.
    pub row_hit_s: f64,
    /// Row-miss penalty in seconds (precharge + activate), DES bank model.
    pub row_miss_penalty_s: f64,
    /// Banks per channel (DES bank model).
    pub banks_per_channel: u32,
    /// Row-buffer size in bytes (DES bank model).
    pub row_bytes: u64,
    /// Directory-controller entries: the cap on outstanding requests this
    /// side tracks at once (Fig. 7: "16K DC Entries").
    pub dc_entries: u32,
}

impl MemSideConfig {
    /// Aggregate sustained bandwidth in bytes/second.
    pub fn sustained_bw(&self) -> f64 {
        self.channels as f64 * self.channel_bytes_per_sec * self.efficiency
    }
}

/// The full simulated node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Descriptive name, e.g. `"fig4-256c-4x"`.
    pub name: String,
    /// Core count (= virtual lanes the trace may use).
    pub cores: u32,
    /// Core clock in Hz.
    pub core_hz: f64,
    /// Sustained RAM-model operations per core per cycle (comparisons —
    /// includes the implied loads/stores around each comparison).
    pub ops_per_cycle: f64,
    /// Cores per group sharing an L2 and a NoC link (Fig. 4: 4).
    pub cores_per_group: u32,
    /// Per-group NoC link bandwidth, bytes/second.
    pub noc_link_bytes_per_sec: f64,
    /// NoC one-way latency in seconds.
    pub noc_latency_s: f64,
    /// Peak bytes/second a single core can stream (issue-limited).
    pub per_core_stream_bytes_per_sec: f64,
    /// L1 data cache size in bytes (per core).
    pub l1_bytes: u64,
    /// L2 cache size in bytes (per group).
    pub l2_bytes: u64,
    /// Cache-line / memory-block size in bytes.
    pub line_bytes: u64,
    /// Far memory (conventional DRAM).
    pub far: MemSideConfig,
    /// Near memory (scratchpad).
    pub near: MemSideConfig,
    /// Fixed per-phase overhead in seconds (barrier, kernel launch).
    pub phase_overhead_s: f64,
}

impl MachineConfig {
    /// The paper's Fig. 4 system with `cores` cores and a scratchpad
    /// bandwidth expansion of `rho` (2.0, 4.0 or 8.0 in the paper).
    ///
    /// Far memory: 4 channels of DDR-1066 (8.53 GB/s peak each, 34 GB/s
    /// aggregate) with a 36 GB/s NoC connection per channel; the paper
    /// quotes ≈ 60 GB/s STREAM for the node, which we reach with 4 channels
    /// at ~90 % of the 17 GB/s dual-rank sustained figure the SST
    /// configuration used. Near memory: 500 MHz, 8/16/32 channels giving
    /// 2×/4×/8× the far bandwidth at a constant 50 ns.
    pub fn fig4(cores: u32, rho: f64) -> Self {
        let far_channel_peak = 17.0e9; // bytes/s per channel (DDR-1066 dual rank)
        let far_eff = 0.88; // calibrates to ~60 GB/s STREAM for 4 channels
        let far = MemSideConfig {
            channels: 4,
            channel_bytes_per_sec: far_channel_peak,
            efficiency: far_eff,
            latency_s: 80e-9,
            row_hit_s: 64.0 / far_channel_peak,
            row_miss_penalty_s: 26e-9, // tRP + tRCD at DDR-1066
            banks_per_channel: 8,
            row_bytes: 8192,
            dc_entries: 16_384,
        };
        // Scratchpad: rho × the far *sustained* bandwidth, split over
        // channels of the same per-channel rate (8/16/32 channels for
        // 2x/4x/8x in the paper).
        let near_channels = (4.0 * rho).round().max(1.0) as u32;
        let near = MemSideConfig {
            channels: near_channels,
            channel_bytes_per_sec: far_channel_peak,
            efficiency: far_eff,
            latency_s: 50e-9,
            row_hit_s: 64.0 / far_channel_peak,
            row_miss_penalty_s: 10e-9, // stacked DRAM, cheaper activates
            banks_per_channel: 16,
            row_bytes: 2048,
            dc_entries: 16_384,
        };
        Self {
            name: format!("fig4-{cores}c-{rho}x"),
            cores,
            core_hz: 1.7e9,
            // A simple in-order core retires roughly one comparison (with
            // its surrounding loads/stores) every couple of cycles.
            ops_per_cycle: 0.5,
            cores_per_group: 4,
            noc_link_bytes_per_sec: 72.0e9,
            noc_latency_s: 20e-9,
            per_core_stream_bytes_per_sec: 8.0e9,
            l1_bytes: 16 << 10,
            l2_bytes: 512 << 10,
            line_bytes: 64,
            far,
            near,
            phase_overhead_s: 2e-6,
        }
    }

    /// Number of core groups (each with an L2 and a NoC link).
    pub fn groups(&self) -> u32 {
        self.cores.div_ceil(self.cores_per_group)
    }

    /// Aggregate NoC bandwidth in bytes/second.
    pub fn noc_bw(&self) -> f64 {
        self.groups() as f64 * self.noc_link_bytes_per_sec
    }

    /// Aggregate compute rate in ops/second.
    pub fn compute_rate(&self) -> f64 {
        self.cores as f64 * self.core_hz * self.ops_per_cycle
    }

    /// Per-core compute rate in ops/second.
    pub fn core_rate(&self) -> f64 {
        self.core_hz * self.ops_per_cycle
    }

    /// Aggregate on-chip cache in bytes (L1s + L2s) — the `Z` the
    /// memory-bound analysis uses.
    pub fn total_cache_bytes(&self) -> u64 {
        self.cores as u64 * self.l1_bytes + self.groups() as u64 * self.l2_bytes
    }

    /// The machine's rates in the form the §V-A bandwidth-bound test wants.
    pub fn machine_rates(&self, elem_bytes: usize) -> tlmm_model::MachineRates {
        tlmm_model::MachineRates {
            ops_per_sec: self.compute_rate(),
            elems_per_sec: self.far.sustained_bw() / elem_bytes as f64,
            cache_blocks: (self.total_cache_bytes() / self.line_bytes) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_matches_paper_parameters() {
        let m = MachineConfig::fig4(256, 4.0);
        assert_eq!(m.cores, 256);
        assert_eq!(m.groups(), 64);
        assert_eq!(m.l1_bytes, 16 << 10);
        assert_eq!(m.l2_bytes, 512 << 10);
        assert_eq!(m.line_bytes, 64);
        // STREAM ≈ 60 GB/s for far memory.
        let far_bw = m.far.sustained_bw();
        assert!(far_bw > 55e9 && far_bw < 65e9, "far bw {far_bw}");
        // Near = 4x far.
        let ratio = m.near.sustained_bw() / far_bw;
        assert!((ratio - 4.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn near_channels_scale_with_rho() {
        assert_eq!(MachineConfig::fig4(256, 2.0).near.channels, 8);
        assert_eq!(MachineConfig::fig4(256, 4.0).near.channels, 16);
        assert_eq!(MachineConfig::fig4(256, 8.0).near.channels, 32);
    }

    #[test]
    fn cache_total_is_36mb_class() {
        let m = MachineConfig::fig4(256, 4.0);
        let z = m.total_cache_bytes();
        assert_eq!(z, 256 * (16 << 10) + 64 * (512 << 10)); // 36 MiB
    }

    #[test]
    fn rates_shapes() {
        let m = MachineConfig::fig4(256, 4.0);
        assert!(m.compute_rate() > 1e11); // 256 * 1.7e9 * 0.5 ≈ 2.2e11
        let r = m.machine_rates(8);
        assert!(r.cache_blocks > 5e5);
        // The Fig. 4 node should be memory-bound at 256 cores...
        let v256 = tlmm_model::bounds::bandwidth_bound_verdict(&r);
        assert!(v256.is_memory_bound());
        // ...and not at 64 cores.
        let m64 = MachineConfig::fig4(64, 4.0);
        let v64 = tlmm_model::bounds::bandwidth_bound_verdict(&m64.machine_rates(8));
        assert!(!v64.is_memory_bound());
    }

    #[test]
    fn noc_is_not_the_bottleneck_on_fig4() {
        let m = MachineConfig::fig4(256, 8.0);
        assert!(m.noc_bw() > m.far.sustained_bw() + m.near.sustained_bw());
    }
}
