//! Analytic phase-trace replay (the fast path behind Table I).
//!
//! A phase's duration is the maximum over its potential bottlenecks:
//!
//! * far-channel occupancy: `far_bytes / far_sustained_bw`
//! * near-channel occupancy: `near_bytes / near_sustained_bw`
//! * NoC occupancy: `(far+near bytes) / noc_bw`
//! * compute critical path: `max_core(ops) / core_rate`
//! * per-core issue limit: `max_core(bytes) / per_core_stream_bw`
//!
//! plus a fixed per-phase overhead. Phases marked *overlappable* (DMA
//! transfers) hide behind their successor — but the channels are shared,
//! so the pair contributes
//! `max(t_dma, t_next, Σfar/far_bw, Σnear/near_bw, Σbytes/noc_bw)`:
//! a transfer can hide behind compute for free, while two phases that
//! both saturate the same channel serialize on it even when overlapped.
//!
//! Virtual lanes beyond the machine's core count fold onto cores
//! round-robin, so a 256-lane trace can be replayed on an 8-core config and
//! vice versa.

use crate::config::MachineConfig;
use crate::stats::{line_accesses, Bottleneck, PhaseStat, SimReport};
use tlmm_scratchpad::{PhaseRecord, PhaseTrace};

/// Duration and bottleneck of a single phase on `m`.
pub fn phase_time(p: &PhaseRecord, m: &MachineConfig) -> (f64, Bottleneck) {
    let cores = m.cores.max(1) as usize;
    // Fold lanes onto cores.
    let mut core_ops = vec![0u64; cores.min(p.lanes.len().max(1))];
    let mut core_bytes = vec![0u64; core_ops.len()];
    let mut core_wait = vec![0u64; core_ops.len()];
    let mut far_bytes = 0u64;
    let mut near_bytes = 0u64;
    for (i, l) in p.lanes.iter().enumerate() {
        let c = i % core_ops.len().max(1);
        core_ops[c] += l.compute_ops;
        core_bytes[c] += l.noc_bytes();
        core_wait[c] += l.slot_wait_units;
        far_bytes += l.far_bytes();
        near_bytes += l.near_bytes();
    }
    let far_t = far_bytes as f64 / m.far.sustained_bw();
    let near_t = near_bytes as f64 / m.near.sustained_bw();
    let noc_t = (far_bytes + near_bytes) as f64 / m.noc_bw();
    let compute_t = core_ops.iter().copied().max().unwrap_or(0) as f64 / m.core_rate();
    let issue_t =
        core_bytes.iter().copied().max().unwrap_or(0) as f64 / m.per_core_stream_bytes_per_sec;
    // Executor slot waits are byte-equivalent stalls on the issue path: a
    // core that waited W units behaves as if it streamed W extra bytes.
    // Candidate only when waits were recorded, so contention-free traces
    // can never be labeled SlotWait.
    let wait_t = if core_wait.iter().any(|&w| w > 0) {
        core_bytes
            .iter()
            .zip(&core_wait)
            .map(|(&b, &w)| b + w)
            .max()
            .unwrap_or(0) as f64
            / m.per_core_stream_bytes_per_sec
    } else {
        0.0
    };

    let candidates = [
        (far_t, Bottleneck::FarBandwidth),
        (near_t, Bottleneck::NearBandwidth),
        (noc_t, Bottleneck::Noc),
        (compute_t, Bottleneck::Compute),
        (issue_t, Bottleneck::CoreIssue),
        (wait_t, Bottleneck::SlotWait),
        (m.phase_overhead_s, Bottleneck::Overhead),
    ];
    let (t, b) = candidates
        .iter()
        .copied()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap();
    (t + m.phase_overhead_s, b)
}

/// Aggregate far/near channel bytes of a phase across all lanes.
fn channel_bytes(p: &PhaseRecord) -> (u64, u64) {
    let mut far = 0u64;
    let mut near = 0u64;
    for l in &p.lanes {
        far += l.far_bytes();
        near += l.near_bytes();
    }
    (far, near)
}

/// Replay `trace` on machine `m`, producing simulated time and access
/// counts.
pub fn simulate_flow(trace: &PhaseTrace, m: &MachineConfig) -> SimReport {
    let mut phases: Vec<PhaseStat> = Vec::with_capacity(trace.phases.len());
    let mut total = 0.0f64;
    let mut overlapped_pairs = 0u64;
    let mut overlap_saved = 0.0f64;
    let mut i = 0usize;
    while i < trace.phases.len() {
        let p = &trace.phases[i];
        let (t, b) = phase_time(p, m);
        let tot = p.total();
        if p.overlappable && i + 1 < trace.phases.len() {
            // DMA semantics: this transfer proceeds behind the next phase,
            // but the memory channels are shared — the pair can never beat
            // the summed occupancy of any single channel.
            let q = &trace.phases[i + 1];
            let (tq, bq) = phase_time(q, m);
            let qtot = q.total();
            let (fp, np) = channel_bytes(p);
            let (fq, nq) = channel_bytes(q);
            let far_pair = (fp + fq) as f64 / m.far.sustained_bw();
            let near_pair = (np + nq) as f64 / m.near.sustained_bw();
            let noc_pair = (fp + fq + np + nq) as f64 / m.noc_bw();
            let pair = t.max(tq).max(far_pair).max(near_pair).max(noc_pair);
            total += pair;
            overlapped_pairs += 1;
            overlap_saved += (t + tq) - pair;
            // Attribute the visible time to the longer member.
            let (tp_vis, tq_vis) = if t >= tq { (pair, 0.0) } else { (0.0, pair) };
            phases.push(PhaseStat {
                name: p.name.clone(),
                seconds: tp_vis,
                bottleneck: b,
                far_bytes: tot.far_bytes(),
                near_bytes: tot.near_bytes(),
                compute_ops: tot.compute_ops,
            });
            phases.push(PhaseStat {
                name: q.name.clone(),
                seconds: tq_vis,
                bottleneck: bq,
                far_bytes: qtot.far_bytes(),
                near_bytes: qtot.near_bytes(),
                compute_ops: qtot.compute_ops,
            });
            i += 2;
            continue;
        }
        total += t;
        phases.push(PhaseStat {
            name: p.name.clone(),
            seconds: t,
            bottleneck: b,
            far_bytes: tot.far_bytes(),
            near_bytes: tot.near_bytes(),
            compute_ops: tot.compute_ops,
        });
        i += 1;
    }
    tlmm_telemetry::counter!("memsim.flow.phases").add(phases.len() as u64);
    for stat in &phases {
        crate::stats::emit_phase_sim("flow", stat);
    }
    let (far_accesses, near_accesses) = line_accesses(trace, m.line_bytes);
    let t_total = trace.total();
    SimReport {
        seconds: total,
        phases,
        far_accesses,
        near_accesses,
        far_bytes: t_total.far_bytes(),
        near_bytes: t_total.near_bytes(),
        fault_events: trace.faults(),
        overlapped_pairs,
        overlap_saved_seconds: overlap_saved,
        detail: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_scratchpad::LaneWork;

    fn lanes_with(far: u64, near: u64, ops: u64, n: usize) -> Vec<LaneWork> {
        vec![
            LaneWork {
                far_read_bytes: far,
                near_read_bytes: near,
                compute_ops: ops,
                ..Default::default()
            };
            n
        ]
    }

    fn phase(name: &str, lanes: Vec<LaneWork>, overlappable: bool) -> PhaseRecord {
        PhaseRecord {
            name: name.into(),
            lanes,
            overlappable,
            faults: 0,
        }
    }

    #[test]
    fn bandwidth_bound_phase_times_match_bw() {
        let m = MachineConfig::fig4(256, 4.0);
        // 60 GB over ~60 GB/s far => ~1 s.
        let p = phase("scan", lanes_with(60e9 as u64 / 256, 0, 0, 256), false);
        let (t, b) = phase_time(&p, &m);
        assert!(t > 0.8 && t < 1.3, "t={t}");
        assert_eq!(b, Bottleneck::FarBandwidth);
    }

    #[test]
    fn near_phase_faster_by_rho() {
        let mk = |rho| {
            let m = MachineConfig::fig4(256, rho);
            let p = phase("near", lanes_with(0, 40e9 as u64 / 256, 0, 256), false);
            phase_time(&p, &m).0
        };
        let t2 = mk(2.0);
        let t8 = mk(8.0);
        assert!((t2 / t8 - 4.0).abs() < 0.2, "t2={t2} t8={t8}");
    }

    #[test]
    fn compute_bound_phase() {
        let m = MachineConfig::fig4(256, 4.0);
        let p = phase("crunch", lanes_with(1000, 0, 10_000_000_000, 256), false);
        let (t, b) = phase_time(&p, &m);
        assert_eq!(b, Bottleneck::Compute);
        // 1e10 ops / (1.7e9 * 0.5) ≈ 11.8 s on the slowest core.
        assert!(t > 10.0 && t < 13.0, "t={t}");
    }

    #[test]
    fn single_lane_is_issue_limited() {
        let m = MachineConfig::fig4(256, 8.0);
        // One lane moving 8 GB: the node has 60+ GB/s but one core only 8.
        let p = phase("serial", lanes_with(8e9 as u64, 0, 0, 1), false);
        let (t, b) = phase_time(&p, &m);
        assert_eq!(b, Bottleneck::CoreIssue);
        assert!(t > 0.9 && t < 1.2, "t={t}");
    }

    #[test]
    fn slot_waits_lengthen_issue_path_and_label_bottleneck() {
        let m = MachineConfig::fig4(256, 8.0);
        // One lane moving 4 GB that also waited 4 G byte-units for a
        // transfer slot: the issue path doubles and is labeled SlotWait.
        let stalled = PhaseRecord {
            name: "stalled".into(),
            lanes: vec![LaneWork {
                far_read_bytes: 4e9 as u64,
                slot_wait_units: 4e9 as u64,
                ..Default::default()
            }],
            overlappable: false,
            faults: 0,
        };
        let free = PhaseRecord {
            name: "free".into(),
            lanes: vec![LaneWork {
                far_read_bytes: 4e9 as u64,
                ..Default::default()
            }],
            overlappable: false,
            faults: 0,
        };
        let (t_stalled, b_stalled) = phase_time(&stalled, &m);
        let (t_free, b_free) = phase_time(&free, &m);
        assert_eq!(b_stalled, Bottleneck::SlotWait);
        assert_ne!(b_free, Bottleneck::SlotWait);
        let ratio = t_stalled / t_free;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio={ratio}");
    }

    #[test]
    fn empty_phase_costs_overhead_only() {
        let m = MachineConfig::fig4(256, 4.0);
        let p = phase("noop", vec![], false);
        let (t, b) = phase_time(&p, &m);
        assert_eq!(b, Bottleneck::Overhead);
        assert!(t <= 2.0 * m.phase_overhead_s + 1e-12);
    }

    #[test]
    fn phases_sum() {
        let m = MachineConfig::fig4(256, 4.0);
        let trace = PhaseTrace {
            phases: vec![
                phase("a", lanes_with(1 << 28, 0, 0, 256), false),
                phase("b", lanes_with(0, 1 << 28, 0, 256), false),
            ],
        };
        let r = simulate_flow(&trace, &m);
        let (ta, _) = phase_time(&trace.phases[0], &m);
        let (tb, _) = phase_time(&trace.phases[1], &m);
        assert!((r.seconds - (ta + tb)).abs() < 1e-12);
        assert_eq!(r.phases.len(), 2);
    }

    #[test]
    fn overlappable_phase_hides_behind_next() {
        let m = MachineConfig::fig4(256, 4.0);
        let xfer = phase("dma", lanes_with(30e9 as u64 / 256, 0, 0, 256), true);
        let work = phase("compute", lanes_with(0, 0, 2_000_000_000, 256), false);
        let (t_x, _) = phase_time(&xfer, &m);
        let (t_w, _) = phase_time(&work, &m);
        let r = simulate_flow(
            &PhaseTrace {
                phases: vec![xfer, work],
            },
            &m,
        );
        assert!((r.seconds - t_x.max(t_w)).abs() < 1e-9);
        // Without the overlap flag it would be the sum.
        assert!(r.seconds < t_x + t_w);
        assert_eq!(r.overlapped_pairs, 1);
        assert!((r.overlap_saved_seconds - (t_x + t_w - t_x.max(t_w))).abs() < 1e-9);
        assert!(r.overlap_fraction() > 0.0 && r.overlap_fraction() < 1.0);
    }

    #[test]
    fn overlapped_pair_cannot_beat_shared_channel_occupancy() {
        // Two far-bound phases of equal size: overlapping them cannot halve
        // the far channel's service time — the pair serializes on it.
        let m = MachineConfig::fig4(256, 4.0);
        let a = phase("dma", lanes_with(30e9 as u64 / 256, 0, 0, 256), true);
        let b = phase("more_far", lanes_with(30e9 as u64 / 256, 0, 0, 256), false);
        let (ta, _) = phase_time(&a, &m);
        let (tb, _) = phase_time(&b, &m);
        let r = simulate_flow(&PhaseTrace { phases: vec![a, b] }, &m);
        // Both phases hit the same channel: the pair costs the summed far
        // occupancy (≈ ta + tb up to per-phase overhead), not max(ta, tb).
        assert!(
            r.seconds > 1.8 * ta.max(tb),
            "pair {} vs max {}",
            r.seconds,
            ta.max(tb)
        );
        assert!(r.seconds <= ta + tb + 1e-9);
        assert_eq!(r.overlapped_pairs, 1);
    }

    #[test]
    fn serial_trace_reports_no_overlap() {
        let m = MachineConfig::fig4(256, 4.0);
        let trace = PhaseTrace {
            phases: vec![
                phase("a", lanes_with(1 << 28, 0, 0, 256), false),
                phase("b", lanes_with(0, 1 << 28, 0, 256), false),
            ],
        };
        let r = simulate_flow(&trace, &m);
        assert_eq!(r.overlapped_pairs, 0);
        assert_eq!(r.overlap_saved_seconds, 0.0);
        assert_eq!(r.overlap_fraction(), 0.0);
    }

    #[test]
    fn lane_folding_preserves_totals() {
        // 512 lanes on a 256-core machine: same aggregate bytes, compute
        // path may lengthen, never shorten.
        let m = MachineConfig::fig4(256, 4.0);
        let wide = phase("wide", lanes_with(1 << 20, 0, 1 << 20, 512), false);
        let narrow = phase("narrow", lanes_with(1 << 21, 0, 1 << 21, 256), false);
        let (tw, _) = phase_time(&wide, &m);
        let (tn, _) = phase_time(&narrow, &m);
        assert!((tw - tn).abs() < 1e-9, "tw={tw} tn={tn}");
    }

    #[test]
    fn report_access_counts_are_line_granular() {
        let m = MachineConfig::fig4(256, 4.0);
        let trace = PhaseTrace {
            phases: vec![phase("a", lanes_with(6400, 640, 0, 4), false)],
        };
        let r = simulate_flow(&trace, &m);
        assert_eq!(r.far_accesses, 4 * 100);
        assert_eq!(r.near_accesses, 4 * 10);
    }
}
