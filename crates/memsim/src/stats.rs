//! Simulation outputs: the quantities Table I reports.

use serde::{Deserialize, Serialize};
use tlmm_scratchpad::PhaseTrace;

/// Which resource bounded a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// Far-memory (DRAM) channel bandwidth.
    FarBandwidth,
    /// Near-memory (scratchpad) channel bandwidth.
    NearBandwidth,
    /// Core compute throughput.
    Compute,
    /// On-chip network links.
    Noc,
    /// A single core's issue bandwidth (under-parallelized phase).
    CoreIssue,
    /// Transfer-slot arbitration: a core's issue path was dominated by
    /// waiting for one of the executor's `p′` transfer slots (Theorem 10
    /// contention recorded as `slot_wait_units` in the trace).
    SlotWait,
    /// The fixed phase overhead dominated (tiny phase).
    Overhead,
}

/// Per-phase simulation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Phase name from the trace.
    pub name: String,
    /// Simulated duration in seconds (after any overlap was applied this is
    /// the *visible* duration added to the total).
    pub seconds: f64,
    /// The binding resource.
    pub bottleneck: Bottleneck,
    /// Bytes moved against far memory.
    pub far_bytes: u64,
    /// Bytes moved against near memory.
    pub near_bytes: u64,
    /// RAM-model operations executed.
    pub compute_ops: u64,
}

/// Extra measurements only the discrete-event engine produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesDetail {
    /// Fraction of far-memory requests that hit an open row.
    pub far_row_hit_rate: f64,
    /// Fraction of near-memory requests that hit an open row.
    pub near_row_hit_rate: f64,
    /// Far data-bus busy time over (wall time × channels).
    pub far_bus_utilization: f64,
    /// Near data-bus busy time over (wall time × channels).
    pub near_bus_utilization: f64,
    /// Bytes that crossed the on-chip network.
    pub noc_bytes: u64,
    /// Line requests served by both memory sides.
    pub served_requests: u64,
}

/// Whole-run simulation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated wall-clock seconds.
    pub seconds: f64,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseStat>,
    /// Far-memory accesses at cache-line granularity (Table I "DRAM
    /// Accesses").
    pub far_accesses: u64,
    /// Near-memory accesses at cache-line granularity (Table I "Scratchpad
    /// Accesses").
    pub near_accesses: u64,
    /// Total far bytes moved.
    pub far_bytes: u64,
    /// Total near bytes moved.
    pub near_bytes: u64,
    /// Injected faults recorded in the replayed trace (failures + delays).
    /// Non-zero means this is a *degraded* run: its traffic includes
    /// retried/retransmitted transfers charged by the fault layer.
    pub fault_events: u64,
    /// Overlappable phase pairs the engine actually overlapped (the DMA
    /// double-buffer pairs of a pipelined trace).
    pub overlapped_pairs: u64,
    /// Seconds saved by overlap versus running every phase serially:
    /// `Σ (t_p + t_q − t_pair)` over overlapped pairs. Zero on traces with
    /// no overlappable phases.
    pub overlap_saved_seconds: f64,
    /// Discrete-event-only measurements (`None` for the analytic engine).
    pub detail: Option<DesDetail>,
}

impl SimReport {
    /// Fraction of the serialized (no-overlap) makespan hidden by
    /// transfer/compute overlap: `saved / (seconds + saved)`.
    pub fn overlap_fraction(&self) -> f64 {
        let serialized = self.seconds + self.overlap_saved_seconds;
        if serialized <= 0.0 {
            0.0
        } else {
            self.overlap_saved_seconds / serialized
        }
    }
}

impl SimReport {
    /// Seconds attributable to phases bound by `b`.
    pub fn seconds_bound_by(&self, b: Bottleneck) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.bottleneck == b)
            .map(|p| p.seconds)
            .sum()
    }

    /// Names of phases (deduplicated, in order of first appearance) with
    /// their aggregate seconds — convenient for printed breakdowns.
    pub fn phase_summary(&self) -> Vec<(String, f64)> {
        let mut order: Vec<String> = Vec::new();
        let mut acc: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for p in &self.phases {
            if !acc.contains_key(&p.name) {
                order.push(p.name.clone());
            }
            *acc.entry(p.name.clone()).or_insert(0.0) += p.seconds;
        }
        order
            .into_iter()
            .map(|n| {
                let s = acc[&n];
                (n, s)
            })
            .collect()
    }
}

/// Emit one `phase_sim` telemetry event for a replayed phase: which engine
/// simulated it, its simulated seconds, the binding bottleneck, and the
/// byte/op volumes. No-op unless the JSONL sink is enabled.
pub(crate) fn emit_phase_sim(engine: &str, stat: &PhaseStat) {
    if !tlmm_telemetry::sink::enabled() {
        return;
    }
    use serde::{Serialize, Value};
    let mut fields = match stat.to_value() {
        Value::Map(fields) => fields,
        other => vec![("payload".to_string(), other)],
    };
    fields.insert(0, ("engine".to_string(), Value::Str(engine.to_string())));
    tlmm_telemetry::sink::emit("phase_sim", fields);
}

/// Count line-granular accesses for a trace (bytes / line, rounded up per
/// phase-lane so partial lines count as a full access, matching what a
/// line-based memory controller serves).
pub fn line_accesses(trace: &PhaseTrace, line_bytes: u64) -> (u64, u64) {
    let mut far = 0u64;
    let mut near = 0u64;
    for p in &trace.phases {
        for l in &p.lanes {
            far += tlmm_model::ceil_div(l.far_read_bytes, line_bytes)
                + tlmm_model::ceil_div(l.far_write_bytes, line_bytes);
            near += tlmm_model::ceil_div(l.near_read_bytes, line_bytes)
                + tlmm_model::ceil_div(l.near_write_bytes, line_bytes);
        }
    }
    (far, near)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_scratchpad::{LaneWork, PhaseRecord};

    #[test]
    fn line_accesses_round_up_per_lane() {
        let trace = PhaseTrace {
            phases: vec![PhaseRecord {
                name: "x".into(),
                lanes: vec![
                    LaneWork {
                        far_read_bytes: 65,
                        near_write_bytes: 64,
                        ..Default::default()
                    },
                    LaneWork {
                        far_write_bytes: 1,
                        ..Default::default()
                    },
                ],
                overlappable: false,
                faults: 0,
            }],
        };
        let (far, near) = line_accesses(&trace, 64);
        assert_eq!(far, 2 + 1);
        assert_eq!(near, 1);
    }

    #[test]
    fn report_aggregations() {
        let r = SimReport {
            seconds: 3.0,
            phases: vec![
                PhaseStat {
                    name: "a".into(),
                    seconds: 1.0,
                    bottleneck: Bottleneck::FarBandwidth,
                    far_bytes: 10,
                    near_bytes: 0,
                    compute_ops: 0,
                },
                PhaseStat {
                    name: "b".into(),
                    seconds: 2.0,
                    bottleneck: Bottleneck::Compute,
                    far_bytes: 0,
                    near_bytes: 5,
                    compute_ops: 100,
                },
                PhaseStat {
                    name: "a".into(),
                    seconds: 0.5,
                    bottleneck: Bottleneck::FarBandwidth,
                    far_bytes: 10,
                    near_bytes: 0,
                    compute_ops: 0,
                },
            ],
            far_accesses: 0,
            near_accesses: 0,
            far_bytes: 20,
            near_bytes: 5,
            fault_events: 0,
            overlapped_pairs: 0,
            overlap_saved_seconds: 0.0,
            detail: None,
        };
        assert_eq!(r.seconds_bound_by(Bottleneck::FarBandwidth), 1.5);
        let sum = r.phase_summary();
        assert_eq!(sum[0], ("a".to_string(), 1.5));
        assert_eq!(sum[1], ("b".to_string(), 2.0));
    }
}
