//! Model validation: measured ledger vs Theorem 6 predictions (F-MODEL).
//!
//! The paper's claim "memory access counts from simulations corroborate
//! predicted performance" becomes checkable here: for a sweep over `N` and
//! `ρ`, the measured far/near block counts should track the predicted
//! asymptotic curves up to a stable constant factor (the Θ's constant).

use tlmm_model::theorems;
use tlmm_model::{CostSnapshot, ScratchpadParams};

/// One (N, ρ) validation point.
#[derive(Debug, Clone, Copy)]
pub struct ValidationRow {
    /// Input elements.
    pub n: u64,
    /// Bandwidth expansion factor.
    pub rho: f64,
    /// Theorem 6 far-block prediction.
    pub predicted_far: f64,
    /// Measured far blocks from the ledger.
    pub measured_far: u64,
    /// Theorem 6 near-block prediction.
    pub predicted_near: f64,
    /// Measured near blocks from the ledger.
    pub measured_near: u64,
}

impl ValidationRow {
    /// Build a row from the parameters and a measured ledger snapshot.
    pub fn new(params: &ScratchpadParams, n: u64, elem_bytes: usize, s: &CostSnapshot) -> Self {
        let pred = theorems::theorem6_scratchpad_sort(params, n, elem_bytes);
        Self {
            n,
            rho: params.rho,
            predicted_far: pred.far_blocks,
            measured_far: s.far_blocks(),
            predicted_near: pred.near_blocks,
            measured_near: s.near_blocks(),
        }
    }

    /// measured/predicted for far blocks (the hidden constant).
    pub fn far_constant(&self) -> f64 {
        self.measured_far as f64 / self.predicted_far.max(1.0)
    }

    /// measured/predicted for near blocks.
    pub fn near_constant(&self) -> f64 {
        self.measured_near as f64 / self.predicted_near.max(1.0)
    }
}

/// Do the hidden constants stay within `spread` (max/min) across the sweep?
/// A drifting constant would mean the implementation's asymptotics differ
/// from the theorem's.
pub fn constants_stable(rows: &[ValidationRow], spread: f64) -> bool {
    let check = |f: fn(&ValidationRow) -> f64| -> bool {
        let vals: Vec<f64> = rows.iter().map(f).collect();
        match (
            vals.iter().cloned().fold(f64::INFINITY, f64::min),
            vals.iter().cloned().fold(0.0f64, f64::max),
        ) {
            (min, max) if min > 0.0 => max / min <= spread,
            _ => false,
        }
    };
    !rows.is_empty() && check(ValidationRow::far_constant) && check(ValidationRow::near_constant)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(far: u64, near: u64) -> CostSnapshot {
        CostSnapshot {
            far_read_blocks: far / 2,
            far_write_blocks: far - far / 2,
            near_read_blocks: near / 2,
            near_write_blocks: near - near / 2,
            ..Default::default()
        }
    }

    #[test]
    fn row_constants() {
        let p = ScratchpadParams::paper_default(4.0);
        let pred = theorems::theorem6_scratchpad_sort(&p, 1 << 22, 8);
        let s = snap(
            (2.0 * pred.far_blocks) as u64,
            (3.0 * pred.near_blocks) as u64,
        );
        let row = ValidationRow::new(&p, 1 << 22, 8, &s);
        assert!((row.far_constant() - 2.0).abs() < 0.01);
        assert!((row.near_constant() - 3.0).abs() < 0.01);
    }

    #[test]
    fn stability_detects_drift() {
        let p = ScratchpadParams::paper_default(4.0);
        let mk = |n: u64, factor: f64| {
            let pred = theorems::theorem6_scratchpad_sort(&p, n, 8);
            ValidationRow::new(
                &p,
                n,
                8,
                &snap(
                    (factor * pred.far_blocks) as u64,
                    (factor * pred.near_blocks) as u64,
                ),
            )
        };
        // Constant factor 2 everywhere: stable.
        let stable = vec![mk(1 << 20, 2.0), mk(1 << 22, 2.0), mk(1 << 24, 2.0)];
        assert!(constants_stable(&stable, 1.5));
        // Factor growing with n: unstable.
        let drift = vec![mk(1 << 20, 1.0), mk(1 << 22, 4.0), mk(1 << 24, 16.0)];
        assert!(!constants_stable(&drift, 2.0));
        assert!(!constants_stable(&[], 2.0));
    }
}
