//! Table-I style comparisons between simulated runs.

use tlmm_memsim::SimReport;

/// Relation between a candidate run and a baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// `baseline_seconds / candidate_seconds` (> 1 means candidate faster).
    pub speedup: f64,
    /// Wall-clock advantage as a fraction of the baseline (the paper quotes
    /// "more than 25 %" for 8×).
    pub advantage: f64,
    /// `baseline_far_accesses / candidate_far_accesses`.
    pub far_access_ratio: f64,
    /// Candidate scratchpad accesses per candidate DRAM access.
    pub near_per_far: f64,
}

/// Compare `candidate` against `baseline`.
pub fn compare_runs(baseline: &SimReport, candidate: &SimReport) -> Comparison {
    let speedup = baseline.seconds / candidate.seconds.max(f64::MIN_POSITIVE);
    Comparison {
        speedup,
        advantage: 1.0 - candidate.seconds / baseline.seconds.max(f64::MIN_POSITIVE),
        far_access_ratio: baseline.far_accesses as f64 / (candidate.far_accesses.max(1)) as f64,
        near_per_far: candidate.near_accesses as f64 / (candidate.far_accesses.max(1)) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seconds: f64, far: u64, near: u64) -> SimReport {
        SimReport {
            seconds,
            phases: vec![],
            far_accesses: far,
            near_accesses: near,
            far_bytes: far * 64,
            near_bytes: near * 64,
            fault_events: 0,
            overlapped_pairs: 0,
            overlap_saved_seconds: 0.0,
            detail: None,
        }
    }

    #[test]
    fn paper_table1_shape() {
        // GNU: 898.419 s, 394,774,287 DRAM, 0 scratchpad.
        // NMsort 8x: 640.126 s, 158,521,515 DRAM, 368,351,141 scratchpad.
        let gnu = report(898.419, 394_774_287, 0);
        let nm8 = report(640.126, 158_521_515, 368_351_141);
        let c = compare_runs(&gnu, &nm8);
        assert!(c.advantage > 0.25, "paper: >25% at 8x, got {}", c.advantage);
        assert!(
            c.far_access_ratio > 2.0,
            "NMsort does ~half the DRAM accesses"
        );
        assert!(c.near_per_far > 2.0 && c.near_per_far < 3.0);
    }

    #[test]
    fn identity_comparison() {
        let a = report(10.0, 100, 0);
        let c = compare_runs(&a, &a);
        assert!((c.speedup - 1.0).abs() < 1e-12);
        assert!(c.advantage.abs() < 1e-12);
    }

    #[test]
    fn slower_candidate_has_negative_advantage() {
        let base = report(10.0, 100, 0);
        let cand = report(20.0, 100, 50);
        let c = compare_runs(&base, &cand);
        assert!(c.speedup < 1.0);
        assert!(c.advantage < 0.0);
    }
}
