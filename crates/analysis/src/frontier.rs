//! The §V-A memory-bound frontier (experiment F-BOUND).
//!
//! For a grid of core counts and DRAM bandwidths, where does sorting flip
//! from compute-bound to memory-bandwidth-bound? The paper estimates this
//! with `y·log Z < x` and observes the flip between 128 and 256 cores on
//! the Fig. 4 machine.

use tlmm_memsim::MachineConfig;
use tlmm_model::bounds::{bandwidth_bound_verdict, crossover_cores};

/// One frontier sample.
#[derive(Debug, Clone, Copy)]
pub struct FrontierPoint {
    /// Cores on the node.
    pub cores: u32,
    /// Far-memory sustained bandwidth in bytes/second.
    pub dram_bw: f64,
    /// Memory pressure `x / (y·log Z)` (> 1 = memory-bound).
    pub pressure: f64,
}

impl FrontierPoint {
    /// Is sorting memory-bandwidth bound at this point?
    pub fn memory_bound(&self) -> bool {
        self.pressure > 1.0
    }
}

/// Evaluate the frontier for Fig. 4-style nodes at each core count,
/// scaling DRAM bandwidth by `bw_scale`.
pub fn frontier_for_cores(
    core_counts: &[u32],
    bw_scale: f64,
    elem_bytes: usize,
) -> Vec<FrontierPoint> {
    core_counts
        .iter()
        .map(|&cores| {
            let m = MachineConfig::fig4(cores, 4.0);
            let mut rates = m.machine_rates(elem_bytes);
            rates.elems_per_sec *= bw_scale;
            let v = bandwidth_bound_verdict(&rates);
            FrontierPoint {
                cores,
                dram_bw: m.far.sustained_bw() * bw_scale,
                pressure: v.pressure(),
            }
        })
        .collect()
}

/// Minimum core count at which a Fig. 4-class node becomes memory bound
/// (the paper's 128-vs-256 observation).
pub fn fig4_crossover_cores(elem_bytes: usize) -> Option<u32> {
    let m = MachineConfig::fig4(1, 4.0);
    crossover_cores(
        m.core_rate(),
        m.far.sustained_bw(),
        elem_bytes,
        // Fixing cache blocks at the 256-core node's value, like the paper's
        // back-of-envelope (Z ≈ 1e6 blocks regardless of core count).
        (MachineConfig::fig4(256, 4.0).total_cache_bytes() / m.line_bytes) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_monotone_in_cores() {
        let pts = frontier_for_cores(&[32, 64, 128, 256, 512], 1.0, 8);
        for w in pts.windows(2) {
            assert!(w[1].pressure > w[0].pressure);
        }
    }

    #[test]
    fn paper_observation_128_vs_256() {
        let pts = frontier_for_cores(&[128, 256], 1.0, 8);
        assert!(!pts[0].memory_bound(), "128 cores: not memory bound");
        assert!(pts[1].memory_bound(), "256 cores: memory bound");
    }

    #[test]
    fn crossover_lies_between() {
        let c = fig4_crossover_cores(8).unwrap();
        assert!(c > 128 && c <= 256, "crossover {c}");
    }

    #[test]
    fn more_bandwidth_delays_the_frontier() {
        let base = frontier_for_cores(&[256], 1.0, 8)[0];
        let fat = frontier_for_cores(&[256], 4.0, 8)[0];
        assert!(base.memory_bound());
        assert!(!fat.memory_bound(), "4x bandwidth un-bounds 256 cores");
    }
}
