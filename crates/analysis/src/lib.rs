//! Predicted-vs-measured analysis and experiment post-processing.
//!
//! The glue between the theory ([`tlmm_model`]), the measured ledgers
//! ([`tlmm_scratchpad`]) and the simulated times ([`tlmm_memsim`]):
//!
//! * [`validation`] — does the measured block-transfer ledger track the
//!   Theorem 6 predictions as `N` and `ρ` vary? (Experiment F-MODEL.)
//! * [`speedup`] — Table-I style comparisons between two simulated runs.
//! * [`frontier`] — the §V-A memory-bound frontier over (cores, bandwidth).
//! * [`table`] — plain-text table rendering shared by the harness binaries.

pub mod frontier;
pub mod speedup;
pub mod table;
pub mod validation;

pub use speedup::{compare_runs, Comparison};
pub use table::Table;
