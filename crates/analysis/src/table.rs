//! Minimal plain-text table rendering for the harness binaries.

/// A right-aligned plain-text table with a header row.
#[derive(Debug, Default, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (it may be shorter than the header; missing cells are
    /// blank).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column separators and a header rule.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut width = vec![0usize; cols];
        let all = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            let mut s = String::new();
            for (i, w) in width.iter().enumerate().take(cols) {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    s.push_str("  ");
                }
                // Right-align numbers-ish content; left-align first column.
                if i == 0 {
                    s.push_str(&format!("{cell:<w$}"));
                } else {
                    s.push_str(&format!("{cell:>w$}"));
                }
            }
            s
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with 3 significant decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a large count with thousands separators.
pub fn count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format a ratio like `1.73x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("     1"));
        assert!(lines[3].ends_with("123456"));
    }

    #[test]
    fn count_groups_thousands() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1000), "1,000");
        assert_eq!(count(394774287), "394,774,287");
    }

    #[test]
    fn ratio_and_secs() {
        assert_eq!(ratio(1.7345), "1.73x");
        assert_eq!(secs(898.4191), "898.419");
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        t.row(["y", "1", "2"]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(s.lines().count() == 4);
    }
}
