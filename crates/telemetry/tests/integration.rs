//! Cross-module telemetry behavior: span nesting over `with_lane` and OS
//! threads, histogram bucket edges, report round-trips.
//!
//! All tests drain the global span store and registry, so they serialize
//! on one mutex instead of relying on test-runner threading.

use std::sync::Mutex;
use tlmm_telemetry::{
    bucket_bounds, counter, current_lane, histogram, registry, span, with_lane, RunReport,
};

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn span_nesting_across_with_lane_and_threads() {
    let _g = lock();
    tlmm_telemetry::reset();

    {
        let _outer = span!("it.outer");
        with_lane(7, || {
            assert_eq!(current_lane(), Some(7));
            let _inner = span!("it.inner");
            with_lane(9, || {
                let _deep = span!("it.deep");
            });
        });
        // Lane attribution must not leak out of with_lane.
        assert_eq!(current_lane(), None);
        // Spans opened on other OS threads have no parent on this thread's
        // stack: they must become roots, not children of it.outer.
        std::thread::scope(|s| {
            for lane in 0..3usize {
                s.spawn(move || {
                    with_lane(lane, || {
                        let _t = span!("it.thread");
                    });
                });
            }
        });
    }

    let report = RunReport::collect("it");
    let roots: Vec<&str> = report.spans.iter().map(|n| n.name.as_str()).collect();
    assert_eq!(roots.iter().filter(|n| **n == "it.thread").count(), 3);
    let outer = report
        .spans
        .iter()
        .find(|n| n.name == "it.outer")
        .expect("outer span present");
    assert_eq!(outer.lane, None);
    let inner = outer
        .children
        .iter()
        .find(|n| n.name == "it.inner")
        .expect("inner nests under outer");
    assert_eq!(inner.lane, Some(7));
    let deep = inner
        .children
        .iter()
        .find(|n| n.name == "it.deep")
        .expect("deep nests under inner");
    assert_eq!(deep.lane, Some(9));
    for t in report.spans.iter().filter(|n| n.name == "it.thread") {
        assert!(t.lane.is_some());
        assert!(t.children.is_empty());
    }
}

#[test]
fn histogram_buckets_are_exact_at_powers_of_two() {
    let _g = lock();
    tlmm_telemetry::reset();

    let h = registry().histogram("it.pow2");
    for shift in 0..16u32 {
        let v = 1u64 << shift;
        h.record(v); // exactly on a bucket's lower edge
        h.record(v + (v / 2)); // interior of the same bucket
    }
    let snap = h.snapshot("it.pow2");
    for b in &snap.buckets {
        assert!(
            b.lo.is_power_of_two() || b.lo == 0,
            "bucket lower bound {} must be a power of two",
            b.lo
        );
        // Every bucket got its lower-edge value plus one interior value
        // (for [1,1] the "interior" 1 + 0 is the edge again).
        assert_eq!(b.count, 2, "bucket [{}, {}]", b.lo, b.hi);
    }
    assert_eq!(snap.count, 32);
    // The seam between adjacent buckets: 2^k-1 and 2^k never share one.
    let (lo8, _) = bucket_bounds(4);
    assert_eq!(lo8, 8);
    tlmm_telemetry::reset();
}

#[test]
fn run_report_json_round_trip() {
    let _g = lock();
    tlmm_telemetry::reset();

    {
        let _a = span!("rt.root");
        with_lane(2, || {
            let _b = span!("rt.child");
        });
    }
    counter!("rt.counter").add(42);
    histogram!("rt.hist").record_n(1024, 3);

    let report = RunReport::collect("rt")
        .meta("n", 12345)
        .section("extra", &vec![1.5f64, 2.5]);
    let json = report.to_json_pretty().expect("serialize");
    let back = RunReport::from_json(&json).expect("parse");
    assert_eq!(back.schema_version, report.schema_version);
    assert_eq!(back.name, "rt");
    assert_eq!(back.meta.get("n").map(String::as_str), Some("12345"));
    assert_eq!(back.spans.len(), report.spans.len());
    assert_eq!(back.spans[0].children.len(), 1);
    assert_eq!(back.spans[0].children[0].lane, Some(2));
    let c = back
        .counters
        .iter()
        .find(|c| c.name == "rt.counter")
        .unwrap();
    assert_eq!(c.value, 42);
    let h = back
        .histograms
        .iter()
        .find(|h| h.name == "rt.hist")
        .unwrap();
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, 3 * 1024);
    assert!(back.sections.contains_key("extra"));
    // And the parsed report still renders.
    assert!(back.render_tree().contains("rt.root"));
}

#[test]
fn zero_event_report_renders() {
    let _g = lock();
    tlmm_telemetry::reset();

    let report = RunReport::collect("empty");
    assert!(report.spans.is_empty());
    assert!(report.counters.is_empty());
    assert!(report.histograms.is_empty());
    let rendered = report.render_tree();
    assert!(rendered.contains("empty"));
    let json = report.to_json().expect("serialize");
    let back = RunReport::from_json(&json).expect("parse");
    assert!(back.spans.is_empty());
}
