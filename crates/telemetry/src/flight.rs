//! Causal flight recorder: lock-free per-lane rings of typed events.
//!
//! The aggregate layers (counters, spans, the cost ledger) answer *how
//! much* — this module answers *which*: which transfer chain, on which
//! slot, made the run as long as it was. Every lane owns a fixed-size
//! ring of [`FlightEvent`]s; emission is a `fetch_add` claim plus a
//! release-stamped payload write, so hot paths never take a lock. A
//! global sequence counter totally orders events across lanes (in
//! deterministic executor mode emission is single-threaded, so the
//! order — and therefore the serialized trace — is bit-for-bit
//! replayable from `(seed, p, p′)`).
//!
//! # Clock domains
//!
//! * [`ClockDomain::Virtual`] — timestamps are the executor's virtual
//!   byte-units. Transfer events carry the arbiter's exact
//!   issue/grant/retire stamps; span, phase, and fault events are
//!   stamped with the emitting lane's *last retire* (a lane's virtual
//!   clock only advances through its own transfers, so per-lane
//!   timestamps are monotone non-decreasing).
//! * [`ClockDomain::Wall`] — timestamps are [`crate::now_ns`]
//!   nanoseconds. Host-mode transfer events still carry real
//!   issue/grant stamps (the measured semaphore wait) but no slot
//!   identity or occupancy.
//!
//! # Event vocabulary
//!
//! The vendored serde derive supports flat named-field structs and
//! fieldless enums only, so [`FlightEvent`] is a single flat record:
//! `kind` discriminates, and the remaining fields are meaningful per
//! kind (unused ones hold their `NO_*` sentinel / zero). Transfer
//! lifecycles are three events (`Issue`, `Grant`, `Retire`) sharing a
//! recorder-local `id`, which is what makes the issue→grant→retire
//! ordering and the slot timeline checkable after the fact.

use std::cell::{Cell as StdCell, RefCell, UnsafeCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::lane::current_lane;
use crate::now_ns;

/// Serialized trace schema version (bump on incompatible change).
pub const TRACE_SCHEMA_VERSION: u32 = 1;
/// `slot` sentinel: event is not bound to a transfer slot.
pub const NO_SLOT: u32 = u32::MAX;
/// `name` sentinel: event carries no interned name.
pub const NO_NAME: u32 = u32::MAX;
/// Highest lane id the recorder tracks; events from lanes at or above
/// this are counted in [`LaneTrace::dropped`] of lane `MAX_LANES - 1`.
pub const MAX_LANES: usize = 256;

/// Flag bit: the transfer crossed the far (DRAM) channel.
pub const FLAG_FAR: u32 = 1 << 0;
/// Flag bit: the transfer wrote (near→far or far-write); unset = read.
pub const FLAG_WRITE: u32 = 1 << 1;
/// Flag bit: the charge was a fault-injected retry/abort penalty.
pub const FLAG_RETRY: u32 = 1 << 2;
/// Flag bit: the transfer was charged at random-access granularity
/// (`bytes` is the touched-byte ledger charge, while the arbitrated
/// occupancy was `accesses × block`).
pub const FLAG_RANDOM: u32 = 1 << 3;

/// Which clock stamped the events of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockDomain {
    /// Executor virtual byte-units (deterministic mode).
    Virtual,
    /// Nanoseconds since the telemetry epoch (host / untimed mode).
    Wall,
}

/// Event discriminant. See module docs for per-kind field meanings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A named execution phase opened (`name`).
    PhaseBegin,
    /// The matching phase closed (`name`).
    PhaseEnd,
    /// A kernel/algorithm span opened on this lane (`name`).
    SpanBegin,
    /// The matching span closed (`name`).
    SpanEnd,
    /// Transfer `id` requested a slot at `ts` (`bytes`, `flags`).
    Issue,
    /// Transfer `id` was granted `slot` at `ts`.
    Grant,
    /// Transfer `id` released `slot` at `ts`; `bytes` moved in total.
    Retire,
    /// A staging-arena pending transfer (`id` in the *arena's* id space,
    /// not the recorder's) completed at `ts`, unblocking deferred frees.
    /// Deliberately outside the Issue/Grant/Retire triple invariant: the
    /// triple tracks the ledger charge, this tracks buffer lifetime.
    ArenaRetire,
    /// `bytes` holds compute ops charged on this lane at `ts`.
    Compute,
    /// A fault-plan decision fired (`name` = op/decision label).
    Fault,
}

/// One flight-recorder event. Flat on purpose — see module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Global emission order (process-wide per recorder install).
    pub seq: u64,
    /// Timestamp in the trace's [`ClockDomain`].
    pub ts: u64,
    /// Discriminant.
    pub kind: EventKind,
    /// Transfer id (Issue/Grant/Retire); 0 for other kinds.
    pub id: u64,
    /// Ledger bytes (transfers) or compute ops; 0 otherwise.
    pub bytes: u64,
    /// Transfer slot (Grant/Retire in virtual mode) or [`NO_SLOT`].
    pub slot: u32,
    /// Interned name id (phases/spans/faults) or [`NO_NAME`].
    pub name: u32,
    /// `FLAG_*` bits.
    pub flags: u32,
}

impl Default for FlightEvent {
    fn default() -> Self {
        FlightEvent {
            seq: 0,
            ts: 0,
            kind: EventKind::Compute,
            id: 0,
            bytes: 0,
            slot: NO_SLOT,
            name: NO_NAME,
            flags: 0,
        }
    }
}

/// Virtual-time stamps of one arbitrated transfer, as reported by the
/// executor (wall nanoseconds in host mode, with `slot == NO_SLOT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferTiming {
    /// Slot that served the transfer ([`NO_SLOT`] in host mode).
    pub slot: u32,
    /// When the worker requested a slot.
    pub issue: u64,
    /// When the slot was granted (`grant - issue` = slot wait).
    pub grant: u64,
    /// When the transfer finished occupying the slot.
    pub retire: u64,
}

// ---------------------------------------------------------------------
// Lock-free per-lane ring
// ---------------------------------------------------------------------

/// Ring cell: `stamp == index + 1` ⇒ the payload for claim `index` is
/// fully written. Readers run at quiescence (take/snapshot) and treat a
/// mismatched stamp as an overwritten (dropped) entry.
struct RingCell {
    stamp: AtomicU64,
    ev: UnsafeCell<FlightEvent>,
}

// SAFETY: the payload is only read by snapshot() after validating the
// release-stamped claim index; concurrent writers never share a claim
// (fetch_add hands out unique indices).
unsafe impl Sync for RingCell {}

struct LaneRing {
    /// Next claim index (total events ever emitted on this lane).
    head: AtomicU64,
    /// Lane-local virtual clock: max retire seen on this lane.
    clock: AtomicU64,
    cells: Box<[RingCell]>,
}

impl LaneRing {
    fn new(capacity: usize) -> Self {
        LaneRing {
            head: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            cells: (0..capacity)
                .map(|_| RingCell {
                    stamp: AtomicU64::new(0),
                    ev: UnsafeCell::new(FlightEvent::default()),
                })
                .collect(),
        }
    }

    #[inline]
    fn push(&self, ev: FlightEvent) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let cell = &self.cells[(idx as usize) % self.cells.len()];
        // Invalidate before writing so a racing snapshot never reads a
        // half-written payload as valid.
        cell.stamp.store(u64::MAX, Ordering::Relaxed);
        // SAFETY: claim `idx` is uniquely ours (fetch_add); see RingCell.
        unsafe {
            *cell.ev.get() = ev;
        }
        cell.stamp.store(idx + 1, Ordering::Release);
    }

    /// Read surviving events in claim order (quiescent snapshot).
    fn snapshot(&self) -> (u64, Vec<FlightEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.cells.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for idx in start..head {
            let cell = &self.cells[(idx as usize) % self.cells.len()];
            if cell.stamp.load(Ordering::Acquire) == idx + 1 {
                // SAFETY: stamp matches the claim, so the payload write
                // for `idx` happened-before our Acquire load.
                out.push(unsafe { *cell.ev.get() });
            }
        }
        (head, out)
    }
}

// ---------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------

/// Flight-recorder configuration.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Clock domain events are stamped in.
    pub domain: ClockDomain,
    /// Ring capacity per lane (rounded up to at least 16). Overflow
    /// drops the *oldest* events and is reported per lane.
    pub capacity_per_lane: usize,
    /// Executor workers `p` (lane → worker folding for the analyzer).
    pub workers: u32,
    /// Executor transfer slots `p′`.
    pub transfer_slots: u32,
    /// Executor seed (provenance only).
    pub seed: u64,
}

impl FlightConfig {
    /// Virtual-domain config mirroring an executor's `(p, p′, seed)`.
    pub fn virtual_time(workers: u32, transfer_slots: u32, seed: u64) -> Self {
        FlightConfig {
            domain: ClockDomain::Virtual,
            capacity_per_lane: 1 << 15,
            workers,
            transfer_slots,
            seed,
        }
    }

    /// Wall-clock config (host mode or executor-free runs).
    pub fn wall(workers: u32, transfer_slots: u32) -> Self {
        FlightConfig {
            domain: ClockDomain::Wall,
            capacity_per_lane: 1 << 15,
            workers,
            transfer_slots,
            seed: 0,
        }
    }

    /// Override the per-lane ring capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity_per_lane = capacity;
        self
    }
}

/// The installed recorder: lazily-allocated lane rings + name interner.
pub struct FlightRecorder {
    domain: ClockDomain,
    capacity: usize,
    workers: u32,
    transfer_slots: u32,
    seed: u64,
    lanes: Vec<Mutex<Option<Box<LaneRing>>>>,
    /// Lanes that have a ring (dense scan shortcut for snapshot).
    lane_touched: Vec<AtomicBool>,
    names: Mutex<NameTable>,
    next_seq: AtomicU64,
    next_transfer: AtomicU64,
}

#[derive(Default)]
struct NameTable {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl FlightRecorder {
    fn new(cfg: &FlightConfig) -> Self {
        FlightRecorder {
            domain: cfg.domain,
            capacity: cfg.capacity_per_lane.max(16),
            workers: cfg.workers.max(1),
            transfer_slots: cfg.transfer_slots.max(1),
            seed: cfg.seed,
            lanes: (0..MAX_LANES).map(|_| Mutex::new(None)).collect(),
            lane_touched: (0..MAX_LANES).map(|_| AtomicBool::new(false)).collect(),
            names: Mutex::new(NameTable::default()),
            next_seq: AtomicU64::new(0),
            next_transfer: AtomicU64::new(0),
        }
    }

    /// Clock domain of this recorder.
    pub fn domain(&self) -> ClockDomain {
        self.domain
    }

    fn intern(&self, name: &str) -> u32 {
        let mut t = self.names.lock();
        if let Some(&id) = t.by_name.get(name) {
            return id;
        }
        let id = t.names.len() as u32;
        t.names.push(name.to_string());
        t.by_name.insert(name.to_string(), id);
        id
    }

    /// Run `f` against the ring for `lane`, creating it on first touch.
    /// Lanes beyond [`MAX_LANES`] fold onto the last ring (still
    /// monotone per ring because all clocks are non-decreasing).
    #[inline]
    fn with_ring<R>(&self, lane: usize, f: impl FnOnce(&LaneRing) -> R) -> R {
        let lane = lane.min(MAX_LANES - 1);
        // Fast path: ring exists. The Option is only written once, so a
        // read under the mutex is cheap and uncontended after creation.
        let mut guard = self.lanes[lane].lock();
        if guard.is_none() {
            *guard = Some(Box::new(LaneRing::new(self.capacity)));
            self.lane_touched[lane].store(true, Ordering::Release);
        }
        f(guard.as_ref().expect("ring just ensured"))
    }

    #[inline]
    fn domain_now(&self, lane: usize) -> u64 {
        match self.domain {
            ClockDomain::Virtual => {
                let lane = lane.min(MAX_LANES - 1);
                self.lanes[lane]
                    .lock()
                    .as_ref()
                    .map_or(0, |r| r.clock.load(Ordering::Relaxed))
            }
            ClockDomain::Wall => now_ns(),
        }
    }

    #[inline]
    fn emit(&self, lane: usize, mut ev: FlightEvent) {
        ev.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.with_ring(lane, |r| r.push(ev));
    }

    fn emit_named(&self, kind: EventKind, name: &str) {
        let lane = current_lane().unwrap_or(0);
        let ev = FlightEvent {
            ts: self.domain_now(lane),
            kind,
            name: self.intern(name),
            ..FlightEvent::default()
        };
        self.emit(lane, ev);
    }

    fn emit_transfer(&self, bytes: u64, mut flags: u32, timing: Option<TransferTiming>) {
        let lane = current_lane().unwrap_or(0);
        if fault_retry_active() {
            flags |= FLAG_RETRY;
        }
        let id = self.next_transfer.fetch_add(1, Ordering::Relaxed) + 1;
        let (slot, issue, grant, retire) = match timing {
            Some(t) => (t.slot, t.issue, t.grant, t.retire),
            None => {
                let now = self.domain_now(lane);
                (NO_SLOT, now, now, now)
            }
        };
        let base = FlightEvent {
            id,
            bytes,
            flags,
            ..FlightEvent::default()
        };
        self.emit(
            lane,
            FlightEvent {
                ts: issue,
                kind: EventKind::Issue,
                ..base
            },
        );
        self.emit(
            lane,
            FlightEvent {
                ts: grant,
                kind: EventKind::Grant,
                slot,
                ..base
            },
        );
        self.emit(
            lane,
            FlightEvent {
                ts: retire,
                kind: EventKind::Retire,
                slot,
                ..base
            },
        );
        if self.domain == ClockDomain::Virtual {
            self.with_ring(lane, |r| {
                r.clock.fetch_max(retire, Ordering::Relaxed);
            });
        }
    }

    fn emit_compute(&self, ops: u64) {
        let lane = current_lane().unwrap_or(0);
        let ev = FlightEvent {
            ts: self.domain_now(lane),
            kind: EventKind::Compute,
            bytes: ops,
            ..FlightEvent::default()
        };
        self.emit(lane, ev);
    }

    /// Drain the recorder into a serializable trace.
    pub fn to_trace(&self) -> FlightTrace {
        let mut lanes = Vec::new();
        for lane in 0..MAX_LANES {
            if !self.lane_touched[lane].load(Ordering::Acquire) {
                continue;
            }
            let guard = self.lanes[lane].lock();
            let Some(ring) = guard.as_ref() else { continue };
            let (emitted, mut events) = ring.snapshot();
            events.sort_by_key(|e| e.seq);
            let dropped = emitted - events.len() as u64;
            lanes.push(LaneTrace {
                lane: lane as u32,
                emitted,
                dropped,
                events,
            });
        }
        FlightTrace {
            schema_version: TRACE_SCHEMA_VERSION,
            domain: self.domain,
            workers: self.workers,
            transfer_slots: self.transfer_slots,
            seed: self.seed,
            names: self.names.lock().names.clone(),
            lanes,
        }
    }
}

// ---------------------------------------------------------------------
// Serialized trace
// ---------------------------------------------------------------------

/// Events that survived in one lane's ring, in emission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneTrace {
    /// Lane id.
    pub lane: u32,
    /// Events ever emitted on this lane (including overwritten ones).
    pub emitted: u64,
    /// Events lost to ring overflow (oldest-first).
    pub dropped: u64,
    /// Surviving events, ascending `seq`.
    pub events: Vec<FlightEvent>,
}

/// A complete drained trace — the `trace.json`-able artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightTrace {
    /// [`TRACE_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Clock domain of every `ts` in the trace.
    pub domain: ClockDomain,
    /// Executor workers `p` (lanes fold onto workers `lane % p`).
    pub workers: u32,
    /// Executor transfer slots `p′`.
    pub transfer_slots: u32,
    /// Executor seed.
    pub seed: u64,
    /// Interned name table (`FlightEvent::name` indexes this).
    pub names: Vec<String>,
    /// Per-lane event streams (lanes that emitted anything).
    pub lanes: Vec<LaneTrace>,
}

/// A transfer reconstructed from its Issue/Grant/Retire triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRec {
    /// Recorder-local transfer id.
    pub id: u64,
    /// Issuing lane.
    pub lane: u32,
    /// Ledger bytes charged.
    pub bytes: u64,
    /// Slot that served it ([`NO_SLOT`] in host mode).
    pub slot: u32,
    /// Issue timestamp.
    pub issue: u64,
    /// Grant timestamp (`grant - issue` = slot wait).
    pub grant: u64,
    /// Retire timestamp.
    pub retire: u64,
    /// `FLAG_*` bits.
    pub flags: u32,
}

impl TransferRec {
    /// Did this transfer cross the far channel?
    pub fn far(&self) -> bool {
        self.flags & FLAG_FAR != 0
    }

    /// Was this charge a fault retry/abort penalty?
    pub fn retry(&self) -> bool {
        self.flags & FLAG_RETRY != 0
    }
}

impl FlightTrace {
    /// Resolve an interned name id.
    pub fn name(&self, id: u32) -> &str {
        if id == NO_NAME {
            ""
        } else {
            self.names.get(id as usize).map_or("?", |s| s.as_str())
        }
    }

    /// Total events dropped to ring overflow across all lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// Sum of ledger bytes over retired transfers matching `pred`.
    pub fn transfer_bytes(&self, pred: impl Fn(&TransferRec) -> bool) -> u64 {
        self.transfers()
            .iter()
            .filter(|t| pred(t))
            .map(|t| t.bytes)
            .sum()
    }

    /// Reconstruct all complete transfer triples, ascending id.
    pub fn transfers(&self) -> Vec<TransferRec> {
        let mut partial: HashMap<u64, TransferRec> = HashMap::new();
        let mut done: Vec<TransferRec> = Vec::new();
        for lane in &self.lanes {
            for ev in &lane.events {
                match ev.kind {
                    EventKind::Issue => {
                        partial.insert(
                            ev.id,
                            TransferRec {
                                id: ev.id,
                                lane: lane.lane,
                                bytes: ev.bytes,
                                slot: NO_SLOT,
                                issue: ev.ts,
                                grant: 0,
                                retire: 0,
                                flags: ev.flags,
                            },
                        );
                    }
                    EventKind::Grant => {
                        if let Some(t) = partial.get_mut(&ev.id) {
                            t.grant = ev.ts;
                            t.slot = ev.slot;
                        }
                    }
                    EventKind::Retire => {
                        if let Some(mut t) = partial.remove(&ev.id) {
                            t.retire = ev.ts;
                            done.push(t);
                        }
                    }
                    _ => {}
                }
            }
        }
        done.sort_by_key(|t| t.id);
        done
    }

    /// Check the trace's structural invariants. Returns every violation
    /// found (empty ⇒ valid): schema version, per-lane timestamp
    /// monotonicity, strict span nesting, globally alternating phases,
    /// complete ordered issue→grant→retire triples, and (virtual
    /// domain) slot-timeline exclusivity.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        if self.schema_version != TRACE_SCHEMA_VERSION {
            errs.push(format!(
                "schema_version {} != supported {}",
                self.schema_version, TRACE_SCHEMA_VERSION
            ));
        }

        // Per-lane: monotone timestamps, ascending seq, span stack.
        for lane in &self.lanes {
            let mut last_ts = 0u64;
            let mut last_seq: Option<u64> = None;
            let mut spans: Vec<u32> = Vec::new();
            for ev in &lane.events {
                if ev.ts < last_ts {
                    errs.push(format!(
                        "lane {}: ts regressed {} -> {} at seq {}",
                        lane.lane, last_ts, ev.ts, ev.seq
                    ));
                }
                last_ts = ev.ts;
                if let Some(ls) = last_seq {
                    if ev.seq <= ls {
                        errs.push(format!(
                            "lane {}: seq not ascending at {}",
                            lane.lane, ev.seq
                        ));
                    }
                }
                last_seq = Some(ev.seq);
                match ev.kind {
                    EventKind::SpanBegin => spans.push(ev.name),
                    EventKind::SpanEnd => match spans.pop() {
                        Some(open) if open == ev.name => {}
                        Some(open) => errs.push(format!(
                            "lane {}: span `{}` closed while `{}` open (seq {})",
                            lane.lane,
                            self.name(ev.name),
                            self.name(open),
                            ev.seq
                        )),
                        None => errs.push(format!(
                            "lane {}: span `{}` closed with no span open (seq {})",
                            lane.lane,
                            self.name(ev.name),
                            ev.seq
                        )),
                    },
                    _ => {}
                }
            }
            if lane.dropped == 0 && !spans.is_empty() {
                errs.push(format!(
                    "lane {}: {} span(s) never closed (`{}` innermost)",
                    lane.lane,
                    spans.len(),
                    self.name(*spans.last().expect("non-empty"))
                ));
            }
        }

        // Global order: merge by seq for phase alternation checks.
        let mut all: Vec<&FlightEvent> = self.lanes.iter().flat_map(|l| &l.events).collect();
        all.sort_by_key(|e| e.seq);
        let mut phases: Vec<u32> = Vec::new();
        for ev in &all {
            match ev.kind {
                EventKind::PhaseBegin => phases.push(ev.name),
                EventKind::PhaseEnd => match phases.pop() {
                    Some(open) if open == ev.name => {}
                    Some(open) => errs.push(format!(
                        "phase `{}` closed while `{}` open (seq {})",
                        self.name(ev.name),
                        self.name(open),
                        ev.seq
                    )),
                    None => errs.push(format!(
                        "phase `{}` closed with none open (seq {})",
                        self.name(ev.name),
                        ev.seq
                    )),
                },
                _ => {}
            }
        }
        if self.dropped() == 0 && !phases.is_empty() {
            errs.push(format!("{} phase(s) never closed", phases.len()));
        }

        // Transfer triples: one of each kind per id, ordered stamps,
        // grant/retire slot agreement.
        let mut triples: HashMap<u64, [u32; 3]> = HashMap::new();
        for ev in &all {
            let i = match ev.kind {
                EventKind::Issue => 0,
                EventKind::Grant => 1,
                EventKind::Retire => 2,
                _ => continue,
            };
            triples.entry(ev.id).or_insert([0u32; 3])[i] += 1;
        }
        for (id, counts) in &triples {
            if *counts != [1, 1, 1] && self.dropped() == 0 {
                errs.push(format!(
                    "transfer {id}: issue/grant/retire counts {counts:?} (want [1,1,1])"
                ));
            }
        }
        for t in self.transfers() {
            if !(t.issue <= t.grant && t.grant <= t.retire) {
                errs.push(format!(
                    "transfer {}: stamps not ordered issue {} <= grant {} <= retire {}",
                    t.id, t.issue, t.grant, t.retire
                ));
            }
        }

        // Virtual domain: a slot serves one transfer at a time.
        if self.domain == ClockDomain::Virtual {
            let mut by_slot: HashMap<u32, Vec<(u64, u64, u64)>> = HashMap::new();
            for t in self.transfers() {
                if t.slot != NO_SLOT {
                    by_slot
                        .entry(t.slot)
                        .or_default()
                        .push((t.grant, t.retire, t.id));
                }
            }
            for (slot, mut iv) in by_slot {
                iv.sort_unstable();
                for w in iv.windows(2) {
                    if w[1].0 < w[0].1 {
                        errs.push(format!(
                            "slot {slot}: transfers {} and {} overlap ([{}, {}) vs [{}, {}))",
                            w[0].2, w[1].2, w[0].0, w[0].1, w[1].0, w[1].1
                        ));
                    }
                }
            }
        }

        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json_pretty(&self) -> Result<String, serde::Error> {
        serde::json::to_string_pretty(self)
    }

    /// Parse a trace back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(s)
    }
}

// ---------------------------------------------------------------------
// Global install / emit API
// ---------------------------------------------------------------------

static FLIGHT_ON: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);
static RECORDER: Mutex<Option<Arc<FlightRecorder>>> = Mutex::new(None);

thread_local! {
    static CACHED: RefCell<(u64, Option<Arc<FlightRecorder>>)> =
        const { RefCell::new((0, None)) };
    static FAULT_RETRY: StdCell<bool> = const { StdCell::new(false) };
}

/// Is a flight recorder installed? Hot paths gate on this before
/// assembling any event.
#[inline]
pub fn enabled() -> bool {
    FLIGHT_ON.load(Ordering::Relaxed)
}

/// Install a fresh recorder, replacing (and discarding) any previous
/// one. Returns the installed recorder for direct draining.
pub fn install(cfg: FlightConfig) -> Arc<FlightRecorder> {
    let rec = Arc::new(FlightRecorder::new(&cfg));
    *RECORDER.lock() = Some(Arc::clone(&rec));
    GENERATION.fetch_add(1, Ordering::Release);
    FLIGHT_ON.store(true, Ordering::Release);
    rec
}

/// Uninstall the recorder and drain it into a trace (`None` if no
/// recorder was installed).
pub fn uninstall() -> Option<FlightTrace> {
    FLIGHT_ON.store(false, Ordering::Release);
    let rec = RECORDER.lock().take();
    GENERATION.fetch_add(1, Ordering::Release);
    rec.map(|r| r.to_trace())
}

/// Snapshot the installed recorder without uninstalling it.
pub fn snapshot() -> Option<FlightTrace> {
    let rec = RECORDER.lock().clone();
    rec.map(|r| r.to_trace())
}

#[inline]
fn with_recorder(f: impl FnOnce(&FlightRecorder)) {
    if !enabled() {
        return;
    }
    CACHED.with(|c| {
        let generation = GENERATION.load(Ordering::Acquire);
        let mut cached = c.borrow_mut();
        if cached.0 != generation {
            *cached = (generation, RECORDER.lock().clone());
        }
        if let Some(rec) = cached.1.as_ref() {
            f(rec);
        }
    });
}

/// Record a phase boundary (called by the scratchpad trace recorder).
pub fn phase_event(begin: bool, name: &str) {
    with_recorder(|r| {
        r.emit_named(
            if begin {
                EventKind::PhaseBegin
            } else {
                EventKind::PhaseEnd
            },
            name,
        )
    });
}

/// Record a span boundary (called by the span layer for RAII spans).
pub fn span_event(begin: bool, name: &str) {
    with_recorder(|r| {
        r.emit_named(
            if begin {
                EventKind::SpanBegin
            } else {
                EventKind::SpanEnd
            },
            name,
        )
    });
}

/// Record a fault-plan decision on the current lane.
pub fn fault_event(label: &str) {
    with_recorder(|r| r.emit_named(EventKind::Fault, label));
}

/// Record compute ops charged on the current lane.
pub fn compute_event(ops: u64) {
    with_recorder(|r| r.emit_compute(ops));
}

/// Record one charged transfer (three events: issue/grant/retire).
/// `bytes` is the *ledger* charge; `timing` carries the arbiter's
/// stamps when an executor arbitrated the transfer.
pub fn transfer_event(bytes: u64, flags: u32, timing: Option<TransferTiming>) {
    with_recorder(|r| r.emit_transfer(bytes, flags, timing));
}

/// Record the retirement of a staging-arena pending transfer as a lone
/// `Retire` event carrying the arena's own transfer id — distinct from the
/// issue/grant/retire triple of [`transfer_event`], which tracks the
/// *charge*; this tracks the *completion* that unblocks arena frees.
pub fn arena_retire_event(id: u64, bytes: u64, flags: u32) {
    with_recorder(|r| {
        let lane = current_lane().unwrap_or(0);
        let ev = FlightEvent {
            ts: r.domain_now(lane),
            kind: EventKind::ArenaRetire,
            id,
            bytes,
            flags,
            name: r.intern("arena.retire"),
            ..FlightEvent::default()
        };
        r.emit(lane, ev);
    });
}

/// Run `f` with charges flagged as fault-retry penalties; the runtime
/// wraps the double-charge/abort paths of its fault branches in this so
/// the analyzer can attribute that occupancy to `fault_retry`.
pub fn with_fault_retry<R>(f: impl FnOnce() -> R) -> R {
    FAULT_RETRY.with(|c| {
        let prev = c.replace(true);
        let out = f();
        c.set(prev);
        out
    })
}

/// Is the current thread inside [`with_fault_retry`]?
#[inline]
pub fn fault_retry_active() -> bool {
    FAULT_RETRY.with(|c| c.get())
}

/// Serialize tests that install/uninstall the global recorder (the
/// harness runs tests on parallel threads in one process).
#[cfg(test)]
pub(crate) fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take_quiet() -> FlightTrace {
        uninstall().expect("recorder installed")
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let _g = test_guard();
        let _ = uninstall();
        assert!(!enabled());
        transfer_event(4096, FLAG_FAR, None);
        span_event(true, "t.noop");
        assert!(snapshot().is_none());
    }

    #[test]
    fn transfer_triples_roundtrip() {
        let _g = test_guard();
        let _ = install(FlightConfig::virtual_time(4, 2, 7));
        crate::with_lane(3, || {
            transfer_event(
                1024,
                FLAG_FAR,
                Some(TransferTiming {
                    slot: 1,
                    issue: 0,
                    grant: 10,
                    retire: 1034,
                }),
            );
            transfer_event(512, FLAG_FAR | FLAG_WRITE, None);
        });
        let trace = take_quiet();
        let ts = trace.transfers();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].bytes, 1024);
        assert_eq!(ts[0].slot, 1);
        assert_eq!(ts[0].grant, 10);
        assert!(ts[0].far());
        // The untimed transfer lands at the lane clock (= 1034 after
        // the first retire) with no slot.
        assert_eq!(ts[1].slot, NO_SLOT);
        assert_eq!(ts[1].issue, 1034);
        trace.validate().expect("valid trace");
    }

    #[test]
    fn validate_flags_unbalanced_spans_and_ts_regression() {
        let _g = test_guard();
        let _ = install(FlightConfig::virtual_time(2, 1, 0));
        span_event(true, "t.open_only");
        let mut trace = take_quiet();
        assert!(trace.validate().is_err());
        // Manufacture a timestamp regression.
        trace.lanes[0].events[0].ts = 5;
        trace.lanes[0].events.push(FlightEvent {
            seq: 999,
            ts: 1,
            kind: EventKind::Compute,
            ..FlightEvent::default()
        });
        let errs = trace.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("ts regressed")));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _g = test_guard();
        let _ = install(FlightConfig::virtual_time(1, 1, 0).with_capacity(16));
        for i in 0..40 {
            compute_event(i);
        }
        let trace = take_quiet();
        assert_eq!(trace.lanes.len(), 1);
        let lane = &trace.lanes[0];
        assert_eq!(lane.emitted, 40);
        assert_eq!(lane.dropped, 24);
        assert_eq!(lane.events.len(), 16);
        // Survivors are the newest events, in order.
        assert_eq!(lane.events.first().unwrap().bytes, 24);
        assert_eq!(lane.events.last().unwrap().bytes, 39);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let _g = test_guard();
        let _ = install(FlightConfig::virtual_time(2, 2, 42));
        crate::with_lane(0, || {
            span_event(true, "t.rt.span");
            transfer_event(
                256,
                FLAG_FAR,
                Some(TransferTiming {
                    slot: 0,
                    issue: 0,
                    grant: 0,
                    retire: 256,
                }),
            );
            span_event(false, "t.rt.span");
        });
        let trace = take_quiet();
        let json = trace.to_json_pretty().expect("serialize");
        let back = FlightTrace::from_json(&json).expect("parse");
        assert_eq!(trace, back);
    }

    #[test]
    fn fault_retry_flag_scopes_to_closure() {
        let _g = test_guard();
        let _ = install(FlightConfig::virtual_time(1, 1, 0));
        with_fault_retry(|| transfer_event(64, FLAG_FAR, None));
        transfer_event(64, FLAG_FAR, None);
        let trace = take_quiet();
        let ts = trace.transfers();
        assert!(ts[0].retry());
        assert!(!ts[1].retry());
    }
}
