//! Structured JSONL event sink.
//!
//! Disabled by default (one relaxed atomic load per potential event).
//! Enabled through the `TLMM_TELEMETRY` environment variable, read on
//! first use:
//!
//! * `TLMM_TELEMETRY=json` — one JSON object per line on stderr;
//! * `TLMM_TELEMETRY=<path>` (any other non-empty value) — append the
//!   same stream to the file at `<path>`.
//!
//! Every event carries an `event` type tag and a `t_ns` timestamp
//! (nanoseconds since the telemetry epoch). Current event taxonomy:
//!
//! | `event`      | emitted by | payload |
//! |--------------|-----------|---------|
//! | `span_end`   | span drops | `name`, `id`, `parent`, `start_ns`, `dur_ns`, `lane?` |
//! | `phase_sim`  | memsim engines | `engine`, `name`, `seconds`, `bottleneck`, `far_bytes`, `near_bytes`, `compute_ops` |
//! | `dma`        | scratchpad DMA | `bytes`, `dir`, `lane?` |
//! | custom       | [`emit`] callers | arbitrary `Value::Map` payload |

use std::fs::OpenOptions;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;
use serde::{Serialize, Value};

use crate::span::SpanRecord;

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);
static WRITER: OnceLock<Mutex<Box<dyn Write + Send>>> = OnceLock::new();

fn init() -> u8 {
    let target = std::env::var("TLMM_TELEMETRY").unwrap_or_default();
    let state = if target.is_empty() {
        STATE_OFF
    } else {
        let writer: Option<Box<dyn Write + Send>> = if target == "json" {
            Some(Box::new(std::io::stderr()))
        } else {
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&target)
                .map_err(|err| {
                    eprintln!("tlmm-telemetry: cannot open sink {target:?}: {err}");
                    err
                })
                .ok()
                .map(|f| Box::new(f) as Box<dyn Write + Send>)
        };
        match writer {
            Some(w) => {
                let _ = WRITER.set(Mutex::new(w));
                STATE_ON
            }
            None => STATE_OFF,
        }
    };
    STATE.store(state, Ordering::Relaxed);
    state
}

/// Whether the JSONL sink is active (cheap; safe to call per event).
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNKNOWN => init() == STATE_ON,
        s => s == STATE_ON,
    }
}

fn write_line(value: &Value) {
    if let Some(writer) = WRITER.get() {
        let mut w = writer.lock();
        let _ = writeln!(w, "{}", serde::json::value_to_string(value));
        let _ = w.flush();
    }
}

/// Emit one event. `fields` is the payload; the sink adds the `event`
/// tag and a `t_ns` timestamp. No-op (beyond one atomic load) when the
/// sink is disabled.
pub fn emit(event: &str, fields: Vec<(String, Value)>) {
    if !enabled() {
        return;
    }
    let mut map = Vec::with_capacity(fields.len() + 2);
    map.push(("event".to_string(), Value::Str(event.to_string())));
    map.push(("t_ns".to_string(), Value::U64(crate::now_ns())));
    map.extend(fields);
    write_line(&Value::Map(map));
}

/// Convenience: emit an event whose payload is any `Serialize` value
/// (must serialize to a map for a well-formed line).
pub fn emit_value<T: Serialize>(event: &str, payload: &T) {
    if !enabled() {
        return;
    }
    let fields = match payload.to_value() {
        Value::Map(fields) => fields,
        other => vec![("payload".to_string(), other)],
    };
    emit(event, fields);
}

pub(crate) fn emit_span(record: &SpanRecord) {
    if !enabled() {
        return;
    }
    let mut fields = vec![
        ("name".to_string(), Value::Str(record.name.clone())),
        ("id".to_string(), Value::U64(record.id)),
        ("parent".to_string(), Value::U64(record.parent)),
        ("start_ns".to_string(), Value::U64(record.start_ns)),
        ("dur_ns".to_string(), Value::U64(record.dur_ns)),
    ];
    if let Some(lane) = record.lane() {
        fields.push(("lane".to_string(), Value::U64(lane as u64)));
    }
    emit("span_end", fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test process does not set TLMM_TELEMETRY, so the sink must be
    // off and every emit path a no-op that doesn't panic.
    #[test]
    fn disabled_sink_is_silent() {
        assert!(!enabled());
        emit("test_event", vec![("k".to_string(), Value::U64(1))]);
        emit_value("test_event", &Value::Bool(true));
    }
}
