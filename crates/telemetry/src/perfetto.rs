//! Chrome/Perfetto `trace.json` export of a [`FlightTrace`].
//!
//! Emits the Trace Event Format (the JSON flavour `ui.perfetto.dev`
//! and `chrome://tracing` both load): one *process* per resource class
//! — pid 1 holds one track per worker lane, pid 2 one track per
//! transfer slot — so a run reads as "what each lane did" stacked over
//! "what each slot served". Mapping:
//!
//! * span / phase events → `B`/`E` duration events on the lane track;
//! * each transfer → an `X` slice on the lane track covering its slot
//!   wait (`issue → grant`) plus an `X` slice on the slot track
//!   covering its occupancy (`grant → retire`), linked by an async
//!   flow arrow (`s` → `f`) carrying the transfer id;
//! * faults → instant events (`i`) on the lane track;
//! * compute charges → a per-lane counter series (`C`).
//!
//! Virtual-domain timestamps map 1 unit → 1 µs (the format's native
//! resolution); wall-domain nanoseconds map to fractional µs.

use serde::Value;

use crate::flight::{ClockDomain, EventKind, FlightTrace, NO_SLOT};

/// pid hosting the per-lane tracks.
const PID_LANES: u64 = 1;
/// pid hosting the per-slot tracks.
const PID_SLOTS: u64 = 2;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

/// Timestamp in (possibly fractional) microseconds.
fn us(domain: ClockDomain, ts: u64) -> Value {
    match domain {
        ClockDomain::Virtual => Value::U64(ts),
        ClockDomain::Wall => Value::F64(ts as f64 / 1000.0),
    }
}

fn dur_us(domain: ClockDomain, from: u64, to: u64) -> Value {
    us(domain, to.saturating_sub(from))
}

fn meta(pid: u64, tid: Option<u64>, what: &str, name: &str) -> Value {
    let mut pairs = vec![("ph", s("M")), ("pid", Value::U64(pid)), ("name", s(what))];
    if let Some(tid) = tid {
        pairs.insert(2, ("tid", Value::U64(tid)));
    }
    pairs.push(("args", obj(vec![("name", s(name))])));
    obj(pairs)
}

/// Render `trace` as a Chrome Trace Event Format JSON document.
pub fn to_chrome_json(trace: &FlightTrace) -> String {
    let d = trace.domain;
    let mut events: Vec<Value> = Vec::new();

    // Track naming.
    events.push(meta(PID_LANES, None, "process_name", "worker lanes (p)"));
    events.push(meta(PID_SLOTS, None, "process_name", "transfer slots (p')"));
    for lane in &trace.lanes {
        events.push(meta(
            PID_LANES,
            Some(lane.lane as u64),
            "thread_name",
            &format!("lane {}", lane.lane),
        ));
    }
    for slot in 0..trace.transfer_slots {
        events.push(meta(
            PID_SLOTS,
            Some(slot as u64),
            "thread_name",
            &format!("slot {slot}"),
        ));
    }

    // Lane-track events: spans, phases, faults, compute counters.
    for lane in &trace.lanes {
        let tid = lane.lane as u64;
        let mut compute_total = 0u64;
        for ev in &lane.events {
            match ev.kind {
                EventKind::SpanBegin | EventKind::PhaseBegin => {
                    events.push(obj(vec![
                        ("ph", s("B")),
                        ("pid", Value::U64(PID_LANES)),
                        ("tid", Value::U64(tid)),
                        ("ts", us(d, ev.ts)),
                        ("name", s(trace.name(ev.name))),
                        (
                            "cat",
                            s(if ev.kind == EventKind::PhaseBegin {
                                "phase"
                            } else {
                                "span"
                            }),
                        ),
                    ]));
                }
                EventKind::SpanEnd | EventKind::PhaseEnd => {
                    events.push(obj(vec![
                        ("ph", s("E")),
                        ("pid", Value::U64(PID_LANES)),
                        ("tid", Value::U64(tid)),
                        ("ts", us(d, ev.ts)),
                        ("name", s(trace.name(ev.name))),
                    ]));
                }
                EventKind::Fault => {
                    events.push(obj(vec![
                        ("ph", s("i")),
                        ("s", s("t")),
                        ("pid", Value::U64(PID_LANES)),
                        ("tid", Value::U64(tid)),
                        ("ts", us(d, ev.ts)),
                        ("name", s(&format!("fault: {}", trace.name(ev.name)))),
                        ("cat", s("fault")),
                    ]));
                }
                EventKind::Compute => {
                    compute_total += ev.bytes;
                    events.push(obj(vec![
                        ("ph", s("C")),
                        ("pid", Value::U64(PID_LANES)),
                        ("tid", Value::U64(tid)),
                        ("ts", us(d, ev.ts)),
                        ("name", s(&format!("compute_ops lane {}", lane.lane))),
                        ("args", obj(vec![("ops", Value::U64(compute_total))])),
                    ]));
                }
                EventKind::ArenaRetire => {
                    events.push(obj(vec![
                        ("ph", s("i")),
                        ("s", s("t")),
                        ("pid", Value::U64(PID_LANES)),
                        ("tid", Value::U64(tid)),
                        ("ts", us(d, ev.ts)),
                        ("name", s(&format!("arena retire #{}", ev.id))),
                        ("cat", s("arena")),
                    ]));
                }
                EventKind::Issue | EventKind::Grant | EventKind::Retire => {}
            }
        }
    }

    // Transfers: wait slice on the lane, occupancy slice on the slot,
    // flow arrow between them.
    for t in trace.transfers() {
        let lane_tid = t.lane as u64;
        let channel = if t.far() { "far" } else { "near" };
        let rw = if t.flags & crate::flight::FLAG_WRITE != 0 {
            "wr"
        } else {
            "rd"
        };
        let retry = if t.retry() { " !retry" } else { "" };
        let label = format!("{channel} {rw} {}B #{}{retry}", t.bytes, t.id);

        // Issue→grant on the lane track (zero-length when ungated).
        events.push(obj(vec![
            ("ph", s("X")),
            ("pid", Value::U64(PID_LANES)),
            ("tid", Value::U64(lane_tid)),
            ("ts", us(d, t.issue)),
            ("dur", dur_us(d, t.issue, t.grant)),
            (
                "name",
                s(&if t.grant > t.issue {
                    format!("slot_wait #{}", t.id)
                } else {
                    format!("issue #{}", t.id)
                }),
            ),
            (
                "cat",
                s(if t.grant > t.issue {
                    "slot_wait"
                } else {
                    "issue"
                }),
            ),
            (
                "args",
                obj(vec![
                    ("bytes", Value::U64(t.bytes)),
                    ("transfer", Value::U64(t.id)),
                ]),
            ),
        ]));

        if t.slot != NO_SLOT {
            events.push(obj(vec![
                ("ph", s("X")),
                ("pid", Value::U64(PID_SLOTS)),
                ("tid", Value::U64(t.slot as u64)),
                ("ts", us(d, t.grant)),
                ("dur", dur_us(d, t.grant, t.retire)),
                ("name", s(&label)),
                ("cat", s(channel)),
                (
                    "args",
                    obj(vec![
                        ("bytes", Value::U64(t.bytes)),
                        ("lane", Value::U64(lane_tid)),
                        ("wait", Value::U64(t.grant - t.issue)),
                    ]),
                ),
            ]));
            // Async arrow: issue point on the lane → grant on the slot.
            events.push(obj(vec![
                ("ph", s("s")),
                ("pid", Value::U64(PID_LANES)),
                ("tid", Value::U64(lane_tid)),
                ("ts", us(d, t.issue)),
                ("id", Value::U64(t.id)),
                ("name", s("xfer")),
                ("cat", s("xfer")),
            ]));
            events.push(obj(vec![
                ("ph", s("f")),
                ("bp", s("e")),
                ("pid", Value::U64(PID_SLOTS)),
                ("tid", Value::U64(t.slot as u64)),
                ("ts", us(d, t.grant)),
                ("id", Value::U64(t.id)),
                ("name", s("xfer")),
                ("cat", s("xfer")),
            ]));
        }
    }

    let doc = obj(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", s("ms")),
        (
            "otherData",
            obj(vec![
                ("schema_version", Value::U64(trace.schema_version as u64)),
                (
                    "clock_domain",
                    s(match d {
                        ClockDomain::Virtual => "virtual (1 unit = 1us)",
                        ClockDomain::Wall => "wall (ns)",
                    }),
                ),
                ("workers", Value::U64(trace.workers as u64)),
                ("transfer_slots", Value::U64(trace.transfer_slots as u64)),
                ("seed", Value::U64(trace.seed)),
            ]),
        ),
    ]);
    serde::json::value_to_string(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{
        install, test_guard, transfer_event, uninstall, FlightConfig, TransferTiming, FLAG_FAR,
    };

    #[test]
    fn export_is_wellformed_and_carries_arrows() {
        let _g = test_guard();
        let _ = install(FlightConfig::virtual_time(2, 1, 3));
        crate::with_lane(0, || {
            crate::flight::span_event(true, "t.pf.sort");
            transfer_event(
                4096,
                FLAG_FAR,
                Some(TransferTiming {
                    slot: 0,
                    issue: 0,
                    grant: 0,
                    retire: 4096,
                }),
            );
            crate::flight::span_event(false, "t.pf.sort");
        });
        crate::with_lane(1, || {
            transfer_event(
                512,
                FLAG_FAR,
                Some(TransferTiming {
                    slot: 0,
                    issue: 0,
                    grant: 4096,
                    retire: 4608,
                }),
            );
        });
        let trace = uninstall().expect("installed");
        let json = to_chrome_json(&trace);
        // Well-formed JSON (the vendored parser round-trips it).
        let doc = serde::json::parse_value(&json).expect("valid JSON");
        let events = doc.get("traceEvents").expect("traceEvents");
        let Value::Seq(events) = events else {
            panic!("traceEvents must be an array")
        };
        let phase = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some(p))
                .count()
        };
        assert_eq!(phase("s"), 2, "one flow start per slotted transfer");
        assert_eq!(phase("f"), 2, "one flow finish per slotted transfer");
        assert_eq!(phase("B"), 1);
        assert_eq!(phase("E"), 1);
        assert!(phase("X") >= 3, "wait + occupancy slices");
        assert!(phase("M") >= 4, "process + thread names");
        // The contended transfer shows a real wait slice.
        assert!(json.contains("slot_wait #2"));
    }
}
