//! Quality-of-service telemetry lanes for the service layer.
//!
//! The `tlmm-service` front end tags every job with a tenant and a priority
//! class; this module gives those tags stable registry names so that shed /
//! preemption / latency data lands in the same counter–histogram registry
//! as everything else (and therefore in every `RunReport`):
//!
//! * `service.latency.<class>` — completion latency histogram per priority
//!   class, in virtual time units.
//! * `service.shed.<class>` / `service.preempt.<class>` — load-shedding and
//!   slot-preemption event counters per class.
//! * `service.tenant.<lane>.<what>` — per-tenant activity counters, folded
//!   onto a bounded number of lanes so that a tenant explosion can never
//!   balloon the registry.

use std::sync::Arc;

use crate::metrics::{registry, Counter, Histogram, HistogramSnapshot};

/// Tenant counters fold onto this many lanes (`tenant % TENANT_LANES`).
/// Bounded so an unbounded tenant id space cannot grow the registry without
/// limit; 64 lanes keeps collisions rare at realistic tenant counts.
pub const TENANT_LANES: u64 = 64;

/// The registry lane a tenant's counters fold onto.
#[inline]
pub fn tenant_lane(tenant: u64) -> u64 {
    tenant % TENANT_LANES
}

/// Per-class completion latency histogram (`service.latency.<class>`),
/// recorded in virtual time units.
pub fn class_latency(class: &'static str) -> Arc<Histogram> {
    registry().histogram(&format!("service.latency.{class}"))
}

/// Count one shed (admission-rejected) job of `class`.
pub fn count_shed(class: &'static str) {
    registry().counter(&format!("service.shed.{class}")).incr();
    crate::counter!("service.shed.total").incr();
}

/// Count one preemption event against `class` (a lower-class job yielded
/// transfer slots at a phase boundary).
pub fn count_preempt(class: &'static str) {
    registry()
        .counter(&format!("service.preempt.{class}"))
        .incr();
    crate::counter!("service.preempt.total").incr();
}

/// Per-tenant activity counter, folded onto [`TENANT_LANES`] lanes:
/// `service.tenant.<lane>.<what>`.
pub fn tenant_counter(tenant: u64, what: &str) -> Arc<Counter> {
    registry().counter(&format!("service.tenant.{}.{what}", tenant_lane(tenant)))
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the
    /// inclusive upper edge of the first bucket at which the cumulative
    /// sample count reaches `⌈q·count⌉`. Log2 buckets make this exact to
    /// within a factor of 2 — adequate for p50/p95/p99 headlines — and
    /// *conservative*: the true quantile is never above the estimate.
    /// Returns 0 for an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.hi;
            }
        }
        self.buckets.last().map(|b| b.hi).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_lanes_are_bounded_and_stable() {
        assert_eq!(tenant_lane(3), 3);
        assert_eq!(tenant_lane(3 + TENANT_LANES), 3);
        let a = tenant_counter(3, "jobs");
        let b = tenant_counter(3 + TENANT_LANES, "jobs");
        a.incr();
        assert_eq!(b.get(), a.get(), "folded tenants share a lane");
    }

    #[test]
    fn shed_and_preempt_feed_totals() {
        let before = registry().counter("service.shed.total").get();
        count_shed("interactive");
        count_shed("batch");
        assert_eq!(registry().counter("service.shed.total").get(), before + 2);
        let before = registry().counter("service.preempt.total").get();
        count_preempt("background");
        assert_eq!(
            registry().counter("service.preempt.total").get(),
            before + 1
        );
    }

    #[test]
    fn quantile_upper_bound_brackets_the_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot("t.qos.q");
        let p50 = snap.quantile_upper_bound(0.50);
        let p99 = snap.quantile_upper_bound(0.99);
        // True p50 = 500, p99 = 990; log2 buckets bound them from above
        // within a factor of 2.
        assert!((500..=1023).contains(&p50), "p50={p50}");
        assert!((990..=1023).contains(&p99), "p99={p99}");
        assert!(p50 <= p99);
        assert_eq!(
            Histogram::default().snapshot("e").quantile_upper_bound(0.5),
            0
        );
    }
}
