//! Critical-path reconstruction over a [`FlightTrace`].
//!
//! The makespan of a deterministic-executor run is the final virtual
//! clock of its slowest worker, and that worker's timeline *tiles* the
//! run exactly: in virtual time each of its transfers issues at the
//! previous one's retire (`worker_clock` only advances through
//! transfers), so walking its transfer chain backward from the last
//! retire decomposes `[0, makespan]` into disjoint segments —
//! slot-occupancy time (split `far_bandwidth` / `near_bandwidth` /
//! `fault_retry`), `slot_wait` time (grant − issue), and, in wall
//! mode, inter-transfer gaps attributed to `compute`.
//!
//! Each wait segment is annotated with the transfer that *held the
//! slot* until the grant (`blocked_by`), recovered from the per-slot
//! grant/retire timeline — that is the causal cross-worker edge of the
//! transfer DAG, answering "which chain made this run slow".
//!
//! The decomposition is exact by construction: segment durations sum
//! to the analyzed makespan, which for a virtual-domain trace equals
//! the executor's `makespan_units` (checked in the bench-crate
//! integration tests).

use serde::{Deserialize, Serialize};

use crate::flight::{ClockDomain, FlightTrace, TransferRec, FLAG_FAR, FLAG_RETRY, NO_SLOT};

/// What a critical-path segment's time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathCategory {
    /// Occupying a slot with a far (DRAM) channel crossing.
    FarBandwidth,
    /// Occupying a slot with a near (scratchpad) crossing.
    NearBandwidth,
    /// Stalled waiting for a transfer slot (`p > p′` contention).
    SlotWait,
    /// No transfer in flight — host compute (wall mode) or pre-first
    /// -transfer lead-in.
    Compute,
    /// Slot occupancy charged by a fault retry/abort penalty.
    FaultRetry,
    /// Trace carried no transfers at all.
    Idle,
}

impl PathCategory {
    /// Stable lowercase label (matches the attribution vocabulary in
    /// the issue tracker and DESIGN.md).
    pub fn label(&self) -> &'static str {
        match self {
            PathCategory::FarBandwidth => "far_bandwidth",
            PathCategory::NearBandwidth => "near_bandwidth",
            PathCategory::SlotWait => "slot_wait",
            PathCategory::Compute => "compute",
            PathCategory::FaultRetry => "fault_retry",
            PathCategory::Idle => "idle",
        }
    }
}

/// One segment of the critical worker's timeline, `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSegment {
    /// Segment start (trace clock domain).
    pub start: u64,
    /// Segment end.
    pub end: u64,
    /// Attribution.
    pub category: PathCategory,
    /// Transfer id this segment belongs to (0 = none).
    pub transfer: u64,
    /// For `slot_wait`: the transfer that held the slot (0 = unknown).
    pub blocked_by: u64,
}

/// Per-category totals, in trace clock units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryTotals {
    /// Far-channel slot occupancy.
    pub far_bandwidth: u64,
    /// Near-channel slot occupancy.
    pub near_bandwidth: u64,
    /// Slot-wait stalls.
    pub slot_wait: u64,
    /// Unmetered gaps (host compute / lead-in).
    pub compute: u64,
    /// Fault retry/abort occupancy.
    pub fault_retry: u64,
    /// Transfer-free trace.
    pub idle: u64,
}

impl CategoryTotals {
    fn add(&mut self, cat: PathCategory, units: u64) {
        match cat {
            PathCategory::FarBandwidth => self.far_bandwidth += units,
            PathCategory::NearBandwidth => self.near_bandwidth += units,
            PathCategory::SlotWait => self.slot_wait += units,
            PathCategory::Compute => self.compute += units,
            PathCategory::FaultRetry => self.fault_retry += units,
            PathCategory::Idle => self.idle += units,
        }
    }

    /// `(category, units)` rows, descending units.
    pub fn ranked(&self) -> Vec<(PathCategory, u64)> {
        let mut rows = vec![
            (PathCategory::FarBandwidth, self.far_bandwidth),
            (PathCategory::NearBandwidth, self.near_bandwidth),
            (PathCategory::SlotWait, self.slot_wait),
            (PathCategory::Compute, self.compute),
            (PathCategory::FaultRetry, self.fault_retry),
            (PathCategory::Idle, self.idle),
        ];
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }
}

/// The analyzer's output: an exact decomposition of the makespan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathReport {
    /// Clock domain of all times below.
    pub domain: ClockDomain,
    /// Earliest event timestamp (0 in virtual mode).
    pub origin: u64,
    /// Critical-path length: last retire − origin. Equals the
    /// executor's `makespan_units` for virtual-domain traces.
    pub makespan: u64,
    /// Worker whose timeline is the critical path.
    pub critical_worker: u32,
    /// Transfers on the path.
    pub transfers_on_path: u64,
    /// Per-category totals (sum = `makespan`).
    pub totals: CategoryTotals,
    /// Dominant category.
    pub dominant: PathCategory,
    /// The path, ascending time, tiling `[origin, origin+makespan)`.
    pub segments: Vec<PathSegment>,
}

impl CriticalPathReport {
    /// Fraction of the path spent in `cat` (0 for an empty path).
    pub fn share(&self, cat: PathCategory) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let units = match cat {
            PathCategory::FarBandwidth => self.totals.far_bandwidth,
            PathCategory::NearBandwidth => self.totals.near_bandwidth,
            PathCategory::SlotWait => self.totals.slot_wait,
            PathCategory::Compute => self.totals.compute,
            PathCategory::FaultRetry => self.totals.fault_retry,
            PathCategory::Idle => self.totals.idle,
        };
        units as f64 / self.makespan as f64
    }

    /// Render the per-category summary as an aligned text table.
    pub fn summary_table(&self) -> String {
        let unit = match self.domain {
            ClockDomain::Virtual => "units",
            ClockDomain::Wall => "ns",
        };
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: {} {} on worker {} ({} transfers)\n",
            self.makespan, unit, self.critical_worker, self.transfers_on_path
        ));
        out.push_str(&format!("{:<16} {:>14} {:>8}\n", "category", unit, "share"));
        for (cat, units) in self.totals.ranked() {
            if units == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<16} {:>14} {:>7.1}%\n",
                cat.label(),
                units,
                100.0 * self.share(cat)
            ));
        }
        out
    }
}

fn occupancy_category(t: &TransferRec) -> PathCategory {
    if t.flags & FLAG_RETRY != 0 {
        PathCategory::FaultRetry
    } else if t.flags & FLAG_FAR != 0 {
        PathCategory::FarBandwidth
    } else {
        PathCategory::NearBandwidth
    }
}

/// Reconstruct the critical path of `trace`. See module docs.
pub fn critical_path(trace: &FlightTrace) -> CriticalPathReport {
    let transfers = trace.transfers();
    let workers = trace.workers.max(1);
    let origin = match trace.domain {
        ClockDomain::Virtual => 0,
        ClockDomain::Wall => trace
            .lanes
            .iter()
            .flat_map(|l| l.events.iter().map(|e| e.ts))
            .min()
            .unwrap_or(0),
    };

    let Some(last) = transfers.iter().max_by_key(|t| (t.retire, t.id)) else {
        // No transfers: a single idle segment spanning the event range.
        let end = trace
            .lanes
            .iter()
            .flat_map(|l| l.events.iter().map(|e| e.ts))
            .max()
            .unwrap_or(origin);
        let makespan = end - origin;
        let mut totals = CategoryTotals::default();
        totals.add(PathCategory::Idle, makespan);
        return CriticalPathReport {
            domain: trace.domain,
            origin,
            makespan,
            critical_worker: 0,
            transfers_on_path: 0,
            totals,
            dominant: PathCategory::Idle,
            segments: vec![PathSegment {
                start: origin,
                end,
                category: PathCategory::Idle,
                transfer: 0,
                blocked_by: 0,
            }],
        };
    };

    let critical_worker = last.lane % workers;
    // The critical worker's own transfers, ascending issue time.
    let mut chain: Vec<&TransferRec> = transfers
        .iter()
        .filter(|t| t.lane % workers == critical_worker)
        .collect();
    chain.sort_by_key(|t| (t.issue, t.id));

    // Per-slot timeline for blocked_by recovery: the transfer whose
    // retire equals a wait's grant is the one that held the slot.
    let mut slot_retires: Vec<(u32, u64, u64)> = transfers
        .iter()
        .filter(|t| t.slot != NO_SLOT)
        .map(|t| (t.slot, t.retire, t.id))
        .collect();
    slot_retires.sort_unstable();
    let blocker = |slot: u32, grant: u64, own_id: u64| -> u64 {
        slot_retires
            .iter()
            .filter(|&&(s, r, id)| s == slot && r == grant && id != own_id)
            .map(|&(_, _, id)| id)
            .next_back()
            .unwrap_or(0)
    };

    let mut segments: Vec<PathSegment> = Vec::with_capacity(chain.len() * 2 + 1);
    let mut totals = CategoryTotals::default();
    let push = |segments: &mut Vec<PathSegment>,
                totals: &mut CategoryTotals,
                start: u64,
                end: u64,
                category: PathCategory,
                transfer: u64,
                blocked_by: u64| {
        if end > start {
            totals.add(category, end - start);
            segments.push(PathSegment {
                start,
                end,
                category,
                transfer,
                blocked_by,
            });
        }
    };

    let mut prev_retire = origin;
    for t in &chain {
        // Gap since the worker's previous transfer: unmetered host work
        // (zero in virtual mode, where the chain is contiguous).
        push(
            &mut segments,
            &mut totals,
            prev_retire,
            t.issue,
            PathCategory::Compute,
            0,
            0,
        );
        let blocked_by = if t.grant > t.issue && t.slot != NO_SLOT {
            blocker(t.slot, t.grant, t.id)
        } else {
            0
        };
        push(
            &mut segments,
            &mut totals,
            t.issue,
            t.grant,
            PathCategory::SlotWait,
            t.id,
            blocked_by,
        );
        push(
            &mut segments,
            &mut totals,
            t.grant,
            t.retire,
            occupancy_category(t),
            t.id,
            0,
        );
        prev_retire = prev_retire.max(t.retire);
    }

    let makespan = last.retire - origin;
    let dominant = totals.ranked()[0].0;
    CriticalPathReport {
        domain: trace.domain,
        origin,
        makespan,
        critical_worker,
        transfers_on_path: chain.len() as u64,
        totals,
        dominant,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{
        install, transfer_event, uninstall, FlightConfig, TransferTiming, FLAG_FAR,
    };

    fn record(events: impl FnOnce()) -> FlightTrace {
        let _g = crate::flight::test_guard();
        let _ = install(FlightConfig::virtual_time(2, 1, 0));
        events();
        uninstall().expect("installed")
    }

    #[test]
    fn contended_pair_splits_path_between_bandwidth_and_wait() {
        // Two workers, one slot: w1 waits out w0's whole transfer.
        let trace = record(|| {
            crate::with_lane(0, || {
                transfer_event(
                    100,
                    FLAG_FAR,
                    Some(TransferTiming {
                        slot: 0,
                        issue: 0,
                        grant: 0,
                        retire: 100,
                    }),
                );
            });
            crate::with_lane(1, || {
                transfer_event(
                    100,
                    FLAG_FAR,
                    Some(TransferTiming {
                        slot: 0,
                        issue: 0,
                        grant: 100,
                        retire: 200,
                    }),
                );
            });
        });
        let report = critical_path(&trace);
        assert_eq!(report.makespan, 200);
        assert_eq!(report.critical_worker, 1);
        assert_eq!(report.totals.slot_wait, 100);
        assert_eq!(report.totals.far_bandwidth, 100);
        assert!((report.share(PathCategory::SlotWait) - 0.5).abs() < 1e-9);
        // The wait is causally pinned on worker 0's transfer (id 1).
        let wait = report
            .segments
            .iter()
            .find(|s| s.category == PathCategory::SlotWait)
            .expect("wait segment");
        assert_eq!(wait.blocked_by, 1);
    }

    #[test]
    fn segments_tile_the_makespan_exactly() {
        let trace = record(|| {
            for (lane, (issue, grant, retire)) in
                [(0, (0, 0, 50)), (1, (0, 50, 150)), (0, (50, 150, 400))].into_iter()
            {
                crate::with_lane(lane, || {
                    transfer_event(
                        retire - grant,
                        FLAG_FAR,
                        Some(TransferTiming {
                            slot: 0,
                            issue,
                            grant,
                            retire,
                        }),
                    );
                });
            }
        });
        let report = critical_path(&trace);
        let sum: u64 = report.segments.iter().map(|s| s.end - s.start).sum();
        assert_eq!(sum, report.makespan);
        // Segments are contiguous and ascending.
        for w in report.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let table = report.summary_table();
        assert!(table.contains("slot_wait"));
    }

    #[test]
    fn empty_trace_reports_idle() {
        let trace = record(|| {});
        let report = critical_path(&trace);
        assert_eq!(report.makespan, 0);
        assert_eq!(report.dominant, PathCategory::Idle);
        assert_eq!(report.transfers_on_path, 0);
    }
}
