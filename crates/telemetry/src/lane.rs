//! Per-thread virtual-lane attribution.
//!
//! The scratchpad runtime models a machine with many more *lanes*
//! (hardware thread contexts) than the host has cores; algorithm code
//! wraps each simulated lane's work in `with_lane(lane, || …)`. This
//! module owns the thread-local lane id so that spans and events opened
//! inside that closure are attributed to the lane that did the work.
//! `tlmm_scratchpad` re-exports [`with_lane`] from here, keeping one
//! source of truth without a dependency cycle.

use std::cell::Cell;

/// Sentinel for "not inside any lane" (host/driver code).
pub(crate) const NO_LANE: usize = usize::MAX;

thread_local! {
    static CURRENT_LANE: Cell<usize> = const { Cell::new(NO_LANE) };
}

/// Run `f` with the current thread attributed to virtual lane `lane`.
///
/// Nested calls are allowed; the previous lane is restored on exit (also
/// on panic, via an RAII guard).
pub fn with_lane<R>(lane: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_LANE.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT_LANE.with(|c| c.replace(lane));
    let _restore = Restore(prev);
    f()
}

/// The virtual lane the current thread is attributed to, or `None` when
/// outside any [`with_lane`] scope.
pub fn current_lane() -> Option<usize> {
    let lane = CURRENT_LANE.with(|c| c.get());
    (lane != NO_LANE).then_some(lane)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_nests_and_restores() {
        assert_eq!(current_lane(), None);
        with_lane(4, || {
            assert_eq!(current_lane(), Some(4));
            with_lane(9, || assert_eq!(current_lane(), Some(9)));
            assert_eq!(current_lane(), Some(4));
        });
        assert_eq!(current_lane(), None);
    }

    #[test]
    fn lane_restored_after_panic() {
        let caught = std::panic::catch_unwind(|| with_lane(7, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_lane(), None);
    }

    #[test]
    fn lane_is_per_thread() {
        with_lane(1, || {
            std::thread::scope(|s| {
                s.spawn(|| assert_eq!(current_lane(), None));
            });
            assert_eq!(current_lane(), Some(1));
        });
    }
}
