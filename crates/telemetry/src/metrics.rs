//! Counters and log2-bucketed histograms in a global sharded registry.
//!
//! Handles are `&'static` after first lookup; the `counter!` /
//! `histogram!` macros cache the lookup in a per-call-site `OnceLock`,
//! so steady-state cost is one relaxed atomic op per update. Hot loops
//! (e.g. loser-tree comparisons) should still batch locally and flush
//! once per phase — the registry is for aggregation, not for per-element
//! traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` occurrences.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one occurrence.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A histogram over `u64` samples with power-of-two bucket boundaries.
///
/// The boundaries are exact: a sample of `2^k` lands in the bucket whose
/// inclusive lower bound is `2^k`, and `2^k - 1` lands one bucket below.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive `(lo, hi)` sample range covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record `n` samples of the same value.
    pub fn record_n(&self, value: u64, n: u64) {
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
    }

    /// Record a batch of samples with one atomic flush per non-empty
    /// bucket instead of three atomics per sample. Hot loops that produce
    /// many samples per phase (e.g. per-bucket element counts) should use
    /// this to stay inside the telemetry overhead budget.
    pub fn record_iter<I: IntoIterator<Item = u64>>(&self, values: I) {
        let mut local = [0u64; BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for v in values {
            local[bucket_index(v)] += 1;
            count += 1;
            sum = sum.wrapping_add(v);
        }
        if count == 0 {
            return;
        }
        for (i, &c) in local.iter().enumerate() {
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Occupancy of bucket `index`.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Point-in-time copy of this histogram under `name` (non-empty
    /// buckets only).
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets = (0..BUCKETS)
            .filter_map(|i| {
                let count = self.bucket(i);
                (count > 0).then(|| {
                    let (lo, hi) = bucket_bounds(i);
                    BucketCount { lo, hi, count }
                })
            })
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// One non-empty histogram bucket in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive lower sample bound.
    pub lo: u64,
    /// Inclusive upper sample bound.
    pub hi: u64,
    /// Number of samples that fell in `[lo, hi]`.
    pub count: u64,
}

/// Point-in-time value of a named counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registry name, e.g. `core.losertree.comparisons`.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// Point-in-time state of a named histogram (empty buckets omitted).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registry name, e.g. `scratchpad.transfer_bytes`.
    pub name: String,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Non-empty buckets in ascending range order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

const SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

/// Global sharded registry of named counters and histograms.
///
/// Sharding (by name hash) keeps first-time registration from serializing
/// across threads; steady-state updates never touch the registry because
/// callers hold `Arc` handles.
#[derive(Default)]
pub struct Registry {
    shards: [Shard; SHARDS],
}

fn shard_of(name: &str) -> usize {
    // FNV-1a; stable across runs so shard assignment is deterministic.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    (hash as usize) % SHARDS
}

impl Registry {
    /// Get or create the counter registered under `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let shard = &self.shards[shard_of(name)];
        if let Some(c) = shard.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(shard.counters.write().entry(name.to_string()).or_default())
    }

    /// Get or create the histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let shard = &self.shards[shard_of(name)];
        if let Some(h) = shard.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            shard
                .histograms
                .write()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Snapshot every counter with a non-zero total, sorted by name.
    pub fn counter_snapshots(&self) -> Vec<CounterSnapshot> {
        let mut out: Vec<CounterSnapshot> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.counters
                    .read()
                    .iter()
                    .filter(|(_, c)| c.get() > 0)
                    .map(|(name, c)| CounterSnapshot {
                        name: name.clone(),
                        value: c.get(),
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Snapshot every histogram with at least one sample, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<HistogramSnapshot> {
        let mut out: Vec<HistogramSnapshot> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.histograms
                    .read()
                    .iter()
                    .filter(|(_, h)| h.count() > 0)
                    .map(|(name, h)| h.snapshot(name))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Zero every counter and histogram (handles stay valid).
    pub fn reset(&self) {
        for shard in &self.shards {
            for c in shard.counters.read().values() {
                c.reset();
            }
            for h in shard.histograms.read().values() {
                h.reset();
            }
        }
    }
}

/// The process-wide [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Fetch (and cache at the call site) the counter named `$name`.
///
/// `counter!("core.losertree.comparisons").add(batch);`
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::registry().counter($name))
            .as_ref()
    }};
}

/// Fetch (and cache at the call site) the histogram named `$name`.
///
/// `histogram!("scratchpad.transfer_bytes").record(len_bytes);`
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::registry().histogram($name))
            .as_ref()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_at_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..63 {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k as usize + 1, "2^{k}");
            assert_eq!(bucket_index(p - 1), k as usize, "2^{k} - 1");
            assert_eq!(bucket_index(p + 1), k as usize + 1, "2^{k} + 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(bucket_bounds(0), (0, 0));
        let mut expected_lo = 1u64;
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo);
            assert!(hi >= lo);
            // Every bound maps back to its own bucket.
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0); // wrapped past u64::MAX: full coverage
    }

    #[test]
    fn histogram_snapshot_reflects_samples() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(16);
        h.record_n(17, 3);
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1 + 16 + 3 * 17); // the 0 sample adds nothing
        assert_eq!(
            snap.buckets,
            vec![
                BucketCount {
                    lo: 0,
                    hi: 0,
                    count: 1
                },
                BucketCount {
                    lo: 1,
                    hi: 1,
                    count: 1
                },
                BucketCount {
                    lo: 16,
                    hi: 31,
                    count: 4
                },
            ]
        );
    }

    #[test]
    fn record_iter_matches_individual_records() {
        let batched = Histogram::default();
        let single = Histogram::default();
        let samples = [0u64, 1, 1, 7, 8, 1024, 1025, u64::MAX];
        batched.record_iter(samples.iter().copied());
        for &v in &samples {
            single.record(v);
        }
        assert_eq!(batched.snapshot("b").buckets, single.snapshot("s").buckets);
        assert_eq!(batched.count(), single.count());
        assert_eq!(batched.sum(), single.sum());
        batched.record_iter(std::iter::empty());
        assert_eq!(batched.count(), samples.len() as u64);
    }

    #[test]
    fn registry_returns_same_handle() {
        let a = registry().counter("t.metrics.same");
        let b = registry().counter("t.metrics.same");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(2);
        assert_eq!(b.get(), 2);
    }

    #[test]
    fn macros_cache_and_accumulate() {
        for _ in 0..3 {
            counter!("t.metrics.macro").incr();
            histogram!("t.metrics.macro_h").record(8);
        }
        assert!(registry().counter("t.metrics.macro").get() >= 3);
        assert!(registry().histogram("t.metrics.macro_h").count() >= 3);
    }
}
