//! The end-of-run `RunReport`: span tree + metric snapshots + arbitrary
//! caller-attached sections, serializable to JSON and renderable as a
//! text timeline.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};

use crate::metrics::{registry, CounterSnapshot, HistogramSnapshot};
use crate::span::{take_spans, SpanRecord};

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanNode {
    /// Dotted span name, e.g. `nmsort.p2.merge`.
    pub name: String,
    /// Open time, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Virtual lane attribution (`None` outside `with_lane`).
    pub lane: Option<u64>,
    /// Spans opened while this one was current, ordered by open time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.dur_ns as f64 / 1e9
    }

    /// This node plus all descendants, depth-first.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::count).sum::<usize>()
    }
}

/// Merged observability artifact for one measured run.
///
/// Produced by [`RunReport::collect`] from the global telemetry state;
/// callers then attach run metadata ([`RunReport::meta`]) and structured
/// sections such as cost-model ledgers or simulator reports
/// ([`RunReport::section`]) before writing it out as JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Report schema version; bump on breaking layout changes.
    pub schema_version: u32,
    /// Run name (conventionally the harness binary name, e.g. `table1`).
    pub name: String,
    /// Wall-clock extent of all recorded spans, in seconds.
    pub wall_seconds: f64,
    /// Reconstructed span forest, roots ordered by open time.
    pub spans: Vec<SpanNode>,
    /// Non-zero counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Non-empty histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Free-form run metadata (`n`, `lanes`, `git_sha`, …).
    pub meta: BTreeMap<String, String>,
    /// Structured payloads merged in by the caller (cost snapshots,
    /// simulator reports), keyed by section name.
    pub sections: BTreeMap<String, Value>,
}

/// Current [`RunReport::schema_version`].
pub const SCHEMA_VERSION: u32 = 1;

fn build_tree(mut records: Vec<SpanRecord>) -> Vec<SpanNode> {
    records.sort_by_key(|r| r.start_ns);
    // Ids of spans present in this batch; parents that already drained
    // (or never closed) degrade gracefully into roots.
    let ids: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
    let mut nodes: BTreeMap<u64, SpanNode> = BTreeMap::new();
    let mut order: Vec<(u64, u64)> = Vec::new(); // (id, effective parent)
    for r in &records {
        let parent = if r.parent != 0 && ids.contains(&r.parent) {
            r.parent
        } else {
            0
        };
        order.push((r.id, parent));
        nodes.insert(
            r.id,
            SpanNode {
                name: r.name.clone(),
                start_ns: r.start_ns,
                dur_ns: r.dur_ns,
                lane: r.lane().map(|l| l as u64),
                children: Vec::new(),
            },
        );
    }
    // Attach children to parents, deepest-start-time first so a child is
    // complete before its parent absorbs it.
    let mut roots = Vec::new();
    for (id, parent) in order.iter().rev() {
        let node = nodes.remove(id).expect("node inserted above");
        if *parent == 0 {
            roots.push(node);
        } else if let Some(p) = nodes.get_mut(parent) {
            p.children.insert(0, node);
        } else {
            // Parent already moved (start-time tie ordering); keep as root
            // rather than losing the span.
            roots.push(node);
        }
    }
    roots.reverse();
    roots.sort_by_key(|n| n.start_ns);
    roots
}

impl RunReport {
    /// Drain the global telemetry state into a report for run `name`.
    pub fn collect(name: &str) -> RunReport {
        let records = take_spans();
        let wall_ns = records
            .iter()
            .map(|r| r.start_ns + r.dur_ns)
            .max()
            .unwrap_or(0)
            .saturating_sub(records.iter().map(|r| r.start_ns).min().unwrap_or(0));
        RunReport {
            schema_version: SCHEMA_VERSION,
            name: name.to_string(),
            wall_seconds: wall_ns as f64 / 1e9,
            spans: build_tree(records),
            counters: registry().counter_snapshots(),
            histograms: registry().histogram_snapshots(),
            meta: BTreeMap::new(),
            sections: BTreeMap::new(),
        }
    }

    /// Attach a metadata key/value pair (chainable).
    pub fn meta(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    /// Attach a structured section, e.g. a `CostSnapshot` or `SimReport`
    /// (chainable).
    pub fn section<T: Serialize>(mut self, key: &str, payload: &T) -> Self {
        self.sections.insert(key.to_string(), payload.to_value());
        self
    }

    /// Serialize to compact JSON.
    pub fn to_json(&self) -> Result<String, serde::Error> {
        serde::json::to_string(self)
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json_pretty(&self) -> Result<String, serde::Error> {
        serde::json::to_string_pretty(self)
    }

    /// Parse a report back from JSON.
    pub fn from_json(s: &str) -> Result<RunReport, serde::Error> {
        serde::json::from_str(s)
    }

    /// Render the span tree as a text timeline ("poor man's flamegraph"):
    /// indented tree with durations, share-of-run bars, and lane tags,
    /// followed by counter and histogram summaries.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run {}  wall {:.3}s  spans {}  counters {}  histograms {}\n",
            self.name,
            self.wall_seconds,
            self.spans.iter().map(SpanNode::count).sum::<usize>(),
            self.counters.len(),
            self.histograms.len(),
        ));
        let total_ns = self
            .spans
            .iter()
            .map(|s| s.dur_ns)
            .max()
            .unwrap_or(0)
            .max(1);
        for root in &self.spans {
            render_node(&mut out, root, "", true, total_ns);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self
                .counters
                .iter()
                .map(|c| c.name.len())
                .max()
                .unwrap_or(0);
            for c in &self.counters {
                out.push_str(&format!("  {:<width$}  {}\n", c.name, c.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {}  count {}  mean {:.1}\n",
                    h.name,
                    h.count,
                    h.mean()
                ));
                let peak = h.buckets.iter().map(|b| b.count).max().unwrap_or(1);
                for b in &h.buckets {
                    let bar = "#".repeat(((b.count * 24).div_ceil(peak)) as usize);
                    out.push_str(&format!(
                        "    [{:>12} .. {:>12}]  {:>10}  {}\n",
                        b.lo, b.hi, b.count, bar
                    ));
                }
            }
        }
        out
    }
}

/// `root` means "print flush-left with no connector"; children then get
/// the usual `├─`/`└─` tree art under an indentation prefix.
fn render_node(out: &mut String, node: &SpanNode, prefix: &str, root: bool, total_ns: u64) {
    let share = node.dur_ns as f64 / total_ns as f64;
    let bar = "█".repeat((share * 20.0).round() as usize);
    let lane = match node.lane {
        Some(l) => format!("  [lane {l}]"),
        None => String::new(),
    };
    out.push_str(&format!(
        "{prefix}{:<32} {:>9.3}s  {:>5.1}%  {bar}{lane}\n",
        node.name,
        node.seconds(),
        share * 100.0,
    ));
    for (i, child) in node.children.iter().enumerate() {
        let last = i + 1 == node.children.len();
        let stem = prefix
            .strip_suffix("├─ ")
            .map(|p| format!("{p}│  "))
            .or_else(|| prefix.strip_suffix("└─ ").map(|p| format!("{p}   ")))
            .unwrap_or_else(|| {
                if root {
                    String::new()
                } else {
                    prefix.to_string()
                }
            });
        let child_prefix = format!("{stem}{}", if last { "└─ " } else { "├─ " });
        render_node(out, child, &child_prefix, false, total_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_tree_nests_by_parent() {
        let records = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "root".into(),
                start_ns: 0,
                dur_ns: 100,
                lane: u64::MAX,
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "child_a".into(),
                start_ns: 10,
                dur_ns: 30,
                lane: 3,
            },
            SpanRecord {
                id: 3,
                parent: 1,
                name: "child_b".into(),
                start_ns: 50,
                dur_ns: 40,
                lane: u64::MAX,
            },
            SpanRecord {
                id: 4,
                parent: 2,
                name: "grandchild".into(),
                start_ns: 15,
                dur_ns: 10,
                lane: u64::MAX,
            },
        ];
        let roots = build_tree(records);
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "child_a");
        assert_eq!(root.children[0].lane, Some(3));
        assert_eq!(root.children[0].children.len(), 1);
        assert_eq!(root.children[1].name, "child_b");
    }

    #[test]
    fn orphan_parent_degrades_to_root() {
        let records = vec![SpanRecord {
            id: 9,
            parent: 5, // never recorded
            name: "orphan".into(),
            start_ns: 0,
            dur_ns: 1,
            lane: u64::MAX,
        }];
        let roots = build_tree(records);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "orphan");
    }

    #[test]
    fn empty_report_renders() {
        let report = RunReport {
            schema_version: SCHEMA_VERSION,
            name: "empty".into(),
            wall_seconds: 0.0,
            spans: vec![],
            counters: vec![],
            histograms: vec![],
            meta: BTreeMap::new(),
            sections: BTreeMap::new(),
        };
        let text = report.render_tree();
        assert!(text.contains("run empty"));
        let json = report.to_json().unwrap();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back.name, "empty");
    }
}
