//! Wall-clock spans with nesting and lane attribution.
//!
//! Two flavours cover every call site in the workspace:
//!
//! * [`enter`] / the [`span!`](crate::span!) macro — RAII guard tied to
//!   the opening thread. Spans nest through a thread-local "current span"
//!   cell: a guard records its parent at open and restores it at drop,
//!   so sibling and nested spans reconstruct into a tree.
//! * [`Span::detached`] — an owned span that records its parent at open
//!   but does not become the thread's current span. Used by holders that
//!   outlive a stack frame (the scratchpad trace recorder keeps one per
//!   open phase).
//!
//! Finished spans are appended to a global vector; [`take_spans`] drains
//! it at report time. Span volume is phase-granular (tens to a few
//! hundred per run), so a single mutex-guarded vector is not a
//! bottleneck.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::lane::current_lane;
use crate::now_ns;

/// A finished span, as drained by [`take_spans`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique id (process-wide, starts at 1; 0 means "no span").
    pub id: u64,
    /// Id of the span that was current when this one opened (0 = root).
    pub parent: u64,
    /// Dotted span name, e.g. `nmsort.p1.sort`.
    pub name: String,
    /// Open time, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Virtual lane attribution at open (`usize::MAX` = no lane).
    pub lane: u64,
}

impl SpanRecord {
    /// Lane attribution, if the span was opened inside `with_lane`.
    pub fn lane(&self) -> Option<usize> {
        (self.lane != u64::MAX).then_some(self.lane as usize)
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static FINISHED: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

fn open(name: &str, set_current: bool) -> Span {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.with(|c| {
        let parent = c.get();
        if set_current {
            c.set(id);
        }
        parent
    });
    // RAII spans mirror into the flight recorder (begin/end stay on one
    // lane, so per-lane nesting is strict); detached spans don't — their
    // holders (the phase recorder) emit richer Phase* events instead.
    if set_current {
        crate::flight::span_event(true, name);
    }
    Span {
        id,
        parent,
        name: name.to_string(),
        start_ns: now_ns(),
        lane: current_lane().map_or(u64::MAX, |l| l as u64),
        flight: set_current,
    }
}

fn finish(span: &mut Span) {
    if span.flight {
        crate::flight::span_event(false, &span.name);
    }
    let record = SpanRecord {
        id: span.id,
        parent: span.parent,
        name: std::mem::take(&mut span.name),
        start_ns: span.start_ns,
        dur_ns: now_ns().saturating_sub(span.start_ns),
        lane: span.lane,
    };
    crate::sink::emit_span(&record);
    FINISHED.lock().push(record);
}

/// An owned, detached span (see module docs). Finishes on drop or via
/// [`Span::finish`].
#[derive(Debug)]
pub struct Span {
    id: u64,
    parent: u64,
    name: String,
    start_ns: u64,
    lane: u64,
    /// Mirror begin/end into the flight recorder (RAII spans only).
    flight: bool,
}

impl Span {
    /// Open a span that does not alter the thread's current-span cell.
    pub fn detached(name: &str) -> Span {
        open(name, false)
    }

    /// Unique id of this span (usable as an explicit parent in events).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Close the span now, recording its duration.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        finish(self);
    }
}

/// RAII guard returned by [`enter`]: restores the previous current span
/// (and records this one) when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    span: Option<Span>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut span) = self.span.take() {
            CURRENT_SPAN.with(|c| c.set(span.parent));
            finish(&mut span);
            std::mem::forget(span); // already finished by hand
        }
    }
}

/// Open a nested span on the current thread. Prefer the
/// [`span!`](crate::span!) macro at call sites.
pub fn enter(name: &str) -> SpanGuard {
    SpanGuard {
        span: Some(open(name, true)),
    }
}

/// Open a nested RAII span: `let _g = span!("phase1.chunk_sort");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::enter($name)
    };
}

/// Drain all finished spans recorded since the last call (or [`reset`]).
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *FINISHED.lock())
}

pub(crate) fn reset() {
    FINISHED.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_named(prefix: &str) -> Vec<SpanRecord> {
        take_spans()
            .into_iter()
            .filter(|s| s.name.starts_with(prefix))
            .collect()
    }

    #[test]
    fn guard_restores_parent() {
        let outer = enter("t.sg.outer");
        let outer_id = outer.span.as_ref().unwrap().id;
        {
            let inner = enter("t.sg.inner");
            assert_eq!(inner.span.as_ref().unwrap().parent, outer_id);
        }
        // After the inner guard drops, a new span sees `outer` again.
        let sibling = enter("t.sg.sibling");
        assert_eq!(sibling.span.as_ref().unwrap().parent, outer_id);
        drop(sibling);
        drop(outer);
        let spans = drain_named("t.sg.");
        assert_eq!(spans.len(), 3);
        // Drop order: inner, sibling, outer.
        assert_eq!(spans[0].name, "t.sg.inner");
        assert_eq!(spans[2].name, "t.sg.outer");
        assert!(spans[2].dur_ns >= spans[0].dur_ns);
    }

    #[test]
    fn detached_span_does_not_become_current() {
        let outer = enter("t.det.outer");
        let outer_id = outer.span.as_ref().unwrap().id;
        let det = Span::detached("t.det.phase");
        assert_eq!(det.parent, outer_id);
        let inner = enter("t.det.inner");
        // `inner` nests under `outer`, not under the detached span.
        assert_eq!(inner.span.as_ref().unwrap().parent, outer_id);
        drop(inner);
        det.finish();
        drop(outer);
        drain_named("t.det.");
    }

    #[test]
    fn spans_record_lane() {
        crate::with_lane(5, || {
            let _g = enter("t.lane.span");
        });
        let spans = drain_named("t.lane.");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].lane(), Some(5));
    }
}
