//! `tlmm-telemetry` — the observability layer of the two-level-memory
//! stack.
//!
//! The paper's argument rests on *measured* quantities (Table I's sim
//! time, scratchpad and DRAM access counts); this crate makes every layer
//! of the reproduction emit those measurements in a structured,
//! machine-readable form instead of free-form text:
//!
//! * [`span!`] — lightweight RAII spans with wall-clock timing, nesting,
//!   and per-lane attribution. The lane is the same *virtual lane* the
//!   scratchpad runtime charges work to ([`with_lane`] is the single
//!   source of truth; `tlmm_scratchpad::with_lane` re-exports it).
//! * [`counter!`] / [`histogram!`] — monotonic counters and log2-bucketed
//!   histograms (transfer sizes, bucket occupancies, loser-tree
//!   comparisons, cache hits…) registered in a global sharded
//!   [`Registry`].
//! * [`sink`] — a structured JSONL event stream, enabled with
//!   `TLMM_TELEMETRY=json` (stderr) or `TLMM_TELEMETRY=<path>.jsonl`.
//! * [`RunReport`] — the end-of-run artifact: span tree + counter and
//!   histogram snapshots + caller-attached sections (cost ledgers, sim
//!   reports), serializable to JSON and renderable as a text timeline
//!   ([`RunReport::render_tree`]).
//!
//! Overhead discipline: spans are opened at *phase* granularity (tens per
//! run), counters are batched by the hot loops that feed them, and the
//! sink is off unless requested — the whole layer stays well under 5 % of
//! wall clock on a 1M-element NMsort run (see `tests/overhead.rs`).
//!
//! # Example
//!
//! ```
//! use tlmm_telemetry as tel;
//!
//! tel::reset(); // fresh run
//! {
//!     let _run = tel::span!("demo.run");
//!     tel::with_lane(3, || {
//!         let _s = tel::span!("demo.phase1");
//!         tel::counter!("demo.items").add(128);
//!         tel::histogram!("demo.transfer_bytes").record(4096);
//!     });
//! }
//! let report = tel::RunReport::collect("demo");
//! assert_eq!(report.spans.len(), 1);            // one root...
//! assert_eq!(report.spans[0].children.len(), 1); // ...with a nested child
//! assert_eq!(report.spans[0].children[0].lane, Some(3));
//! println!("{}", report.render_tree());
//! let json = report.to_json_pretty().unwrap();
//! assert!(json.contains("demo.transfer_bytes"));
//! ```

mod lane;
mod metrics;
mod report;
mod span;

pub mod critical;
pub mod flight;
pub mod perfetto;
pub mod qos;
pub mod sink;

pub use lane::{current_lane, with_lane};
pub use metrics::{
    bucket_bounds, registry, BucketCount, Counter, CounterSnapshot, Histogram, HistogramSnapshot,
    Registry,
};
pub use report::{RunReport, SpanNode};
pub use span::{enter, take_spans, Span, SpanGuard, SpanRecord};

/// Nanoseconds since the process-wide telemetry epoch (first use).
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Clear all recorded telemetry (spans, counters, histograms): the
/// boundary between two measured runs in one process.
pub fn reset() {
    span::reset();
    metrics::registry().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
