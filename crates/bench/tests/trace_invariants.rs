//! Property tests on the flight-recorder trace of real deterministic runs
//! (ISSUE 6, satellite 3): whatever `(algo, n, p, p′, seeds)` the strategy
//! draws, the recorded trace must satisfy its structural invariants, agree
//! with the cost ledger byte-for-byte, tile the executor's makespan, and
//! replay bit-for-bit.
//!
//! The flight recorder is process-global, so every test body holds
//! [`GUARD`] — cargo runs the tests in this binary on parallel threads.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};
use tlmm_bench::{run_sort_with_exec, SortAlgo, SortRun, SortSpec};
use tlmm_scratchpad::ExecConfig;
use tlmm_telemetry::critical::critical_path;
use tlmm_telemetry::flight::{self, EventKind, FlightConfig, FlightTrace};
use tlmm_telemetry::perfetto;

static GUARD: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    tlmm_testkit::serial_guard(&GUARD)
}

/// Run `spec` under a freshly installed virtual-domain recorder mirroring
/// the executor's `(p, p′, seed)`; returns the run and the trace.
fn traced_run(
    spec: &SortSpec,
    workers: usize,
    slots: usize,
    exec_seed: u64,
) -> (SortRun, FlightTrace) {
    flight::install(
        FlightConfig::virtual_time(workers as u32, slots as u32, exec_seed).with_capacity(1 << 17),
    );
    let run = run_sort_with_exec(
        spec,
        Some(ExecConfig::deterministic(workers, slots, exec_seed)),
    );
    let trace = flight::uninstall().expect("recorder installed");
    (run.expect("traced run"), trace)
}

fn arb_spec() -> impl Strategy<Value = (SortSpec, usize, usize, u64)> {
    (
        (
            0u8..5,           // algo selector
            2_000u64..12_000, // n
            1u64..6,          // lanes
            0u64..1_000,      // workload seed
        ),
        (
            0u64..100,   // fault seed; 0 means "no plan"
            1u64..6,     // workers
            1u64..4,     // slots
            0u64..1_000, // exec seed
        ),
    )
        .prop_map(
            |((algo, n, lanes, seed), (fault, workers, slots, exec_seed))| {
                let algo = match algo {
                    0 => SortAlgo::NmSort,
                    1 => SortAlgo::NmSortDma,
                    2 => SortAlgo::Baseline,
                    3 => SortAlgo::Spms,
                    _ => SortAlgo::SquareSort,
                };
                let n = n as usize;
                (
                    SortSpec {
                        threads: 1,
                        algo,
                        n,
                        lanes: lanes as usize,
                        chunk_elems: if algo.uses_chunks() {
                            Some((n / 3).max(512))
                        } else {
                            None
                        },
                        seed,
                        fault_seed: if fault == 0 { None } else { Some(fault) },
                    },
                    workers as usize,
                    (slots as usize).min(workers as usize), // executor requires p' <= p
                    exec_seed,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The structural invariants the validator enforces — per-lane
    /// monotone timestamps, strict span nesting, phase alternation,
    /// issue→grant→retire triples per transfer id, slot exclusivity —
    /// hold on every reachable run, fault-injected or clean.
    #[test]
    fn traces_validate((spec, workers, slots, exec_seed) in arb_spec()) {
        let _g = guard();
        let (_, trace) = traced_run(&spec, workers, slots, exec_seed);
        if let Err(errors) = trace.validate() {
            prop_assert!(false, "trace invariants violated: {errors:?}");
        }
        // Re-assert the headline orderings independently of validate().
        for lane in &trace.lanes {
            let mut last_ts = 0u64;
            for ev in &lane.events {
                prop_assert!(ev.ts >= last_ts, "lane {} time went backwards", lane.lane);
                last_ts = ev.ts;
            }
        }
        for t in trace.transfers() {
            prop_assert!(t.issue <= t.grant && t.grant <= t.retire,
                "transfer {} ordering broken", t.id);
        }
    }

    /// Summed trace transfer bytes equal the `CostSnapshot` ledger
    /// byte-for-byte in deterministic mode — with and without fault
    /// plans (retried transfers are charged AND traced twice).
    #[test]
    fn trace_bytes_equal_ledger((spec, workers, slots, exec_seed) in arb_spec()) {
        let _g = guard();
        let (run, trace) = traced_run(&spec, workers, slots, exec_seed);
        prop_assert_eq!(trace.dropped(), 0, "ring overflowed; grow the test capacity");
        prop_assert_eq!(trace.transfer_bytes(|t| t.far()), run.ledger.far_bytes);
        prop_assert_eq!(trace.transfer_bytes(|t| !t.far()), run.ledger.near_bytes);
    }

    /// The critical path tiles the executor's charged makespan exactly,
    /// and its category totals sum to it with nothing left over.
    #[test]
    fn critical_path_tiles_makespan((spec, workers, slots, exec_seed) in arb_spec()) {
        let _g = guard();
        let (run, trace) = traced_run(&spec, workers, slots, exec_seed);
        let cp = critical_path(&trace);
        let exec = run.exec.expect("executor report");
        prop_assert_eq!(cp.makespan, exec.makespan_units);
        let t = &cp.totals;
        let sum = t.far_bandwidth + t.near_bandwidth + t.slot_wait
            + t.compute + t.fault_retry + t.idle;
        prop_assert_eq!(sum, cp.makespan, "segments must tile [0, makespan]");
        let mut cursor = cp.origin;
        for seg in &cp.segments {
            prop_assert_eq!(seg.start, cursor, "gap or overlap on the path");
            prop_assert!(seg.end >= seg.start);
            cursor = seg.end;
        }
    }

    /// Bit-for-bit replay: the same `(spec, p, p′, seed)` yields an
    /// identical trace — event streams, serialized form, and the exported
    /// Chrome JSON all match across two fresh runs.
    #[test]
    fn deterministic_runs_replay_bit_for_bit((spec, workers, slots, exec_seed) in arb_spec()) {
        let _g = guard();
        let (_, t1) = traced_run(&spec, workers, slots, exec_seed);
        let (_, t2) = traced_run(&spec, workers, slots, exec_seed);
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(perfetto::to_chrome_json(&t1), perfetto::to_chrome_json(&t2));
    }
}

/// The oblivious engines charge exclusively through the shared `TwoLevel`
/// API, so the recorder must see every one of their bytes with zero hooks
/// of their own: traced transfer bytes equal the ledger exactly, clean and
/// faulted, for both engines.
#[test]
fn oblivious_trace_bytes_equal_ledger() {
    let _g = guard();
    for algo in [SortAlgo::Spms, SortAlgo::SquareSort] {
        for fault_seed in [None, Some(23u64)] {
            let spec = SortSpec {
                threads: 1,
                algo,
                n: 20_000,
                lanes: 4,
                chunk_elems: None,
                seed: 9,
                fault_seed,
            };
            let (run, trace) = traced_run(&spec, 4, 2, 11);
            assert_eq!(trace.dropped(), 0, "{algo:?}: ring overflowed");
            assert_eq!(
                trace.transfer_bytes(|t| t.far()),
                run.ledger.far_bytes,
                "{algo:?} fault={fault_seed:?}: far bytes"
            );
            assert_eq!(
                trace.transfer_bytes(|t| !t.far()),
                run.ledger.near_bytes,
                "{algo:?} fault={fault_seed:?}: near bytes"
            );
        }
    }
}

/// Non-proptest spot check: a contended run (p > p′) must attribute a
/// visible share of the critical path to slot waiting, and spans/phases
/// must appear in the trace at all (guards against silently disabled
/// instrumentation hooks).
#[test]
fn contended_run_attributes_slot_wait() {
    let _g = guard();
    let spec = SortSpec {
        threads: 1,
        algo: SortAlgo::NmSort,
        n: 60_000,
        lanes: 8,
        chunk_elems: Some(15_000),
        seed: 5,
        fault_seed: None,
    };
    let (run, trace) = traced_run(&spec, 8, 2, 3);
    let cp = critical_path(&trace);
    assert_eq!(cp.makespan, run.exec.expect("exec report").makespan_units);
    assert!(
        cp.totals.slot_wait > 0,
        "8 workers over 2 slots must wait: {:?}",
        cp.totals
    );
    let kinds: Vec<EventKind> = trace
        .lanes
        .iter()
        .flat_map(|l| l.events.iter().map(|e| e.kind))
        .collect();
    assert!(
        kinds.contains(&EventKind::PhaseBegin),
        "phase events missing"
    );
    assert!(
        kinds.contains(&EventKind::Compute),
        "compute events missing"
    );
}
