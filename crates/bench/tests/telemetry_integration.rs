//! Harness-level telemetry checks: span/lane attribution survives rayon's
//! worker threads, and the artifact writer produces both result files.

use std::sync::Mutex;
use tlmm_bench::artifact;
use tlmm_telemetry::{span, with_lane, RunReport};

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn spans_attribute_lanes_across_rayon_threads() {
    use rayon::prelude::*;
    let _g = lock();
    tlmm_telemetry::reset();

    let lanes: Vec<usize> = (0..8).collect();
    lanes.par_iter().for_each(|&lane| {
        with_lane(lane, || {
            let _s = span!("bench_it.lane_work");
        });
    });

    let report = RunReport::collect("bench_it");
    let lane_spans: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.name == "bench_it.lane_work")
        .collect();
    assert_eq!(lane_spans.len(), 8);
    let mut seen: Vec<u64> = lane_spans.iter().filter_map(|s| s.lane).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..8).collect::<Vec<u64>>());
}

#[test]
fn emit_writes_text_and_json_artifacts() {
    let _g = lock();
    tlmm_telemetry::reset();

    let dir = std::env::temp_dir().join(format!("tlmm-artifact-test-{}", std::process::id()));
    std::env::set_var(artifact::RESULTS_DIR_ENV, &dir);
    {
        let _s = span!("bench_it.emit");
    }
    let report = RunReport::collect("emit_test").meta("n", 1);
    let written =
        artifact::emit("emit_test", "hello artifact\n", report).expect("emit artifact files");
    std::env::remove_var(artifact::RESULTS_DIR_ENV);

    let text = std::fs::read_to_string(&written.text).expect("text artifact");
    assert_eq!(text, "hello artifact\n");
    let json = std::fs::read_to_string(&written.json).expect("json artifact");
    let back = RunReport::from_json(&json).expect("parse artifact report");
    assert_eq!(back.name, "emit_test");
    assert!(back.meta.contains_key("git_sha"), "emit stamps the git sha");
    assert!(back.spans.iter().any(|s| s.name == "bench_it.emit"));
    std::fs::remove_dir_all(&dir).ok();
}
