//! Microbenchmarks of the non-sort kernels: the k-means assignment pass,
//! the GEMM tile kernel, external quicksort, and the selection primitive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tlmm_core::extsort::RegionLevel;
use tlmm_core::quicksort::external_quicksort;
use tlmm_core::select::{select_kth, SelectConfig};
use tlmm_kmeans::{generate_blobs, kmeans_far, KMeansConfig};
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_tile::{gemm_far, GemmConfig, Matrix};
use tlmm_workloads::{generate, Workload};

fn params() -> ScratchpadParams {
    ScratchpadParams::new(64, 4.0, 16 << 20, 1 << 20).unwrap()
}

fn bench_kmeans_assign(c: &mut Criterion) {
    let n = 200_000;
    let pts = generate_blobs(n, 4, 8, 2.0, 1);
    let mut g = c.benchmark_group("kmeans_pass");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("lloyd_3_iters", |b| {
        b.iter(|| {
            let tl = TwoLevel::new(params());
            let arr = tl.far_from_vec(pts.clone());
            kmeans_far(
                &tl,
                &arr,
                &KMeansConfig {
                    k: 8,
                    dim: 4,
                    max_iters: 3,
                    tol: 0.0,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let n = 256usize;
    let mut g = c.benchmark_group("gemm_256");
    g.throughput(Throughput::Elements((n * n * n) as u64));
    g.sample_size(10);
    g.bench_function("blocked_far", |b| {
        b.iter(|| {
            let tl = TwoLevel::new(params());
            let a = Matrix::random(&tl, n, n, 1);
            let bm = Matrix::random(&tl, n, n, 2);
            gemm_far(&tl, &a, &bm, &GemmConfig::default())
        })
    });
    g.finish();
}

fn bench_quicksort_and_select(c: &mut Criterion) {
    let n = 500_000usize;
    let data = generate(Workload::UniformU64, n, 3);
    let mut g = c.benchmark_group("other_primitives");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("external_quicksort", |b| {
        b.iter(|| {
            let tl = TwoLevel::new(params());
            let mut v = data.clone();
            external_quicksort(&tl, RegionLevel::Near, &mut v, 8);
            v
        })
    });
    g.bench_function("select_median", |b| {
        b.iter(|| {
            let tl = TwoLevel::new(params());
            let input = tl.far_from_vec(data.clone());
            select_kth(&tl, &input, n / 2, &SelectConfig::default()).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_kmeans_assign,
    bench_gemm,
    bench_quicksort_and_select
);
criterion_main!(benches);
