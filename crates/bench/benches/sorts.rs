//! Native wall-clock benchmarks of the sorting implementations (T-LAT).
//!
//! These measure *host* speed of the instrumented algorithms — useful for
//! tracking implementation regressions; the paper's simulated times come
//! from the `table1`/`fig_*` harness binaries instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlmm_core::baseline::{baseline_sort, BaselineConfig};
use tlmm_core::nmsort::{nmsort, NmSortConfig};
use tlmm_core::seqsort::{seq_scratchpad_sort, SeqSortConfig};
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_workloads::{generate, Workload};

fn params() -> ScratchpadParams {
    ScratchpadParams::new(64, 4.0, 16 << 20, 1 << 20).unwrap()
}

fn bench_sorts(c: &mut Criterion) {
    let n = 1_000_000usize;
    let data = generate(Workload::UniformU64, n, 42);
    let mut g = c.benchmark_group("sort_1m_u64");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);

    g.bench_function("std_sort_unstable", |b| {
        b.iter(|| {
            let mut v = data.clone();
            v.sort_unstable();
            v
        })
    });

    g.bench_function("nmsort", |b| {
        b.iter(|| {
            let tl = TwoLevel::new(params());
            let input = tl.far_from_vec(data.clone());
            nmsort(&tl, input, &NmSortConfig::default()).unwrap()
        })
    });

    g.bench_function("baseline_multiway", |b| {
        b.iter(|| {
            let tl = TwoLevel::new(params());
            let input = tl.far_from_vec(data.clone());
            baseline_sort(&tl, input, &BaselineConfig::default()).unwrap()
        })
    });

    g.bench_function("seq_scratchpad_sort", |b| {
        b.iter(|| {
            let tl = TwoLevel::new(params());
            let input = tl.far_from_vec(data.clone());
            seq_scratchpad_sort(&tl, input, &SeqSortConfig::default()).unwrap()
        })
    });
    g.finish();
}

fn bench_workload_shapes(c: &mut Criterion) {
    let n = 500_000usize;
    let mut g = c.benchmark_group("nmsort_workloads");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    for (name, w) in [
        ("uniform", Workload::UniformU64),
        ("sorted", Workload::Sorted),
        ("reverse", Workload::Reverse),
        ("few_distinct", Workload::FewDistinct(16)),
        ("zipf", Workload::Zipf(1.1)),
    ] {
        let data = generate(w, n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            b.iter(|| {
                let tl = TwoLevel::new(params());
                let input = tl.far_from_vec(data.clone());
                nmsort(&tl, input, &NmSortConfig::default()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sorts, bench_workload_shapes);
criterion_main!(benches);
