//! Simulator engine throughput: analytic flow replay vs the discrete-event
//! engine at two request granularities, on an NMsort-shaped trace.

use criterion::{criterion_group, criterion_main, Criterion};
use tlmm_bench::run_nmsort;
use tlmm_memsim::des::{simulate_des, DesOptions};
use tlmm_memsim::{simulate_flow, MachineConfig};

fn bench_engines(c: &mut Criterion) {
    // One real NMsort run's trace, reused across engines.
    let run = run_nmsort(500_000, 64, 100_000, 1).expect("nmsort run");
    let m = MachineConfig::fig4(64, 4.0);
    let mut g = c.benchmark_group("trace_replay");
    g.sample_size(10);
    g.bench_function("flow", |b| b.iter(|| simulate_flow(&run.trace, &m)));
    g.bench_function("des_64B", |b| {
        b.iter(|| {
            simulate_des(
                &run.trace,
                &m,
                &DesOptions {
                    req_bytes: 64,
                    mlp: 4,
                },
            )
        })
    });
    g.bench_function("des_1KiB", |b| {
        b.iter(|| {
            simulate_des(
                &run.trace,
                &m,
                &DesOptions {
                    req_bytes: 1024,
                    mlp: 4,
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
