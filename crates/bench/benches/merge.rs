//! Microbenchmarks of the merging primitives: loser-tree k-way merge and
//! the sampled-splitter parallel merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlmm_core::losertree::merge_into_slice;
use tlmm_core::pmerge::parallel_merge;
use tlmm_workloads::{generate, Workload};

fn sorted_runs(k: usize, per: usize) -> Vec<Vec<u64>> {
    (0..k)
        .map(|i| {
            let mut v = generate(Workload::UniformU64, per, i as u64);
            v.sort_unstable();
            v
        })
        .collect()
}

fn bench_loser_tree(c: &mut Criterion) {
    let total = 1 << 20;
    let mut g = c.benchmark_group("loser_tree_merge");
    g.throughput(Throughput::Elements(total as u64));
    g.sample_size(10);
    for k in [2usize, 4, 16, 64, 256] {
        let runs = sorted_runs(k, total / k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &runs, |b, runs| {
            let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
            let mut out = vec![0u64; total];
            b.iter(|| merge_into_slice(&refs, &mut out))
        });
    }
    g.finish();
}

fn bench_parallel_merge(c: &mut Criterion) {
    let total = 1 << 21;
    let k = 16;
    let runs = sorted_runs(k, total / k);
    let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
    let mut g = c.benchmark_group("parallel_merge_2m_16way");
    g.throughput(Throughput::Elements(total as u64));
    g.sample_size(10);
    for ways in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(ways), &ways, |b, &ways| {
            let mut out = vec![0u64; total];
            b.iter(|| parallel_merge(&refs, &mut out, ways, 4))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_loser_tree, bench_parallel_merge);
criterion_main!(benches);
