//! Result-file plumbing shared by every experiment binary.
//!
//! Each binary renders its tables into a `String`, collects the run's
//! telemetry into a [`RunReport`], and calls [`emit`]: the text goes to
//! stdout (so interactive runs look unchanged) and both
//! `<results>/<name>.txt` and `<results>/<name>.json` are written. The
//! results directory is `TLMM_RESULTS_DIR` when set (the `all_experiments`
//! driver sets it) and `results/` otherwise.

use std::path::{Path, PathBuf};
use tlmm_telemetry::RunReport;

/// `writeln!` into a `String` buffer without the infallible-`Result`
/// boilerplate — the binaries build their rendered text with this.
#[macro_export]
macro_rules! outln {
    ($buf:expr) => {{
        use std::fmt::Write as _;
        let _ = writeln!($buf);
    }};
    ($buf:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($buf, $($arg)*);
    }};
}

/// Environment variable naming the directory artifact files go to.
pub const RESULTS_DIR_ENV: &str = "TLMM_RESULTS_DIR";

/// Directory artifact files are written to: `$TLMM_RESULTS_DIR` or
/// `results/`.
pub fn results_dir() -> PathBuf {
    match std::env::var(RESULTS_DIR_ENV) {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("results"),
    }
}

/// Short git commit hash of the working tree, or `"unknown"` outside a
/// repository. Recorded in every report so result files are traceable to
/// the code that produced them.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Paths written by one [`emit`] call.
pub struct Written {
    /// The rendered-text artifact.
    pub text: PathBuf,
    /// The machine-readable [`RunReport`].
    pub json: PathBuf,
}

fn write_file(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, contents)
}

/// Print `text` to stdout and persist both artifact files.
///
/// `report` should come from [`RunReport::collect`] after the experiment's
/// measured work, with the binary's parameters attached via
/// [`RunReport::meta`] and its simulator outputs via
/// [`RunReport::section`]; this function stamps the git commit on top.
pub fn emit(name: &str, text: &str, report: RunReport) -> std::io::Result<Written> {
    print!("{text}");
    if !text.ends_with('\n') {
        println!();
    }
    let report = report.meta("git_sha", git_sha());
    let dir = results_dir();
    let written = Written {
        text: dir.join(format!("{name}.txt")),
        json: dir.join(format!("{name}.json")),
    };
    write_file(&written.text, text)?;
    let json = report
        .to_json_pretty()
        .map_err(|e| std::io::Error::other(format!("serialize {name} report: {e}")))?;
    write_file(&written.json, &json)?;
    eprintln!(
        "[{name}] wrote {} and {}",
        written.text.display(),
        written.json.display()
    );
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn git_sha_is_nonempty() {
        assert!(!git_sha().is_empty());
    }

    #[test]
    fn results_dir_defaults() {
        // The env var may or may not be set in the test environment; the
        // default path is only asserted when it is absent.
        if std::env::var(RESULTS_DIR_ENV).is_err() {
            assert_eq!(results_dir(), PathBuf::from("results"));
        }
    }
}
