//! Shared experiment harness for the table/figure binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §4 for the index). This library holds the
//! common plumbing: the experiment-scale memory parameters, one
//! parameterized runner ([`run_sort`]) that executes a sort and hands back
//! its phase trace, ledger and size so the binaries can replay the same run
//! on many machine configurations, and the [`artifact`] module that writes
//! each binary's text and [`tlmm_telemetry::RunReport`] JSON under
//! `results/`.

use serde::{Deserialize, Serialize};
use tlmm_core::baseline::{baseline_sort, BaselineConfig};
use tlmm_core::nmsort::{nmsort, DegradationStats, NmSortConfig};
use tlmm_core::oblivious::{spms_sort, squaresort_sort, ObliviousConfig};
use tlmm_core::SortError;
use tlmm_model::{CostSnapshot, ScratchpadParams};
use tlmm_scratchpad::{ExecConfig, ExecMode, ExecReport, FaultPlan, PhaseTrace, TwoLevel};
use tlmm_workloads::{generate, Workload};

pub mod artifact;

/// Experiment-scale model parameters.
///
/// The paper's node has a multi-GB scratchpad that can hold "several copies
/// of an array of 10 million 64-bit integers" (§V-A); chunking is exercised
/// by bounding NMsort's chunk size rather than shrinking the array. `rho`
/// only affects *timing* (and the ledger's near-block units), never the
/// byte trace, so one run can be replayed on machines with different
/// scratchpad bandwidths.
pub fn experiment_params(rho: f64) -> ScratchpadParams {
    ScratchpadParams::new(64, rho, 256 << 20, 36 << 20).expect("valid experiment params")
}

/// Fault and degradation summary of one measured run, in the shape the
/// result-file JSON wants (attach with `RunReport::section("degradations",
/// …)` so fault-matrix artifacts are diffable, not just pass/fail).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunDegradations {
    /// Fault seed the run was driven by (0 when no plan was installed —
    /// the `Option` is flattened because a fired fault count of zero
    /// already distinguishes clean runs).
    pub fault_seed: u64,
    /// Injected (aborting) faults the runtime fired.
    pub faults_injected: u64,
    /// Injected retransmission delays the runtime fired.
    pub faults_delayed: u64,
    /// Fault events recorded in the phase trace (what memsim replays).
    pub trace_faults: u64,
    /// Phase-1 chunk-size halvings.
    pub chunk_shrinks: u64,
    /// Retried small near allocations.
    pub alloc_retries: u64,
    /// Re-staged Phase-1 transfers (aborted attempts charged in full).
    pub transfer_retries: u64,
    /// Transfers charged twice after an injected delay.
    pub transfer_delays: u64,
    /// Chunk-sorter staging streams re-read after stage faults.
    pub stage_restages: u64,
    /// Operations forced through with injection suppressed.
    pub forced_ops: u64,
    /// Phase-2 batches merged straight from DRAM.
    pub batch_fallbacks: u64,
    /// Oversized-bucket parts merged straight from DRAM.
    pub dram_direct_parts: u64,
    /// DMA-overlapped transfers demoted to blocking synchronous copies.
    pub dma_fallbacks: u64,
}

impl RunDegradations {
    fn from_parts(fault_seed: u64, tl: &TwoLevel, stats: DegradationStats, faults: u64) -> Self {
        let (injected, delayed) = match tl.fault_injector() {
            Some(inj) => (inj.injected(), inj.delayed()),
            None => (0, 0),
        };
        RunDegradations {
            fault_seed,
            faults_injected: injected,
            faults_delayed: delayed,
            trace_faults: faults,
            chunk_shrinks: stats.chunk_shrinks,
            alloc_retries: stats.alloc_retries,
            transfer_retries: stats.transfer_retries,
            transfer_delays: stats.transfer_delays,
            stage_restages: stats.stage_restages,
            forced_ops: stats.forced_ops,
            batch_fallbacks: stats.batch_fallbacks,
            dram_direct_parts: stats.dram_direct_parts,
            dma_fallbacks: stats.dma_fallbacks,
        }
    }

    /// Did the run degrade at all (fault fired or any ladder rung taken)?
    pub fn any(&self) -> bool {
        self.faults_injected
            + self.faults_delayed
            + self.trace_faults
            + self.chunk_shrinks
            + self.alloc_retries
            + self.transfer_retries
            + self.transfer_delays
            + self.stage_restages
            + self.forced_ops
            + self.batch_fallbacks
            + self.dram_direct_parts
            + self.dma_fallbacks
            > 0
    }
}

/// Outcome of one measured sort run.
pub struct SortRun {
    /// The recorded phase trace (replayable on any machine config).
    pub trace: PhaseTrace,
    /// Ledger totals in model units.
    pub ledger: CostSnapshot,
    /// Output is sorted (verified before returning).
    pub n: usize,
    /// Fault/degradation summary (all-zero for clean runs).
    pub degradations: RunDegradations,
    /// Transfer-slot arbitration report when an executor was installed
    /// (explicitly or via `TLMM_EXEC_SEED`); `None` otherwise.
    pub exec: Option<ExecReport>,
}

/// Errors surfaced by the harness runners.
#[derive(Debug)]
pub enum HarnessError {
    /// The sort itself failed.
    Sort(SortError),
    /// The output failed verification: `output[index] > output[index + 1]`.
    NotSorted {
        /// First out-of-order position.
        index: usize,
    },
}

impl From<SortError> for HarnessError {
    fn from(e: SortError) -> Self {
        HarnessError::Sort(e)
    }
}

impl core::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HarnessError::Sort(e) => write!(f, "sort failed: {e}"),
            HarnessError::NotSorted { index } => {
                write!(f, "harness: output not sorted at index {index}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

/// Verify `v` is non-decreasing; report the first violation instead of
/// panicking so binaries can surface the failure with context.
pub fn check_sorted(v: &[u64]) -> Result<(), HarnessError> {
    match v.windows(2).position(|w| w[0] > w[1]) {
        None => Ok(()),
        Some(index) => Err(HarnessError::NotSorted { index }),
    }
}

/// The engine registry [`run_sort`] dispatches over. The enum itself lives
/// in `tlmm-model` (the dependency root) so the service layer can share it;
/// re-exported here so every bench binary keeps its `tlmm_bench::Engine`
/// path.
pub use tlmm_model::Engine;

/// Former name of [`Engine`]; kept so existing call sites (and muscle
/// memory) keep compiling — type-alias enum variants are path-compatible.
pub type SortAlgo = Engine;

/// Parameters for one measured sort run.
#[derive(Debug, Clone, Copy)]
pub struct SortSpec {
    /// Algorithm variant.
    pub algo: SortAlgo,
    /// Elements to sort (random u64).
    pub n: usize,
    /// Virtual lanes (simulated cores).
    pub lanes: usize,
    /// Host worker threads for real fan-out (1 = inline). Never affects
    /// simulated charges — only wall clock. Forced to 1 under a
    /// deterministic executor, which owns the schedule.
    pub threads: usize,
    /// NMsort chunk bound in elements (ignored by the baseline).
    pub chunk_elems: Option<usize>,
    /// Workload seed.
    pub seed: u64,
    /// When set, install [`FaultPlan::seeded`] with this seed on the run's
    /// `TwoLevel` before sorting — the sort must still produce verified
    /// output by degrading gracefully.
    pub fault_seed: Option<u64>,
}

/// Run one sort per `spec` on a fresh experiment-scale [`TwoLevel`],
/// verify the output, and return the recorded trace and ledger.
///
/// This is the single runner behind [`run_nmsort`], [`run_nmsort_dma`] and
/// [`run_baseline`]; the setup (params, workload, verification, trace
/// harvest) lives only here.
pub fn run_sort(spec: &SortSpec) -> Result<SortRun, HarnessError> {
    // `TLMM_FAULT_SEED` turns any harness binary into a degraded run;
    // an explicit `fault_seed` on the spec wins over the environment.
    let plan = spec
        .fault_seed
        .map(FaultPlan::seeded)
        .or_else(FaultPlan::from_env);
    run_sort_with_plan(spec, plan)
}

/// Like [`run_sort`] but with an explicit [`FaultPlan`] instead of the
/// standard seeded profile — the `fault_matrix` binary sweeps targeted
/// profiles (alloc-only, transfer-only, DMA-only, …) through this.
/// `spec.fault_seed` is ignored; the plan's own seed is recorded.
///
/// `TLMM_EXEC_SEED` (+ `TLMM_EXEC_WORKERS`/`TLMM_EXEC_SLOTS`) turns the run
/// into a deterministic-executor run, exactly as the fault-seed variable
/// turns it into a degraded one.
pub fn run_sort_with_plan(
    spec: &SortSpec,
    plan: Option<FaultPlan>,
) -> Result<SortRun, HarnessError> {
    run_sort_full(spec, plan, ExecConfig::from_env(), experiment_params(4.0))
}

/// Like [`run_sort`] but under an explicit executor configuration — the
/// `fig_corescale` contention sweep drives `p × p′` cells through this.
pub fn run_sort_with_exec(
    spec: &SortSpec,
    exec: Option<ExecConfig>,
) -> Result<SortRun, HarnessError> {
    let plan = spec
        .fault_seed
        .map(FaultPlan::seeded)
        .or_else(FaultPlan::from_env);
    run_sort_full(spec, plan, exec, experiment_params(4.0))
}

/// Like [`run_sort`] but on an explicitly sized [`TwoLevel`] — the
/// `fig_crossover` sweep varies the near-memory size per cell through this
/// (every other runner pins the paper's experiment-scale parameters).
pub fn run_sort_on(spec: &SortSpec, params: ScratchpadParams) -> Result<SortRun, HarnessError> {
    let plan = spec
        .fault_seed
        .map(FaultPlan::seeded)
        .or_else(FaultPlan::from_env);
    run_sort_full(spec, plan, ExecConfig::from_env(), params)
}

fn run_sort_full(
    spec: &SortSpec,
    plan: Option<FaultPlan>,
    exec: Option<ExecConfig>,
    params: ScratchpadParams,
) -> Result<SortRun, HarnessError> {
    let tl = TwoLevel::new(params);
    // A deterministic executor owns the schedule: host threads racing the
    // virtual arbiter would make the recorded waits order-dependent, so
    // rayon is switched off and stage parallelism is the executor's.
    let deterministic_exec = exec
        .as_ref()
        .map(|c| c.mode == ExecMode::Deterministic)
        .unwrap_or(false);
    let executor = exec.map(|cfg| {
        tl.install_executor(cfg)
            .expect("harness executor config must validate")
    });
    let fault_seed = plan.as_ref().map(|p| p.seed).unwrap_or(0);
    if let Some(plan) = plan {
        tl.install_fault_plan(plan);
    }
    let input = tl.far_from_vec(generate(Workload::UniformU64, spec.n, spec.seed));
    let (output, stats) = match spec.algo {
        SortAlgo::NmSort | SortAlgo::NmSortDma => {
            let cfg = NmSortConfig {
                sim_lanes: spec.lanes,
                chunk_elems: spec.chunk_elems,
                threads: if deterministic_exec { 1 } else { spec.threads },
                use_dma: spec.algo == SortAlgo::NmSortDma,
                ..Default::default()
            };
            let report = nmsort(&tl, input, &cfg)?;
            (report.output, report.degradations)
        }
        SortAlgo::Baseline => {
            let cfg = BaselineConfig {
                sim_lanes: spec.lanes,
                threads: if deterministic_exec { 1 } else { spec.threads },
                ..Default::default()
            };
            // The baseline has no degradation ladder of its own; injector
            // counts below still record any faults it absorbed.
            (
                baseline_sort(&tl, input, &cfg)?.output,
                DegradationStats::default(),
            )
        }
        SortAlgo::Spms | SortAlgo::SquareSort => {
            // The oblivious engines take no chunk bound — their recursion
            // shape depends only on n. Fault resilience is re-streaming
            // (charged in full), not a ladder, so degradation stats stay
            // with the injector counts harvested below.
            let cfg = ObliviousConfig {
                lanes: spec.lanes,
                threads: if deterministic_exec { 1 } else { spec.threads },
                ..Default::default()
            };
            let (output, _report) = match spec.algo {
                SortAlgo::Spms => spms_sort(&tl, input, &cfg)?,
                _ => squaresort_sort(&tl, input, &cfg)?,
            };
            (output, DegradationStats::default())
        }
    };
    check_sorted(output.as_slice_uncharged())?;
    let trace = tl.take_trace();
    let degradations = RunDegradations::from_parts(fault_seed, &tl, stats, trace.faults());
    Ok(SortRun {
        trace,
        ledger: tl.ledger().snapshot(),
        n: spec.n,
        degradations,
        exec: executor.map(|ex| ex.report()),
    })
}

/// Run NMsort on `n` random u64s with `lanes` virtual lanes; chunks are
/// bounded to `chunk_elems` to exercise the two-phase structure.
pub fn run_nmsort(
    n: usize,
    lanes: usize,
    chunk_elems: usize,
    seed: u64,
) -> Result<SortRun, HarnessError> {
    run_sort(&SortSpec {
        threads: 1,
        algo: SortAlgo::NmSort,
        n,
        lanes,
        chunk_elems: Some(chunk_elems),
        seed,
        fault_seed: None,
    })
}

/// Run NMsort with DMA-overlapped ingest (the §VII improvement).
pub fn run_nmsort_dma(
    n: usize,
    lanes: usize,
    chunk_elems: usize,
    seed: u64,
) -> Result<SortRun, HarnessError> {
    run_sort(&SortSpec {
        threads: 1,
        algo: SortAlgo::NmSortDma,
        n,
        lanes,
        chunk_elems: Some(chunk_elems),
        seed,
        fault_seed: None,
    })
}

/// Run the GNU-style far-memory baseline.
pub fn run_baseline(n: usize, lanes: usize, seed: u64) -> Result<SortRun, HarnessError> {
    run_sort(&SortSpec {
        threads: 1,
        algo: SortAlgo::Baseline,
        n,
        lanes,
        chunk_elems: None,
        seed,
        fault_seed: None,
    })
}

/// The Table-I scale: 10 M random 64-bit integers on a 256-core node, with
/// NMsort chunks of 2 M elements (the scratchpad holds several copies of
/// the array; bounding the chunk exercises Phase 2's batched merges).
pub const TABLE1_N: usize = 10_000_000;
/// Simulated cores for the headline experiments.
pub const TABLE1_LANES: usize = 256;
/// NMsort chunk bound for the headline experiments.
pub const TABLE1_CHUNK: usize = 2_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_small() {
        let nm = run_nmsort(100_000, 16, 20_000, 1).expect("nmsort run");
        assert!(nm.trace.phases.len() > 4);
        assert!(nm.ledger.near_blocks() > 0);
        let base = run_baseline(100_000, 16, 1).expect("baseline run");
        assert_eq!(base.ledger.near_blocks(), 0);
        // At toy scale the baseline's runs fit its per-lane cache share, so
        // its far traffic is the 4-pass minimum — NMsort's should be close
        // (the Table-I gap appears at paper scale; see tests/end_to_end.rs).
        assert!(nm.ledger.far_bytes < 2 * base.ledger.far_bytes);
    }

    #[test]
    fn engine_registry_round_trips() {
        for e in Engine::ALL {
            assert_eq!(Engine::parse(e.name()), Some(e));
        }
        assert_eq!(Engine::parse("quantum"), None);
        assert!(Engine::NmSort.uses_chunks() && !Engine::Spms.uses_chunks());
        assert!(Engine::Spms.is_oblivious() && !Engine::Baseline.is_oblivious());
    }

    #[test]
    fn oblivious_engines_route_through_the_harness() {
        for algo in [Engine::Spms, Engine::SquareSort] {
            let spec = SortSpec {
                threads: 1,
                algo,
                n: 50_000,
                lanes: 8,
                chunk_elems: None,
                seed: 2,
                fault_seed: None,
            };
            let run = run_sort(&spec).expect("oblivious run");
            assert!(run.ledger.far_bytes >= 2 * 50_000 * 8, "{algo:?}");
            assert!(run.trace.phases.iter().any(|p| p.name.contains("sort")));
            // Same spec under a fault plan still sorts, never cheaper.
            let faulted = run_sort(&SortSpec {
                threads: 1,
                fault_seed: Some(5),
                ..spec
            })
            .expect("faulted oblivious run degrades, not fails");
            assert!(faulted.ledger.far_bytes >= run.ledger.far_bytes, "{algo:?}");
        }
    }

    #[test]
    fn check_sorted_reports_first_violation() {
        assert!(check_sorted(&[]).is_ok());
        assert!(check_sorted(&[1, 2, 2, 3]).is_ok());
        match check_sorted(&[1, 3, 2, 0]) {
            Err(HarnessError::NotSorted { index: 1 }) => {}
            other => panic!("expected NotSorted at 1, got {other:?}"),
        }
    }

    #[test]
    fn dma_spec_routes_through_same_runner() {
        let dma = run_nmsort_dma(50_000, 8, 10_000, 2).expect("dma run");
        assert!(dma.trace.phases.iter().any(|p| p.overlappable));
    }

    #[test]
    fn exec_spec_arbitrates_without_changing_charges() {
        let spec = SortSpec {
            threads: 1,
            algo: SortAlgo::NmSort,
            n: 60_000,
            lanes: 8,
            chunk_elems: Some(15_000),
            seed: 5,
            fault_seed: None,
        };
        let free =
            run_sort_with_exec(&spec, Some(ExecConfig::deterministic(8, 8, 3))).expect("p'=p run");
        let starved =
            run_sort_with_exec(&spec, Some(ExecConfig::deterministic(8, 1, 3))).expect("p'=1 run");
        let free_r = free.exec.as_ref().expect("executor report");
        let starved_r = starved.exec.as_ref().expect("executor report");
        // Private slots never wait; one slot under eight lanes must.
        assert_eq!(free_r.total_wait_units, 0);
        assert!(starved_r.total_wait_units > 0);
        // Same demand either way, and arbitration never changes the ledger.
        assert_eq!(free_r.total_bytes, starved_r.total_bytes);
        assert_eq!(free.ledger, starved.ledger);
        // Serialized transfers cannot beat the per-slot rate.
        assert!(starved_r.throughput_units() <= 1.0 + 1e-9);
    }

    #[test]
    fn faulted_spec_sorts_and_surfaces_degradations() {
        let spec = SortSpec {
            threads: 1,
            algo: SortAlgo::NmSort,
            n: 100_000,
            lanes: 8,
            chunk_elems: Some(20_000),
            seed: 3,
            fault_seed: Some(7),
        };
        // run_sort already verified the output; a degraded run must still
        // return Ok. The summary must be serializable (it feeds the
        // results/<name>.json section) and carry the seed.
        let run = run_sort(&spec).expect("faulted run degrades, not fails");
        assert_eq!(run.degradations.fault_seed, 7);
        let json = serde::json::to_string(&run.degradations).expect("summary serializes");
        assert!(json.contains("\"fault_seed\""));
        let clean = run_sort(&SortSpec {
            threads: 1,
            fault_seed: None,
            ..spec
        })
        .expect("clean run");
        assert_eq!(clean.degradations.fault_seed, 0);
        assert_eq!(clean.degradations.faults_injected, 0);
        // Honest accounting: injected faults never make the run cheaper.
        assert!(run.ledger.far_bytes >= clean.ledger.far_bytes);
    }
}
