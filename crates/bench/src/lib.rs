//! Shared experiment harness for the table/figure binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §4 for the index). This library holds the
//! common plumbing: the experiment-scale memory parameters, and runners
//! that execute a sort once and hand back its phase trace, ledger and
//! report so the binaries can replay the same run on many machine
//! configurations.

use tlmm_core::baseline::{baseline_sort, BaselineConfig};
use tlmm_core::nmsort::{nmsort, NmSortConfig};
use tlmm_model::{CostSnapshot, ScratchpadParams};
use tlmm_scratchpad::{PhaseTrace, TwoLevel};
use tlmm_workloads::{generate, Workload};

/// Experiment-scale model parameters.
///
/// The paper's node has a multi-GB scratchpad that can hold "several copies
/// of an array of 10 million 64-bit integers" (§V-A); chunking is exercised
/// by bounding NMsort's chunk size rather than shrinking the array. `rho`
/// only affects *timing* (and the ledger's near-block units), never the
/// byte trace, so one run can be replayed on machines with different
/// scratchpad bandwidths.
pub fn experiment_params(rho: f64) -> ScratchpadParams {
    ScratchpadParams::new(64, rho, 256 << 20, 36 << 20).expect("valid experiment params")
}

/// Outcome of one measured sort run.
pub struct SortRun {
    /// The recorded phase trace (replayable on any machine config).
    pub trace: PhaseTrace,
    /// Ledger totals in model units.
    pub ledger: CostSnapshot,
    /// Output is sorted (verified before returning).
    pub n: usize,
}

fn assert_sorted(v: &[u64]) {
    assert!(
        v.windows(2).all(|w| w[0] <= w[1]),
        "harness: output not sorted"
    );
}

/// Run NMsort on `n` random u64s with `lanes` virtual lanes; chunks are
/// bounded to `chunk_elems` to exercise the two-phase structure.
pub fn run_nmsort(n: usize, lanes: usize, chunk_elems: usize, seed: u64) -> SortRun {
    let tl = TwoLevel::new(experiment_params(4.0));
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, seed));
    let cfg = NmSortConfig {
        sim_lanes: lanes,
        chunk_elems: Some(chunk_elems),
        parallel: true,
        ..Default::default()
    };
    let report = nmsort(&tl, input, &cfg).expect("nmsort");
    assert_sorted(report.output.as_slice_uncharged());
    SortRun {
        trace: tl.take_trace(),
        ledger: tl.ledger().snapshot(),
        n,
    }
}

/// Run NMsort with DMA-overlapped ingest (the §VII improvement).
pub fn run_nmsort_dma(n: usize, lanes: usize, chunk_elems: usize, seed: u64) -> SortRun {
    let tl = TwoLevel::new(experiment_params(4.0));
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, seed));
    let cfg = NmSortConfig {
        sim_lanes: lanes,
        chunk_elems: Some(chunk_elems),
        parallel: true,
        use_dma: true,
        ..Default::default()
    };
    let report = nmsort(&tl, input, &cfg).expect("nmsort dma");
    assert_sorted(report.output.as_slice_uncharged());
    SortRun {
        trace: tl.take_trace(),
        ledger: tl.ledger().snapshot(),
        n,
    }
}

/// Run the GNU-style far-memory baseline.
pub fn run_baseline(n: usize, lanes: usize, seed: u64) -> SortRun {
    let tl = TwoLevel::new(experiment_params(4.0));
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, seed));
    let cfg = BaselineConfig {
        sim_lanes: lanes,
        parallel: true,
        ..Default::default()
    };
    let report = baseline_sort(&tl, input, &cfg).expect("baseline");
    assert_sorted(report.output.as_slice_uncharged());
    SortRun {
        trace: tl.take_trace(),
        ledger: tl.ledger().snapshot(),
        n,
    }
}

/// The Table-I scale: 10 M random 64-bit integers on a 256-core node, with
/// NMsort chunks of 2 M elements (the scratchpad holds several copies of
/// the array; bounding the chunk exercises Phase 2's batched merges).
pub const TABLE1_N: usize = 10_000_000;
/// Simulated cores for the headline experiments.
pub const TABLE1_LANES: usize = 256;
/// NMsort chunk bound for the headline experiments.
pub const TABLE1_CHUNK: usize = 2_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_small() {
        let nm = run_nmsort(100_000, 16, 20_000, 1);
        assert!(nm.trace.phases.len() > 4);
        assert!(nm.ledger.near_blocks() > 0);
        let base = run_baseline(100_000, 16, 1);
        assert_eq!(base.ledger.near_blocks(), 0);
        // At toy scale the baseline's runs fit its per-lane cache share, so
        // its far traffic is the 4-pass minimum — NMsort's should be close
        // (the Table-I gap appears at paper scale; see tests/end_to_end.rs).
        assert!(nm.ledger.far_bytes < 2 * base.ledger.far_bytes);
    }
}
