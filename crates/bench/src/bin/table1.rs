//! **Table I** — SST simulation results for various scratchpad near-memory
//! bandwidths.
//!
//! Reproduces the paper's headline table: GNU parallel multiway mergesort
//! vs NMsort at 2×/4×/8× scratchpad bandwidth on the Fig. 4 256-core node,
//! reporting simulated time and scratchpad/DRAM access counts.
//!
//! Writes `results/table1.txt` (rendered table) and `results/table1.json`
//! (telemetry [`tlmm_telemetry::RunReport`]: wall-clock span tree, counters,
//! histograms, and the simulator outputs as sections).
//!
//! Run: `cargo run --release -p tlmm-bench --bin table1`

use tlmm_analysis::compare_runs;
use tlmm_analysis::table::{count, ratio, secs, Table};
use tlmm_bench::{artifact, outln, run_baseline, run_nmsort, TABLE1_CHUNK, TABLE1_LANES, TABLE1_N};
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_telemetry::RunReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(TABLE1_N);
    let chunk = TABLE1_CHUNK.min(n / 4 + 1);
    eprintln!("[table1] sorting {n} random u64 with {TABLE1_LANES} simulated cores...");

    let base = run_baseline(n, TABLE1_LANES, 0xB0)?;
    let nm = run_nmsort(n, TABLE1_LANES, chunk, 0xB0)?;

    let rhos = [2.0, 4.0, 8.0];
    let base_sim = simulate_flow(&base.trace, &MachineConfig::fig4(256, 2.0));
    let nm_sims: Vec<_> = rhos
        .iter()
        .map(|&r| simulate_flow(&nm.trace, &MachineConfig::fig4(256, r)))
        .collect();

    let mut t = Table::new(["", "GNU Sort", "NMsort (2X)", "NMsort (4X)", "NMsort (8X)"]);
    t.row(vec![
        "Sim Time (s)".to_string(),
        secs(base_sim.seconds),
        secs(nm_sims[0].seconds),
        secs(nm_sims[1].seconds),
        secs(nm_sims[2].seconds),
    ]);
    t.row(vec![
        "Scratchpad Accesses".to_string(),
        count(base_sim.near_accesses),
        count(nm_sims[0].near_accesses),
        count(nm_sims[1].near_accesses),
        count(nm_sims[2].near_accesses),
    ]);
    t.row(vec![
        "DRAM Accesses".to_string(),
        count(base_sim.far_accesses),
        count(nm_sims[0].far_accesses),
        count(nm_sims[1].far_accesses),
        count(nm_sims[2].far_accesses),
    ]);
    let mut out = String::new();
    outln!(
        out,
        "\nTable I — simulated results, {n} random 64-bit integers, 256 cores\n"
    );
    outln!(out, "{}", t.render());

    outln!(out, "derived quantities (paper's prose claims):");
    let mut d = Table::new(["rho", "speedup", "advantage", "DRAM ratio", "near/far"]);
    for (i, &r) in rhos.iter().enumerate() {
        let c = compare_runs(&base_sim, &nm_sims[i]);
        d.row(vec![
            format!("{r}x"),
            ratio(c.speedup),
            format!("{:.1}%", c.advantage * 100.0),
            ratio(c.far_access_ratio),
            ratio(c.near_per_far),
        ]);
    }
    outln!(out, "{}", d.render());
    outln!(
        out,
        "expected shapes: advantage grows with rho (paper: >25% at 8x); \
         GNU does ~2x the DRAM accesses; GNU scratchpad accesses = 0."
    );

    let report = RunReport::collect("table1")
        .meta("n", n)
        .meta("lanes", TABLE1_LANES)
        .meta("chunk_elems", chunk)
        .section("baseline_ledger", &base.ledger)
        .section("nmsort_ledger", &nm.ledger)
        .section("nmsort_degradations", &nm.degradations)
        .section("baseline_sim_2x", &base_sim)
        .section("nmsort_sim_2x", &nm_sims[0])
        .section("nmsort_sim_4x", &nm_sims[1])
        .section("nmsort_sim_8x", &nm_sims[2]);
    artifact::emit("table1", &out, report)?;
    Ok(())
}
