//! **F-MODEL** — measured block transfers vs Theorem 6 predictions.
//!
//! "Memory access counts from simulations corroborate predicted
//! performance" (abstract). Here the ledger's exact far/near block counts
//! are compared against the Theorem 6 closed forms over an `N` × `ρ`
//! sweep; the hidden Θ-constants should stay flat if the implementation
//! has the predicted asymptotics.
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_model_validation`

use tlmm_analysis::table::{count, Table};
use tlmm_analysis::validation::{constants_stable, ValidationRow};
use tlmm_bench::{artifact, check_sorted, outln};
use tlmm_core::nmsort::{nmsort, NmSortConfig};
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_telemetry::RunReport;
use tlmm_workloads::{generate, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A smaller scratchpad (4 MiB) so every N in the sweep is multi-chunk.
    let mut rows = Vec::new();
    let mut t = Table::new([
        "N",
        "rho",
        "far meas",
        "far pred",
        "c_far",
        "near meas",
        "near pred",
        "c_near",
    ]);
    for &rho in &[2.0, 4.0, 8.0] {
        for &n in &[500_000usize, 1_000_000, 2_000_000, 4_000_000] {
            let params = ScratchpadParams::new(64, rho, 4 << 20, 256 << 10).unwrap();
            let tl = TwoLevel::new(params);
            let input = tl.far_from_vec(generate(Workload::UniformU64, n, n as u64));
            let cfg = NmSortConfig {
                sim_lanes: 16,
                ..Default::default()
            };
            let report = nmsort(&tl, input, &cfg)?;
            check_sorted(report.output.as_slice_uncharged())?;
            let s = tl.ledger().snapshot();
            let row = ValidationRow::new(&params, n as u64, 8, &s);
            t.row(vec![
                count(n as u64),
                format!("{rho}"),
                count(row.measured_far),
                format!("{:.0}", row.predicted_far),
                format!("{:.2}", row.far_constant()),
                count(row.measured_near),
                format!("{:.0}", row.predicted_near),
                format!("{:.2}", row.near_constant()),
            ]);
            rows.push(row);
        }
    }
    let mut out = String::new();
    outln!(
        out,
        "\nF-MODEL — ledger block counts vs Theorem 6 (NMsort, M=4MiB, Z=256KiB)\n"
    );
    outln!(out, "{}", t.render());
    let stable = constants_stable(&rows, 4.0);
    outln!(
        out,
        "hidden-constant stability across the sweep (max/min <= 4): {}",
        if stable { "PASS" } else { "FAIL" }
    );
    outln!(
        out,
        "expected shape: c_far and c_near drift slowly (log factors), \
         far below any polynomial divergence."
    );

    let far_constants: Vec<f64> = rows.iter().map(|r| r.far_constant()).collect();
    let near_constants: Vec<f64> = rows.iter().map(|r| r.near_constant()).collect();
    let report = RunReport::collect("fig_model_validation")
        .meta("stable", stable)
        .section("far_constants", &far_constants)
        .section("near_constants", &near_constants);
    artifact::emit("fig_model_validation", &out, report)?;
    Ok(())
}
