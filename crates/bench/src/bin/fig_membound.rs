//! **F-BOUND** — the §V-A memory-bandwidth-bound frontier.
//!
//! Prints the pressure grid `x / (y·log Z)` over core counts and DRAM
//! bandwidth scalings, plus the crossover core count for the Fig. 4 node
//! ("we observe that sorting is memory bound if the number of cores is 256
//! and not memory bound when that number is reduced to 128").
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_membound`

use tlmm_analysis::frontier::{fig4_crossover_cores, frontier_for_cores};
use tlmm_analysis::table::Table;

fn main() {
    let cores = [16u32, 32, 64, 128, 192, 256, 384, 512, 1024];
    let scales = [0.5, 1.0, 2.0, 4.0, 8.0];

    let mut t = Table::new(
        std::iter::once("cores \\ bw".to_string())
            .chain(scales.iter().map(|s| format!("{s}x DRAM"))),
    );
    for &c in &cores {
        let mut row = vec![c.to_string()];
        for &s in &scales {
            let p = frontier_for_cores(&[c], s, 8)[0];
            row.push(format!(
                "{:.2}{}",
                p.pressure,
                if p.memory_bound() { "*" } else { " " }
            ));
        }
        t.row(row);
    }
    println!("\nF-BOUND — memory pressure x/(y·log Z); '*' = memory-bandwidth bound\n");
    println!("{}", t.render());
    match fig4_crossover_cores(8) {
        Some(c) => println!(
            "Fig. 4 node crossover: sorting becomes memory-bound at {c} cores \
             (paper: between 128 and 256)."
        ),
        None => println!("no crossover below u32::MAX cores"),
    }
}
