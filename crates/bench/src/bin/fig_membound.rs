//! **F-BOUND** — the §V-A memory-bandwidth-bound frontier.
//!
//! Prints the pressure grid `x / (y·log Z)` over core counts and DRAM
//! bandwidth scalings, plus the crossover core count for the Fig. 4 node
//! ("we observe that sorting is memory bound if the number of cores is 256
//! and not memory bound when that number is reduced to 128").
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_membound`

use tlmm_analysis::frontier::{fig4_crossover_cores, frontier_for_cores};
use tlmm_analysis::table::Table;
use tlmm_bench::{artifact, outln};
use tlmm_telemetry::RunReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = [16u32, 32, 64, 128, 192, 256, 384, 512, 1024];
    let scales = [0.5, 1.0, 2.0, 4.0, 8.0];

    let mut t = Table::new(
        std::iter::once("cores \\ bw".to_string())
            .chain(scales.iter().map(|s| format!("{s}x DRAM"))),
    );
    let mut pressures = Vec::new();
    for &c in &cores {
        let mut row = vec![c.to_string()];
        for &s in &scales {
            let p = frontier_for_cores(&[c], s, 8)[0];
            row.push(format!(
                "{:.2}{}",
                p.pressure,
                if p.memory_bound() { "*" } else { " " }
            ));
            pressures.push(p.pressure);
        }
        t.row(row);
    }
    let mut out = String::new();
    outln!(
        out,
        "\nF-BOUND — memory pressure x/(y·log Z); '*' = memory-bandwidth bound\n"
    );
    outln!(out, "{}", t.render());
    let crossover = fig4_crossover_cores(8);
    match crossover {
        Some(c) => outln!(
            out,
            "Fig. 4 node crossover: sorting becomes memory-bound at {c} cores \
             (paper: between 128 and 256)."
        ),
        None => outln!(out, "no crossover below u32::MAX cores"),
    }

    let report = RunReport::collect("fig_membound")
        .section("pressure_grid", &pressures)
        .section("crossover_cores", &crossover);
    artifact::emit("fig_membound", &out, report)?;
    Ok(())
}
