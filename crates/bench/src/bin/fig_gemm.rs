//! **F-GEMM** — tiled matrix multiply: the data-reuse kernel (§VII "what
//! other kinds of algorithms...").
//!
//! GEMM re-reads B once per tile-row of A, so staging B in the scratchpad
//! converts Θ(n³/t) far traffic into one far pass plus rho-accelerated
//! near traffic. With a healthy per-core cache the kernel is compute-bound
//! (t/8 multiply-adds per byte) and the scratchpad cannot help — so the
//! sweep also shrinks the blocking tile, modelling the cache-starved
//! many-core regime where GEMM joins sorting on the bandwidth-bound side
//! of the §V-A frontier.
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_gemm`

use tlmm_analysis::table::{count, ratio, secs, Table};
use tlmm_bench::{artifact, outln};
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_telemetry::RunReport;
use tlmm_tile::{gemm_far, gemm_near, GemmConfig, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 768usize; // square matrices, 4.5 MB each
    let mut out = String::new();
    outln!(
        out,
        "\nF-GEMM — {n}x{n} f64 GEMM, B staged in the scratchpad (256 cores)\n"
    );
    let mut t = Table::new([
        "tile",
        "rho",
        "DRAM GEMM (s)",
        "scratchpad GEMM (s)",
        "speedup",
        "far acc (DRAM)",
        "far acc (scratch)",
    ]);
    let mut speedups = Vec::new();
    for tile in [32usize, 16, 8] {
        for rho in [2.0, 4.0, 8.0] {
            let params = ScratchpadParams::new(64, rho, 64 << 20, 2 << 20).unwrap();
            let machine = MachineConfig::fig4(256, rho);
            let cfg = GemmConfig {
                sim_lanes: 256,
                tile: Some(tile),
                ..Default::default()
            };

            let tl = TwoLevel::new(params);
            let a = Matrix::random(&tl, n, n, 1);
            let b = Matrix::random(&tl, n, n, 2);
            let cf = gemm_far(&tl, &a, &b, &cfg);
            let sim_far = simulate_flow(&tl.take_trace(), &machine);

            let tl = TwoLevel::new(params);
            let a = Matrix::random(&tl, n, n, 1);
            let b = Matrix::random(&tl, n, n, 2);
            let cn = gemm_near(&tl, &a, &b, &cfg).expect("B fits the scratchpad");
            assert_eq!(
                cf.data.as_slice_uncharged(),
                cn.data.as_slice_uncharged(),
                "variants must agree"
            );
            let sim_near = simulate_flow(&tl.take_trace(), &machine);

            t.row(vec![
                tile.to_string(),
                format!("{rho}"),
                secs(sim_far.seconds),
                secs(sim_near.seconds),
                ratio(sim_far.seconds / sim_near.seconds),
                count(sim_far.far_accesses),
                count(sim_near.far_accesses),
            ]);
            speedups.push(sim_far.seconds / sim_near.seconds);
        }
    }
    outln!(out, "{}", t.render());
    outln!(
        out,
        "expected shape: far accesses collapse toward ~3 matrix passes; the \
         speedup appears once the tile (= effective per-core cache) is small \
         enough that t/8 ops/byte falls below the node's compute/bandwidth \
         ratio, and then grows with rho — GEMM crosses the same frontier \
         sorting does."
    );

    let report = RunReport::collect("fig_gemm")
        .meta("n", n)
        .meta("lanes", 256)
        .section("speedup_by_tile_rho", &speedups);
    artifact::emit("fig_gemm", &out, report)?;
    Ok(())
}
