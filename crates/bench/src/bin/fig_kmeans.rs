//! **F-KMEANS** — scratchpad k-means speedup (§VII).
//!
//! "All our k-means algorithms run a factor of ρ faster using scratchpad
//! for many sizes of data and k." Both variants run the same Lloyd's
//! iterations; the near variant streams resident points at scratchpad
//! bandwidth, so in the bandwidth-bound regime the per-iteration speedup
//! approaches ρ. The one-off seeding/staging passes dilute the end-to-end
//! number, so both are reported.
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_kmeans`

use tlmm_analysis::table::{ratio, secs, Table};
use tlmm_bench::{artifact, outln};
use tlmm_kmeans::{generate_blobs, kmeans_far, kmeans_near, KMeansConfig};
use tlmm_memsim::{simulate_flow, MachineConfig, SimReport};
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_telemetry::RunReport;

fn iter_seconds(sim: &SimReport) -> f64 {
    sim.phase_summary()
        .into_iter()
        .filter(|(n, _)| n == "kmeans.iter")
        .map(|(_, s)| s)
        .sum()
}

struct Row {
    far_total: f64,
    near_total: f64,
    far_iter: f64,
    near_iter: f64,
    iters: u32,
}

fn run(n: usize, d: usize, k: usize, rho: f64) -> Row {
    let params = ScratchpadParams::new(64, rho, 256 << 20, 36 << 20).unwrap();
    let pts = generate_blobs(n, d, k, 40.0, 7);
    let cfg = KMeansConfig {
        k,
        dim: d,
        max_iters: 15,
        tol: 0.0,
        sim_lanes: 256,
        ..Default::default()
    };
    let machine = MachineConfig::fig4(256, rho);

    let tl = TwoLevel::new(params);
    let arr = tl.far_from_vec(pts.clone());
    let rf = kmeans_far(&tl, &arr, &cfg);
    let far_sim = simulate_flow(&tl.take_trace(), &machine);

    let tl = TwoLevel::new(params);
    let arr = tl.far_from_vec(pts);
    let rn = kmeans_near(&tl, &arr, &cfg).expect("kmeans_near");
    assert_eq!(rf.assignments, rn.assignments, "variants must agree");
    let near_sim = simulate_flow(&tl.take_trace(), &machine);

    Row {
        far_total: far_sim.seconds,
        near_total: near_sim.seconds,
        far_iter: iter_seconds(&far_sim),
        near_iter: iter_seconds(&near_sim),
        iters: rf.iterations,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out = String::new();
    outln!(
        out,
        "\nF-KMEANS — DRAM-streaming vs scratchpad k-means (256 cores)\n"
    );
    let mut t = Table::new([
        "n",
        "d",
        "k",
        "rho",
        "DRAM (s)",
        "scratch (s)",
        "iter speedup",
        "total speedup",
        "iters",
    ]);
    let mut iter_speedups = Vec::new();
    for &(n, d, k) in &[
        (2_000_000usize, 4usize, 8usize),
        (1_000_000, 8, 16),
        (4_000_000, 2, 4),
    ] {
        for &rho in &[2.0, 4.0, 8.0] {
            let r = run(n, d, k, rho);
            t.row(vec![
                n.to_string(),
                d.to_string(),
                k.to_string(),
                format!("{rho}"),
                secs(r.far_total),
                secs(r.near_total),
                ratio(r.far_iter / r.near_iter),
                ratio(r.far_total / r.near_total),
                r.iters.to_string(),
            ]);
            iter_speedups.push(r.far_iter / r.near_iter);
        }
    }
    outln!(out, "{}", t.render());
    outln!(
        out,
        "expected shape: iteration speedup approaches rho while iterations \
         are bandwidth-bound (paper: 'a factor of rho faster')."
    );

    let report = RunReport::collect("fig_kmeans")
        .meta("lanes", 256)
        .section("iter_speedups", &iter_speedups);
    artifact::emit("fig_kmeans", &out, report)?;
    Ok(())
}
