//! Run the whole evaluation suite and write each artifact's output under
//! `results/` — the one-command reproduction of EXPERIMENTS.md.
//!
//! Each child binary writes its own `<name>.txt` and `<name>.json` (this
//! driver points them at the output directory via `TLMM_RESULTS_DIR`);
//! afterwards a `manifest.json` maps every artifact to its files, runtime
//! and exit status, stamped with the git commit.
//!
//! Run: `cargo run --release -p tlmm-bench --bin all_experiments [out_dir]`

use serde::Serialize;
use std::process::Command;
use tlmm_bench::artifact;

/// `(binary, artifact stem)` — most binaries name their artifact after
/// themselves; the soak bench writes `soak.*` (and runs `--smoke` here so
/// the full-length soak stays a nightly job).
const BINS: &[(&str, &str)] = &[
    ("table1", "table1"),
    ("fig_bandwidth", "fig_bandwidth"),
    ("fig_corescale", "fig_corescale"),
    ("fig_model_validation", "fig_model_validation"),
    ("fig_membound", "fig_membound"),
    ("fig_overhead", "fig_overhead"),
    ("fig_kmeans", "fig_kmeans"),
    ("fig_parallel", "fig_parallel"),
    ("fig_energy", "fig_energy"),
    ("fig_gemm", "fig_gemm"),
    ("fig_crossover", "fig_crossover"),
    ("ablation", "ablation"),
    ("telemetry_overhead", "telemetry_overhead"),
    ("tlmm_profile", "tlmm_profile"),
    ("soak_bench", "soak"),
];

#[derive(Serialize)]
struct ManifestEntry {
    artifact: String,
    ok: bool,
    seconds: f64,
    files: Vec<String>,
}

/// A Perfetto trace artifact: unlike the txt/json pairs these are loaded
/// into external tooling, so each records the binary that produced it and
/// the commit it was produced at (schema v2).
#[derive(Serialize)]
struct TraceArtifact {
    file: String,
    produced_by: String,
    git_sha: String,
}

#[derive(Serialize)]
struct Manifest {
    schema_version: u32,
    git_sha: String,
    out_dir: String,
    entries: Vec<ManifestEntry>,
    traces: Vec<TraceArtifact>,
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let git_sha = artifact::git_sha();
    let mut entries = Vec::new();
    let mut traces = Vec::new();
    let mut failures = 0;
    for &(bin, stem) in BINS {
        let path = exe_dir.join(bin);
        eprint!("[all_experiments] {bin} ... ");
        let started = std::time::Instant::now();
        let mut cmd = Command::new(&path);
        cmd.env(artifact::RESULTS_DIR_ENV, &out_dir);
        if bin == "soak_bench" {
            cmd.arg("--smoke");
        }
        let output = cmd.output();
        let seconds = started.elapsed().as_secs_f64();
        let ok = match &output {
            Ok(o) if o.status.success() => {
                eprintln!("ok ({seconds:.1}s)");
                true
            }
            Ok(o) => {
                failures += 1;
                eprintln!("FAILED (status {:?})", o.status.code());
                eprintln!("{}", String::from_utf8_lossy(&o.stderr));
                false
            }
            Err(e) => {
                failures += 1;
                eprintln!(
                    "could not launch {path:?}: {e}. Build all binaries first: \
                     `cargo build --release -p tlmm-bench --bins`"
                );
                false
            }
        };
        // Record whichever artifact files the child actually produced.
        let files: Vec<String> = ["txt", "json", "jsonl", "trace.json"]
            .iter()
            .map(|ext| format!("{stem}.{ext}"))
            .filter(|f| std::path::Path::new(&out_dir).join(f).exists())
            .collect();
        for f in files.iter().filter(|f| f.ends_with(".trace.json")) {
            traces.push(TraceArtifact {
                file: f.clone(),
                produced_by: bin.to_string(),
                git_sha: git_sha.clone(),
            });
        }
        entries.push(ManifestEntry {
            artifact: stem.to_string(),
            ok,
            seconds,
            files,
        });
    }

    let manifest = Manifest {
        schema_version: 2,
        git_sha,
        out_dir: out_dir.clone(),
        entries,
        traces,
    };
    let manifest_path = format!("{out_dir}/manifest.json");
    let json = serde::json::to_string_pretty(&manifest).expect("serialize manifest");
    std::fs::write(&manifest_path, json).expect("write manifest");
    eprintln!("[all_experiments] manifest -> {manifest_path}");

    if failures > 0 {
        eprintln!("[all_experiments] {failures} experiment(s) failed");
        std::process::exit(1);
    }
    eprintln!("[all_experiments] all artifacts written to {out_dir}/");
}
