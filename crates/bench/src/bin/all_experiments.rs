//! Run the whole evaluation suite and write each artifact's output under
//! `results/` — the one-command reproduction of EXPERIMENTS.md.
//!
//! Run: `cargo run --release -p tlmm-bench --bin all_experiments [out_dir]`

use std::io::Write;
use std::process::Command;

const BINS: &[&str] = &[
    "table1",
    "fig_bandwidth",
    "fig_corescale",
    "fig_model_validation",
    "fig_membound",
    "fig_overhead",
    "fig_kmeans",
    "fig_parallel",
    "fig_energy",
    "fig_gemm",
    "ablation",
];

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let mut failures = 0;
    for bin in BINS {
        let path = exe_dir.join(bin);
        eprint!("[all_experiments] {bin} ... ");
        let started = std::time::Instant::now();
        let output = Command::new(&path).output();
        match output {
            Ok(o) if o.status.success() => {
                let file = format!("{out_dir}/{bin}.txt");
                let mut f = std::fs::File::create(&file).expect("create result file");
                f.write_all(&o.stdout).expect("write result");
                eprintln!("ok ({:.1}s) -> {file}", started.elapsed().as_secs_f64());
            }
            Ok(o) => {
                failures += 1;
                eprintln!("FAILED (status {:?})", o.status.code());
                eprintln!("{}", String::from_utf8_lossy(&o.stderr));
            }
            Err(e) => {
                failures += 1;
                eprintln!(
                    "could not launch {path:?}: {e}. Build all binaries first: \
                     `cargo build --release -p tlmm-bench --bins`"
                );
            }
        }
    }
    if failures > 0 {
        eprintln!("[all_experiments] {failures} experiment(s) failed");
        std::process::exit(1);
    }
    eprintln!("[all_experiments] all artifacts written to {out_dir}/");
}
