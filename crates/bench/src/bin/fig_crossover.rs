//! **fig_crossover** — where does scratchpad-awareness start paying?
//!
//! Sweeps n × near-memory size M and runs the aware engine (NMsort) against
//! the cache-oblivious family (SPMS, SquareSort) on identically seeded
//! workloads, comparing *simulated* far traffic (charged ledgers from real
//! runs) with the *predicted* far traffic from `tlmm_model::oblivious`'s
//! recursion mirrors. For each (M, engine) pair it reports the crossover
//! point: the smallest n where the oblivious engine's far traffic exceeds
//! NMsort's by more than 5%. Below the residency cap (`M/4` of data) every
//! engine pays exactly one far roundtrip, so obliviousness is free; beyond
//! it the aware layout wins and the crossover should sit at the cap and
//! move right as M grows.
//!
//! In-binary sanity gates (the artifact is only written if they hold):
//! * at the largest n per M, each oblivious engine's far traffic ≥ NMsort's;
//! * the simulated crossover exists and is monotone non-decreasing in M;
//! * predicted and simulated crossovers land within one grid step.
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_crossover [-- --smoke]`
//! (`--smoke` shrinks the sweep to two small Ms for CI.)

use serde::Serialize;
use tlmm_analysis::table::Table;
use tlmm_bench::{artifact, outln, run_sort_on, Engine, SortSpec};
use tlmm_model::oblivious::{
    near_resident_cap_elems, nmsort_aware_cost, predicted_crossover, spms_cost, squaresort_cost,
};
use tlmm_model::theorems::CostSplit;
use tlmm_model::ScratchpadParams;
use tlmm_telemetry::RunReport;

const ELEM: usize = 8; // u64 keys
const MARGIN: f64 = 1.05; // crossover = far traffic >5% above NMsort's

/// One measured sweep cell.
#[derive(Serialize)]
struct Cell {
    m_bytes: u64,
    n: u64,
    engine: &'static str,
    far_blocks_sim: f64,
    far_blocks_pred: f64,
    near_blocks_sim: f64,
}

/// Per-(M, engine) crossover verdict.
#[derive(Serialize)]
struct Crossover {
    m_bytes: u64,
    engine: &'static str,
    cap_elems: u64,
    simulated_n: u64,
    predicted_n: u64,
}

fn params_for(m: u64) -> ScratchpadParams {
    ScratchpadParams::new(64, 4.0, m, m / 16).expect("sweep params validate")
}

fn predictor(engine: Engine) -> fn(&ScratchpadParams, u64, usize) -> CostSplit {
    match engine {
        Engine::Spms => spms_cost,
        Engine::SquareSort => squaresort_cost,
        _ => nmsort_aware_cost,
    }
}

fn measure_far_blocks(engine: Engine, n: u64, params: ScratchpadParams) -> (f64, f64) {
    let spec = SortSpec {
        threads: 1,
        algo: engine,
        n: n as usize,
        lanes: 8,
        chunk_elems: None,
        seed: 0xC0, // same workload in every cell; only (M, engine) vary
        fault_seed: None,
    };
    let run = run_sort_on(&spec, params).unwrap_or_else(|e| panic!("{} n={n}: {e}", engine.name()));
    let far = run.ledger.far_bytes as f64 / params.block_bytes as f64;
    let near = run.ledger.near_bytes as f64 / params.near_block_bytes() as f64;
    (far, near)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ms: &[u64] = if smoke {
        &[1 << 20, 4 << 20]
    } else {
        &[4 << 20, 16 << 20, 64 << 20]
    };
    // n at fixed ratios of the residency cap so the crossover is always
    // bracketed: strictly below, at, and well beyond the cap.
    let ratios: &[(u64, u64)] = if smoke {
        &[(1, 2), (1, 1), (2, 1), (4, 1)]
    } else {
        &[(1, 4), (1, 2), (1, 1), (2, 1), (4, 1), (8, 1)]
    };
    let engines = [Engine::Spms, Engine::SquareSort];
    eprintln!(
        "[fig_crossover] {} Ms x {} ns x {} oblivious engines{}",
        ms.len(),
        ratios.len(),
        engines.len(),
        if smoke { " (smoke)" } else { "" }
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut crossovers: Vec<Crossover> = Vec::new();
    let mut out = String::new();
    outln!(
        out,
        "\nfig_crossover — aware (nmsort) vs oblivious (spms, squaresort) far \
         traffic in {}-byte blocks; crossover = first n on the grid where an \
         oblivious engine pays >{:.0}% more far traffic than nmsort\n",
        64,
        (MARGIN - 1.0) * 100.0
    );

    for &m in ms {
        let params = params_for(m);
        let cap = near_resident_cap_elems(&params, ELEM);
        let grid: Vec<u64> = ratios.iter().map(|&(p, q)| (cap * p / q).max(2)).collect();

        // Measure every cell: NMsort first (the aware yardstick), then the
        // oblivious engines against it.
        let mut aware_sim: Vec<f64> = Vec::new();
        let mut t = Table::new(["n / cap", "n", "nmsort", "spms", "squaresort", "pred s/q"]);
        for (gi, &n) in grid.iter().enumerate() {
            let (aware_far, _) = measure_far_blocks(Engine::NmSort, n, params);
            aware_sim.push(aware_far);
            cells.push(Cell {
                m_bytes: m,
                n,
                engine: Engine::NmSort.name(),
                far_blocks_sim: aware_far,
                far_blocks_pred: nmsort_aware_cost(&params, n, ELEM).far_blocks,
                near_blocks_sim: 0.0,
            });
            let mut row = vec![
                format!("{}/{}", ratios[gi].0, ratios[gi].1),
                n.to_string(),
                format!("{aware_far:.0}"),
            ];
            let mut preds = Vec::new();
            for engine in engines {
                let (far, near) = measure_far_blocks(engine, n, params);
                let pred = predictor(engine)(&params, n, ELEM).far_blocks;
                cells.push(Cell {
                    m_bytes: m,
                    n,
                    engine: engine.name(),
                    far_blocks_sim: far,
                    far_blocks_pred: pred,
                    near_blocks_sim: near,
                });
                row.push(format!("{far:.0}"));
                preds.push(format!("{pred:.0}"));
            }
            row.push(preds.join("/"));
            t.row(row);
        }
        outln!(out, "M = {} MiB (cap = {} elems)", m >> 20, cap);
        outln!(out, "{}", t.render());

        for engine in engines {
            // Simulated crossover: scan the measured cells on this M.
            let simulated_n = grid
                .iter()
                .enumerate()
                .find(|&(gi, &n)| {
                    cells
                        .iter()
                        .find(|c| c.m_bytes == m && c.n == n && c.engine == engine.name())
                        .map(|c| c.far_blocks_sim > aware_sim[gi] * MARGIN)
                        .unwrap_or(false)
                })
                .map(|(_, &n)| n);
            let predicted_n = predicted_crossover(&params, ELEM, &grid, predictor(engine), MARGIN);

            // --- Sanity gates ---
            let last_n = *grid.last().expect("non-empty grid");
            let last_cell = cells
                .iter()
                .find(|c| c.m_bytes == m && c.n == last_n && c.engine == engine.name())
                .expect("largest-n cell measured");
            assert!(
                last_cell.far_blocks_sim >= *aware_sim.last().expect("aware cell"),
                "{} at n={last_n} (M={m}): oblivious far traffic must not undercut \
                 the aware engine in the paper regime",
                engine.name()
            );
            let simulated_n = simulated_n.unwrap_or_else(|| {
                panic!(
                    "{} (M={m}): no simulated crossover on the grid",
                    engine.name()
                )
            });
            let predicted_n = predicted_n.unwrap_or_else(|| {
                panic!(
                    "{} (M={m}): no predicted crossover on the grid",
                    engine.name()
                )
            });
            let sim_idx = grid.iter().position(|&n| n == simulated_n).unwrap();
            let pred_idx = grid.iter().position(|&n| n == predicted_n).unwrap();
            assert!(
                sim_idx.abs_diff(pred_idx) <= 1,
                "{} (M={m}): predicted crossover n={predicted_n} is more than one \
                 grid step from simulated n={simulated_n}",
                engine.name()
            );
            if let Some(prev) = crossovers.iter().rfind(|c| c.engine == engine.name()) {
                assert!(
                    simulated_n >= prev.simulated_n,
                    "{}: crossover must be monotone in M ({} at M={} then {} at M={m})",
                    engine.name(),
                    prev.simulated_n,
                    prev.m_bytes,
                    simulated_n
                );
            }
            crossovers.push(Crossover {
                m_bytes: m,
                engine: engine.name(),
                cap_elems: cap,
                simulated_n,
                predicted_n,
            });
        }
    }

    let mut t = Table::new(["M (MiB)", "engine", "cap", "simulated n*", "predicted n*"]);
    for c in &crossovers {
        t.row(vec![
            (c.m_bytes >> 20).to_string(),
            c.engine.to_string(),
            c.cap_elems.to_string(),
            c.simulated_n.to_string(),
            c.predicted_n.to_string(),
        ]);
    }
    outln!(
        out,
        "crossover points (n* grows with M: awareness buys exactly \
                 one residency cap)"
    );
    outln!(out, "{}", t.render());

    let report = RunReport::collect("fig_crossover")
        .meta("smoke", smoke)
        .meta("elem_bytes", ELEM)
        .meta("margin", MARGIN)
        .section("cells", &cells)
        .section("crossovers", &crossovers);
    artifact::emit("fig_crossover", &out, report)?;
    Ok(())
}
