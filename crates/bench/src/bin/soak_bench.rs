//! **Soak bench** — the service layer under sustained multi-tenant load.
//!
//! Drives `tlmm-service` with a deterministic stream of mixed sort jobs
//! (all five engines, three priority classes, eight tenants, a spread of
//! sizes and deadlines) at 1×, 2×, and 4× the machine's offered-load
//! capacity, and reports per-class p50/p95/p99 latency plus shed /
//! preemption / timeout counts per level.
//!
//! The run *asserts* the robustness headlines in-binary, so a regression
//! fails the bench rather than quietly shifting a number:
//!
//! * zero leaked near bytes across every job at every load level;
//! * every rejection is typed (`Infeasible` ⇒ `retry_after == 0`, the
//!   saturation reasons ⇒ `retry_after > 0`) — overload never panics;
//! * under 4× overload, interactive p99 stays within `3×` its 1×-load
//!   p99 (bounded latency for the protected class);
//! * goodput at 4× stays ≥ 50 % of the 1×-load goodput rate (graceful
//!   degradation, not collapse).
//!
//! Writes `results/soak.txt` and `results/soak.json`.
//!
//! Run: `cargo run --release -p tlmm-bench --bin soak_bench [-- --smoke]`
//! (`--smoke` runs hundreds of jobs per level instead of thousands.)

use serde::Serialize;
use tlmm_analysis::table::Table;
use tlmm_bench::{artifact, outln};
use tlmm_model::{Engine, ScratchpadParams};
use tlmm_scratchpad::splitmix64;
use tlmm_service::{
    ClassStats, JobOutcome, JobRequest, Priority, RejectReason, ServiceConfig, ServiceReport,
    SortService,
};
use tlmm_telemetry::RunReport;

/// Summary of one load level, serialized into `results/soak.json`.
#[derive(Debug, Clone, Serialize)]
struct LevelSummary {
    /// Offered-load multiplier (1, 2, 4).
    load_x: u64,
    /// Jobs offered.
    jobs: u64,
    /// Jobs completed with verified output.
    completed: u64,
    /// Typed admission rejections.
    shed: u64,
    /// Deadline timeouts (queued + mid-run cancellations).
    timed_out: u64,
    /// Typed engine failures.
    failed: u64,
    /// Slot-preemption events.
    preemptions: u64,
    /// Jobs admitted with a proactively shrunk chunk.
    degraded_admissions: u64,
    /// Post-job leak checks (== physical runs).
    leak_checks: u64,
    /// Leak checks that found residual near bytes (must be 0).
    leak_failures: u64,
    /// Virtual makespan of the level.
    makespan: u64,
    /// Charged units of completed jobs.
    goodput_units: u64,
    /// Charged units including cancelled / failed work.
    total_units: u64,
    /// Per-class latency stats.
    classes: Vec<ClassStats>,
}

fn service_config(smoke: bool) -> ServiceConfig {
    ServiceConfig {
        // Small scratchpad on purpose: near-memory contention (and hence
        // admission pressure) is the thing under test.
        params: ScratchpadParams::new(64, 4.0, 1 << 20, 64 << 10).expect("soak params are valid"),
        slots: 8,
        near_budget_bytes: 0,
        tenant_slot_cap: 6,
        // Interactive's queue is small on purpose: bounding its queue is
        // what bounds its p99 under overload.
        queue_cap: if smoke { [4, 32, 128] } else { [4, 128, 512] },
        seed: 0x50AC_BEEF,
    }
}

/// Deterministic mixed workload: `jobs` arrivals spread so that offered
/// load is `load_x` times the slot pool's service capacity.
fn build_jobs(jobs: usize, load_x: u64, cfg: &ServiceConfig) -> Vec<JobRequest> {
    let mut out = Vec::with_capacity(jobs);
    let mut est_total: u64 = 0;
    let mut protos = Vec::with_capacity(jobs);
    for i in 0..jobs as u64 {
        let h = splitmix64(0xD15C_0000 ^ i);
        let class = match h % 10 {
            0 | 1 => Priority::Interactive,
            2..=6 => Priority::Batch,
            _ => Priority::Background,
        };
        let engine = match (h >> 8) % 10 {
            0..=5 => Engine::NmSort,
            6 => Engine::NmSortDma,
            7 => Engine::Baseline,
            8 => Engine::Spms,
            _ => Engine::SquareSort,
        };
        let n = 2_000 + ((h >> 16) % 38_000) as usize;
        let est = tlmm_model::admission_estimate(&cfg.params, engine, n as u64, 8, None);
        est_total += est.est_units;
        protos.push((h, class, engine, n, est.est_units));
    }
    // The pool serves `slots` units per virtual tick; spreading arrivals
    // over (total demand)/(slots × load_x) ticks offers load_x × capacity.
    let span = (est_total / (cfg.slots * load_x)).max(jobs as u64);
    let gap = (span / jobs as u64).max(1);
    for (i, (h, class, engine, n, est_units)) in protos.into_iter().enumerate() {
        let arrival = i as u64 * gap;
        // A third of interactive jobs carry a deadline: 8× their ideal
        // full-pool service time — generous when healthy, binding under
        // overload.
        let deadline = if class == Priority::Interactive && h % 3 == 0 {
            Some(arrival + 8 * est_units.div_ceil(cfg.slots).max(1))
        } else {
            None
        };
        out.push(JobRequest {
            tenant: (h >> 32) % 8,
            priority: class,
            engine,
            n,
            seed: h,
            arrival,
            deadline,
        });
    }
    out
}

fn summarize(load_x: u64, jobs: usize, rep: &ServiceReport) -> LevelSummary {
    let sum = |f: fn(&ClassStats) -> u64| rep.classes.iter().map(f).sum::<u64>();
    LevelSummary {
        load_x,
        jobs: jobs as u64,
        completed: sum(|c| c.completed),
        shed: sum(|c| c.shed),
        timed_out: sum(|c| c.timed_out),
        failed: sum(|c| c.failed),
        preemptions: rep.preemptions,
        degraded_admissions: rep.degraded_admissions,
        leak_checks: rep.leak_checks,
        leak_failures: rep.leak_failures,
        makespan: rep.makespan,
        goodput_units: rep.goodput_units,
        total_units: rep.total_units,
        classes: rep.classes.clone(),
    }
}

/// Goodput rate in charged units per virtual tick.
fn goodput_rate(s: &LevelSummary) -> f64 {
    if s.makespan == 0 {
        return 0.0;
    }
    s.goodput_units as f64 / s.makespan as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let jobs_per_level = if smoke { 200 } else { 1_200 };
    let cfg = service_config(smoke);

    tlmm_telemetry::reset();
    let _run = tlmm_telemetry::span!("soak.run");

    let mut text = String::new();
    outln!(
        text,
        "Soak: {} jobs/level through tlmm-service at 1x/2x/4x offered load{}",
        jobs_per_level,
        if smoke { " (smoke)" } else { "" }
    );
    outln!(
        text,
        "  M = {} KiB, p' = {} slots, tenant cap = {}, latencies in virtual units (charged bytes)",
        cfg.params.scratchpad_bytes >> 10,
        cfg.slots,
        cfg.tenant_slot_cap
    );
    outln!(text);

    let mut levels: Vec<LevelSummary> = Vec::new();
    for load_x in [1u64, 2, 4] {
        let jobs = build_jobs(jobs_per_level, load_x, &cfg);
        let svc = SortService::new(cfg.clone()).expect("service config is valid");
        let (rep, outcomes) = {
            let _s = tlmm_telemetry::span!("soak.level");
            svc.run(&jobs).expect("service run cannot fail as a whole")
        };

        // Every rejection must be typed and carry an honest retry hint.
        for o in &outcomes {
            if let JobOutcome::Shed(r) = o {
                match r.reason {
                    RejectReason::Infeasible => assert_eq!(
                        r.retry_after, 0,
                        "infeasible jobs must not be told to retry"
                    ),
                    RejectReason::NearSaturated | RejectReason::QueueFull => {
                        assert!(r.retry_after > 0, "saturation sheds must carry retry_after")
                    }
                }
            }
        }
        assert_eq!(
            rep.leak_failures, 0,
            "{load_x}x load leaked near bytes ({} checks)",
            rep.leak_checks
        );
        levels.push(summarize(load_x, jobs_per_level, &rep));
    }

    // ---- rendered tables ------------------------------------------------
    let mut t = Table::new([
        "load",
        "jobs",
        "done",
        "shed",
        "timeout",
        "fail",
        "preempt",
        "degraded",
        "makespan",
        "goodput/tick",
    ]);
    for s in &levels {
        t.row([
            format!("{}x", s.load_x),
            s.jobs.to_string(),
            s.completed.to_string(),
            s.shed.to_string(),
            s.timed_out.to_string(),
            s.failed.to_string(),
            s.preemptions.to_string(),
            s.degraded_admissions.to_string(),
            s.makespan.to_string(),
            format!("{:.1}", goodput_rate(s)),
        ]);
    }
    outln!(text, "{}", t.render());

    outln!(text, "Per-class completion latency (virtual units):");
    let mut t = Table::new(["load", "class", "done", "p50", "p95", "p99", "max"]);
    for s in &levels {
        for c in &s.classes {
            t.row([
                format!("{}x", s.load_x),
                c.class.clone(),
                c.completed.to_string(),
                c.p50.to_string(),
                c.p95.to_string(),
                c.p99.to_string(),
                c.max_latency.to_string(),
            ]);
        }
    }
    outln!(text, "{}", t.render());

    // ---- headline assertions -------------------------------------------
    let base = &levels[0];
    let worst = &levels[2];
    let p99_1x = base.classes[Priority::Interactive.index()].p99;
    let p99_4x = worst.classes[Priority::Interactive.index()].p99;
    assert!(
        base.classes[Priority::Interactive.index()].completed > 0
            && worst.classes[Priority::Interactive.index()].completed > 0,
        "interactive jobs must complete at both 1x and 4x"
    );
    assert!(
        p99_4x <= 3 * p99_1x,
        "interactive p99 unbounded under overload: 4x p99 {p99_4x} > 3 x 1x p99 {p99_1x}"
    );
    let rate_1x = goodput_rate(base);
    let rate_4x = goodput_rate(worst);
    assert!(
        rate_4x >= 0.5 * rate_1x,
        "goodput collapsed under overload: 4x rate {rate_4x:.1} < 50% of 1x rate {rate_1x:.1}"
    );
    assert!(
        worst.shed + worst.timed_out > 0,
        "4x overload should shed or time out some work (else the load model is broken)"
    );
    outln!(
        text,
        "headlines: interactive p99 {}x -> {}x of 1x-load p99 (bound 3x); \
         goodput rate {:.1} -> {:.1} units/tick ({:.0}% retained, bound 50%)",
        1,
        if p99_1x > 0 {
            p99_4x as f64 / p99_1x as f64
        } else {
            0.0
        },
        rate_1x,
        rate_4x,
        100.0 * rate_4x / rate_1x.max(f64::MIN_POSITIVE)
    );

    drop(_run);
    let report = RunReport::collect("soak")
        .meta("smoke", smoke)
        .meta("jobs_per_level", jobs_per_level)
        .meta("slots", cfg.slots)
        .meta("scratchpad_bytes", cfg.params.scratchpad_bytes)
        .section("levels", &levels);
    artifact::emit("soak", &text, report).expect("write soak artifacts");
}
