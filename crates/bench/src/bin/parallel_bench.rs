//! **parallel_bench** — paper-scale multi-threaded sort sweep
//! (`BENCH_parallel.json`).
//!
//! Table I evaluates sorts at 10M–100M keys across core counts; this
//! harness is the repo's matching record. It sweeps
//! `engine ∈ {nmsort, spms} × n × threads ∈ {1, 2, 4, 8}` with virtual
//! lanes fixed at 8, measuring two independent axes per cell:
//!
//! * **wall** — host wall clock of the full harness run with
//!   `SortSpec::threads` worker threads (median of `ITERS` runs; the
//!   per-thread *speedup* is the median of per-iteration ratios, pairing
//!   each `t`-thread run with the 1-thread run of the same iteration).
//!   Host-dependent; recorded with `host_cores` and only asserted when
//!   the host actually has ≥ 8 cores.
//! * **sim_flow** — simulated flow time of the recorded (host-thread-
//!   independent) trace replayed on the paper's Fig. 4 node restricted to
//!   `t` cores. Deterministic, so these speedups are what `perf_gate`
//!   diffs against the committed smoke baseline.
//!
//! In-binary invariants, asserted every run:
//!
//! * `CostSnapshot` ledgers are **byte-identical** across all host thread
//!   counts (the worker pool performs no charging), and
//! * byte-identical with SIMD dispatch forced off (`TLMM_NO_SIMD`
//!   equivalent) — kernels charge from the data, never from which code
//!   path executed. See DESIGN.md §15.
//! * NMsort's simulated 8-core flow speedup is ≥ 2.5× at the largest
//!   full-mode size (the Table I regime); wall clock must match when the
//!   host has the cores to show it.
//!
//! Output: `BENCH_parallel.json` at the repo root (full mode, the
//! committed record) or `<results>/BENCH_parallel_smoke.json` (smoke
//! mode, diffed by `perf_gate --baseline BENCH_parallel_smoke.json`),
//! plus `results/parallel_bench.{txt,json}` via the artifact plumbing.
//!
//! Run: `cargo run --release -p tlmm-bench --bin parallel_bench [-- --smoke]`

use std::time::Instant;
use tlmm_bench::{artifact, outln, run_sort, Engine, SortSpec};
use tlmm_core::kernels::simd;
use tlmm_core::pool::host_threads;
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_telemetry::RunReport;

use serde::Serialize;

/// Virtual lanes for every cell: fixed so the recorded trace (and hence
/// the ledger) is identical along the whole thread axis.
const LANES: usize = 8;
/// Host thread axis (the paper's per-node core sweep, scaled down).
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Scratchpad bandwidth expansion for the replay machine (paper's 8×).
const RHO: f64 = 8.0;
/// Engines under test: the aware two-phase sort and the cache-oblivious
/// competitor running under the same ledger.
const ENGINES: [Engine; 2] = [Engine::NmSort, Engine::Spms];

/// `perf_gate`-compatible cell: `kernel` is the measurement axis
/// (`sim_flow` / `wall`), `workload` is `<engine>/t=<threads>`. Only
/// `sim_flow` cells carry a `speedup` — they are deterministic; wall
/// medians are recorded for the eyeball but never gate.
#[derive(Serialize)]
struct Cell {
    kernel: String,
    workload: String,
    n: usize,
    baseline_ms: Option<f64>,
    optimized_ms: f64,
    speedup: Option<f64>,
}

#[derive(Serialize)]
struct BenchFile {
    git_sha: String,
    mode: String,
    warmup_iters: usize,
    measured_iters: usize,
    /// Host cores the wall-clock cells ran on (wall speedups are only
    /// meaningful when this reaches the thread axis).
    host_cores: usize,
    lanes: usize,
    rho: f64,
    /// Ledger invariance checks that passed in-binary this run.
    asserted: Vec<String>,
    cells: Vec<Cell>,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn spec(engine: Engine, n: usize, threads: usize) -> SortSpec {
    SortSpec {
        algo: engine,
        n,
        lanes: LANES,
        threads,
        chunk_elems: None,
        seed: 0xBA11,
        fault_seed: None,
    }
}

/// One `(engine, n)` group: `ITERS × |THREADS|` timed harness runs plus
/// one SIMD-disabled run, with every ledger compared byte-for-byte.
struct GroupResult {
    wall_ms: Vec<f64>,      // per THREADS index, median
    wall_speedup: Vec<f64>, // per THREADS index, median of ratios
    sim_secs: Vec<f64>,     // per THREADS index (deterministic)
    sim_speedup: Vec<f64>,  // per THREADS index
}

fn run_group(engine: Engine, n: usize, iters: usize, asserted: &mut Vec<String>) -> GroupResult {
    let name = engine.name();
    // Wall medians and per-iteration ratio collection.
    let mut walls: Vec<Vec<f64>> = vec![Vec::new(); THREADS.len()];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); THREADS.len()];
    let mut ledger_json: Option<String> = None;
    let mut trace_for_sim = None;
    for iter in 0..iters {
        let mut wall_1t = f64::NAN;
        for (ti, &t) in THREADS.iter().enumerate() {
            let t0 = Instant::now();
            let run = run_sort(&spec(engine, n, t)).expect("parallel_bench sort failed");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            walls[ti].push(ms);
            if ti == 0 {
                wall_1t = ms;
            }
            ratios[ti].push(wall_1t / ms);
            // Ledger must not depend on host threads (the pool performs
            // no simulated charging) — byte-identical, not just equal.
            let json = serde::json::to_string(&run.ledger).expect("ledger serializes");
            match &ledger_json {
                None => ledger_json = Some(json),
                Some(first) => assert_eq!(
                    &json, first,
                    "{name}/{n}: ledger diverged at threads={t} iter={iter}"
                ),
            }
            if iter == 0 && ti == 0 {
                trace_for_sim = Some(run.trace);
            }
        }
    }

    // SIMD dispatch must not touch the ledger either: one more 1-thread
    // run with the vector path forced off.
    let prior = simd::enabled();
    simd::set_enabled(false);
    let off = run_sort(&spec(engine, n, 1)).expect("SIMD-off run failed");
    simd::set_enabled(prior);
    let off_json = serde::json::to_string(&off.ledger).expect("ledger serializes");
    assert_eq!(
        Some(&off_json),
        ledger_json.as_ref(),
        "{name}/{n}: ledger changed with SIMD disabled"
    );
    asserted.push(format!(
        "{name}/{n}: ledger byte-identical across threads {THREADS:?} and SIMD on/off"
    ));

    // Simulated flow: the same trace replayed on Fig. 4 nodes restricted
    // to t cores (lanes fold onto cores). Pure function of the trace.
    let trace = trace_for_sim.expect("trace recorded");
    let sim_secs: Vec<f64> = THREADS
        .iter()
        .map(|&t| simulate_flow(&trace, &MachineConfig::fig4(t as u32, RHO)).seconds)
        .collect();
    let sim_speedup: Vec<f64> = sim_secs.iter().map(|&s| sim_secs[0] / s).collect();

    GroupResult {
        wall_ms: walls.into_iter().map(median).collect(),
        wall_speedup: ratios.into_iter().map(median).collect(),
        sim_secs,
        sim_speedup,
    }
}

/// The overlap axis: the DMA double-buffered pipeline against the
/// blocking ingest path, under the SAME pinned chunk geometry so both
/// modes stage identical volumes. Asserted in-binary every run:
///
/// * the two ledgers are **byte-identical** — overlap hides time, never
///   traffic (the far/near totals equal the pre-arena blocking path's);
/// * the pipelined trace's simulated flow makespan never exceeds the
///   blocking trace's, and the flow engine reports overlapped pairs;
/// * wall clock is compared at 2 host threads (the background ingest
///   copier needs a second core) but only *asserted* when the host
///   actually has ≥ 2 cores.
fn run_overlap_group(
    n: usize,
    iters: usize,
    smoke: bool,
    host: usize,
    asserted: &mut Vec<String>,
    cells: &mut Vec<Cell>,
    text: &mut String,
) {
    // ≥ 4 chunks at every size, 3-buffer-feasible (3 × 16 MB ≪ M).
    let chunk_elems = (n / 4).min(2_000_000);
    let chunk = Some(chunk_elems);
    let t_wall = if host >= 2 { 2 } else { 1 };
    let spec_of = |engine: Engine| SortSpec {
        chunk_elems: chunk,
        threads: t_wall,
        ..spec(engine, n, t_wall)
    };

    let mut blk_walls = Vec::new();
    let mut dma_walls = Vec::new();
    let mut first = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let blk = run_sort(&spec_of(Engine::NmSort)).expect("blocking run failed");
        blk_walls.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let dma = run_sort(&spec_of(Engine::NmSortDma)).expect("dma run failed");
        dma_walls.push(t0.elapsed().as_secs_f64() * 1e3);

        let blk_json = serde::json::to_string(&blk.ledger).expect("ledger serializes");
        let dma_json = serde::json::to_string(&dma.ledger).expect("ledger serializes");
        assert_eq!(
            blk_json, dma_json,
            "nmsort_dma/{n}: pipelined ledger diverged from blocking at chunk={chunk_elems}"
        );
        if first.is_none() {
            first = Some((blk.trace, dma.trace));
        }
    }
    asserted.push(format!(
        "nmsort_dma/{n}: ledger byte-identical to blocking nmsort at chunk={chunk_elems}"
    ));

    let (blk_trace, dma_trace) = first.expect("at least one iter");
    let machine = MachineConfig::fig4(*THREADS.last().expect("axis nonempty") as u32, RHO);
    let blk_sim = simulate_flow(&blk_trace, &machine);
    let dma_sim = simulate_flow(&dma_trace, &machine);
    assert!(
        dma_sim.overlapped_pairs > 0,
        "nmsort_dma/{n}: no overlap exposed"
    );
    assert!(
        dma_sim.seconds <= blk_sim.seconds * 1.000_001,
        "nmsort_dma/{n}: overlap slowed the simulated run: {} vs {}",
        dma_sim.seconds,
        blk_sim.seconds
    );
    if !smoke {
        assert!(
            dma_sim.seconds < blk_sim.seconds,
            "nmsort_dma/{n}: expected a strict simulated overlap gain"
        );
    }
    asserted.push(format!(
        "nmsort_dma/{n}: simulated overlap gain {:.2}% ({} pairs, {:.1}% of serialized hidden)",
        (1.0 - dma_sim.seconds / blk_sim.seconds) * 100.0,
        dma_sim.overlapped_pairs,
        dma_sim.overlap_fraction() * 100.0
    ));

    let blk_wall = median(blk_walls);
    let dma_wall = median(dma_walls);
    if host >= 2 && !smoke {
        assert!(
            dma_wall <= blk_wall * 1.10,
            "nmsort_dma/{n}: pipelined wall {dma_wall:.1}ms regressed past \
             blocking {blk_wall:.1}ms on a {host}-core host"
        );
        asserted.push(format!(
            "nmsort_dma/{n}: wall {:.1}ms vs blocking {:.1}ms on {host} cores",
            dma_wall, blk_wall
        ));
    }

    outln!(
        text,
        "{:<8} {:>11} {:>3} {:>12.1} {:>8.2}x {:>12.4} {:>8.2}x  (overlap vs blocking)",
        "nm_dma",
        n,
        t_wall,
        dma_wall,
        blk_wall / dma_wall,
        dma_sim.seconds,
        blk_sim.seconds / dma_sim.seconds
    );
    cells.push(Cell {
        kernel: "sim_overlap".into(),
        workload: format!("nmsort_dma/t={}", THREADS.last().expect("axis nonempty")),
        n,
        baseline_ms: Some(blk_sim.seconds * 1e3),
        optimized_ms: dma_sim.seconds * 1e3,
        speedup: Some(blk_sim.seconds / dma_sim.seconds),
    });
    cells.push(Cell {
        kernel: "wall_overlap".into(),
        workload: format!("nmsort_dma/t={t_wall}"),
        n,
        baseline_ms: Some(blk_wall),
        optimized_ms: dma_wall,
        speedup: None,
    });
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke {
        "parallel_smoke"
    } else {
        "parallel_full"
    };
    let (sizes, iters): (Vec<usize>, usize) = if smoke {
        (vec![2_000_000], 3)
    } else {
        (vec![10_000_000, 30_000_000, 100_000_000], 3)
    };
    let host = host_threads();
    eprintln!(
        "[parallel_bench] mode={mode}, n={sizes:?}, threads={THREADS:?}, \
         lanes={LANES}, host_cores={host}, {iters} iters"
    );
    tlmm_telemetry::reset();

    let mut cells = Vec::new();
    let mut asserted = Vec::new();
    let mut text = String::new();
    outln!(
        text,
        "Parallel sort sweep ({mode}): lanes={LANES}, rho={RHO}, \
         host_cores={host}, median of {iters}"
    );
    outln!(
        text,
        "{:<8} {:>11} {:>3} {:>12} {:>9} {:>12} {:>9}",
        "engine",
        "n",
        "t",
        "wall ms",
        "wall x",
        "sim s",
        "sim x"
    );

    for engine in ENGINES {
        for &n in &sizes {
            eprintln!("[parallel_bench] {} n={n}...", engine.name());
            let g = run_group(engine, n, iters, &mut asserted);
            for (ti, &t) in THREADS.iter().enumerate() {
                outln!(
                    text,
                    "{:<8} {:>11} {:>3} {:>12.1} {:>8.2}x {:>12.4} {:>8.2}x",
                    engine.name(),
                    n,
                    t,
                    g.wall_ms[ti],
                    g.wall_speedup[ti],
                    g.sim_secs[ti],
                    g.sim_speedup[ti]
                );
                cells.push(Cell {
                    kernel: "sim_flow".into(),
                    workload: format!("{}/t={t}", engine.name()),
                    n,
                    baseline_ms: Some(g.sim_secs[0] * 1e3),
                    optimized_ms: g.sim_secs[ti] * 1e3,
                    speedup: Some(g.sim_speedup[ti]),
                });
                cells.push(Cell {
                    kernel: "wall".into(),
                    workload: format!("{}/t={t}", engine.name()),
                    n,
                    baseline_ms: Some(g.wall_ms[0]),
                    optimized_ms: g.wall_ms[ti],
                    speedup: None,
                });
            }

            // The Table I criterion: 8 cores must buy ≥ 2.5× on NMsort at
            // full scale. Simulated flow asserts everywhere (it is host-
            // independent); wall clock asserts only where the host can
            // physically show it.
            let last = THREADS.len() - 1;
            if engine == Engine::NmSort && !smoke {
                assert!(
                    g.sim_speedup[last] >= 2.5,
                    "nmsort/{n}: simulated 8-core speedup {:.2}x < 2.5x",
                    g.sim_speedup[last]
                );
                asserted.push(format!(
                    "nmsort/{n}: simulated 8-core speedup {:.2}x >= 2.5x",
                    g.sim_speedup[last]
                ));
                if host >= *THREADS.last().expect("axis nonempty") {
                    assert!(
                        g.wall_speedup[last] >= 2.5,
                        "nmsort/{n}: wall 8-thread speedup {:.2}x < 2.5x on {host}-core host",
                        g.wall_speedup[last]
                    );
                    asserted.push(format!(
                        "nmsort/{n}: wall 8-thread speedup {:.2}x >= 2.5x",
                        g.wall_speedup[last]
                    ));
                }
            }
            // Smoke keeps a loose floor so total scaling breakage fails CI
            // even before the perf gate diffs exact values.
            if engine == Engine::NmSort && smoke {
                assert!(
                    g.sim_speedup[last] > 2.0,
                    "nmsort/{n} (smoke): simulated 8-core speedup {:.2}x lost all scaling",
                    g.sim_speedup[last]
                );
            }
        }
    }

    // The overlap axis: DMA pipeline vs blocking, same pinned geometry.
    for &n in &sizes {
        eprintln!("[parallel_bench] nmsort_dma overlap n={n}...");
        run_overlap_group(n, iters, smoke, host, &mut asserted, &mut cells, &mut text);
    }

    for a in &asserted {
        outln!(text, "assert: {a}");
    }

    let file = BenchFile {
        git_sha: artifact::git_sha(),
        mode: mode.into(),
        warmup_iters: 0,
        measured_iters: iters,
        host_cores: host,
        lanes: LANES,
        rho: RHO,
        asserted,
        cells,
    };
    // Full mode refreshes the committed record at the repo root; smoke
    // writes next to the CI artifacts for the perf gate to diff.
    let path = if smoke {
        let dir = artifact::results_dir();
        std::fs::create_dir_all(&dir)?;
        dir.join("BENCH_parallel_smoke.json")
    } else {
        std::path::PathBuf::from("BENCH_parallel.json")
    };
    std::fs::write(&path, serde::json::to_string_pretty(&file)? + "\n")?;
    outln!(text, "wrote {}", path.display());

    let report = RunReport::collect("parallel_bench")
        .meta("mode", mode)
        .meta("host_cores", host.to_string());
    artifact::emit("parallel_bench", &text, report)?;
    Ok(())
}
