//! `tlmm_profile` — run one sort under the flight recorder and emit a
//! Perfetto-loadable trace plus a critical-path attribution summary.
//!
//! This is the observability companion to the experiment binaries: where
//! `table1` asks *how much* a run costs, this asks *where the time went* —
//! which worker lane carried the makespan, how much of it was far/near
//! occupancy vs. waiting on a p′ transfer slot, and whether that verdict
//! agrees with the flow engine's analytic [`Bottleneck`] labels.
//!
//! Run (defaults to a contended deterministic run, p=8 workers over p′=2
//! transfer slots, so `slot_wait` shows up on the path):
//!
//! ```text
//! cargo run --release -p tlmm-bench --bin tlmm_profile -- \
//!     [--algo nmsort|dma|baseline|spms|squaresort] [--n N] [--lanes L] [--chunk C]
//!     [--seed S] [--workers P] [--slots P'] [--exec-seed E]
//!     [--fault-seed F] [--name NAME]
//! ```
//!
//! Outputs under `results/` (or `$TLMM_RESULTS_DIR`):
//! `<name>.trace.json` (Chrome/Perfetto trace), `<name>.txt` and
//! `<name>.json` (critical-path summary + cross-check). In deterministic
//! mode the binary *asserts* the trace's internal invariants: validation
//! passes, the critical-path length equals the executor's charged makespan,
//! and traced transfer bytes equal the cost ledger byte-for-byte.
//!
//! [`Bottleneck`]: tlmm_memsim::stats::Bottleneck

use tlmm_bench::{artifact, outln, run_sort_with_exec, Engine, SortAlgo, SortSpec};
use tlmm_memsim::crosscheck::cross_check;
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_scratchpad::ExecConfig;
use tlmm_telemetry::critical::critical_path;
use tlmm_telemetry::flight::{self, FlightConfig};
use tlmm_telemetry::{perfetto, RunReport};

struct Args {
    algo: SortAlgo,
    n: usize,
    lanes: usize,
    chunk: Option<usize>,
    seed: u64,
    workers: usize,
    slots: usize,
    exec_seed: u64,
    fault_seed: Option<u64>,
    name: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            algo: SortAlgo::NmSort,
            n: 200_000,
            lanes: 8,
            chunk: Some(40_000),
            seed: 42,
            workers: 8,
            slots: 2,
            exec_seed: 7,
            fault_seed: None,
            name: "tlmm_profile".to_string(),
        }
    }
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let val = argv.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        });
        match flag {
            "--algo" => {
                a.algo = Engine::parse(val).unwrap_or_else(|| {
                    let names: Vec<&str> = Engine::ALL.iter().map(|e| e.name()).collect();
                    eprintln!("unknown algo {val:?} ({})", names.join("|"));
                    std::process::exit(2);
                })
            }
            "--n" => a.n = val.parse().expect("--n"),
            "--lanes" => a.lanes = val.parse().expect("--lanes"),
            "--chunk" => a.chunk = Some(val.parse().expect("--chunk")),
            "--seed" => a.seed = val.parse().expect("--seed"),
            "--workers" => a.workers = val.parse().expect("--workers"),
            "--slots" => a.slots = val.parse().expect("--slots"),
            "--exec-seed" => a.exec_seed = val.parse().expect("--exec-seed"),
            "--fault-seed" => a.fault_seed = Some(val.parse().expect("--fault-seed")),
            "--name" => a.name = val.clone(),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    a
}

fn main() {
    let args = parse_args();
    let spec = SortSpec {
        threads: 1,
        algo: args.algo,
        n: args.n,
        lanes: args.lanes,
        chunk_elems: if args.algo.uses_chunks() {
            args.chunk
        } else {
            None
        },
        seed: args.seed,
        fault_seed: args.fault_seed,
    };
    let exec = ExecConfig::deterministic(args.workers, args.slots, args.exec_seed);

    // The recorder mirrors the executor's (p, p′, seed) so the trace is a
    // self-describing replay key. Capacity is sized generously: a dropped
    // event would make the byte cross-check report a false mismatch.
    flight::install(
        FlightConfig::virtual_time(args.workers as u32, args.slots as u32, args.exec_seed)
            .with_capacity(1 << 20),
    );
    let run = run_sort_with_exec(&spec, Some(exec)).unwrap_or_else(|e| {
        flight::uninstall();
        eprintln!("[{}] run failed: {e}", args.name);
        std::process::exit(1);
    });
    let trace = flight::uninstall().expect("recorder was installed");

    // --- Invariant gates (deterministic mode makes these exact). ---
    if let Err(errors) = trace.validate() {
        eprintln!("[{}] trace validation FAILED:", args.name);
        for e in &errors {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
    let cp = critical_path(&trace);
    let exec_report = run.exec.as_ref().expect("executor report");
    assert_eq!(
        cp.makespan, exec_report.makespan_units,
        "critical-path length must equal the executor's charged makespan"
    );
    if trace.dropped() == 0 {
        let traced_far = trace.transfer_bytes(|t| t.far());
        let traced_near = trace.transfer_bytes(|t| !t.far());
        assert_eq!(
            traced_far, run.ledger.far_bytes,
            "traced far bytes must equal the cost ledger"
        );
        assert_eq!(
            traced_near, run.ledger.near_bytes,
            "traced near bytes must equal the cost ledger"
        );
    }

    // --- Cross-check against the flow engine's analytic labels. ---
    let sim = simulate_flow(&run.trace, &MachineConfig::fig4(args.lanes as u32, 4.0));
    let xc = cross_check(&cp, &sim);

    // --- Perfetto trace artifact. ---
    let chrome = perfetto::to_chrome_json(&trace);
    let dir = artifact::results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let trace_path = dir.join(format!("{}.trace.json", args.name));
    std::fs::write(&trace_path, &chrome).expect("write trace.json");

    // --- Human summary. ---
    let mut text = String::new();
    outln!(
        text,
        "tlmm_profile: {:?} n={} lanes={}",
        args.algo,
        args.n,
        args.lanes
    );
    outln!(
        text,
        "executor: p={} workers, p'={} slots, seed={} (deterministic)",
        args.workers,
        args.slots,
        args.exec_seed
    );
    outln!(
        text,
        "trace: {} events across {} lanes ({} dropped), {} transfers",
        trace.lanes.iter().map(|l| l.events.len()).sum::<usize>(),
        trace.lanes.len(),
        trace.dropped(),
        trace.transfers().len()
    );
    outln!(text);
    outln!(text, "{}", cp.summary_table());
    outln!(text, "cross-check: {}", xc.render());
    outln!(text, "perfetto trace: {}", trace_path.display());

    let report = RunReport::collect(&args.name)
        .meta("algo", format!("{:?}", args.algo))
        .meta("n", args.n)
        .meta("lanes", args.lanes)
        .meta("workers", args.workers)
        .meta("slots", args.slots)
        .meta("exec_seed", args.exec_seed)
        .meta("trace_file", trace_path.display())
        .section("critical_path", &cp)
        .section("cross_check", &xc)
        .section("ledger", &run.ledger)
        .section("degradations", &run.degradations);
    artifact::emit(&args.name, &text, report).expect("emit artifacts");
}
