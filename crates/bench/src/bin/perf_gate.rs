//! `perf_gate` — CI perf-regression gate over the kernel bench.
//!
//! Compares a freshly measured smoke run (`kernel_bench --smoke`, which
//! writes `<results>/BENCH_kernels_smoke.json`) against the committed
//! smoke baseline (`BENCH_kernels_smoke.json` at the repo root), cell by
//! cell, and fails with a per-kernel delta table when any before→after
//! **speedup** regresses beyond the tolerance.
//!
//! Speedups — not raw medians — are what gates portably: each speedup is
//! the ratio of an interleaved baseline/optimized pair measured back to
//! back on the *same* host in the *same* process (see `kernel_bench`'s
//! `paired_medians_ms`), so host-to-host clock drift cancels. Raw medians
//! of the unpaired cells (`bucketize`, `nmsort_e2e`) are reported for the
//! eyeball but never fail the gate.
//!
//! Run: `cargo run --release -p tlmm-bench --bin perf_gate -- \
//!     [--baseline PATH] [--fresh PATH] [--tolerance FRAC]`
//!
//! Tolerance defaults to 0.15 (±15%); override with the flag or
//! `TLMM_PERF_TOLERANCE`.

use serde::{Deserialize, Serialize};
use tlmm_bench::{artifact, outln};
use tlmm_telemetry::RunReport;

/// Mirror of `kernel_bench`'s cell record (decode-only).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell {
    kernel: String,
    workload: String,
    n: usize,
    baseline_ms: Option<f64>,
    optimized_ms: f64,
    speedup: Option<f64>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchFile {
    git_sha: String,
    mode: String,
    warmup_iters: usize,
    measured_iters: usize,
    cells: Vec<Cell>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Delta {
    kernel: String,
    workload: String,
    n: usize,
    committed_speedup: f64,
    fresh_speedup: f64,
    /// `fresh / committed - 1`.
    delta: f64,
    verdict: String,
}

fn load(path: &str) -> BenchFile {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_gate: cannot read {path}: {e}"));
    serde::json::from_str(&text).unwrap_or_else(|e| panic!("perf_gate: cannot parse {path}: {e}"))
}

fn main() {
    let mut baseline_path = "BENCH_kernels_smoke.json".to_string();
    let mut fresh_path = artifact::results_dir()
        .join("BENCH_kernels_smoke.json")
        .display()
        .to_string();
    let mut tolerance: f64 = std::env::var("TLMM_PERF_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let val = argv.get(i + 1).cloned().unwrap_or_default();
        match argv[i].as_str() {
            "--baseline" => baseline_path = val,
            "--fresh" => fresh_path = val,
            "--tolerance" => tolerance = val.parse().expect("--tolerance"),
            other => {
                eprintln!("perf_gate: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    let committed = load(&baseline_path);
    let fresh = load(&fresh_path);
    if committed.mode != fresh.mode {
        eprintln!(
            "perf_gate: comparing mode {:?} against {:?} — cells are not \
             size-matched, refusing",
            fresh.mode, committed.mode
        );
        std::process::exit(2);
    }

    let mut text = String::new();
    outln!(
        text,
        "perf gate: {} (fresh, {}) vs {} (committed, {}), tolerance ±{:.0}%",
        fresh_path,
        fresh.git_sha,
        baseline_path,
        committed.git_sha,
        tolerance * 100.0
    );
    outln!(
        text,
        "{:<14} {:<13} {:>9} {:>10} {:>9} {:>8}  {}",
        "kernel",
        "workload",
        "n",
        "committed",
        "fresh",
        "delta",
        "verdict"
    );

    let mut deltas = Vec::new();
    let mut regressions = 0usize;
    for c in &committed.cells {
        let Some(cs) = c.speedup else { continue };
        let Some(f) = fresh
            .cells
            .iter()
            .find(|f| f.kernel == c.kernel && f.workload == c.workload && f.n == c.n)
        else {
            outln!(
                text,
                "{:<14} {:<13} {:>9} {:>10.2}x {:>9} {:>8}  MISSING in fresh run",
                c.kernel,
                c.workload,
                c.n,
                cs,
                "-",
                "-"
            );
            regressions += 1;
            continue;
        };
        let fs = f.speedup.unwrap_or(0.0);
        let delta = fs / cs - 1.0;
        let verdict = if delta < -tolerance {
            regressions += 1;
            "REGRESSED"
        } else if delta > tolerance {
            "improved (consider re-blessing the baseline)"
        } else {
            "ok"
        };
        outln!(
            text,
            "{:<14} {:<13} {:>9} {:>9.2}x {:>8.2}x {:>+7.1}%  {verdict}",
            c.kernel,
            c.workload,
            c.n,
            cs,
            fs,
            delta * 100.0
        );
        deltas.push(Delta {
            kernel: c.kernel.clone(),
            workload: c.workload.clone(),
            n: c.n,
            committed_speedup: cs,
            fresh_speedup: fs,
            delta,
            verdict: verdict.to_string(),
        });
    }

    // Unpaired cells: informational wall-clock drift only.
    outln!(text);
    outln!(text, "unpaired cells (informational, never gate):");
    for c in committed.cells.iter().filter(|c| c.speedup.is_none()) {
        if let Some(f) = fresh
            .cells
            .iter()
            .find(|f| f.kernel == c.kernel && f.workload == c.workload && f.n == c.n)
        {
            outln!(
                text,
                "{:<14} {:<13} {:>9} {:>9.3}ms {:>7.3}ms {:>+7.1}%",
                c.kernel,
                c.workload,
                c.n,
                c.optimized_ms,
                f.optimized_ms,
                (f.optimized_ms / c.optimized_ms - 1.0) * 100.0
            );
        }
    }

    outln!(text);
    if regressions > 0 {
        outln!(
            text,
            "perf gate: FAIL — {regressions} regression(s) beyond tolerance"
        );
    } else {
        outln!(
            text,
            "perf gate: OK — {} paired cell(s) within tolerance",
            deltas.len()
        );
    }

    let report = RunReport::collect("perf_gate")
        .meta("tolerance", tolerance)
        .meta("baseline", &baseline_path)
        .meta("fresh", &fresh_path)
        .meta("regressions", regressions)
        .section("deltas", &deltas);
    artifact::emit("perf_gate", &text, report).expect("emit perf_gate artifacts");
    if regressions > 0 {
        std::process::exit(1);
    }
}
