//! **F-CORES** — when does the scratchpad help? Core-count scaling.
//!
//! §V-B: "related simulations with 128 cores rather than 256 are not
//! memory-bandwidth bound and hence do not benefit from scratchpad usage".
//! This harness replays the same traces on Fig. 4 nodes with varying core
//! counts and prints the §V-A pressure next to the simulated advantage.
//!
//! A second sweep drives the Theorem 10 arbiter directly: NMsort runs
//! under the deterministic executor for each `(p, p′)` cell and the
//! effective transfer parallelism (`total bytes / makespan`) is recorded.
//! Throughput climbs while workers still have private slots and saturates
//! at the bandwidth bound once `p > p′` — the same knee as the paper's
//! 128-vs-256 observation, measured on the runtime instead of the replay.
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_corescale`

use serde::{Deserialize, Serialize};
use tlmm_analysis::table::{secs, Table};
use tlmm_bench::{
    artifact, outln, run_baseline, run_nmsort, run_sort_with_exec, SortAlgo, SortSpec,
    TABLE1_CHUNK, TABLE1_LANES, TABLE1_N,
};
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_model::bounds::bandwidth_bound_verdict;
use tlmm_scratchpad::ExecConfig;
use tlmm_telemetry::RunReport;

/// One `(p, p′)` cell of the contention sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct ContentionCell {
    /// Workers `p` (also the sort's virtual lanes).
    p: usize,
    /// Transfer slots `p′` actually granted (`min(p, nominal)`).
    p_prime: usize,
    /// Arbitrated bytes (identical demand in every cell of a row).
    total_bytes: u64,
    /// Virtual makespan of the transfer schedule.
    makespan_units: u64,
    /// Virtual units workers spent waiting for a slot.
    wait_units: u64,
    /// Effective transfer parallelism: `total_bytes / makespan` — bounded
    /// by `p′` and the knee of the sweep.
    throughput: f64,
}

/// Run the `(p, p′)` contention sweep; every cell sorts the same input.
fn contention_sweep(
    n: usize,
    ps: &[usize],
    slots_axis: &[usize],
) -> Result<Vec<Vec<ContentionCell>>, Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for &q in slots_axis {
        let mut row = Vec::new();
        for &p in ps {
            let spec = SortSpec {
                threads: 1,
                algo: SortAlgo::NmSort,
                n,
                lanes: p,
                chunk_elems: Some(n / 4 + 1),
                seed: 0xEC,
                fault_seed: None,
            };
            let p_prime = q.min(p);
            let run = run_sort_with_exec(&spec, Some(ExecConfig::deterministic(p, p_prime, 9)))?;
            let r = run.exec.expect("deterministic executor must report");
            row.push(ContentionCell {
                p,
                p_prime,
                total_bytes: r.total_bytes,
                makespan_units: r.makespan_units,
                wait_units: r.total_wait_units,
                throughput: r.throughput_units(),
            });
        }
        rows.push(row);
    }
    Ok(rows)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(TABLE1_N);
    eprintln!("[fig_corescale] sorting {n} random u64 once, replaying across core counts...");
    let base = run_baseline(n, TABLE1_LANES, 0xC0)?;
    let nm = run_nmsort(n, TABLE1_LANES, TABLE1_CHUNK.min(n / 4 + 1), 0xC0)?;

    let mut t = Table::new([
        "cores",
        "pressure",
        "mem-bound",
        "GNU (s)",
        "NMsort 8x (s)",
        "advantage",
    ]);
    let mut advantages = Vec::new();
    for cores in [32u32, 64, 128, 256, 512, 1024] {
        let m8 = MachineConfig::fig4(cores, 8.0);
        let m_base = MachineConfig::fig4(cores, 2.0);
        let v = bandwidth_bound_verdict(&m8.machine_rates(8));
        let bs = simulate_flow(&base.trace, &m_base);
        let ns = simulate_flow(&nm.trace, &m8);
        let adv = 1.0 - ns.seconds / bs.seconds;
        t.row(vec![
            cores.to_string(),
            format!("{:.2}", v.pressure()),
            if v.is_memory_bound() { "yes" } else { "no" }.to_string(),
            secs(bs.seconds),
            secs(ns.seconds),
            format!("{:.1}%", adv * 100.0),
        ]);
        advantages.push(adv);
    }
    let mut out = String::new();
    outln!(
        out,
        "\nF-CORES — scratchpad benefit vs core count (10M u64, rho=8)\n"
    );
    outln!(out, "{}", t.render());
    outln!(
        out,
        "expected shape: advantage appears once pressure exceeds 1 \
         (the paper's 128-vs-256 flip) and grows with core count."
    );

    // ---- Theorem 10 contention sweep: p workers over p' transfer slots.
    let sweep_n = (n / 25).clamp(20_000, 400_000);
    let ps = [1usize, 2, 4, 8, 16, 32];
    let slots_axis = [1usize, 2, 4, 8];
    eprintln!("[fig_corescale] contention sweep: NMsort of {sweep_n} u64 per (p, p') cell...");
    let sweep = contention_sweep(sweep_n, &ps, &slots_axis)?;

    let mut ct = Table::new(["p' \\ p", "1", "2", "4", "8", "16", "32"]);
    for row in &sweep {
        let mut cells = vec![row[0].p_prime.max(row.last().unwrap().p_prime).to_string()];
        cells.extend(row.iter().map(|c| format!("{:.2}", c.throughput)));
        ct.row(cells);
    }
    outln!(
        out,
        "\ncontention sweep — effective transfer parallelism \
         (arbitrated bytes / virtual makespan), NMsort {sweep_n} u64\n"
    );
    outln!(out, "{}", ct.render());
    outln!(
        out,
        "expected shape: each row climbs with p, then saturates at the \
         bandwidth bound once p > p' (Theorem 10's knee)."
    );

    // The knee is an acceptance criterion, not just a picture: fail the
    // artifact if saturation or the serialized bound is violated.
    for row in &sweep {
        let q = row.last().unwrap().p_prime;
        let at = |p: usize| {
            row.iter()
                .find(|c| c.p == p)
                .expect("sweep covers p")
                .throughput
        };
        assert!(
            at(32) <= q as f64 + 1e-9,
            "p'={q}: throughput {} exceeds the slot bound",
            at(32)
        );
        // Past the knee the extra workers stop buying bandwidth: by p = 32
        // (≥ 4× every p' in the sweep) throughput has converged on the slot
        // bound instead of growing with p.
        assert!(
            at(32) >= 0.75 * q as f64,
            "p'={q}: throughput {} never saturated toward the slot bound",
            at(32)
        );
        // And a post-knee doubling (16 → 32, both > p') is strictly weaker
        // than the near-linear pre-knee one (1 → 2, both ≤ p').
        if q >= 2 {
            let pre_gain = at(2) / at(1);
            let post_gain = at(32) / at(16);
            assert!(
                pre_gain >= 1.6 && pre_gain > post_gain,
                "p'={q}: pre-knee doubling ({pre_gain:.2}) must beat post-knee ({post_gain:.2})"
            );
        }
        // And the slots bought real parallelism by the knee.
        if q >= 4 {
            assert!(
                at(q) >= 2.0 * at(1),
                "p'={q}: throughput must climb up to the knee"
            );
        }
    }

    let report = RunReport::collect("fig_corescale")
        .meta("n", n)
        .meta("lanes", TABLE1_LANES)
        .meta("contention_n", sweep_n)
        .section("advantage_by_cores", &advantages)
        .section("contention", &sweep);
    artifact::emit("fig_corescale", &out, report)?;
    Ok(())
}
