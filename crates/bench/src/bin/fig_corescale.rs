//! **F-CORES** — when does the scratchpad help? Core-count scaling.
//!
//! §V-B: "related simulations with 128 cores rather than 256 are not
//! memory-bandwidth bound and hence do not benefit from scratchpad usage".
//! This harness replays the same traces on Fig. 4 nodes with varying core
//! counts and prints the §V-A pressure next to the simulated advantage.
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_corescale`

use tlmm_analysis::table::{secs, Table};
use tlmm_bench::{artifact, outln, run_baseline, run_nmsort, TABLE1_CHUNK, TABLE1_LANES, TABLE1_N};
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_model::bounds::bandwidth_bound_verdict;
use tlmm_telemetry::RunReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(TABLE1_N);
    eprintln!("[fig_corescale] sorting {n} random u64 once, replaying across core counts...");
    let base = run_baseline(n, TABLE1_LANES, 0xC0)?;
    let nm = run_nmsort(n, TABLE1_LANES, TABLE1_CHUNK.min(n / 4 + 1), 0xC0)?;

    let mut t = Table::new([
        "cores",
        "pressure",
        "mem-bound",
        "GNU (s)",
        "NMsort 8x (s)",
        "advantage",
    ]);
    let mut advantages = Vec::new();
    for cores in [32u32, 64, 128, 256, 512, 1024] {
        let m8 = MachineConfig::fig4(cores, 8.0);
        let m_base = MachineConfig::fig4(cores, 2.0);
        let v = bandwidth_bound_verdict(&m8.machine_rates(8));
        let bs = simulate_flow(&base.trace, &m_base);
        let ns = simulate_flow(&nm.trace, &m8);
        let adv = 1.0 - ns.seconds / bs.seconds;
        t.row(vec![
            cores.to_string(),
            format!("{:.2}", v.pressure()),
            if v.is_memory_bound() { "yes" } else { "no" }.to_string(),
            secs(bs.seconds),
            secs(ns.seconds),
            format!("{:.1}%", adv * 100.0),
        ]);
        advantages.push(adv);
    }
    let mut out = String::new();
    outln!(
        out,
        "\nF-CORES — scratchpad benefit vs core count (10M u64, rho=8)\n"
    );
    outln!(out, "{}", t.render());
    outln!(
        out,
        "expected shape: advantage appears once pressure exceeds 1 \
         (the paper's 128-vs-256 flip) and grows with core count."
    );

    let report = RunReport::collect("fig_corescale")
        .meta("n", n)
        .meta("lanes", TABLE1_LANES)
        .section("advantage_by_cores", &advantages);
    artifact::emit("fig_corescale", &out, report)?;
    Ok(())
}
