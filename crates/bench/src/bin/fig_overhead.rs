//! **F-OVHD** — BucketPos metadata overhead vs block size.
//!
//! §IV-D: "If B (the cache line size) is 128, then the memory overhead is
//! less than 1%, and larger cache lines reduce the relative overhead."
//! The auxiliary array per chunk has `Θ(M/B)` entries against `Θ(M)` chunk
//! elements, so the fraction scales as `1/B` (in entries per element).
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_overhead`

use tlmm_analysis::table::{count, Table};
use tlmm_bench::{artifact, check_sorted, outln};
use tlmm_core::nmsort::{nmsort, NmSortConfig};
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_telemetry::RunReport;
use tlmm_workloads::{generate, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2_000_000usize;
    let mut t = Table::new([
        "B (bytes)",
        "pivots m",
        "chunks",
        "metadata (B)",
        "data (B)",
        "overhead",
    ]);
    let mut overheads = Vec::new();
    for &b in &[64u64, 128, 256, 512, 1024] {
        let params = ScratchpadParams::new(b, 4.0, 16 << 20, 1 << 20).unwrap();
        let tl = TwoLevel::new(params);
        let input = tl.far_from_vec(generate(Workload::UniformU64, n, b));
        // The paper's overhead arithmetic: a chunk of Θ(M) elements carries
        // an auxiliary array of Θ(M/B) entries, i.e. one entry per block of
        // the chunk — overhead ≈ 1/B ("less than 1% if B is 128").
        let chunk = (params.scratchpad_capacity_elems(8) * 2 / 5).max(2);
        let cfg = NmSortConfig {
            sim_lanes: 16,
            n_pivots: Some((chunk / b as usize).max(1)),
            ..Default::default()
        };
        let r = nmsort(&tl, input, &cfg)?;
        check_sorted(r.output.as_slice_uncharged())?;
        // Metadata: one BucketPos array (m+2 u64) per chunk + BucketTot.
        let meta_bytes =
            r.chunks as u64 * (r.n_pivots as u64 + 2) * 8 + (r.n_pivots as u64 + 1) * 8;
        let data_bytes = (n * 8) as u64;
        t.row(vec![
            b.to_string(),
            count(r.n_pivots as u64),
            r.chunks.to_string(),
            count(meta_bytes),
            count(data_bytes),
            format!("{:.3}%", meta_bytes as f64 / data_bytes as f64 * 100.0),
        ]);
        overheads.push(meta_bytes as f64 / data_bytes as f64);
    }
    let mut out = String::new();
    outln!(
        out,
        "\nF-OVHD — bucket metadata overhead vs block size B (N = 2M u64)\n"
    );
    outln!(out, "{}", t.render());
    outln!(
        out,
        "expected shape: overhead ~ 1/B; around or below 1% by B = 128."
    );

    let report = RunReport::collect("fig_overhead")
        .meta("n", n)
        .section("overhead_by_block", &overheads);
    artifact::emit("fig_overhead", &out, report)?;
    Ok(())
}
