//! **F-BW** — running time vs scratchpad bandwidth expansion (ρ).
//!
//! The paper (§I-A, §V-B) reports "a linear reduction in running time for
//! our algorithm when increasing the bandwidth from two to eight times".
//! This harness sweeps ρ further to expose where the linear regime ends:
//! once the scratchpad side stops being the bottleneck, the far-memory
//! passes and the compute floor take over.
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_bandwidth`

use tlmm_analysis::table::{ratio, secs, Table};
use tlmm_bench::{artifact, outln, run_baseline, run_nmsort, TABLE1_CHUNK, TABLE1_LANES, TABLE1_N};
use tlmm_memsim::stats::Bottleneck;
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_telemetry::RunReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(TABLE1_N);
    eprintln!("[fig_bandwidth] sorting {n} random u64 once, replaying across rho...");
    let base = run_baseline(n, TABLE1_LANES, 0xF1)?;
    let nm = run_nmsort(n, TABLE1_LANES, TABLE1_CHUNK.min(n / 4 + 1), 0xF1)?;
    let base_sim = simulate_flow(&base.trace, &MachineConfig::fig4(256, 2.0));

    let mut t = Table::new([
        "rho",
        "NMsort (s)",
        "GNU (s)",
        "speedup",
        "near-bound (s)",
        "far-bound (s)",
    ]);
    let mut sweep = Vec::new();
    for rho in [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0] {
        let m = MachineConfig::fig4(256, rho);
        let sim = simulate_flow(&nm.trace, &m);
        t.row(vec![
            format!("{rho}"),
            secs(sim.seconds),
            secs(base_sim.seconds),
            ratio(base_sim.seconds / sim.seconds),
            secs(sim.seconds_bound_by(Bottleneck::NearBandwidth)),
            secs(sim.seconds_bound_by(Bottleneck::FarBandwidth)),
        ]);
        sweep.push(sim.seconds);
    }
    let mut out = String::new();
    outln!(
        out,
        "\nF-BW — NMsort simulated time vs scratchpad bandwidth (256 cores)\n"
    );
    outln!(out, "{}", t.render());
    outln!(
        out,
        "expected shape: time falls ~linearly in rho while the near-bound \
         component dominates, then flattens once far passes dominate."
    );

    let report = RunReport::collect("fig_bandwidth")
        .meta("n", n)
        .meta("lanes", TABLE1_LANES)
        .section("baseline_sim_2x", &base_sim)
        .section("nmsort_seconds_by_rho", &sweep);
    artifact::emit("fig_bandwidth", &out, report)?;
    Ok(())
}
