//! **F-PAR** — Theorem 10: parallel scratchpad sorting scales with `p′`.
//!
//! §IV-C: allowing `p′` processors to make simultaneous block transfers
//! divides both Theorem 6 terms by `p′`. This harness runs the parallel
//! scratchpad sample sort at increasing lane counts on the Fig. 4 machine
//! and reports simulated time, the trace's per-lane critical path (the
//! model's "block-transfer steps"), and the Theorem 10 prediction.
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_parallel`

use tlmm_analysis::table::{count, secs, Table};
use tlmm_bench::{artifact, check_sorted, outln};
use tlmm_core::parsort::{par_scratchpad_sort, ParSortConfig};
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_model::theorems;
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_telemetry::RunReport;
use tlmm_workloads::{generate, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2_000_000usize;
    let params = ScratchpadParams::new(64, 4.0, 16 << 20, 2 << 20).unwrap();
    let mut out = String::new();
    outln!(
        out,
        "\nF-PAR — parallel scratchpad sample sort vs p' (N = 2M, rho = 4)\n"
    );
    let mut t = Table::new([
        "p'",
        "sim (s)",
        "max-lane steps",
        "Thm 10 steps",
        "measured/pred",
    ]);
    let mut ratios = Vec::new();
    for lanes in [1usize, 2, 4, 8, 16, 32, 64] {
        let tl = TwoLevel::new(params);
        let input = tl.far_from_vec(generate(Workload::UniformU64, n, 4));
        let (sorted, _) = par_scratchpad_sort(
            &tl,
            input,
            &ParSortConfig {
                lanes,
                parallel: true,
                ..Default::default()
            },
        )?;
        check_sorted(sorted.as_slice_uncharged())?;
        let trace = tl.take_trace();
        // Critical path in block-transfer steps: the busiest lane's total
        // blocks across the whole run.
        let steps: u64 = trace
            .lane_totals()
            .iter()
            .map(|l| {
                l.far_bytes() / params.block_bytes + l.near_bytes() / params.near_block_bytes()
            })
            .max()
            .unwrap_or(0);
        let pred = theorems::theorem10_parallel_sort(&params, n as u64, 8, lanes as u64);
        let sim = simulate_flow(&trace, &MachineConfig::fig4(lanes.max(4) as u32, 4.0));
        t.row(vec![
            lanes.to_string(),
            secs(sim.seconds),
            count(steps),
            format!("{:.0}", pred.far_blocks + pred.near_blocks),
            format!("{:.2}", steps as f64 / (pred.far_blocks + pred.near_blocks)),
        ]);
        ratios.push(steps as f64 / (pred.far_blocks + pred.near_blocks));
    }
    outln!(out, "{}", t.render());
    outln!(
        out,
        "expected shape: simulated time and per-lane steps fall with p' \
         (Theorem 10's division); the constant drifts up at high p' from \
         the serial residue (pivot handling, per-bucket bookkeeping) that \
         the asymptotic analysis hides."
    );

    let report = RunReport::collect("fig_parallel")
        .meta("n", n)
        .section("measured_over_predicted", &ratios);
    artifact::emit("fig_parallel", &out, report)?;
    Ok(())
}
