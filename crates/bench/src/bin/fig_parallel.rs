//! **F-PAR** — Theorem 10: parallel scratchpad sorting scales with `p′`.
//!
//! §IV-C: allowing `p′` processors to make simultaneous block transfers
//! divides both Theorem 6 terms by `p′`. Two sweeps:
//!
//! * the parallel scratchpad sample sort at increasing lane counts,
//!   reporting simulated time, the trace's per-lane critical path (the
//!   model's "block-transfer steps"), and the Theorem 10 prediction;
//! * every registered [`Engine`] (or a `--engines a,b` subset, parsed
//!   through the registry — no hand-rolled algo-name strings) through the
//!   standard harness with host threads from the worker pool, replayed at
//!   1 and 8 simulated cores so the lane-scaling each engine actually
//!   achieves sits next to the theorem's idealized division.
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_parallel [-- --engines nmsort,spms]`

use tlmm_analysis::table::{count, secs, Table};
use tlmm_bench::{artifact, check_sorted, outln, run_sort, Engine, SortSpec};
use tlmm_core::parsort::{par_scratchpad_sort, ParSortConfig};
use tlmm_core::pool::host_threads;
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_model::theorems;
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_telemetry::RunReport;
use tlmm_workloads::{generate, Workload};

/// `(engine, sim 1-core seconds, sim 8-core seconds)` sweep rows.
type SweepRow = (Engine, f64, f64);

/// Registry sweep: each engine once through [`run_sort`] with 8 virtual
/// lanes and real host fan-out, then the recorded trace replayed at 1 and
/// 8 simulated cores. Returns `(engine, sim_1c, sim_8c)` rows.
fn engine_sweep(
    engines: &[Engine],
    n: usize,
    threads: usize,
) -> Result<Vec<SweepRow>, Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for &engine in engines {
        let run = run_sort(&SortSpec {
            algo: engine,
            n,
            lanes: 8,
            threads,
            chunk_elems: None,
            seed: 4,
            fault_seed: None,
        })?;
        let s1 = simulate_flow(&run.trace, &MachineConfig::fig4(1, 4.0)).seconds;
        let s8 = simulate_flow(&run.trace, &MachineConfig::fig4(8, 4.0)).seconds;
        rows.push((engine, s1, s8));
    }
    Ok(rows)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2_000_000usize;
    let params = ScratchpadParams::new(64, 4.0, 16 << 20, 2 << 20).unwrap();

    // `--engines a,b,c` filters the registry sweep; names must parse.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let engines: Vec<Engine> = match argv.iter().position(|a| a == "--engines") {
        Some(i) => argv
            .get(i + 1)
            .map(|list| {
                list.split(',')
                    .map(|s| {
                        Engine::parse(s.trim())
                            .unwrap_or_else(|| panic!("fig_parallel: unknown engine {s:?}"))
                    })
                    .collect()
            })
            .unwrap_or_default(),
        None => Engine::ALL.to_vec(),
    };

    let mut out = String::new();
    outln!(
        out,
        "\nF-PAR — parallel scratchpad sample sort vs p' (N = 2M, rho = 4)\n"
    );
    let mut t = Table::new([
        "p'",
        "sim (s)",
        "max-lane steps",
        "Thm 10 steps",
        "measured/pred",
    ]);
    let mut ratios = Vec::new();
    for lanes in [1usize, 2, 4, 8, 16, 32, 64] {
        let tl = TwoLevel::new(params);
        let input = tl.far_from_vec(generate(Workload::UniformU64, n, 4));
        let (sorted, _) = par_scratchpad_sort(
            &tl,
            input,
            &ParSortConfig {
                lanes,
                ..Default::default()
            },
        )?;
        check_sorted(sorted.as_slice_uncharged())?;
        let trace = tl.take_trace();
        // Critical path in block-transfer steps: the busiest lane's total
        // blocks across the whole run.
        let steps: u64 = trace
            .lane_totals()
            .iter()
            .map(|l| {
                l.far_bytes() / params.block_bytes + l.near_bytes() / params.near_block_bytes()
            })
            .max()
            .unwrap_or(0);
        let pred = theorems::theorem10_parallel_sort(&params, n as u64, 8, lanes as u64);
        let sim = simulate_flow(&trace, &MachineConfig::fig4(lanes.max(4) as u32, 4.0));
        t.row(vec![
            lanes.to_string(),
            secs(sim.seconds),
            count(steps),
            format!("{:.0}", pred.far_blocks + pred.near_blocks),
            format!("{:.2}", steps as f64 / (pred.far_blocks + pred.near_blocks)),
        ]);
        ratios.push(steps as f64 / (pred.far_blocks + pred.near_blocks));
    }
    outln!(out, "{}", t.render());
    outln!(
        out,
        "expected shape: simulated time and per-lane steps fall with p' \
         (Theorem 10's division); the constant drifts up at high p' from \
         the serial residue (pivot handling, per-bucket bookkeeping) that \
         the asymptotic analysis hides."
    );

    // ---- Registry sweep: what each engine's trace does with 8 cores.
    let threads = host_threads();
    eprintln!(
        "[fig_parallel] registry sweep: {} engines, {threads} host threads...",
        engines.len()
    );
    let rows = engine_sweep(&engines, n, threads)?;
    let mut et = Table::new(["engine", "sim 1c (s)", "sim 8c (s)", "scaling"]);
    let mut scalings = Vec::new();
    for (engine, s1, s8) in &rows {
        et.row(vec![
            engine.name().to_string(),
            secs(*s1),
            secs(*s8),
            format!("{:.2}x", s1 / s8),
        ]);
        scalings.push(s1 / s8);
    }
    outln!(
        out,
        "\nRegistry engines, 8 lanes, {threads} host thread(s), replayed at 1 vs 8 cores:\n"
    );
    outln!(out, "{}", et.render());
    outln!(
        out,
        "expected shape: the lane-parallel engines approach the Theorem 10 \
         division (bounded by the serial residue); per-engine wall clock \
         and the full thread axis live in BENCH_parallel.json."
    );

    let report = RunReport::collect("fig_parallel")
        .meta("n", n)
        .meta("host_threads", threads)
        .section("measured_over_predicted", &ratios)
        .section("engine_core_scaling", &scalings);
    artifact::emit("fig_parallel", &out, report)?;
    Ok(())
}
