//! Diagnostic: per-phase simulated time breakdown for one NMsort run,
//! plus the run's own wall-clock telemetry span tree.
//!
//! Run: `cargo run --release -p tlmm-bench --bin phases [N]`

use tlmm_analysis::table::{secs, Table};
use tlmm_bench::{artifact, outln, run_baseline, run_nmsort, TABLE1_LANES};
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_telemetry::RunReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let nm = run_nmsort(n, TABLE1_LANES, n / 4 + 1, 0xD1)?;
    let m = MachineConfig::fig4(256, 8.0);
    let sim = simulate_flow(&nm.trace, &m);
    let mut out = String::new();
    outln!(
        out,
        "NMsort total: {:.6} s over {} phases",
        sim.seconds,
        sim.phases.len()
    );
    let mut t = Table::new(["phase", "total (s)", "bottleneck sample"]);
    for (name, s) in sim.phase_summary() {
        let b = sim
            .phases
            .iter()
            .filter(|p| p.name == name)
            .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .map(|p| format!("{:?}", p.bottleneck))
            .unwrap_or_default();
        t.row(vec![name, secs(s), b]);
    }
    outln!(out, "{}", t.render());

    let base = run_baseline(n, TABLE1_LANES, 0xD1)?;
    let bsim = simulate_flow(&base.trace, &MachineConfig::fig4(256, 2.0));
    outln!(out, "baseline total: {:.6} s", bsim.seconds);
    let mut t = Table::new(["phase", "total (s)"]);
    for (name, s) in bsim.phase_summary() {
        t.row(vec![name, secs(s)]);
    }
    outln!(out, "{}", t.render());

    let report = RunReport::collect("phases")
        .meta("n", n)
        .meta("lanes", TABLE1_LANES)
        .section("nmsort_sim_8x", &sim)
        .section("baseline_sim_2x", &bsim);
    // The measured span tree is this diagnostic's whole point: show it.
    outln!(out, "host wall-clock span tree (telemetry):\n");
    outln!(out, "{}", report.render_tree());
    artifact::emit("phases", &out, report)?;
    Ok(())
}
