//! **F-ENERGY** — memory-system energy: NMsort vs the DRAM-only baseline.
//!
//! The architecture's second selling point (§I, §VI-A): stacked near memory
//! moves bytes at a fraction of the off-package energy. The byte traffic
//! that Table I counts becomes joules under the per-byte model of
//! `tlmm_memsim::energy`. The outcome is instructive: NMsort halves the
//! expensive DDR traffic but moves ~2.5 bytes through the scratchpad per
//! DDR byte saved, so the energy win tracks how cheap the near byte really
//! is — the sweep below varies that coefficient.
//!
//! Run: `cargo run --release -p tlmm-bench --bin fig_energy`

use tlmm_analysis::table::{ratio, Table};
use tlmm_bench::{artifact, outln, run_baseline, run_nmsort, TABLE1_CHUNK, TABLE1_LANES, TABLE1_N};
use tlmm_memsim::energy::{estimate_energy, EnergyModel};
use tlmm_telemetry::RunReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(TABLE1_N);
    eprintln!("[fig_energy] sorting {n} random u64 once per algorithm...");
    let base = run_baseline(n, TABLE1_LANES, 0xE0)?;
    let nm = run_nmsort(n, TABLE1_LANES, TABLE1_CHUNK.min(n / 4 + 1), 0xE0)?;
    let model = EnergyModel::default();
    let eb = estimate_energy(&base.trace, &model);
    let en = estimate_energy(&nm.trace, &model);

    let mut t = Table::new(["component", "GNU Sort (mJ)", "NMsort (mJ)"]);
    let mj = |j: f64| format!("{:.2}", j * 1e3);
    t.row(vec!["far memory".to_string(), mj(eb.far_j), mj(en.far_j)]);
    t.row(vec![
        "near memory".to_string(),
        mj(eb.near_j),
        mj(en.near_j),
    ]);
    t.row(vec![
        "on-chip network".to_string(),
        mj(eb.noc_j),
        mj(en.noc_j),
    ]);
    t.row(vec![
        "compute".to_string(),
        mj(eb.compute_j),
        mj(en.compute_j),
    ]);
    t.row(vec![
        "TOTAL".to_string(),
        mj(eb.total_j()),
        mj(en.total_j()),
    ]);
    let mut out = String::new();
    outln!(out, "\nF-ENERGY — memory-system energy, {n} random u64 (energy model: DDR 160 pJ/B, stacked 48 pJ/B)\n");
    outln!(out, "{}", t.render());
    outln!(
        out,
        "energy advantage: {} (data movement is {:.0}% of GNU sort's budget, {:.0}% of NMsort's)",
        ratio(eb.total_j() / en.total_j()),
        eb.data_movement_fraction() * 100.0,
        en.data_movement_fraction() * 100.0,
    );

    // Sensitivity: the advantage is governed by the near-byte energy.
    outln!(
        out,
        "\nsensitivity to the near-memory energy coefficient:\n"
    );
    let mut t = Table::new(["near pJ/B", "GNU (mJ)", "NMsort (mJ)", "advantage"]);
    let mut sensitivity = Vec::new();
    for near_pj in [96.0, 48.0, 24.0, 12.0, 6.0] {
        let m = EnergyModel {
            near_pj_per_byte: near_pj,
            ..EnergyModel::default()
        };
        let eb = estimate_energy(&base.trace, &m);
        let en = estimate_energy(&nm.trace, &m);
        t.row(vec![
            format!("{near_pj}"),
            format!("{:.2}", eb.total_j() * 1e3),
            format!("{:.2}", en.total_j() * 1e3),
            ratio(eb.total_j() / en.total_j()),
        ]);
        sensitivity.push(eb.total_j() / en.total_j());
    }
    outln!(out, "{}", t.render());
    outln!(
        out,
        "shape: at DDR-like near energy the extra scratchpad passes spend \
         what the DDR savings buy; as stacking pushes pJ/B down, NMsort's \
         energy advantage approaches the 2x DDR-traffic ratio."
    );

    let report = RunReport::collect("fig_energy")
        .meta("n", n)
        .meta("lanes", TABLE1_LANES)
        .section("baseline_ledger", &base.ledger)
        .section("nmsort_ledger", &nm.ledger)
        .section("energy_advantage_by_near_pj", &sensitivity);
    artifact::emit("fig_energy", &out, report)?;
    Ok(())
}
