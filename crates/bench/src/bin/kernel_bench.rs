//! **Kernel bench** — host wall-clock before→after deltas for the kernel
//! layer (DESIGN.md §10).
//!
//! Four cells × four workload shapes:
//!
//! * `run_formation` — Phase-1 style chunk sorting: `sort_unstable` per run
//!   (the pre-kernel reference) vs [`tlmm_core::kernels::sort_kernel`]
//!   (MSD hybrid radix for `u64`).
//! * `kway_merge` — k-way merge of sorted runs: the original branchy
//!   loser tree vs the branchless rewrite.
//! * `bucketize` — `BucketPos` extraction over sorted chunks (no
//!   before/after pair: the kernel layer doesn't change it; the median is
//!   recorded to catch regressions).
//! * `nmsort_e2e` — end-to-end NMsort wall clock at 1M (and 10M in
//!   `--full10m` mode) through the standard harness.
//!
//! Methodology: every measurement clones pristine input outside the timed
//! region, runs `WARMUP` untimed iterations, then reports the **median of
//! `MEASURE` timed iterations** — medians are robust to one-off
//! scheduling noise without discarding real variance (see DESIGN.md §10).
//!
//! Output: `BENCH_kernels.json` at the working directory root (the
//! committed before→after record) and `results/kernel_bench.{txt,json}`
//! via the artifact plumbing.
//!
//! Run: `cargo run --release -p tlmm-bench --bin kernel_bench [-- --smoke | --full10m]`
//!
//! `--smoke` shrinks sizes for CI and additionally asserts the optimized
//! kernels agree element-for-element with the reference implementations.

use std::time::Instant;
use tlmm_bench::{artifact, outln, run_sort, SortAlgo, SortSpec};
use tlmm_core::kernels::reference::{form_runs_ref, merge_into_slice_ref};
use tlmm_core::kernels::sort_kernel;
use tlmm_core::losertree::merge_into_slice;
use tlmm_core::{bucketize, extsort::RegionLevel};
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_telemetry::RunReport;
use tlmm_workloads::{generate, Workload};

use serde::Serialize;

/// Sorted-run length for the formation cell: the external mergesort's
/// default at experiment scale (`Z / (2·elem·lanes)` = 4 MiB / 128).
const RUN_ELEMS: usize = 32_768;
/// Merge fan-in for the k-way cell (the experiments' typical fanout).
const KWAY: usize = 16;

#[derive(Serialize)]
struct Cell {
    kernel: String,
    workload: String,
    n: usize,
    /// Median ms of the pre-kernel implementation (absent for cells with
    /// no before/after pair).
    baseline_ms: Option<f64>,
    optimized_ms: f64,
    /// `baseline_ms / optimized_ms` when a baseline exists.
    speedup: Option<f64>,
}

#[derive(Serialize)]
struct BenchFile {
    git_sha: String,
    mode: String,
    warmup_iters: usize,
    measured_iters: usize,
    cells: Vec<Cell>,
}

struct Timing {
    warmup: usize,
    measure: usize,
}

/// Median of `timing.measure` timed iterations after `timing.warmup`
/// untimed ones. `prep` runs outside the timed region every iteration.
fn median_ms<S, P: FnMut() -> S, F: FnMut(S)>(timing: &Timing, mut prep: P, mut work: F) -> f64 {
    for _ in 0..timing.warmup {
        work(prep());
    }
    let mut samples = Vec::with_capacity(timing.measure);
    for _ in 0..timing.measure {
        let state = prep();
        let t0 = Instant::now();
        work(state);
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    median(samples)
}

/// Interleaved before/after medians: each measured iteration times the
/// baseline and the optimized kernel back to back, so slow load drift on a
/// shared host hits both sides of the ratio equally (DESIGN.md §10).
///
/// Returns `(median_base_ms, median_opt_ms, median_speedup)`. The speedup
/// is the **median of the per-iteration ratios**, not the ratio of the
/// medians: a transient stall (frequency throttle, scheduler migration)
/// lands inside one iteration and skews both of that iteration's timings
/// together, so its ratio stays sane while the ratio-of-medians can pair a
/// stalled sample with a clean one. The perf gate compares these ratios.
fn paired_medians_ms<S, P, A, B>(
    timing: &Timing,
    mut prep: P,
    mut base: A,
    mut opt: B,
) -> (f64, f64, f64)
where
    P: FnMut() -> S,
    A: FnMut(S),
    B: FnMut(S),
{
    for _ in 0..timing.warmup {
        base(prep());
        opt(prep());
    }
    let mut bs = Vec::with_capacity(timing.measure);
    let mut os = Vec::with_capacity(timing.measure);
    let mut ratios = Vec::with_capacity(timing.measure);
    for _ in 0..timing.measure {
        let state = prep();
        let t0 = Instant::now();
        base(state);
        let b = t0.elapsed().as_secs_f64() * 1e3;
        let state = prep();
        let t0 = Instant::now();
        opt(state);
        let o = t0.elapsed().as_secs_f64() * 1e3;
        bs.push(b);
        os.push(o);
        ratios.push(b / o);
    }
    (median(bs), median(os), median(ratios))
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn shapes() -> [(&'static str, Workload); 4] {
    [
        ("uniform", Workload::UniformU64),
        ("sawtooth", Workload::Sawtooth(8192)),
        ("few_distinct", Workload::FewDistinct(64)),
        ("zipf", Workload::Zipf(1.2)),
    ]
}

/// Optimized run formation: `sort_kernel` per chunk (radix for u64).
fn form_runs_opt(data: &mut [u64], run_elems: usize) {
    for run in data.chunks_mut(run_elems.max(2)) {
        sort_kernel(run);
    }
}

fn run_formation_cells(n: usize, timing: &Timing, smoke: bool, cells: &mut Vec<Cell>) {
    for (name, w) in shapes() {
        let input = generate(w, n, 0xF0);
        if smoke {
            let mut a = input.clone();
            let mut b = input.clone();
            form_runs_ref(&mut a, RUN_ELEMS);
            form_runs_opt(&mut b, RUN_ELEMS);
            assert_eq!(a, b, "run formation kernels disagree on {name}");
        }
        let (base, opt, speedup) = paired_medians_ms(
            timing,
            || input.clone(),
            |mut v| form_runs_ref(&mut v, RUN_ELEMS),
            |mut v| form_runs_opt(&mut v, RUN_ELEMS),
        );
        cells.push(Cell {
            kernel: "run_formation".into(),
            workload: name.into(),
            n,
            baseline_ms: Some(base),
            optimized_ms: opt,
            speedup: Some(speedup),
        });
    }
}

fn kway_merge_cells(n: usize, timing: &Timing, smoke: bool, cells: &mut Vec<Cell>) {
    for (name, w) in shapes() {
        let mut data = generate(w, n, 0xF1);
        let run_len = n.div_ceil(KWAY);
        for run in data.chunks_mut(run_len) {
            run.sort_unstable();
        }
        let runs: Vec<&[u64]> = data.chunks(run_len).collect();
        if smoke {
            let mut a = vec![0u64; n];
            let mut b = vec![0u64; n];
            let ca = merge_into_slice_ref(&runs, &mut a);
            let cb = merge_into_slice(&runs, &mut b);
            assert_eq!(a, b, "merge kernels disagree on {name}");
            assert_eq!(ca, cb, "merge comparison counts diverge on {name}");
            // And the SIMD pre-merge path must be invisible: same output,
            // same comparison ledger, with vector dispatch forced off.
            let prior = tlmm_core::kernels::simd::enabled();
            tlmm_core::kernels::simd::set_enabled(false);
            let mut c = vec![0u64; n];
            let cc = merge_into_slice(&runs, &mut c);
            tlmm_core::kernels::simd::set_enabled(prior);
            assert_eq!(b, c, "merge output changed with SIMD disabled on {name}");
            assert_eq!(cb, cc, "merge counts changed with SIMD disabled on {name}");
        }
        let (base, opt, speedup) = paired_medians_ms(
            timing,
            || vec![0u64; n],
            |mut out| {
                merge_into_slice_ref(&runs, &mut out);
            },
            |mut out| {
                merge_into_slice(&runs, &mut out);
            },
        );
        cells.push(Cell {
            kernel: "kway_merge".into(),
            workload: name.into(),
            n,
            baseline_ms: Some(base),
            optimized_ms: opt,
            speedup: Some(speedup),
        });
    }
}

fn bucketize_cells(n: usize, timing: &Timing, cells: &mut Vec<Cell>) {
    let tl = TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 22, 1 << 16).unwrap());
    for (name, w) in shapes() {
        let mut sorted = generate(w, n, 0xF2);
        sorted.sort_unstable();
        // 63 pivots ≈ the experiments' bucket counts; dedup for the
        // duplicate-heavy shapes (pivots must be strictly increasing).
        let mut pivots: Vec<u64> = (1..64u64)
            .map(|i| sorted[(i as usize * n / 64).min(n - 1)])
            .collect();
        pivots.dedup();
        let opt = median_ms(
            timing,
            || (),
            |()| {
                bucketize::bucket_positions(&tl, RegionLevel::Near, &sorted, &pivots, 8, 1);
            },
        );
        cells.push(Cell {
            kernel: "bucketize".into(),
            workload: name.into(),
            n,
            baseline_ms: None,
            optimized_ms: opt,
            speedup: None,
        });
    }
}

fn nmsort_cells(sizes: &[usize], timing: &Timing, cells: &mut Vec<Cell>) {
    for &n in sizes {
        for (name, _) in shapes().into_iter().take(1) {
            // End-to-end is dominated by the uniform case the paper
            // evaluates; one shape keeps full runs under a minute.
            let opt = median_ms(
                timing,
                || (),
                |()| {
                    run_sort(&SortSpec {
                        threads: 1,
                        algo: SortAlgo::NmSort,
                        n,
                        lanes: 8,
                        chunk_elems: None,
                        seed: 0xF3,
                        fault_seed: None,
                    })
                    .expect("nmsort e2e cell failed");
                },
            );
            cells.push(Cell {
                kernel: "nmsort_e2e".into(),
                workload: name.into(),
                n,
                baseline_ms: None,
                optimized_ms: opt,
                speedup: None,
            });
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full10m = args.iter().any(|a| a == "--full10m");
    let mode = if smoke { "smoke" } else { "full" };

    let (n, nmsort_sizes, timing) = if smoke {
        // 100k keeps a smoke run in CI seconds while giving each paired
        // cell multiple full runs/chunks to time — at 20k the speedup
        // ratios were too noisy for a ±15% gate.
        (
            100_000,
            vec![100_000],
            Timing {
                warmup: 1,
                measure: 9,
            },
        )
    } else {
        let mut sizes = vec![1_000_000];
        if full10m {
            sizes.push(10_000_000);
        }
        (
            1_000_000,
            sizes,
            Timing {
                warmup: 2,
                measure: 7,
            },
        )
    };

    eprintln!(
        "[kernel_bench] mode={mode}, n={n}, median of {}",
        timing.measure
    );
    tlmm_telemetry::reset();

    let mut cells = Vec::new();
    run_formation_cells(n, &timing, smoke, &mut cells);
    kway_merge_cells(n, &timing, smoke, &mut cells);
    bucketize_cells(n, &timing, &mut cells);
    nmsort_cells(&nmsort_sizes, &timing, &mut cells);

    // Rendered table.
    let mut text = String::new();
    outln!(
        text,
        "Kernel wall-clock bench ({mode}): median of {} after {} warmup",
        timing.measure,
        timing.warmup
    );
    outln!(
        text,
        "{:<14} {:<13} {:>10} {:>12} {:>12} {:>8}",
        "kernel",
        "workload",
        "n",
        "baseline ms",
        "optimized ms",
        "speedup"
    );
    for c in &cells {
        outln!(
            text,
            "{:<14} {:<13} {:>10} {:>12} {:>12.3} {:>8}",
            c.kernel,
            c.workload,
            c.n,
            c.baseline_ms.map_or("-".into(), |b| format!("{b:.3}")),
            c.optimized_ms,
            c.speedup.map_or("-".into(), |s| format!("{s:.2}x"))
        );
    }
    if smoke {
        outln!(
            text,
            "smoke agreement checks: OK (kernels match references)"
        );
    }

    let file = BenchFile {
        git_sha: artifact::git_sha(),
        mode: mode.into(),
        warmup_iters: timing.warmup,
        measured_iters: timing.measure,
        cells,
    };
    // Full mode refreshes the committed trajectory file; smoke mode writes
    // its (smaller-n) cells next to the other CI artifacts so the perf
    // gate can diff them against the committed smoke baseline without
    // ever clobbering the full-mode record.
    let bench_path = if smoke {
        let dir = artifact::results_dir();
        std::fs::create_dir_all(&dir)?;
        dir.join("BENCH_kernels_smoke.json")
    } else {
        std::path::PathBuf::from("BENCH_kernels.json")
    };
    std::fs::write(&bench_path, serde::json::to_string_pretty(&file)? + "\n")?;
    outln!(text, "wrote {}", bench_path.display());

    let report = RunReport::collect("kernel_bench")
        .meta("mode", mode)
        .meta("n", n.to_string());
    artifact::emit("kernel_bench", &text, report)?;
    Ok(())
}
