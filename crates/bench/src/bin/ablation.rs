//! **Ablations** — the design choices DESIGN.md calls out.
//!
//! 1. *Chunk size*: NMsort's Phase-1 chunk bound trades per-chunk sort depth
//!    against Phase-2 merge width.
//! 2. *Pivot count*: more buckets → finer batches but more metadata.
//! 3. *DMA overlap*: §VII — overlapping ingest transfers with compute.
//! 4. *Batched vs eager buckets*: the paper's key innovation; the eager
//!    variant is approximated by the per-bucket random-write cost model of
//!    the sequential sort's scan.
//!
//! Run: `cargo run --release -p tlmm-bench --bin ablation`

use tlmm_analysis::table::{count, secs, Table};
use tlmm_bench::{artifact, check_sorted, outln, run_nmsort, run_nmsort_dma};
use tlmm_core::nmsort::{nmsort, ChunkSorter, NmSortConfig};
use tlmm_memsim::{simulate_flow, MachineConfig};
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;
use tlmm_telemetry::RunReport;
use tlmm_workloads::{generate, Workload};

fn nmsort_with(
    n: usize,
    chunk: usize,
    pivots: Option<usize>,
) -> Result<(f64, u64, u64), Box<dyn std::error::Error>> {
    let params = ScratchpadParams::new(64, 4.0, 64 << 20, 4 << 20).unwrap();
    let tl = TwoLevel::new(params);
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, 3));
    let cfg = NmSortConfig {
        sim_lanes: 64,
        chunk_elems: Some(chunk),
        n_pivots: pivots,
        ..Default::default()
    };
    let r = nmsort(&tl, input, &cfg)?;
    check_sorted(r.output.as_slice_uncharged())?;
    let sim = simulate_flow(&tl.take_trace(), &MachineConfig::fig4(64, 4.0));
    Ok((sim.seconds, sim.far_accesses, sim.near_accesses))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4_000_000usize;
    let mut out = String::new();

    outln!(
        out,
        "\nAblation 1 — chunk size (N = 4M, M = 64 MiB, rho = 4)\n"
    );
    let mut t = Table::new(["chunk elems", "sim (s)", "DRAM acc", "scratch acc"]);
    for &chunk in &[250_000usize, 500_000, 1_000_000, 2_000_000, 4_000_000] {
        let (s, fa, na) = nmsort_with(n, chunk, None)?;
        t.row(vec![count(chunk as u64), secs(s), count(fa), count(na)]);
    }
    outln!(out, "{}", t.render());

    outln!(out, "\nAblation 2 — pivot count (chunk = 1M)\n");
    let mut t = Table::new(["pivots", "sim (s)", "DRAM acc", "scratch acc"]);
    for &m in &[64usize, 512, 4096, 32_768] {
        let (s, fa, na) = nmsort_with(n, 1_000_000, Some(m))?;
        t.row(vec![count(m as u64), secs(s), count(fa), count(na)]);
    }
    outln!(out, "{}", t.render());

    outln!(
        out,
        "\nAblation 3 — DMA overlap of Phase-1 transfers (N = 4M)\n"
    );
    let plain = run_nmsort(n, 64, 1_000_000, 9)?;
    let dma = run_nmsort_dma(n, 64, 1_000_000, 9)?;
    let m = MachineConfig::fig4(64, 4.0);
    let sp = simulate_flow(&plain.trace, &m);
    let sd = simulate_flow(&dma.trace, &m);
    let dma_gain = 1.0 - sd.seconds / sp.seconds;
    let mut t = Table::new(["variant", "sim (s)", "gain"]);
    t.row(vec![
        "blocking transfers".into(),
        secs(sp.seconds),
        String::new(),
    ]);
    t.row(vec![
        "DMA-overlapped".to_string(),
        secs(sd.seconds),
        format!("{:.1}%", dma_gain * 100.0),
    ]);
    outln!(out, "{}", t.render());
    outln!(
        out,
        "the paper's prototype 'simply waits for the transfer to complete', \
         so 'results ... could be nontrivially improved' — this quantifies it."
    );

    outln!(
        out,
        "\nAblation 4 — chunk sorter (Corollary 7: mergesort vs quicksort in the scratchpad)\n"
    );
    let mut t = Table::new(["sorter", "rho", "sim (s)", "scratch acc"]);
    for &rho in &[2.0f64, 4.0, 8.0, 16.0] {
        for (name, sorter) in [
            ("multiway merge", ChunkSorter::MultiwayMerge),
            ("quicksort", ChunkSorter::Quicksort),
        ] {
            let params = ScratchpadParams::new(64, rho, 64 << 20, 4 << 20).unwrap();
            let tl = TwoLevel::new(params);
            let input = tl.far_from_vec(generate(Workload::UniformU64, n, 13));
            let cfg = NmSortConfig {
                sim_lanes: 64,
                chunk_elems: Some(1_000_000),
                chunk_sorter: sorter,
                ..Default::default()
            };
            let r = nmsort(&tl, input, &cfg)?;
            check_sorted(r.output.as_slice_uncharged())?;
            let sim = simulate_flow(&tl.take_trace(), &MachineConfig::fig4(64, rho));
            t.row(vec![
                name.to_string(),
                format!("{rho}"),
                secs(sim.seconds),
                count(sim.near_accesses),
            ]);
        }
    }
    outln!(out, "{}", t.render());
    outln!(
        out,
        "Corollary 7: quicksort-in-scratchpad is optimal only once rho = \
         Omega(lg M/Z); at small rho the multiway merge wins."
    );

    let report = RunReport::collect("ablation")
        .meta("n", n)
        .section("dma_sim_blocking", &sp)
        .section("dma_sim_overlapped", &sd)
        .section("dma_gain", &dma_gain);
    artifact::emit("ablation", &out, report)?;
    Ok(())
}
