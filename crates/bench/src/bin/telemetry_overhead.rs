//! **Telemetry overhead** — what the observability layer costs on a real
//! 1M-element NMsort run.
//!
//! The always-on machinery (counters, histograms, spans — sink disabled,
//! the production default) cannot be compiled out, so its cost is bounded
//! from the inside: microbenchmark each primitive, multiply by the event
//! volumes the run actually produced (the histograms count their own
//! record calls), and compare against the run's wall clock. The JSONL
//! sink's cost *is* directly measurable: the binary re-executes itself
//! with `TLMM_TELEMETRY` pointing at a scratch file and times the same
//! workload. The flight-recorder budget is checked twice: single-threaded
//! and again at `threads > 1`, so the <5% bound holds with multiple host
//! workers pushing ring events concurrently.
//!
//! Run: `cargo run --release -p tlmm-bench --bin telemetry_overhead`

use std::hint::black_box;
use std::time::Instant;
use tlmm_bench::{artifact, outln, run_sort, SortAlgo, SortSpec};
use tlmm_telemetry::RunReport;

const N: usize = 1_000_000;
const LANES: usize = 64;
const CHUNK: usize = 250_000;
/// Host threads for the contended flight-recorder cell: enough workers
/// that ring pushes genuinely interleave even on small hosts.
const CONTENDED_THREADS: usize = 4;

/// One measured workload run on `threads` host threads; returns wall
/// seconds (best of `reps`).
fn time_workload_threads(reps: usize, threads: usize) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..reps {
        let t0 = Instant::now();
        run_sort(&SortSpec {
            algo: SortAlgo::NmSort,
            n: N,
            lanes: LANES,
            threads,
            chunk_elems: Some(CHUNK),
            seed: 0x7E + rep as u64,
            fault_seed: None,
        })
        .expect("nmsort run");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Single-threaded workload (the original overhead cells).
fn time_workload(reps: usize) -> f64 {
    time_workload_threads(reps, 1)
}

/// Nanoseconds per operation over `iters` calls of `f`.
fn ns_per_op(iters: u64, f: impl Fn(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        f(i);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Child mode: run the workload once with whatever sink the environment
    // configured and print the wall seconds (parsed by the parent).
    if std::env::args().nth(1).as_deref() == Some("--measure-child") {
        println!("{}", time_workload(2));
        return Ok(());
    }

    eprintln!("[telemetry_overhead] timing {N}-element NMsort (sink off)...");
    tlmm_telemetry::reset();
    let wall = time_workload(2);
    // Event volumes of one run: the transfer histograms count exactly the
    // charge calls (each of which also does two counter adds), the DMA
    // counter counts the DMA-issue hook, and the span store holds every
    // phase span the run opened.
    let report = RunReport::collect("telemetry_overhead_probe");
    // Transfer histograms use the per-sample record path; everything else
    // (bucket-size distributions) goes through the batched record_iter.
    let hist_records: u64 = report
        .histograms
        .iter()
        .filter(|h| h.name.contains("transfer_bytes"))
        .map(|h| h.count)
        .sum();
    let hist_batched: u64 = report
        .histograms
        .iter()
        .filter(|h| !h.name.contains("transfer_bytes"))
        .map(|h| h.count)
        .sum();
    let counter_adds = report
        .histograms
        .iter()
        .filter(|h| h.name.contains("transfer_bytes"))
        .map(|h| h.count * 2)
        .sum::<u64>()
        + report
            .counters
            .iter()
            .filter(|c| c.name == "scratchpad.compute_ops" || c.name.contains("losertree"))
            .count() as u64;
    let span_count: u64 = report.spans.iter().map(|s| s.count() as u64).sum();

    eprintln!("[telemetry_overhead] microbenchmarking primitives...");
    let counter_ns = ns_per_op(4_000_000, |i| {
        tlmm_telemetry::counter!("bench.overhead.counter").add(black_box(i));
    });
    let hist_ns = ns_per_op(4_000_000, |i| {
        tlmm_telemetry::histogram!("bench.overhead.hist").record(black_box(i + 1));
    });
    // Batched path, amortized per value over a realistic batch width.
    let batch_ns = ns_per_op(40_000, |i| {
        let base = black_box(i + 1);
        tlmm_telemetry::histogram!("bench.overhead.batch").record_iter((0..100).map(|j| base + j));
    }) / 100.0;
    let span_ns = ns_per_op(200_000, |_| {
        let _g = tlmm_telemetry::span!("bench.overhead.span");
    });
    tlmm_telemetry::reset(); // drop the microbench events again

    let est_always_on_s = (counter_adds as f64 * counter_ns
        + hist_records as f64 * hist_ns
        + hist_batched as f64 * batch_ns
        + span_count as f64 * span_ns)
        / 1e9;
    let always_on_pct = est_always_on_s / wall * 100.0;

    // Sink-on comparison: re-execute ourselves with the JSONL sink aimed at
    // a scratch file (the sink state latches at first use, so it must be a
    // fresh process).
    let sink_path = artifact::results_dir().join("telemetry_overhead.jsonl");
    std::fs::create_dir_all(artifact::results_dir())?;
    let _ = std::fs::remove_file(&sink_path);
    eprintln!(
        "[telemetry_overhead] re-running with JSONL sink -> {}",
        sink_path.display()
    );
    let child = std::process::Command::new(std::env::current_exe()?)
        .arg("--measure-child")
        .env("TLMM_TELEMETRY", &sink_path)
        .output()?;
    let sink_wall: f64 = if child.status.success() {
        String::from_utf8_lossy(&child.stdout)
            .trim()
            .parse()
            .unwrap_or(f64::NAN)
    } else {
        f64::NAN
    };
    let sink_pct = (sink_wall / wall - 1.0) * 100.0;
    let sink_lines = std::fs::read_to_string(&sink_path)
        .map(|s| s.lines().count())
        .unwrap_or(0);

    // Flight-recorder-on comparison: same workload with the wall-clock
    // tracing recorder installed in this process (the recorder is
    // installed/uninstalled around the measurement, so the earlier numbers
    // are untouched). Every transfer charge, phase boundary, kernel span
    // and fault then pays the ring-buffer push on top of the always-on
    // machinery — the cost the ISSUE's 5% budget must also cover.
    eprintln!("[telemetry_overhead] re-running with flight recorder on...");
    // Interleave off/on reps so host load drift between the two
    // measurements cancels instead of masquerading as overhead.
    let mut tracing_base = f64::INFINITY;
    let mut tracing_wall = f64::INFINITY;
    let mut flight_trace = None;
    for _ in 0..5 {
        tracing_base = tracing_base.min(time_workload(2));
        tlmm_telemetry::flight::install(
            tlmm_telemetry::flight::FlightConfig::wall(LANES as u32, LANES as u32)
                .with_capacity(1 << 16),
        );
        // First run after install faults in the freshly allocated rings —
        // one-time session setup, not per-event cost; warm, then measure.
        let _ = time_workload(1);
        tracing_wall = tracing_wall.min(time_workload(2));
        flight_trace = Some(tlmm_telemetry::flight::uninstall().expect("recorder installed"));
    }
    let flight_trace = flight_trace.expect("tracing reps ran");
    // The wall delta is informational only: the workload's runtime is
    // multi-modal under rayon scheduling, so a 1%-scale effect cannot be
    // resolved from ~60 ms wall clocks. The budget gate instead bounds
    // the recorder from the inside, like the always-on estimate above:
    // microbenchmark one event push, multiply by the volume a run emits.
    let tracing_wall_pct = (tracing_wall / tracing_base - 1.0) * 100.0;
    tlmm_telemetry::flight::install(
        tlmm_telemetry::flight::FlightConfig::wall(1, 1).with_capacity(1 << 22),
    );
    let flight_push_ns = ns_per_op(2_000_000, |i| {
        tlmm_telemetry::flight::compute_event(black_box(i + 1));
    });
    let _ = tlmm_telemetry::flight::uninstall();
    // Each install window saw 3 workload runs (1 warm + best-of-2 timed).
    let events_per_run = flight_trace
        .lanes
        .iter()
        .map(|l| l.events.len())
        .sum::<usize>()
        / 3;
    let tracing_pct = events_per_run as f64 * flight_push_ns / 1e9 / tracing_base * 100.0;
    let flight_events: usize = flight_trace.lanes.iter().map(|l| l.events.len()).sum();

    // Contended cell: the same recorder-on measurement at threads > 1, so
    // the 5% budget is verified with multiple host workers pushing events
    // concurrently (per-lane rings — no shared tail, but real cache-line
    // and allocator pressure), not just single-threaded.
    eprintln!(
        "[telemetry_overhead] re-running with flight recorder on, {CONTENDED_THREADS} host threads..."
    );
    let mut cont_base = f64::INFINITY;
    let mut cont_wall = f64::INFINITY;
    let mut cont_trace = None;
    for _ in 0..3 {
        cont_base = cont_base.min(time_workload_threads(2, CONTENDED_THREADS));
        tlmm_telemetry::flight::install(
            tlmm_telemetry::flight::FlightConfig::wall(LANES as u32, LANES as u32)
                .with_capacity(1 << 16),
        );
        let _ = time_workload_threads(1, CONTENDED_THREADS);
        cont_wall = cont_wall.min(time_workload_threads(2, CONTENDED_THREADS));
        cont_trace = Some(tlmm_telemetry::flight::uninstall().expect("recorder installed"));
    }
    let cont_trace = cont_trace.expect("contended reps ran");
    let cont_wall_pct = (cont_wall / cont_base - 1.0) * 100.0;
    // Same inside-out bound as the single-threaded cell: per-event push
    // cost times the volume one contended run emits. Event volume can
    // differ from the 1-thread cell only via drops (ring capacity), which
    // the report surfaces.
    let cont_events_per_run = cont_trace
        .lanes
        .iter()
        .map(|l| l.events.len())
        .sum::<usize>()
        / 3;
    let cont_pct = cont_events_per_run as f64 * flight_push_ns / 1e9 / cont_base * 100.0;

    let mut out = String::new();
    outln!(
        out,
        "\nTelemetry overhead — NMsort, N = {N}, {LANES} lanes, chunk = {CHUNK}\n"
    );
    outln!(
        out,
        "workload wall clock (sink off, best of 2): {wall:.4} s"
    );
    outln!(out, "event volumes: {hist_records} histogram records (+{hist_batched} batched), ~{counter_adds} counter adds, {span_count} spans");
    outln!(
        out,
        "primitive costs: counter add {counter_ns:.1} ns, histogram record {hist_ns:.1} ns ({batch_ns:.1} ns/value batched), span open+close {span_ns:.1} ns"
    );
    outln!(
        out,
        "estimated always-on telemetry time: {:.6} s = {:.3}% of wall clock ({})",
        est_always_on_s,
        always_on_pct,
        if always_on_pct < 5.0 {
            "PASS < 5%"
        } else {
            "FAIL >= 5%"
        }
    );
    if sink_wall.is_finite() {
        outln!(
            out,
            "JSONL sink enabled: {sink_wall:.4} s ({sink_pct:+.1}% vs sink off; {sink_lines} events written)"
        );
    } else {
        outln!(out, "JSONL sink child run failed; sink delta not measured");
    }
    outln!(
        out,
        "flight recorder enabled: {tracing_wall:.4} s vs {tracing_base:.4} s interleaved \
         ({tracing_wall_pct:+.1}% wall, informational; {flight_events} events recorded, {} dropped)",
        flight_trace.dropped(),
    );
    outln!(
        out,
        "estimated flight-recorder time: {events_per_run} events/run x {flight_push_ns:.1} ns \
         = {tracing_pct:.3}% of wall clock ({})",
        if tracing_pct < 5.0 {
            "PASS < 5%"
        } else {
            "FAIL >= 5%"
        }
    );
    outln!(
        out,
        "flight recorder, {CONTENDED_THREADS} host threads: {cont_wall:.4} s vs {cont_base:.4} s \
         interleaved ({cont_wall_pct:+.1}% wall, informational; {} events, {} dropped)",
        cont_trace
            .lanes
            .iter()
            .map(|l| l.events.len())
            .sum::<usize>(),
        cont_trace.dropped(),
    );
    outln!(
        out,
        "estimated flight-recorder time under contention: {cont_events_per_run} events/run x \
         {flight_push_ns:.1} ns = {cont_pct:.3}% of wall clock ({})",
        if cont_pct < 5.0 {
            "PASS < 5%"
        } else {
            "FAIL >= 5%"
        }
    );
    outln!(
        out,
        "note: hot paths batch counter flushes (loser trees, caches flush \
         once on drop), so the always-on share stays far under the 5% budget."
    );

    let sink_wall_for_report = if sink_wall.is_finite() {
        sink_wall
    } else {
        -1.0
    };
    let report = RunReport::collect("telemetry_overhead")
        .meta("n", N)
        .meta("lanes", LANES)
        .section("wall_seconds_sink_off", &wall)
        .section("estimated_always_on_pct", &always_on_pct)
        .section("sink_on_wall_seconds", &sink_wall_for_report)
        .section("tracing_on_wall_seconds", &tracing_wall)
        .section("tracing_on_pct", &tracing_pct)
        .section("contended_threads", &(CONTENDED_THREADS as f64))
        .section("contended_tracing_pct", &cont_pct);
    artifact::emit("telemetry_overhead", &out, report)?;

    if always_on_pct >= 5.0 {
        eprintln!("[telemetry_overhead] overhead budget exceeded");
        std::process::exit(1);
    }
    if tracing_pct >= 5.0 {
        eprintln!("[telemetry_overhead] flight-recorder overhead budget exceeded");
        std::process::exit(1);
    }
    if cont_pct >= 5.0 {
        eprintln!("[telemetry_overhead] contended flight-recorder overhead budget exceeded");
        std::process::exit(1);
    }
    Ok(())
}
