//! **Fault matrix** — graceful-degradation sweep across fault profiles.
//!
//! Runs NMsort at a small scale under a matrix of fault profiles
//! (clean, alloc-only, transfer-only, DMA-only, mixed) × seeds, verifying
//! every run sorts correctly and reporting the far-traffic overhead each
//! profile pays relative to the clean run. Honest accounting means an
//! injected fault can only add far traffic, never remove it — the sweep
//! asserts that invariant on every cell.
//!
//! Writes `results/fault_matrix.txt` (rendered matrix) and
//! `results/fault_matrix.json` (telemetry report with one `degradations`
//! section per profile, so fault-matrix artifacts are diffable rather than
//! pass/fail).
//!
//! Run: `cargo run --release -p tlmm-bench --bin fault_matrix -- [n] [n_seeds]`

use tlmm_analysis::table::Table;
use tlmm_bench::{artifact, outln, run_sort_with_plan, RunDegradations, SortAlgo, SortSpec};
use tlmm_scratchpad::FaultPlan;
use tlmm_telemetry::RunReport;

/// One row of the matrix: a named fault profile.
struct Profile {
    name: &'static str,
    /// DMA aborts only fire on the DMA-overlapped ingest path.
    algo: SortAlgo,
    make: fn(u64) -> Option<FaultPlan>,
}

fn alloc_only(seed: u64) -> Option<FaultPlan> {
    Some(FaultPlan {
        near_alloc_fail_permille: 120,
        ..FaultPlan::none(seed)
    })
}

fn transfer_only(seed: u64) -> Option<FaultPlan> {
    Some(FaultPlan {
        transfer_fail_permille: 30,
        transfer_delay_permille: 20,
        ..FaultPlan::none(seed)
    })
}

fn dma_only(seed: u64) -> Option<FaultPlan> {
    Some(FaultPlan {
        dma_abort_permille: 300,
        ..FaultPlan::none(seed)
    })
}

const PROFILES: &[Profile] = &[
    Profile {
        name: "clean",
        algo: SortAlgo::NmSort,
        make: |_| None,
    },
    Profile {
        name: "alloc",
        algo: SortAlgo::NmSort,
        make: alloc_only,
    },
    Profile {
        name: "transfer",
        algo: SortAlgo::NmSort,
        make: transfer_only,
    },
    Profile {
        name: "dma",
        algo: SortAlgo::NmSortDma,
        make: dma_only,
    },
    Profile {
        name: "mixed",
        algo: SortAlgo::NmSort,
        make: |seed| Some(FaultPlan::seeded(seed)),
    },
    // The oblivious engines share the fault machinery with zero hooks of
    // their own: their resilience is charged re-streaming, so the same
    // overhead-≥-0 invariant must hold on their rows.
    Profile {
        name: "spms-mixed",
        algo: SortAlgo::Spms,
        make: |seed| Some(FaultPlan::seeded(seed)),
    },
    Profile {
        name: "squaresort-mixed",
        algo: SortAlgo::SquareSort,
        make: |seed| Some(FaultPlan::seeded(seed)),
    },
];

/// Aggregate of one profile across all seeds.
#[derive(Default)]
struct ProfileAgg {
    runs: u64,
    faults_injected: u64,
    faults_delayed: u64,
    degraded_runs: u64,
    far_bytes: u64,
    last: RunDegradations,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.and_next_parse().unwrap_or(200_000);
    let n_seeds: u64 = args.and_next_parse().unwrap_or(3);
    let lanes = 16;
    let chunk = (n / 5).max(1000);
    eprintln!(
        "[fault_matrix] {} profiles x {n_seeds} seeds, n={n}, lanes={lanes}, chunk={chunk}",
        PROFILES.len()
    );

    let mut aggs: Vec<ProfileAgg> = PROFILES.iter().map(|_| ProfileAgg::default()).collect();
    for seed in 0..n_seeds {
        for (profile, agg) in PROFILES.iter().zip(aggs.iter_mut()) {
            let spec = SortSpec {
                threads: 1,
                algo: profile.algo,
                n,
                lanes,
                chunk_elems: Some(chunk),
                seed: 0xFA, // same workload for every cell; only faults vary
                fault_seed: None,
            };
            let run = run_sort_with_plan(&spec, (profile.make)(seed))
                .map_err(|e| format!("{} seed {seed}: {e}", profile.name))?;
            agg.runs += 1;
            agg.faults_injected += run.degradations.faults_injected;
            agg.faults_delayed += run.degradations.faults_delayed;
            agg.degraded_runs += u64::from(run.degradations.any());
            agg.far_bytes += run.ledger.far_bytes;
            agg.last = run.degradations;
        }
    }

    // Clean baselines are deterministic (same workload, no plan): one per
    // engine, so every row's overhead is honest-accounting relative to
    // *its own* algorithm, not to NMsort's traffic profile.
    let mut clean_far_by_algo: Vec<(SortAlgo, f64)> = Vec::new();
    for profile in PROFILES {
        if clean_far_by_algo.iter().any(|(a, _)| *a == profile.algo) {
            continue;
        }
        let spec = SortSpec {
            threads: 1,
            algo: profile.algo,
            n,
            lanes,
            chunk_elems: Some(chunk),
            seed: 0xFA,
            fault_seed: None,
        };
        let run = run_sort_with_plan(&spec, None)
            .map_err(|e| format!("{} clean baseline: {e}", profile.name))?;
        clean_far_by_algo.push((profile.algo, run.ledger.far_bytes as f64));
    }
    let clean_far_of = |algo: SortAlgo| -> f64 {
        clean_far_by_algo
            .iter()
            .find(|(a, _)| *a == algo)
            .expect("baseline computed for every profile algo")
            .1
    };
    let mut out = String::new();
    outln!(
        out,
        "\nFault matrix — n={n}, {n_seeds} seeds per profile (far overhead \
         vs each engine's own clean run)\n"
    );
    let mut t = Table::new([
        "profile",
        "runs",
        "injected",
        "delayed",
        "degraded",
        "far overhead",
    ]);
    for (profile, agg) in PROFILES.iter().zip(&aggs) {
        let far = agg.far_bytes as f64 / agg.runs as f64;
        let clean_far = clean_far_of(profile.algo);
        let overhead = far / clean_far - 1.0;
        assert!(
            overhead >= -1e-9,
            "{}: degraded run cheaper than clean ({far} < {clean_far})",
            profile.name
        );
        t.row(vec![
            profile.name.to_string(),
            agg.runs.to_string(),
            agg.faults_injected.to_string(),
            agg.faults_delayed.to_string(),
            format!("{}/{}", agg.degraded_runs, agg.runs),
            format!("{:+.2}%", overhead * 100.0),
        ]);
    }
    outln!(out, "{}", t.render());
    outln!(
        out,
        "every cell sorted correctly; far overhead is the honest-accounting \
         cost of the degradation ladders (never negative)."
    );

    let mut report = RunReport::collect("fault_matrix")
        .meta("n", n)
        .meta("n_seeds", n_seeds)
        .meta("lanes", lanes)
        .meta("chunk_elems", chunk);
    for (profile, agg) in PROFILES.iter().zip(&aggs) {
        report = report.section(&format!("degradations_{}", profile.name), &agg.last);
    }
    artifact::emit("fault_matrix", &out, report)?;
    Ok(())
}

/// Tiny arg-parsing helper so `n` and `n_seeds` read cleanly above.
trait NextParse {
    fn and_next_parse<T: std::str::FromStr>(&mut self) -> Option<T>;
}

impl<I: Iterator<Item = String>> NextParse for I {
    fn and_next_parse<T: std::str::FromStr>(&mut self) -> Option<T> {
        self.next().and_then(|s| s.parse().ok())
    }
}
