//! Algorithmic model of a two-level main memory (DRAM + scratchpad).
//!
//! This crate encodes the theoretical machinery of *"Two-Level Main Memory
//! Co-Design: Multi-Threaded Algorithmic Primitives, Analysis, and
//! Simulation"* (IPDPS 2015):
//!
//! * [`params::ScratchpadParams`] — the model parameters: cache size `Z`,
//!   scratchpad size `M`, DRAM block size `B`, and the bandwidth expansion
//!   factor `ρ` (the scratchpad moves blocks of size `ρB` at the same unit
//!   cost as a DRAM block of size `B`).
//! * [`ledger::CostLedger`] — a thread-safe block-transfer ledger used by the
//!   runtime (`tlmm-scratchpad`) to charge every far/near transfer exactly
//!   as the model prescribes.
//! * [`theorems`] — the paper's Theorems 1, 2, 6, 8 and 10 and Corollaries 3
//!   and 7 as closed-form cost predictors, plus the matching lower bound.
//! * [`bounds`] — the §V-A back-of-envelope test for when sorting becomes
//!   memory-bandwidth bound (`y·log Z < x`).
//! * [`recursion`] — Lemma 5's randomized recursion-depth machinery
//!   (good/bad split probabilities, expected scan counts).
//!
//! Cost in this model is measured in **block transfers**: moving any block —
//! small (`B` bytes, DRAM↔cache) or large (`ρB` bytes, scratchpad↔cache) —
//! costs exactly 1. Computation is free; the model targets memory-bound
//! computations.

pub mod admission;
pub mod bounds;
pub mod engine;
pub mod ledger;
pub mod oblivious;
pub mod params;
pub mod recursion;
pub mod theorems;

pub use admission::{estimate as admission_estimate, shrink_to_fit, AdmissionEstimate};
pub use bounds::{BandwidthBoundVerdict, MachineRates};
pub use engine::Engine;
pub use ledger::{CostLedger, CostSnapshot};
pub use params::ScratchpadParams;

/// Binary logarithm clamped so that callers can feed it values `< 2`
/// without producing negative or infinite costs.
///
/// The asymptotic formulas divide by `lg(base)`; for degenerate parameter
/// settings (e.g. `Z/ρB < 2`) the model's guidance is that the logarithm's
/// base saturates at 2 (a branching factor below two is meaningless for a
/// merge). All `theorems` formulas use this helper.
#[inline]
pub fn lg2_clamped(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// `log_base(x)` with the base clamped to at least 2 and the argument clamped
/// to at least 1 (so costs are never negative).
#[inline]
pub fn log_clamped(base: f64, x: f64) -> f64 {
    x.max(1.0).log2() / lg2_clamped(base)
}

/// Integer ceiling division. Used everywhere block counts are computed.
#[inline]
pub const fn ceil_div(a: u64, b: u64) -> u64 {
    if b == 0 {
        0
    } else {
        a.div_ceil(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div(0, 64), 0);
        assert_eq!(ceil_div(1, 64), 1);
        assert_eq!(ceil_div(64, 64), 1);
        assert_eq!(ceil_div(65, 64), 2);
        assert_eq!(ceil_div(128, 64), 2);
        assert_eq!(ceil_div(5, 0), 0, "division by zero blocks is defined as 0");
    }

    #[test]
    fn log_clamped_never_negative() {
        assert!(log_clamped(0.5, 0.5) >= 0.0);
        assert!(log_clamped(1.0, 10.0) > 0.0);
        assert_eq!(log_clamped(2.0, 1.0), 0.0);
    }

    #[test]
    fn log_clamped_matches_plain_log_in_sane_range() {
        let v = log_clamped(8.0, 64.0);
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lg2_clamped_saturates() {
        assert_eq!(lg2_clamped(1.0), 1.0);
        assert_eq!(lg2_clamped(0.0), 1.0);
        assert_eq!(lg2_clamped(4.0), 2.0);
    }
}
