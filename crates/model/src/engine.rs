//! The engine registry: every sort algorithm the repo can run.
//!
//! The enum lives in `tlmm-model` (the dependency root) so that *both* the
//! bench harness and the service layer can dispatch over the same registry
//! without depending on each other: `tlmm-bench` re-exports it as its
//! `Engine`/`SortAlgo`, and `tlmm-service` keys admission estimates and job
//! specs on it.

use serde::{Deserialize, Serialize};

/// Which sort engine a run executes — the single registry every bench
/// binary and service job dispatches through. Adding a sorter means adding
/// a variant here, one [`Engine::name`]/[`Engine::parse`] row, and one
/// match arm in each runner; no binary carries its own algo-name strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// NMsort with blocking ingest transfers.
    NmSort,
    /// NMsort with DMA-overlapped ingest (the §VII improvement).
    NmSortDma,
    /// The GNU-style far-memory multiway mergesort baseline.
    Baseline,
    /// SPMS (Cole–Ramachandran) — cache-oblivious sample–partition–merge.
    Spms,
    /// SquareSort (Koucký–Matějka) — cache-oblivious √n-block recursion.
    SquareSort,
}

impl Engine {
    /// Every registered engine, in display order.
    pub const ALL: [Engine; 5] = [
        Engine::NmSort,
        Engine::NmSortDma,
        Engine::Baseline,
        Engine::Spms,
        Engine::SquareSort,
    ];

    /// Canonical lowercase name (artifact keys, `--algo` values).
    pub fn name(self) -> &'static str {
        match self {
            Engine::NmSort => "nmsort",
            Engine::NmSortDma => "dma",
            Engine::Baseline => "baseline",
            Engine::Spms => "spms",
            Engine::SquareSort => "squaresort",
        }
    }

    /// Inverse of [`Engine::name`] (case-sensitive, exact).
    pub fn parse(s: &str) -> Option<Engine> {
        Engine::ALL.into_iter().find(|e| e.name() == s)
    }

    /// Does the engine read a chunk bound? Only the aware NMsort variants
    /// chunk; the baseline and the oblivious engines ignore it.
    pub fn uses_chunks(self) -> bool {
        matches!(self, Engine::NmSort | Engine::NmSortDma)
    }

    /// Is the engine scratchpad-*oblivious* (control flow independent of
    /// `M` and `Z`)? The `fig_crossover` sweep partitions on this.
    pub fn is_oblivious(self) -> bool {
        matches!(self, Engine::Spms | Engine::SquareSort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for e in Engine::ALL {
            assert_eq!(Engine::parse(e.name()), Some(e));
        }
        assert_eq!(Engine::parse("bogosort"), None);
    }
}
