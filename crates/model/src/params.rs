//! Model parameters: `Z`, `M`, `B`, `ρ` and derived quantities.

use serde::{Deserialize, Serialize};

/// Errors produced when validating a parameter set against the model's
/// architectural assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// `ρ` must satisfy `ρ ≥ 1` (the scratchpad is never *slower* per block).
    RhoTooSmall,
    /// The scratchpad must be larger than the cache (`M ≫ Z` in the paper).
    ScratchpadNotLargerThanCache,
    /// Tall-cache assumption `M > B²` violated.
    NotTallCache,
    /// Block size must be a positive power of two (hardware cache lines are).
    BadBlockSize,
    /// Cache must hold at least a few blocks for the model to make sense.
    CacheTooSmall,
    /// The scratchpad must hold at least one near block (`ρB ≤ M`);
    /// otherwise a single near transfer could never complete and the
    /// capacity arithmetic in `near_alloc` underflows.
    NearBlockTooLarge,
    /// A staging-arena growth request would push total staged bytes past
    /// the near-memory capacity `M`. Historically the oblivious `Ctx`
    /// path silently clamped staging to `M/2`; arena growth is instead
    /// rejected up front with the offending numbers.
    StagingBeyondNearCap {
        /// Total staged bytes the arena would hold after the growth.
        requested: u64,
        /// The configured near-memory capacity `M` in bytes.
        cap: u64,
    },
}

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            ParamError::RhoTooSmall => "bandwidth expansion factor rho must be >= 1",
            ParamError::ScratchpadNotLargerThanCache => {
                "scratchpad size M must exceed cache size Z"
            }
            ParamError::NotTallCache => "tall-cache assumption M > B^2 violated",
            ParamError::BadBlockSize => "block size B must be a positive power of two",
            ParamError::CacheTooSmall => "cache must hold at least 4 blocks",
            ParamError::NearBlockTooLarge => {
                "scratchpad M must hold at least one near block (rho * B)"
            }
            ParamError::StagingBeyondNearCap { requested, cap } => {
                return write!(
                    f,
                    "staging arena growth to {requested} B exceeds near-memory cap {cap} B"
                );
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParamError {}

/// Parameters of the algorithmic scratchpad model (Fig. 1 of the paper).
///
/// All sizes are in **bytes**. The model charges one unit per block transfer:
/// a DRAM block is `B` bytes, a scratchpad block is `ρB` bytes.
///
/// ```
/// use tlmm_model::ScratchpadParams;
/// let p = ScratchpadParams::new(64, 4.0, 256 << 20, 512 << 10).unwrap();
/// assert_eq!(p.near_block_bytes(), 256);
/// assert!(p.sample_size_m() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScratchpadParams {
    /// DRAM (far-memory) block size `B` in bytes. Typically the cache-line
    /// size, 64 in the paper's simulations.
    pub block_bytes: u64,
    /// Bandwidth expansion factor `ρ > 1`: the scratchpad transfers blocks of
    /// `ρ·B` bytes at the same unit cost.
    pub rho: f64,
    /// Scratchpad ("near memory") capacity `M` in bytes.
    pub scratchpad_bytes: u64,
    /// Cache capacity `Z` in bytes (the sum of on-chip cache the algorithm
    /// may use; the paper's per-node L1+L2 aggregate).
    pub cache_bytes: u64,
}

impl ScratchpadParams {
    /// Construct and validate a parameter set.
    pub fn new(
        block_bytes: u64,
        rho: f64,
        scratchpad_bytes: u64,
        cache_bytes: u64,
    ) -> Result<Self, ParamError> {
        let p = Self {
            block_bytes,
            rho,
            scratchpad_bytes,
            cache_bytes,
        };
        p.validate()?;
        Ok(p)
    }

    /// Validate the architectural assumptions of §II.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.rho < 1.0 || !self.rho.is_finite() {
            return Err(ParamError::RhoTooSmall);
        }
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return Err(ParamError::BadBlockSize);
        }
        if self.cache_bytes < 4 * self.block_bytes {
            return Err(ParamError::CacheTooSmall);
        }
        if self.scratchpad_bytes <= self.cache_bytes {
            return Err(ParamError::ScratchpadNotLargerThanCache);
        }
        // Tall cache: M > B^2.
        if self.scratchpad_bytes <= self.block_bytes * self.block_bytes {
            return Err(ParamError::NotTallCache);
        }
        if self.near_block_bytes() > self.scratchpad_bytes {
            return Err(ParamError::NearBlockTooLarge);
        }
        Ok(())
    }

    /// The paper's simulated machine (Fig. 4): 64-byte lines, a multi-GB-class
    /// scratchpad scaled here to hold "several copies of an array of 10
    /// million 64-bit integers" (§V-A), and the aggregate on-chip cache of a
    /// 256-core node (256×16 KB L1 + 64×512 KB L2 = 36 MB).
    pub fn paper_default(rho: f64) -> Self {
        Self {
            block_bytes: 64,
            rho,
            scratchpad_bytes: 512 << 20, // 512 MB near memory
            cache_bytes: 36 << 20,       // 36 MB aggregate cache
        }
    }

    /// Scratchpad block size `ρB` in bytes (rounded to whole bytes).
    #[inline]
    pub fn near_block_bytes(&self) -> u64 {
        ((self.rho * self.block_bytes as f64).round() as u64).max(self.block_bytes)
    }

    /// Number of far-memory blocks that fit in the scratchpad: `M/B`.
    #[inline]
    pub fn scratchpad_blocks(&self) -> u64 {
        self.scratchpad_bytes / self.block_bytes
    }

    /// Number of far-memory blocks that fit in cache: `Z/B`.
    #[inline]
    pub fn cache_blocks(&self) -> u64 {
        self.cache_bytes / self.block_bytes
    }

    /// The sample size `m = Θ(M/B)` used by the sorting algorithms (§III-A).
    /// We use exactly `M/(4B)` so the sample plus bookkeeping comfortably
    /// coexists with data chunks in the scratchpad.
    #[inline]
    pub fn sample_size_m(&self) -> usize {
        (self.scratchpad_blocks() / 4).max(2) as usize
    }

    /// How many elements of size `elem` fit in the scratchpad.
    #[inline]
    pub fn scratchpad_capacity_elems(&self, elem_bytes: usize) -> usize {
        (self.scratchpad_bytes as usize) / elem_bytes.max(1)
    }

    /// How many elements of size `elem` fit in cache.
    #[inline]
    pub fn cache_capacity_elems(&self, elem_bytes: usize) -> usize {
        (self.cache_bytes as usize) / elem_bytes.max(1)
    }

    /// Far-memory blocks needed to move `bytes` bytes: `⌈bytes/B⌉`.
    #[inline]
    pub fn far_blocks_for(&self, bytes: u64) -> u64 {
        crate::ceil_div(bytes, self.block_bytes)
    }

    /// Near-memory blocks needed to move `bytes` bytes: `⌈bytes/ρB⌉`.
    #[inline]
    pub fn near_blocks_for(&self, bytes: u64) -> u64 {
        crate::ceil_div(bytes, self.near_block_bytes())
    }

    /// Validate that a staging arena holding `total_bytes` after a growth
    /// step still fits in near memory. The arena may legitimately use the
    /// whole scratchpad (admission control arbitrates between tenants);
    /// what it must never do is grow past `M`, which the ad-hoc buffer
    /// paths used to hide behind a silent `M/2` clamp.
    #[inline]
    pub fn check_staging(&self, total_bytes: u64) -> Result<(), ParamError> {
        if total_bytes > self.scratchpad_bytes {
            return Err(ParamError::StagingBeyondNearCap {
                requested: total_bytes,
                cap: self.scratchpad_bytes,
            });
        }
        Ok(())
    }

    /// Elements of size `elem_bytes` a *resident* (non-staging) buffer may
    /// hold: `M/4` bytes, so that a data buffer plus its merge scratch stay
    /// within half the scratchpad and leave the other half to staging
    /// arenas and concurrent tenants. This is the validated form of the
    /// clamp the oblivious `Ctx` used to hand-roll.
    #[inline]
    pub fn resident_cap_elems(&self, elem_bytes: usize) -> usize {
        ((self.scratchpad_bytes as usize) / 4 / elem_bytes.max(1)).max(1)
    }
}

impl Default for ScratchpadParams {
    fn default() -> Self {
        Self::paper_default(4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ScratchpadParams::default().validate().unwrap();
        ScratchpadParams::paper_default(2.0).validate().unwrap();
        ScratchpadParams::paper_default(8.0).validate().unwrap();
    }

    #[test]
    fn rejects_rho_below_one() {
        let e = ScratchpadParams::new(64, 0.5, 1 << 30, 1 << 20).unwrap_err();
        assert_eq!(e, ParamError::RhoTooSmall);
    }

    #[test]
    fn rejects_non_power_of_two_block() {
        let e = ScratchpadParams::new(48, 2.0, 1 << 30, 1 << 20).unwrap_err();
        assert_eq!(e, ParamError::BadBlockSize);
    }

    #[test]
    fn rejects_small_scratchpad() {
        let e = ScratchpadParams::new(64, 2.0, 1 << 20, 1 << 20).unwrap_err();
        assert_eq!(e, ParamError::ScratchpadNotLargerThanCache);
    }

    #[test]
    fn rejects_short_cache() {
        // M = 2^12 <= B^2 = 2^12 violates tall cache.
        let e = ScratchpadParams::new(64, 2.0, 4096, 1024).unwrap_err();
        assert_eq!(e, ParamError::NotTallCache);
    }

    #[test]
    fn rejects_tiny_cache() {
        let e = ScratchpadParams::new(64, 2.0, 1 << 30, 128).unwrap_err();
        assert_eq!(e, ParamError::CacheTooSmall);
    }

    #[test]
    fn rejects_near_block_exceeding_scratchpad() {
        // rho*B = 64 MiB near block, but M is only 1 MiB.
        let e = ScratchpadParams::new(64, 1_000_000.0, 1 << 20, 64 << 10).unwrap_err();
        assert_eq!(e, ParamError::NearBlockTooLarge);
        // Infinite rho is rejected before it can poison near_block_bytes.
        let e = ScratchpadParams::new(64, f64::INFINITY, 1 << 20, 64 << 10).unwrap_err();
        assert_eq!(e, ParamError::RhoTooSmall);
    }

    #[test]
    fn near_block_scales_with_rho() {
        let p = ScratchpadParams::paper_default(8.0);
        assert_eq!(p.near_block_bytes(), 512);
        let p = ScratchpadParams::paper_default(1.0);
        assert_eq!(p.near_block_bytes(), 64);
    }

    #[test]
    fn fractional_rho_rounds_sanely() {
        let p = ScratchpadParams::paper_default(1.5);
        assert_eq!(p.near_block_bytes(), 96);
    }

    #[test]
    fn block_math() {
        let p = ScratchpadParams::paper_default(4.0);
        assert_eq!(p.far_blocks_for(0), 0);
        assert_eq!(p.far_blocks_for(1), 1);
        assert_eq!(p.far_blocks_for(64), 1);
        assert_eq!(p.far_blocks_for(65), 2);
        assert_eq!(p.near_blocks_for(256), 1);
        assert_eq!(p.near_blocks_for(257), 2);
    }

    #[test]
    fn staging_within_cap_is_accepted_and_beyond_is_typed() {
        let p = ScratchpadParams::new(64, 3.0, 1 << 20, 64 << 10).unwrap();
        p.check_staging(0).unwrap();
        p.check_staging(1 << 20).unwrap();
        let e = p.check_staging((1 << 20) + 1).unwrap_err();
        assert_eq!(
            e,
            ParamError::StagingBeyondNearCap {
                requested: (1 << 20) + 1,
                cap: 1 << 20,
            }
        );
        let s = e.to_string();
        assert!(s.contains("1048577") && s.contains("1048576"), "{s}");
    }

    #[test]
    fn resident_cap_matches_quarter_of_scratchpad() {
        let p = ScratchpadParams::new(64, 3.0, 1 << 20, 64 << 10).unwrap();
        assert_eq!(p.resident_cap_elems(8), (1 << 20) / 32);
        // Degenerate element sizes never return zero.
        assert_eq!(p.resident_cap_elems(0), (1 << 20) / 4);
        assert_eq!(p.resident_cap_elems(usize::MAX), 1);
    }

    #[test]
    fn capacities() {
        let p = ScratchpadParams::paper_default(4.0);
        assert_eq!(p.scratchpad_capacity_elems(8), (512 << 20) / 8);
        assert!(p.sample_size_m() >= 2);
        assert!(p.cache_capacity_elems(8) < p.scratchpad_capacity_elems(8));
    }
}
