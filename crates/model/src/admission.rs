//! Admission-control estimator: predicted near-memory footprint and charged
//! work for a sort job, *before* running it.
//!
//! The service layer (`tlmm-service`) asks two questions when a job
//! arrives: **will it fit** (peak scratchpad residency vs. the near-memory
//! budget left after currently running jobs) and **how long will it run**
//! (charged far+near bytes, the same virtual-time currency the cost ledger
//! books). Both answers come from the closed-form cost mirrors this crate
//! already maintains for the theory plots — [`crate::oblivious::spms_cost`],
//! [`crate::oblivious::squaresort_cost`],
//! [`crate::oblivious::nmsort_aware_cost`] and
//! [`crate::theorems::baseline_sort_cost`] — plus a byte-exact mirror of
//! NMsort's scratchpad geometry (`geometry()` in `tlmm-core`): two chunk
//! buffers, the resident pivot sample, and the `BucketTot` array.
//!
//! [`shrink_to_fit`] additionally runs NMsort's chunk-shrinking ladder
//! *proactively*: when the clean-geometry footprint exceeds the budget, it
//! halves the chunk (the same degradation the runtime would discover via
//! failed allocations) until the job fits or the ladder is exhausted —
//! trading more Phase-1 chunks for admission instead of an OOM rejection.

use crate::engine::Engine;
use crate::params::ScratchpadParams;

/// Rungs on the proactive chunk-shrinking ladder — matches the runtime
/// `Shrink` backoff budget in `tlmm-scratchpad`.
pub const MAX_PROACTIVE_SHRINKS: u32 = 3;

/// What the estimator predicts for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionEstimate {
    /// Peak scratchpad (near-memory) residency in bytes the job will hold.
    pub near_peak_bytes: u64,
    /// Predicted charged far+near **bytes** — the virtual-time work units
    /// the service scheduler uses for run-length and deadline arithmetic.
    pub est_units: u64,
    /// The Phase-1 chunk (elements) the estimate assumed; `0` for engines
    /// that do not chunk.
    pub chunk_elems: usize,
    /// Proactive shrink rungs applied by [`shrink_to_fit`] (0 from
    /// [`estimate`]).
    pub shrinks: u32,
}

/// Mirror of NMsort's default chunk: both modes budget 4/5 of the
/// scratchpad for chunk buffers — the blocking schedule splits it two
/// ways (40 % each), the DMA pipeline three ways (the third buffer is
/// the double-buffered next chunk).
fn default_chunk(p: &ScratchpadParams, n: u64, elem_bytes: usize, dma: bool) -> usize {
    let m_elems = p.scratchpad_capacity_elems(elem_bytes);
    let chunk = if dma {
        m_elems * 4 / 15
    } else {
        m_elems * 2 / 5
    };
    chunk.max(2).clamp(1, (n as usize).max(1))
}

/// Mirror of NMsort's default pivot count: `min(M/4B, chunk/8, 65536)`.
fn default_pivots(p: &ScratchpadParams, chunk: usize) -> usize {
    (p.scratchpad_blocks() as usize / 4)
        .min(chunk / 8)
        .clamp(1, 65_536)
}

/// NMsort's scratchpad working set for a given chunk: the chunk buffers
/// (two blocking, three when the DMA pipeline double-buffers a multi-chunk
/// input), the resident pivots, and the `(pivots+1)`-entry `BucketTot`
/// array — byte-for-byte the feasibility check in `tlmm-core`'s
/// `geometry()`.
fn nmsort_near_peak(
    p: &ScratchpadParams,
    n: u64,
    elem_bytes: usize,
    chunk: usize,
    dma: bool,
) -> u64 {
    let n_chunks = (n as usize).div_ceil(chunk.max(1)).max(1);
    let n_bufs = if dma && n_chunks > 1 { 3 } else { 2 };
    let n_pivots = if n_chunks <= 1 {
        0
    } else {
        default_pivots(p, chunk)
    };
    (n_bufs * chunk * elem_bytes + n_pivots * elem_bytes + (n_pivots + 1) * 8) as u64
}

/// Convert a predicted block split into charged bytes (`far_blocks·B +
/// near_blocks·ρB`), the unit the cost ledger books and the service's
/// virtual clock advances in.
fn units(p: &ScratchpadParams, split: crate::theorems::CostSplit) -> u64 {
    let far = split.far_blocks.max(0.0) * p.block_bytes as f64;
    let near = split.near_blocks.max(0.0) * p.near_block_bytes() as f64;
    (far + near).ceil() as u64
}

/// Predict the near-memory peak and charged work of sorting `n` elements
/// of `elem_bytes` with `engine`. `chunk_elems` overrides NMsort's default
/// chunk (ignored by non-chunking engines).
pub fn estimate(
    p: &ScratchpadParams,
    engine: Engine,
    n: u64,
    elem_bytes: usize,
    chunk_elems: Option<usize>,
) -> AdmissionEstimate {
    let (near_peak_bytes, est_units, chunk) = match engine {
        Engine::NmSort | Engine::NmSortDma => {
            let dma = engine == Engine::NmSortDma;
            let chunk = chunk_elems.unwrap_or_else(|| default_chunk(p, n, elem_bytes, dma));
            (
                nmsort_near_peak(p, n, elem_bytes, chunk, dma),
                units(p, crate::oblivious::nmsort_aware_cost(p, n, elem_bytes)),
                chunk,
            )
        }
        // The baseline never touches the scratchpad: far traffic only.
        Engine::Baseline => (
            0,
            units(p, crate::theorems::baseline_sort_cost(p, n, elem_bytes)),
            0,
        ),
        // The oblivious engines stage resident subtrees through the
        // scratchpad; the residency adapter caps any subtree at the
        // resident capacity, so the working set is the doubled input
        // (data + merge scratch) clamped to half the scratchpad.
        Engine::Spms => (
            (2 * n * elem_bytes as u64).min(p.scratchpad_bytes / 2),
            units(p, crate::oblivious::spms_cost(p, n, elem_bytes)),
            0,
        ),
        Engine::SquareSort => (
            (2 * n * elem_bytes as u64).min(p.scratchpad_bytes / 2),
            units(p, crate::oblivious::squaresort_cost(p, n, elem_bytes)),
            0,
        ),
    };
    AdmissionEstimate {
        near_peak_bytes,
        est_units,
        chunk_elems: chunk,
        shrinks: 0,
    }
}

/// [`estimate`], then — if the predicted near peak exceeds
/// `near_budget_bytes` — run NMsort's chunk-shrinking ladder proactively
/// (up to [`MAX_PROACTIVE_SHRINKS`] halvings). Returns `None` when the job
/// cannot fit the budget even fully degraded: the caller queues or sheds
/// it instead of letting the runtime discover the OOM.
pub fn shrink_to_fit(
    p: &ScratchpadParams,
    engine: Engine,
    n: u64,
    elem_bytes: usize,
    chunk_elems: Option<usize>,
    near_budget_bytes: u64,
) -> Option<AdmissionEstimate> {
    let mut est = estimate(p, engine, n, elem_bytes, chunk_elems);
    if est.near_peak_bytes <= near_budget_bytes {
        return Some(est);
    }
    if !engine.uses_chunks() {
        // Non-chunking engines have no ladder to descend.
        return None;
    }
    let mut chunk = est.chunk_elems;
    let dma = engine == Engine::NmSortDma;
    for shrink in 1..=MAX_PROACTIVE_SHRINKS {
        if chunk <= 2 {
            break;
        }
        chunk = (chunk / 2).max(2);
        let peak = nmsort_near_peak(p, n, elem_bytes, chunk, dma);
        if peak <= near_budget_bytes {
            est.near_peak_bytes = peak;
            est.chunk_elems = chunk;
            est.shrinks = shrink;
            return Some(est);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScratchpadParams {
        ScratchpadParams::new(64, 4.0, 1 << 20, 64 << 10).unwrap()
    }

    #[test]
    fn baseline_needs_no_near_memory() {
        let e = estimate(&params(), Engine::Baseline, 100_000, 8, None);
        assert_eq!(e.near_peak_bytes, 0);
        assert!(e.est_units > 0);
    }

    #[test]
    fn nmsort_peak_fits_the_scratchpad_it_was_sized_for() {
        let p = params();
        let e = estimate(&p, Engine::NmSort, 1_000_000, 8, None);
        assert!(e.near_peak_bytes > 0);
        assert!(e.near_peak_bytes <= p.scratchpad_bytes);
        assert!(e.chunk_elems > 0);
    }

    #[test]
    fn small_jobs_estimate_smaller_than_large_jobs() {
        let p = params();
        for eng in Engine::ALL {
            let small = estimate(&p, eng, 10_000, 8, None);
            let large = estimate(&p, eng, 1_000_000, 8, None);
            assert!(
                small.est_units < large.est_units,
                "{}: {} !< {}",
                eng.name(),
                small.est_units,
                large.est_units
            );
        }
    }

    #[test]
    fn shrink_ladder_fits_a_halved_budget() {
        let p = params();
        let full = estimate(&p, Engine::NmSort, 1_000_000, 8, None);
        // A budget below the clean peak forces proactive shrinking.
        let budget = full.near_peak_bytes / 2;
        let fitted = shrink_to_fit(&p, Engine::NmSort, 1_000_000, 8, None, budget)
            .expect("one or two halvings must fit");
        assert!(fitted.shrinks >= 1);
        assert!(fitted.near_peak_bytes <= budget);
        assert!(fitted.chunk_elems < full.chunk_elems);
    }

    #[test]
    fn impossible_budgets_are_refused_not_oomed() {
        let p = params();
        assert_eq!(
            shrink_to_fit(&p, Engine::NmSort, 1_000_000, 8, None, 64),
            None
        );
        assert_eq!(
            shrink_to_fit(&p, Engine::Spms, 1_000_000, 8, None, 64),
            None
        );
    }

    #[test]
    fn estimates_are_deterministic() {
        let p = params();
        for eng in Engine::ALL {
            assert_eq!(
                estimate(&p, eng, 123_456, 8, None),
                estimate(&p, eng, 123_456, 8, None)
            );
        }
    }
}
