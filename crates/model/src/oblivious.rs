//! Predicted transfer counts for the cache-oblivious engines.
//!
//! Unlike [`crate::theorems`], which encodes the paper's asymptotic bounds,
//! these predictors *mirror the implemented pass structure* of the
//! `tlmm-core` oblivious engines (SPMS and SquareSort) and of NMsort's
//! aware two-phase layout, in block units. The mirrors walk the same
//! recursion the engines execute — same `⌈√n⌉` splits, same residency
//! boundary, same per-node pass counts — so predicted and simulated far
//! traffic agree closely and the *crossover* between aware and oblivious
//! engines can be predicted before a single element is sorted. The
//! `fig_crossover` experiment plots exactly this: predicted crossover n
//! (from here) against simulated crossover n (from charged ledgers).
//!
//! The residency model: a recursion segment is near-resident when the
//! segment plus its equal-sized ping-pong scratch fit half the scratchpad —
//! `n·elem ≤ M/4` — at which point the subtree pays one far ingest and one
//! far writeback and works at near rates (the ideal-cache assumption made
//! explicit; see `tlmm_core::oblivious`).

use crate::params::ScratchpadParams;
use crate::theorems::CostSplit;

/// The engines' default recursion cutoff (`ObliviousConfig::base_elems`).
pub const DEFAULT_BASE_ELEMS: u64 = 1024;

/// Largest segment (elements) the residency adapter keeps near-resident:
/// data + scratch within half the scratchpad.
pub fn near_resident_cap_elems(p: &ScratchpadParams, elem_bytes: usize) -> u64 {
    (p.scratchpad_bytes / (4 * elem_bytes.max(1) as u64)).max(1)
}

/// Integer `⌈√n⌉`, mirroring the engines' splitter.
fn ceil_sqrt(n: u64) -> u64 {
    if n <= 1 {
        return n;
    }
    let mut x = (n as f64).sqrt() as u64;
    while x.saturating_mul(x) >= n {
        x -= 1;
    }
    while x.saturating_mul(x) < n {
        x += 1;
    }
    x
}

/// Accumulator for the recursion mirrors: far/near bytes, converted to
/// blocks at the end (stripe-ceiling effects are below prediction noise).
#[derive(Default)]
struct Acc {
    far_bytes: f64,
    near_bytes: f64,
    /// Strided single-block touches (SPMS sample gathers) — one block each
    /// regardless of bytes.
    far_touches: f64,
    near_touches: f64,
}

impl Acc {
    fn pass(&mut self, far: bool, bytes: f64, count: f64) {
        if far {
            self.far_bytes += bytes * count;
        } else {
            self.near_bytes += bytes * count;
        }
    }

    fn split(self, p: &ScratchpadParams) -> CostSplit {
        CostSplit {
            far_blocks: self.far_bytes / p.block_bytes as f64 + self.far_touches,
            near_blocks: self.near_bytes / p.near_block_bytes() as f64 + self.near_touches,
        }
    }
}

/// Shared residency boundary: entering a near-resident subtree under a far
/// parent costs one far-read/near-write ingest and one near-read/far-write
/// writeback of the whole segment.
fn boundary(acc: &mut Acc, bytes: f64) {
    acc.far_bytes += 2.0 * bytes;
    acc.near_bytes += 2.0 * bytes;
}

fn spms_rec(acc: &mut Acc, cap: u64, n: u64, elem: f64, parent_far: bool) {
    if n <= 1 {
        return;
    }
    let far = n > cap;
    let bytes = n as f64 * elem;
    if parent_far && !far {
        boundary(acc, bytes);
    }
    if n <= DEFAULT_BASE_ELEMS {
        // Base case: one read + one write pass.
        acc.pass(far, bytes, 2.0);
        return;
    }
    let k = ceil_sqrt(n);
    let group = n.div_ceil(k);
    let n_groups = n.div_ceil(group);
    // Children: full groups plus one remainder group.
    let last = n - group * (n_groups - 1);
    spms_rec(acc, cap, group, elem, far);
    // Identical full groups: scale the marginal cost of one.
    if n_groups > 2 {
        let mut one = Acc::default();
        spms_rec(&mut one, cap, group, elem, far);
        let extra = (n_groups - 2) as f64;
        acc.far_bytes += one.far_bytes * extra;
        acc.near_bytes += one.near_bytes * extra;
        acc.far_touches += one.far_touches * extra;
        acc.near_touches += one.near_touches * extra;
    }
    if n_groups > 1 {
        spms_rec(acc, cap, last, elem, far);
    }
    // Sample: strided gather (block touches) + one merge pass over it.
    let stride = ceil_sqrt(group).max(1);
    let sample_len = ((n_groups - 1) * group.div_ceil(stride) + last.div_ceil(stride)) as f64;
    if far {
        acc.far_touches += sample_len;
    } else {
        acc.near_touches += sample_len;
    }
    acc.pass(far, sample_len * elem, 2.0);
    // Bucket-merge pass + copy-back pass: two read+write passes over n.
    acc.pass(far, bytes, 4.0);
}

fn squaresort_rec(acc: &mut Acc, cap: u64, n: u64, elem: f64, parent_far: bool) {
    if n <= 1 {
        return;
    }
    let far = n > cap;
    let bytes = n as f64 * elem;
    if parent_far && !far {
        boundary(acc, bytes);
    }
    if n <= DEFAULT_BASE_ELEMS {
        acc.pass(far, bytes, 2.0);
        return;
    }
    let block = ceil_sqrt(n);
    let n_blocks = n.div_ceil(block);
    let last = n - block * (n_blocks - 1);
    squaresort_rec(acc, cap, block, elem, far);
    if n_blocks > 2 {
        let mut one = Acc::default();
        squaresort_rec(&mut one, cap, block, elem, far);
        let extra = (n_blocks - 2) as f64;
        acc.far_bytes += one.far_bytes * extra;
        acc.near_bytes += one.near_bytes * extra;
        acc.far_touches += one.far_touches * extra;
        acc.near_touches += one.near_touches * extra;
    }
    if n_blocks > 1 {
        squaresort_rec(acc, cap, last, elem, far);
    }
    // Binary merge tree: ⌈lg(#blocks)⌉ read+write rounds, plus one
    // relocation pass when the round count is odd.
    let rounds = (64 - (n_blocks - 1).leading_zeros()) as f64; // ceil(lg2)
    let odd = rounds as u64 % 2 == 1;
    acc.pass(far, bytes, 2.0 * rounds + if odd { 2.0 } else { 0.0 });
}

/// Predicted cost of the implemented SPMS on `n` elements.
pub fn spms_cost(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> CostSplit {
    let mut acc = Acc::default();
    spms_rec(
        &mut acc,
        near_resident_cap_elems(p, elem_bytes),
        n,
        elem_bytes as f64,
        true,
    );
    acc.split(p)
}

/// Predicted cost of the implemented SquareSort on `n` elements.
pub fn squaresort_cost(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> CostSplit {
    let mut acc = Acc::default();
    squaresort_rec(
        &mut acc,
        near_resident_cap_elems(p, elem_bytes),
        n,
        elem_bytes as f64,
        true,
    );
    acc.split(p)
}

/// Predicted cost of the *aware* NMsort layout on the same residency
/// scale: one far roundtrip when a single Θ(M) chunk suffices, two (Phase 1
/// read/write + Phase 2 read/write) plus ~12% sample-and-metadata slack
/// when it must chunk. Near side follows Corollary 3's in-scratchpad sort.
pub fn nmsort_aware_cost(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> CostSplit {
    let bytes = n as f64 * elem_bytes as f64;
    let cap = near_resident_cap_elems(p, elem_bytes);
    let far_bytes = if n <= cap { 2.0 * bytes } else { 4.12 * bytes };
    let near = crate::theorems::corollary3_in_scratchpad_sort(p, n, elem_bytes);
    CostSplit {
        far_blocks: far_bytes / p.block_bytes as f64,
        near_blocks: near,
    }
}

/// First `n` in `grid` (ascending) where the oblivious predictor's far
/// traffic exceeds the aware predictor's by more than `margin` (e.g. 1.05
/// for 5%): the predicted aware/oblivious crossover. `None` when the
/// oblivious engine stays competitive across the whole grid.
pub fn predicted_crossover(
    p: &ScratchpadParams,
    elem_bytes: usize,
    grid: &[u64],
    oblivious: fn(&ScratchpadParams, u64, usize) -> CostSplit,
    margin: f64,
) -> Option<u64> {
    grid.iter().copied().find(|&n| {
        oblivious(p, n, elem_bytes).far_blocks
            > nmsort_aware_cost(p, n, elem_bytes).far_blocks * margin
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(m: u64) -> ScratchpadParams {
        ScratchpadParams::new(64, 4.0, m, m / 16).unwrap()
    }

    #[test]
    fn below_cap_everything_is_one_roundtrip() {
        let p = params(1 << 20);
        let cap = near_resident_cap_elems(&p, 8);
        assert_eq!(cap, 32_768);
        for n in [1000u64, cap / 2, cap] {
            let far_roundtrip = 2.0 * n as f64 * 8.0 / 64.0;
            for cost in [spms_cost(&p, n, 8), squaresort_cost(&p, n, 8)] {
                assert!(
                    (cost.far_blocks - far_roundtrip).abs() / far_roundtrip < 1e-9,
                    "n={n}: {} vs {far_roundtrip}",
                    cost.far_blocks
                );
                assert!(cost.near_blocks > 0.0);
            }
            let aware = nmsort_aware_cost(&p, n, 8);
            assert!((aware.far_blocks - far_roundtrip).abs() / far_roundtrip < 1e-9);
        }
    }

    #[test]
    fn above_cap_pass_counts_match_the_implementations() {
        // Mirrors the measured profile: NMsort ~4.1 passes, SPMS ~6.1,
        // SquareSort ~18+ once the root streams against far memory.
        let p = params(1 << 20);
        let n = 4 * near_resident_cap_elems(&p, 8);
        let passes = |far_blocks: f64| far_blocks * 64.0 / (n as f64 * 8.0);
        let aware = passes(nmsort_aware_cost(&p, n, 8).far_blocks);
        let spms = passes(spms_cost(&p, n, 8).far_blocks);
        let square = passes(squaresort_cost(&p, n, 8).far_blocks);
        assert!((4.0..4.5).contains(&aware), "aware {aware}");
        assert!((5.8..6.8).contains(&spms), "spms {spms}");
        assert!(square > 14.0, "squaresort {square}");
        assert!(aware < spms && spms < square);
    }

    #[test]
    fn crossover_sits_at_the_residency_cap_and_grows_with_m() {
        let mut last = 0u64;
        for m in [1u64 << 20, 4 << 20, 16 << 20] {
            let p = params(m);
            let cap = near_resident_cap_elems(&p, 8);
            let grid: Vec<u64> = (0..8).map(|i| (cap / 4) << i).collect();
            for engine in [
                spms_cost as fn(&ScratchpadParams, u64, usize) -> CostSplit,
                squaresort_cost,
            ] {
                let x = predicted_crossover(&p, 8, &grid, engine, 1.05)
                    .expect("grid extends well past the cap");
                assert!(x > cap, "crossover {x} must lie beyond the cap {cap}");
                assert!(x > last, "crossover must grow with M");
            }
            last = near_resident_cap_elems(&p, 8);
        }
    }
}
