//! Thread-safe block-transfer cost ledger.
//!
//! The runtime charges every data movement here, in exactly the units the
//! algorithmic model uses: one far-block (`B` bytes) or one near-block
//! (`ρB` bytes) per transfer. The ledger is the ground truth behind the
//! "Scratchpad Accesses" / "DRAM Accesses" columns of Table I and behind the
//! model-validation experiment (F-MODEL in DESIGN.md).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Direction of a charged transfer, from the processor's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Memory → cache.
    Read,
    /// Cache → memory.
    Write,
}

/// Which memory a transfer touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Far memory (conventional DRAM), block size `B`.
    Far,
    /// Near memory (scratchpad), block size `ρB`.
    Near,
}

/// A monotone, thread-safe ledger of model-unit costs.
///
/// All counters use relaxed atomics: they are statistics, not
/// synchronization; totals are read after worker threads join.
#[derive(Debug, Default)]
pub struct CostLedger {
    far_read_blocks: AtomicU64,
    far_write_blocks: AtomicU64,
    near_read_blocks: AtomicU64,
    near_write_blocks: AtomicU64,
    far_bytes: AtomicU64,
    near_bytes: AtomicU64,
    compute_ops: AtomicU64,
}

impl CostLedger {
    /// A fresh, zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `blocks` block transfers (and `bytes` raw bytes) against one
    /// memory level.
    #[inline]
    pub fn charge(&self, level: Level, dir: Dir, blocks: u64, bytes: u64) {
        match (level, dir) {
            (Level::Far, Dir::Read) => self.far_read_blocks.fetch_add(blocks, Ordering::Relaxed),
            (Level::Far, Dir::Write) => self.far_write_blocks.fetch_add(blocks, Ordering::Relaxed),
            (Level::Near, Dir::Read) => self.near_read_blocks.fetch_add(blocks, Ordering::Relaxed),
            (Level::Near, Dir::Write) => {
                self.near_write_blocks.fetch_add(blocks, Ordering::Relaxed)
            }
        };
        match level {
            Level::Far => self.far_bytes.fetch_add(bytes, Ordering::Relaxed),
            Level::Near => self.near_bytes.fetch_add(bytes, Ordering::Relaxed),
        };
    }

    /// Record `n` units of RAM-model work (comparisons, arithmetic). The
    /// model treats computation as free, but the simulator and the
    /// memory-bound analysis both need the operation count.
    #[inline]
    pub fn charge_compute(&self, n: u64) {
        self.compute_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture the current totals.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            far_read_blocks: self.far_read_blocks.load(Ordering::Relaxed),
            far_write_blocks: self.far_write_blocks.load(Ordering::Relaxed),
            near_read_blocks: self.near_read_blocks.load(Ordering::Relaxed),
            near_write_blocks: self.near_write_blocks.load(Ordering::Relaxed),
            far_bytes: self.far_bytes.load(Ordering::Relaxed),
            near_bytes: self.near_bytes.load(Ordering::Relaxed),
            compute_ops: self.compute_ops.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero (between experiment repetitions).
    pub fn reset(&self) {
        self.far_read_blocks.store(0, Ordering::Relaxed);
        self.far_write_blocks.store(0, Ordering::Relaxed);
        self.near_read_blocks.store(0, Ordering::Relaxed);
        self.near_write_blocks.store(0, Ordering::Relaxed);
        self.far_bytes.store(0, Ordering::Relaxed);
        self.near_bytes.store(0, Ordering::Relaxed);
        self.compute_ops.store(0, Ordering::Relaxed);
    }
}

/// An immutable snapshot of a [`CostLedger`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostSnapshot {
    pub far_read_blocks: u64,
    pub far_write_blocks: u64,
    pub near_read_blocks: u64,
    pub near_write_blocks: u64,
    pub far_bytes: u64,
    pub near_bytes: u64,
    pub compute_ops: u64,
}

impl CostSnapshot {
    /// Total far-memory block transfers (reads + writes) — the paper's
    /// "DRAM Accesses".
    #[inline]
    pub fn far_blocks(&self) -> u64 {
        self.far_read_blocks + self.far_write_blocks
    }

    /// Total near-memory block transfers — the paper's "Scratchpad Accesses".
    #[inline]
    pub fn near_blocks(&self) -> u64 {
        self.near_read_blocks + self.near_write_blocks
    }

    /// Total model cost: every block transfer costs 1 regardless of size.
    #[inline]
    pub fn total_blocks(&self) -> u64 {
        self.far_blocks() + self.near_blocks()
    }

    /// Difference of two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            far_read_blocks: self.far_read_blocks - earlier.far_read_blocks,
            far_write_blocks: self.far_write_blocks - earlier.far_write_blocks,
            near_read_blocks: self.near_read_blocks - earlier.near_read_blocks,
            near_write_blocks: self.near_write_blocks - earlier.near_write_blocks,
            far_bytes: self.far_bytes - earlier.far_bytes,
            near_bytes: self.near_bytes - earlier.near_bytes,
            compute_ops: self.compute_ops - earlier.compute_ops,
        }
    }
}

impl core::ops::Add for CostSnapshot {
    type Output = CostSnapshot;
    fn add(self, o: CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            far_read_blocks: self.far_read_blocks + o.far_read_blocks,
            far_write_blocks: self.far_write_blocks + o.far_write_blocks,
            near_read_blocks: self.near_read_blocks + o.near_read_blocks,
            near_write_blocks: self.near_write_blocks + o.near_write_blocks,
            far_bytes: self.far_bytes + o.far_bytes,
            near_bytes: self.near_bytes + o.near_bytes,
            compute_ops: self.compute_ops + o.compute_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn charges_accumulate() {
        let l = CostLedger::new();
        l.charge(Level::Far, Dir::Read, 3, 192);
        l.charge(Level::Far, Dir::Write, 2, 128);
        l.charge(Level::Near, Dir::Read, 5, 1280);
        l.charge_compute(10);
        let s = l.snapshot();
        assert_eq!(s.far_blocks(), 5);
        assert_eq!(s.near_blocks(), 5);
        assert_eq!(s.total_blocks(), 10);
        assert_eq!(s.far_bytes, 320);
        assert_eq!(s.near_bytes, 1280);
        assert_eq!(s.compute_ops, 10);
    }

    #[test]
    fn reset_zeroes() {
        let l = CostLedger::new();
        l.charge(Level::Near, Dir::Write, 7, 7 * 256);
        l.reset();
        assert_eq!(l.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let l = CostLedger::new();
        l.charge(Level::Far, Dir::Read, 10, 640);
        let a = l.snapshot();
        l.charge(Level::Far, Dir::Read, 4, 256);
        let b = l.snapshot();
        let d = b.since(&a);
        assert_eq!(d.far_read_blocks, 4);
        assert_eq!(d.far_bytes, 256);
    }

    #[test]
    fn add_combines() {
        let a = CostSnapshot {
            far_read_blocks: 1,
            near_write_blocks: 2,
            ..Default::default()
        };
        let b = CostSnapshot {
            far_read_blocks: 3,
            compute_ops: 5,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.far_read_blocks, 4);
        assert_eq!(c.near_write_blocks, 2);
        assert_eq!(c.compute_ops, 5);
    }

    #[test]
    fn concurrent_charging_is_lossless() {
        let l = Arc::new(CostLedger::new());
        let threads = 8;
        let per = 10_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let l = Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..per {
                        l.charge(Level::Far, Dir::Read, 1, 64);
                        l.charge(Level::Near, Dir::Write, 2, 512);
                    }
                });
            }
        });
        let s = l.snapshot();
        assert_eq!(s.far_read_blocks, threads * per);
        assert_eq!(s.near_write_blocks, 2 * threads * per);
    }
}
