//! Lemma 5 machinery: the randomized recursion-depth analysis.
//!
//! A *split* of a bucket is **good** if it shrinks the bucket by at least a
//! `√m` factor, where `m` is the sample size; a split is bad with
//! probability ≈ `e^{-√m}`. After `O(log_m(N/M))` bucketizing scans every
//! bucket fits in the scratchpad with high probability. These helpers let
//! tests and the analysis crate reason about those quantities numerically.

/// Probability that a single split is *bad* (fails to shrink its bucket by a
/// `√m` factor): `(1 - √m/m)^m ≈ e^{-√m}`.
pub fn bad_split_probability(m: usize) -> f64 {
    let m = m.max(2) as f64;
    let keep = 1.0 - m.sqrt() / m;
    keep.powf(m)
}

/// The closed-form approximation `e^{-√m}` used in the paper's exposition.
pub fn bad_split_probability_approx(m: usize) -> f64 {
    (-(m.max(2) as f64).sqrt()).exp()
}

/// Shrink factor guaranteed by a good split: `√m`.
pub fn good_split_shrink(m: usize) -> f64 {
    (m.max(2) as f64).sqrt()
}

/// Number of good splits needed to take a bucket of `n` elements down to
/// scratchpad capacity `cap`: `⌈log_{√m}(n/cap)⌉`.
pub fn good_splits_needed(n: u64, cap: u64, m: usize) -> u32 {
    if n <= cap.max(1) {
        return 0;
    }
    let ratio = n as f64 / cap.max(1) as f64;
    (ratio.ln() / good_split_shrink(m).ln()).ceil() as u32
}

/// Expected number of *scans* (counting bad splits) with the paper's
/// constant: `(3/2)·c·log_m(N/M)` scans contain `c·log_m(N/M)` bad splits
/// whp, leaving enough good splits. We surface the 1.5× safety factor.
pub fn expected_scans_with_slack(n: u64, cap: u64, m: usize) -> u32 {
    let need = good_splits_needed(n, cap, m);
    // Good splits shrink by sqrt(m), so log_m terms double: need/2 scans of
    // log_m, times the 3/2 slack. Keep it simple and conservative:
    ((need as f64) * 1.5).ceil() as u32
}

/// Union-bound failure probability that some bucket is still oversized after
/// `scans` scans: `n_buckets · Pr[too many bad splits]`, crudely bounded by
/// `n · p_bad^(scans - needed)` for `scans > needed`.
pub fn failure_probability_upper(n: u64, cap: u64, m: usize, scans: u32) -> f64 {
    let need = good_splits_needed(n, cap, m);
    if scans <= need {
        return 1.0;
    }
    let slack = (scans - need) as f64;
    let p = bad_split_probability_approx(m);
    (n as f64 * p.powf(slack)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_split_probability_tiny_for_real_sample_sizes() {
        // m = M/(4B) for the paper machine is ~2M; e^{-√m} is astronomically
        // small. Use a modest m here.
        let p = bad_split_probability(10_000);
        assert!(p < 1e-40, "p = {p}");
    }

    #[test]
    fn exact_close_to_approx() {
        for &m in &[16usize, 64, 256, 1024] {
            let exact = bad_split_probability(m);
            let approx = bad_split_probability_approx(m);
            // (1 - 1/√m)^m = e^{m ln(1-1/√m)} ≈ e^{-√m - 1/2 - ...}: the
            // exact value is *smaller*; they agree within a factor e.
            assert!(
                exact <= approx * 1.01,
                "m={m} exact={exact} approx={approx}"
            );
            assert!(exact >= approx * (-2.0f64).exp(), "m={m}");
        }
    }

    #[test]
    fn good_splits_monotone() {
        assert_eq!(good_splits_needed(100, 1000, 64), 0);
        let a = good_splits_needed(1 << 30, 1 << 20, 64);
        let b = good_splits_needed(1 << 40, 1 << 20, 64);
        assert!(b > a);
        // Bigger samples shrink faster.
        let c = good_splits_needed(1 << 40, 1 << 20, 1 << 16);
        assert!(c < b);
    }

    #[test]
    fn failure_probability_decreases_with_scans() {
        let n = 1 << 30;
        let base = good_splits_needed(n, 1 << 20, 4096);
        let p1 = failure_probability_upper(n, 1 << 20, 4096, base + 1);
        let p2 = failure_probability_upper(n, 1 << 20, 4096, base + 2);
        assert!(p2 <= p1);
        assert_eq!(failure_probability_upper(n, 1 << 20, 4096, base), 1.0);
    }

    #[test]
    fn slack_scans_cover_needed() {
        let need = good_splits_needed(1 << 34, 1 << 26, 4096);
        assert!(expected_scans_with_slack(1 << 34, 1 << 26, 4096) >= need);
    }
}
