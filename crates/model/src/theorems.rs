//! The paper's theorems as closed-form cost predictors.
//!
//! Every function returns costs in **block transfers** (the model's unit).
//! `n` is the number of *elements*; element size converts elements to bytes
//! so callers can work in their natural unit. Constants hidden by Θ(·) are
//! taken as 1 — predictions are meant for *shape* comparison (ratios,
//! crossovers), exactly how the paper uses them.

use crate::params::ScratchpadParams;
use crate::{ceil_div, lg2_clamped, log_clamped};

/// Split of a predicted sorting cost into its far- and near-memory parts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSplit {
    /// Predicted far-memory (DRAM) block transfers.
    pub far_blocks: f64,
    /// Predicted near-memory (scratchpad) block transfers.
    pub near_blocks: f64,
}

impl CostSplit {
    /// Total predicted block transfers (each costs 1 in the model).
    #[inline]
    pub fn total(&self) -> f64 {
        self.far_blocks + self.near_blocks
    }
}

/// Elements per far block (`B` bytes) for a given element size.
fn elems_per_far_block(p: &ScratchpadParams, elem_bytes: usize) -> f64 {
    (p.block_bytes as f64 / elem_bytes as f64).max(1.0)
}

/// **Theorem 1** (Aggarwal–Vitter): sorting `n` elements with a cache of
/// size `Z` and block (line) size `L` bytes, no scratchpad, using multiway
/// merge sort with branching factor `Z/L`:
/// `Θ((n/L)·log_{Z/L}(n/L))` block transfers (element-adjusted).
pub fn theorem1_multiway_sort(n: u64, elem_bytes: usize, cache_bytes: u64, line_bytes: u64) -> f64 {
    let elems_per_line = (line_bytes as f64 / elem_bytes as f64).max(1.0);
    let n_lines = n as f64 / elems_per_line;
    let fanout = cache_bytes as f64 / line_bytes as f64;
    n_lines * log_clamped(fanout, n_lines).max(1.0)
}

/// **Theorem 2**: binary merge sort under the same setting:
/// `Θ((n/L)·lg(n/Z_elems))` block transfers.
pub fn theorem2_merge_sort(n: u64, elem_bytes: usize, cache_bytes: u64, line_bytes: u64) -> f64 {
    let elems_per_line = (line_bytes as f64 / elem_bytes as f64).max(1.0);
    let n_lines = n as f64 / elems_per_line;
    let z_elems = cache_bytes as f64 / elem_bytes as f64;
    n_lines * lg2_clamped((n as f64 / z_elems).max(2.0))
}

/// **Corollary 3**: sorting `x` elements that fit in the scratchpad with
/// multiway merge sort (branching `Z/B`) uses
/// `Θ((x/ρB)·log_{Z/B}(x/B))` (near-memory) block transfers.
pub fn corollary3_in_scratchpad_sort(p: &ScratchpadParams, x: u64, elem_bytes: usize) -> f64 {
    let epb = elems_per_far_block(p, elem_bytes);
    let x_far_blocks = x as f64 / epb;
    let x_near_blocks = x_far_blocks / p.rho;
    let fanout = p.cache_blocks() as f64;
    x_near_blocks * log_clamped(fanout, x_far_blocks).max(1.0)
}

/// **Lemma 4**: cost of one bucketizing scan over `n` elements.
/// Returns `(far_blocks, near_blocks, ram_ops)`.
pub fn lemma4_scan_cost(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> (f64, f64, f64) {
    let epb = elems_per_far_block(p, elem_bytes);
    let n_far = n as f64 / epb;
    // Read everything from DRAM once, write everything back once.
    let far = 2.0 * n_far;
    // Sort each scratchpad-resident group: N/(ρB)·log_{Z/ρB}(M/ρB).
    let m_far_blocks = p.scratchpad_blocks() as f64;
    let near_fanout = p.cache_bytes as f64 / p.near_block_bytes() as f64;
    let near = (n_far / p.rho) * log_clamped(near_fanout, m_far_blocks / p.rho).max(1.0);
    let ops = n as f64 * lg2_clamped(p.scratchpad_capacity_elems(elem_bytes) as f64);
    (far, near, ops)
}

/// **Lemma 5**: number of bucketizing scans until every bucket fits in the
/// scratchpad, `O(log_m(N/M))`, with high probability. We return the
/// ceiling, minimum 1 (a single scan is always required when `n > M`).
pub fn lemma5_scan_count(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> u32 {
    let cap = p.scratchpad_capacity_elems(elem_bytes) as f64;
    if (n as f64) <= cap {
        return 0;
    }
    let m = p.sample_size_m() as f64;
    log_clamped(m, n as f64 / cap).ceil().max(1.0) as u32
}

/// **Theorem 6**: total cost of the randomized scratchpad sample sort:
/// `Θ(N/B·log_{M/B}(N/B))` far-block transfers plus
/// `Θ(N/(ρB)·log_{Z/ρB}(N/B))` near-block transfers.
pub fn theorem6_scratchpad_sort(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> CostSplit {
    let epb = elems_per_far_block(p, elem_bytes);
    let n_far = n as f64 / epb;
    let far_fanout = p.scratchpad_blocks() as f64;
    let far = n_far * log_clamped(far_fanout, n_far).max(1.0);
    let near_fanout = p.cache_bytes as f64 / p.near_block_bytes() as f64;
    let near = (n_far / p.rho) * log_clamped(near_fanout, n_far).max(1.0);
    CostSplit {
        far_blocks: far,
        near_blocks: near,
    }
}

/// The matching **lower bound** from Theorem 6's proof:
/// `Ω(N/B·log_{M/B}(N/B) + N/(ρB)·log_{Z/ρB}(N/B))`.
pub fn theorem6_lower_bound(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> f64 {
    theorem6_scratchpad_sort(p, n, elem_bytes).total()
}

/// **Corollary 7**: the quicksort-inside-scratchpad variant:
/// `O(N/B·log_{M/B}(N/B) + N/(ρB)·lg(M/Z)·log_{M/B}(N/B))` in expectation.
/// Optimal when `ρ = Ω(lg(M/Z))`.
pub fn corollary7_quicksort_variant(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> CostSplit {
    let epb = elems_per_far_block(p, elem_bytes);
    let n_far = n as f64 / epb;
    let far_fanout = p.scratchpad_blocks() as f64;
    let depth = log_clamped(far_fanout, n_far).max(1.0);
    let far = n_far * depth;
    let near =
        (n_far / p.rho) * lg2_clamped(p.scratchpad_bytes as f64 / p.cache_bytes as f64) * depth;
    CostSplit {
        far_blocks: far,
        near_blocks: near,
    }
}

/// Is the quicksort variant optimal (Corollary 7's condition
/// `ρ = Ω(lg(M/Z))`, with the hidden constant taken as 1)?
pub fn corollary7_is_optimal(p: &ScratchpadParams) -> bool {
    p.rho >= lg2_clamped(p.scratchpad_bytes as f64 / p.cache_bytes as f64)
}

/// **Theorem 8** (PEM sort): sorting `n` elements with `p_prime` processors,
/// per-processor cache `Z`, block size `L` bytes:
/// `Θ((n/(p′·L))·log_{Z/L}(n/L))` block-transfer *steps*.
pub fn theorem8_pem_sort(
    n: u64,
    elem_bytes: usize,
    p_prime: u64,
    cache_bytes: u64,
    line_bytes: u64,
) -> f64 {
    theorem1_multiway_sort(n, elem_bytes, cache_bytes, line_bytes) / (p_prime.max(1) as f64)
}

/// **Theorem 10**: parallel scratchpad sort with `p′` simultaneous block
/// transfers: both terms of Theorem 6 divided by `p′`.
pub fn theorem10_parallel_sort(
    p: &ScratchpadParams,
    n: u64,
    elem_bytes: usize,
    p_prime: u64,
) -> CostSplit {
    let c = theorem6_scratchpad_sort(p, n, elem_bytes);
    let pp = p_prime.max(1) as f64;
    CostSplit {
        far_blocks: c.far_blocks / pp,
        near_blocks: c.near_blocks / pp,
    }
}

/// Predicted cost split for the **baseline** (no scratchpad): Theorem 1 with
/// `L = B` — everything is far traffic; near traffic is zero.
pub fn baseline_sort_cost(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> CostSplit {
    CostSplit {
        far_blocks: theorem1_multiway_sort(n, elem_bytes, p.cache_bytes, p.block_bytes),
        near_blocks: 0.0,
    }
}

/// Predicted speedup of the scratchpad sort over the baseline in the
/// bandwidth-bound regime: ratio of *time-weighted* traffic, where a near
/// block moves `ρ×` the data per unit time. In the fully bandwidth-bound
/// limit both algorithms are limited by their far traffic, so the headline
/// prediction is `baseline_far / scratchpad_far`.
pub fn predicted_bandwidth_bound_speedup(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> f64 {
    let base = baseline_sort_cost(p, n, elem_bytes);
    let sp = theorem6_scratchpad_sort(p, n, elem_bytes);
    base.far_blocks / sp.far_blocks.max(1.0)
}

/// Exact (non-asymptotic) count of far blocks needed to scan `n` elements
/// once (read only). Used by tests to anchor ledger counts.
pub fn exact_scan_far_blocks(p: &ScratchpadParams, n: u64, elem_bytes: usize) -> u64 {
    ceil_div(n * elem_bytes as u64, p.block_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(rho: f64) -> ScratchpadParams {
        ScratchpadParams::paper_default(rho)
    }

    const N: u64 = 10_000_000;
    const E: usize = 8;

    #[test]
    fn theorem1_monotone_in_n() {
        let a = theorem1_multiway_sort(1 << 20, E, 36 << 20, 64);
        let b = theorem1_multiway_sort(1 << 24, E, 36 << 20, 64);
        assert!(b > a);
    }

    #[test]
    fn theorem2_dominates_theorem1() {
        // Binary merge sort always needs at least as many transfers as the
        // multiway variant (its log base is 2, not Z/L).
        let t1 = theorem1_multiway_sort(N, E, 36 << 20, 64);
        let t2 = theorem2_merge_sort(N, E, 36 << 20, 64);
        assert!(t2 >= t1, "t2={t2} t1={t1}");
    }

    #[test]
    fn theorem6_near_traffic_shrinks_with_rho() {
        let lo = theorem6_scratchpad_sort(&p(2.0), N, E);
        let hi = theorem6_scratchpad_sort(&p(8.0), N, E);
        assert!(hi.near_blocks < lo.near_blocks);
        // Far traffic is independent of rho.
        assert!((hi.far_blocks - lo.far_blocks).abs() < 1e-6);
    }

    #[test]
    fn theorem6_beats_baseline_on_far_traffic() {
        // The scratchpad sort's DRAM traffic uses fanout M/B >> Z/B, so it
        // needs fewer DRAM transfers than the baseline.
        let base = baseline_sort_cost(&p(4.0), N, E);
        let sp = theorem6_scratchpad_sort(&p(4.0), N, E);
        assert!(sp.far_blocks < base.far_blocks);
    }

    #[test]
    fn lower_bound_not_above_upper_bound() {
        let ub = theorem6_scratchpad_sort(&p(4.0), N, E).total();
        let lb = theorem6_lower_bound(&p(4.0), N, E);
        assert!(lb <= ub + 1e-9);
    }

    #[test]
    fn corollary7_matches_optimality_condition() {
        // M/Z = 512MB/36MB ≈ 14.2, lg ≈ 3.83.
        assert!(!corollary7_is_optimal(&p(2.0)));
        assert!(corollary7_is_optimal(&p(4.0)));
        assert!(corollary7_is_optimal(&p(8.0)));
    }

    #[test]
    fn corollary7_at_least_theorem6() {
        let opt = theorem6_scratchpad_sort(&p(2.0), N, E);
        let qs = corollary7_quicksort_variant(&p(2.0), N, E);
        assert!(qs.total() >= opt.total() - 1e-9);
    }

    #[test]
    fn theorem8_scales_inversely_with_processors() {
        let one = theorem8_pem_sort(N, E, 1, 36 << 20, 64);
        let many = theorem8_pem_sort(N, E, 64, 36 << 20, 64);
        assert!((one / many - 64.0).abs() < 1e-9);
    }

    #[test]
    fn theorem10_divides_both_terms() {
        let seq = theorem6_scratchpad_sort(&p(4.0), N, E);
        let par = theorem10_parallel_sort(&p(4.0), N, E, 16);
        assert!((seq.far_blocks / par.far_blocks - 16.0).abs() < 1e-9);
        assert!((seq.near_blocks / par.near_blocks - 16.0).abs() < 1e-9);
    }

    #[test]
    fn lemma5_zero_scans_when_fits() {
        assert_eq!(lemma5_scan_count(&p(4.0), 1000, E), 0);
        assert!(lemma5_scan_count(&p(4.0), 200_000_000, E) >= 1);
    }

    #[test]
    fn lemma4_costs_positive_and_scale() {
        let (f1, n1, o1) = lemma4_scan_cost(&p(4.0), N, E);
        let (f2, n2, o2) = lemma4_scan_cost(&p(4.0), 2 * N, E);
        assert!(f1 > 0.0 && n1 > 0.0 && o1 > 0.0);
        assert!((f2 / f1 - 2.0).abs() < 1e-9);
        assert!((n2 / n1 - 2.0).abs() < 1e-9);
        assert!(o2 > o1);
    }

    #[test]
    fn exact_scan_blocks() {
        let pp = p(4.0);
        assert_eq!(exact_scan_far_blocks(&pp, 8, 8), 1); // 64 bytes = 1 block
        assert_eq!(exact_scan_far_blocks(&pp, 9, 8), 2);
    }

    #[test]
    fn speedup_grows_with_rho_until_far_bound() {
        // Far-traffic ratio is rho-independent, but total time-weighted
        // advantage should be >= 1 for rho >= 1.
        let s = predicted_bandwidth_bound_speedup(&p(4.0), N, E);
        assert!(s >= 1.0, "speedup {s}");
    }
}
