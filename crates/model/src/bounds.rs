//! §V-A: when is sorting memory-bandwidth bound?
//!
//! The paper's back-of-envelope test: let `x` be the aggregate processing
//! rate (comparisons/s), `y` the DRAM→cache bandwidth in *elements*/s, and
//! `Z` the number of cache-resident blocks. Sorting does `N·log N`
//! comparisons but only needs `N·log N / log Z` element transfers, so it is
//! **memory-bound** exactly when `y·log Z < x` — independent of `N`.

use serde::{Deserialize, Serialize};

/// Machine rates relevant to the §V-A bandwidth-bound computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineRates {
    /// Aggregate processing rate `x` in operations (comparisons) per second.
    pub ops_per_sec: f64,
    /// DRAM→cache bandwidth `y` in elements per second.
    pub elems_per_sec: f64,
    /// Number of blocks resident in on-chip memory (`Z` in the inequality —
    /// the paper uses block count, ~1e6 for the Fig. 4 machine).
    pub cache_blocks: f64,
}

impl MachineRates {
    /// The Fig. 4 / §V-A machine: `x ≈ 10^10`, `y ≈ 10^9`, `Z ≈ 10^6`.
    pub fn paper_fig4() -> Self {
        Self {
            ops_per_sec: 1e10,
            elems_per_sec: 1e9,
            cache_blocks: 1e6,
        }
    }

    /// Construct rates for a node with `cores` cores at `core_ops_per_sec`
    /// each, DRAM bandwidth `dram_bytes_per_sec`, element size `elem_bytes`,
    /// and `cache_blocks` on-chip blocks.
    pub fn for_node(
        cores: u32,
        core_ops_per_sec: f64,
        dram_bytes_per_sec: f64,
        elem_bytes: usize,
        cache_blocks: f64,
    ) -> Self {
        Self {
            ops_per_sec: cores as f64 * core_ops_per_sec,
            elems_per_sec: dram_bytes_per_sec / elem_bytes as f64,
            cache_blocks,
        }
    }
}

/// Outcome of the bandwidth-bound test, with the two compared quantities so
/// harnesses can print the margin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthBoundVerdict {
    /// Left-hand side `y·log₂ Z`: the rate at which memory can *feed* useful
    /// comparisons.
    pub feed_rate: f64,
    /// Right-hand side `x`: the rate at which cores consume comparisons.
    pub consume_rate: f64,
}

impl BandwidthBoundVerdict {
    /// `true` when sorting on this machine is memory-bandwidth bound.
    #[inline]
    pub fn is_memory_bound(&self) -> bool {
        self.feed_rate < self.consume_rate
    }

    /// How many times faster the cores are than the memory can feed them
    /// (`> 1` ⇒ memory-bound).
    #[inline]
    pub fn pressure(&self) -> f64 {
        self.consume_rate / self.feed_rate.max(f64::MIN_POSITIVE)
    }
}

/// Apply the §V-A test to a machine.
pub fn bandwidth_bound_verdict(rates: &MachineRates) -> BandwidthBoundVerdict {
    BandwidthBoundVerdict {
        feed_rate: rates.elems_per_sec * rates.cache_blocks.max(2.0).log2(),
        consume_rate: rates.ops_per_sec,
    }
}

/// Minimum number of cores for sorting to become memory-bound, given
/// per-core rate, DRAM bandwidth, element size, and cache blocks. Returns
/// `None` if even `u32::MAX` cores would not saturate memory.
pub fn crossover_cores(
    core_ops_per_sec: f64,
    dram_bytes_per_sec: f64,
    elem_bytes: usize,
    cache_blocks: f64,
) -> Option<u32> {
    let feed = (dram_bytes_per_sec / elem_bytes as f64) * cache_blocks.max(2.0).log2();
    let cores = (feed / core_ops_per_sec).ceil();
    // Crossover requires strictly exceeding the feed rate.
    let cores = if cores * core_ops_per_sec <= feed {
        cores + 1.0
    } else {
        cores
    };
    if cores.is_finite() && cores <= u32::MAX as f64 {
        Some(cores as u32)
    } else {
        None
    }
}

/// Minimum bandwidth-expansion factor ρ at which a bandwidth-bound node's
/// sort stops being limited by the *scratchpad* side: once
/// `near_time ≤ far_time` further ρ gives diminishing returns. Derived from
/// Theorem 6's two terms with near blocks carrying ρ× the bytes.
pub fn rho_saturation_point(far_blocks: f64, near_blocks_at_rho1: f64) -> f64 {
    // near term at rho: near_blocks_at_rho1 / rho (in time units, since a
    // near block costs 1 like a far block). Saturation when equal:
    (near_blocks_at_rho1 / far_blocks.max(f64::MIN_POSITIVE)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig4_is_borderline_memory_bound() {
        // §V-A: "these quantities are comparable: 1e9·log(1e6) ≈ 1e10" — with
        // exact log2 the feed side is 1e9·19.93 ≈ 2e10, i.e. borderline; the
        // paper observes 256 cores memory-bound, 128 not. The verdict for the
        // nominal figures should be within 2x of the boundary.
        let v = bandwidth_bound_verdict(&MachineRates::paper_fig4());
        assert!(
            v.pressure() > 0.4 && v.pressure() < 2.5,
            "pressure {}",
            v.pressure()
        );
    }

    #[test]
    fn more_cores_make_it_memory_bound() {
        let mk = |cores| MachineRates::for_node(cores, 1.7e9 * 2.0, 60e9, 8, 1e6);
        let few = bandwidth_bound_verdict(&mk(32));
        let many = bandwidth_bound_verdict(&mk(1024));
        assert!(!few.is_memory_bound());
        assert!(many.is_memory_bound());
        assert!(many.pressure() > few.pressure());
    }

    #[test]
    fn crossover_consistent_with_verdict() {
        let core_rate = 1.7e9 * 2.0;
        let cross = crossover_cores(core_rate, 60e9, 8, 1e6).unwrap();
        let below = MachineRates::for_node(cross - 1, core_rate, 60e9, 8, 1e6);
        let at = MachineRates::for_node(cross, core_rate, 60e9, 8, 1e6);
        assert!(!bandwidth_bound_verdict(&below).is_memory_bound());
        assert!(bandwidth_bound_verdict(&at).is_memory_bound());
    }

    #[test]
    fn crossover_between_128_and_256_for_paperlike_machine() {
        // Choose the per-core effective comparison rate so that the paper's
        // observation (128 not bound, 256 bound) is reproducible: with
        // 60 GB/s, 8-byte elements, 1e6 cache blocks, feed ≈ 1.5e11 ops/s.
        // A per-core rate of ~0.9e9 useful comparisons/s puts the crossover
        // in (128, 256].
        let cross = crossover_cores(0.9e9, 60e9, 8, 1e6).unwrap();
        assert!(cross > 128 && cross <= 256, "crossover {cross}");
    }

    #[test]
    fn rho_saturation_at_least_one() {
        assert!(rho_saturation_point(100.0, 50.0) >= 1.0);
        assert!((rho_saturation_point(100.0, 400.0) - 4.0).abs() < 1e-12);
    }
}
