//! Shared test fixtures for the workspace's integration and property
//! suites.
//!
//! Before this crate, three things were copy-pasted across test binaries
//! and drifted independently:
//!
//! * the **workload-shape panels** (which adversarial input shapes every
//!   differential/property suite sweeps),
//! * the **golden bless/compare ritual** (`TLMM_BLESS=1` regenerates, a
//!   normal run asserts byte-identical serialization plus a typed
//!   round-trip),
//! * the **process-global lock** idiom for suites that mutate global
//!   state (flight recorder, SIMD dispatch) under cargo's parallel test
//!   threads.
//!
//! This crate is a `dev-dependency` only: production crates must never
//! link it.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use tlmm_workloads::Workload;

/// The differential suite's seven workload shapes: the paper's uniform
/// input plus the adversarial edge cases (pre-sortedness, reversal, local
/// perturbation, duplicates, skew, periodic ramps).
pub const SHAPES: [Workload; 7] = [
    Workload::UniformU64,
    Workload::Sorted,
    Workload::Reverse,
    Workload::NearlySorted(0.1),
    Workload::FewDistinct(16),
    Workload::Zipf(1.2),
    Workload::Sawtooth(1000),
];

/// The kernel-level panel: [`SHAPES`]'s categories re-parameterized to
/// stress in-scratchpad sorters (prime sawtooth period, heavier
/// duplication) plus the all-equal adversarial bucket case.
pub const KERNEL_SHAPES: [Workload; 8] = [
    Workload::UniformU64,
    Workload::Sorted,
    Workload::Reverse,
    Workload::NearlySorted(0.1),
    Workload::FewDistinct(7),
    Workload::Zipf(1.1),
    Workload::AllEqual,
    Workload::Sawtooth(257),
];

/// Simulated-lane widths the executor suites sweep.
pub const LANES: [usize; 5] = [1, 2, 4, 8, 16];

/// Proptest strategy over the shape categories, drawing the parameters
/// (sawtooth period, distinct count, Zipf exponent) from ranges instead of
/// the fixed panel values — property suites get the whole family, table
/// suites get the pinned [`SHAPES`].
pub fn shaped_workload() -> impl Strategy<Value = Workload> {
    (0u8..7, 2u64..500, 0.8f64..1.6).prop_map(|(which, period, s)| match which {
        0 => Workload::UniformU64,
        1 => Workload::AllEqual,
        2 => Workload::Sawtooth(period),
        3 => Workload::Sorted,
        4 => Workload::Reverse,
        5 => Workload::FewDistinct(period % 19 + 1),
        _ => Workload::Zipf(s),
    })
}

/// True when the run should regenerate goldens instead of asserting
/// against them (`TLMM_BLESS` set to anything).
pub fn bless_requested() -> bool {
    std::env::var_os("TLMM_BLESS").is_some()
}

/// `<dir>/<name>.json` — the committed location of a golden snapshot.
pub fn golden_path(dir: &str, name: &str) -> PathBuf {
    Path::new(dir).join(format!("{name}.json"))
}

/// The golden bless/compare ritual on an already-rendered string.
///
/// Under `TLMM_BLESS` the rendering is written (newline-terminated) and
/// the test passes vacuously; otherwise the committed file must exist and
/// match byte-for-byte modulo the trailing newline. `context` names the
/// configuration that produced the rendering so a diff says *which* sweep
/// diverged.
pub fn check_golden_str(path: &Path, rendered: &str, context: &str) {
    if bless_requested() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).unwrap();
        }
        std::fs::write(path, format!("{}\n", rendered.trim_end())).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("missing golden {path:?} ({e}); run with TLMM_BLESS=1 to create it")
    });
    assert_eq!(
        committed.trim_end(),
        rendered.trim_end(),
        "{} diverged from golden ({context}); if intentional, regenerate \
         with TLMM_BLESS=1 and justify the re-bless in the commit",
        path.display()
    );
}

/// Typed golden check: serializes `value` with the vendored pretty
/// printer, runs [`check_golden_str`], then re-parses the committed text
/// and compares as a typed value so a formatting-only change can't mask a
/// semantic one (and vice versa).
pub fn check_golden<T>(path: &Path, value: &T, context: &str)
where
    T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let rendered = serde::json::to_string_pretty(value).expect("golden value serializes");
    check_golden_str(path, &rendered, context);
    if bless_requested() {
        return;
    }
    let committed = std::fs::read_to_string(path).unwrap();
    let parsed: T = serde::json::from_str(committed.trim_end()).unwrap();
    assert_eq!(
        &parsed,
        value,
        "{} golden round-trip ({context})",
        path.display()
    );
}

/// Serialize tests that mutate process-global state (flight recorder,
/// SIMD dispatch toggles): lock before touching the global, and keep the
/// suite alive across a poisoned lock — a failed case already reported
/// its panic, the rest of the suite should still run.
pub fn serial_guard(lock: &'static Mutex<()>) -> MutexGuard<'static, ()> {
    lock.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_are_distinct_shapes() {
        // Each panel entry is a distinct shape: a sweep indexed by panel
        // position never runs the same input twice.
        for (i, a) in SHAPES.iter().enumerate() {
            for b in SHAPES.iter().skip(i + 1) {
                assert_ne!(format!("{a:?}"), format!("{b:?}"));
            }
        }
        for (i, a) in KERNEL_SHAPES.iter().enumerate() {
            for b in KERNEL_SHAPES.iter().skip(i + 1) {
                assert_ne!(format!("{a:?}"), format!("{b:?}"));
            }
        }
    }

    #[test]
    fn golden_str_blesses_and_compares() {
        let dir = std::env::temp_dir().join(format!("tlmm-testkit-{}", std::process::id()));
        let path = golden_path(dir.to_str().unwrap(), "sample");
        // Simulate a bless without touching the real env: write directly,
        // then compare both the equal and trailing-newline cases.
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "{\n  \"x\": 1\n}\n").unwrap();
        check_golden_str(&path, "{\n  \"x\": 1\n}", "unit");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "missing golden")]
    fn golden_str_panics_on_missing_file() {
        let path = golden_path("/nonexistent-tlmm-testkit", "nope");
        check_golden_str(&path, "{}", "unit");
    }

    #[test]
    fn serial_guard_survives_poison() {
        static L: Mutex<()> = Mutex::new(());
        let _ = std::panic::catch_unwind(|| {
            let _g = serial_guard(&L);
            panic!("poison it");
        });
        let _g = serial_guard(&L); // must not deadlock or panic
    }
}
