//! Seeded input generators for the experiments.
//!
//! The paper evaluates on "random 64-bit integers" (§V); the other
//! distributions exercise the algorithms' edge cases (pre-sortedness, heavy
//! duplication, skew) and feed the robustness tests and ablation benches.
//! Every generator is deterministic in its seed so experiments are
//! reproducible run-to-run.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The input distributions available to harnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Uniform random `u64` (the paper's workload).
    UniformU64,
    /// Uniform random over `[0, max)`.
    UniformBounded(u64),
    /// Already sorted ascending.
    Sorted,
    /// Sorted descending.
    Reverse,
    /// Sorted with `frac_swapped` of positions perturbed locally.
    NearlySorted(f64),
    /// Exactly `k` distinct values, uniformly.
    FewDistinct(u64),
    /// Zipf-distributed values with exponent `s` — heavy skew, stresses
    /// bucket balance.
    Zipf(f64),
    /// All elements equal (the adversarial bucket case).
    AllEqual,
    /// Repeating ascending ramps of the given period (`i % period`) —
    /// piecewise-sorted with periodic discontinuities, the classic
    /// merge-adversarial "sawtooth" shape.
    Sawtooth(u64),
}

/// Generate `n` elements of `w` with `seed`.
pub fn generate(w: Workload, n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    match w {
        Workload::UniformU64 => (0..n).map(|_| rng.gen()).collect(),
        Workload::UniformBounded(max) => (0..n).map(|_| rng.gen_range(0..max.max(1))).collect(),
        Workload::Sorted => (0..n as u64).collect(),
        Workload::Reverse => (0..n as u64).rev().collect(),
        Workload::NearlySorted(frac) => {
            let mut v: Vec<u64> = (0..n as u64).collect();
            let swaps = ((n as f64) * frac.clamp(0.0, 1.0) / 2.0) as usize;
            for _ in 0..swaps {
                if n < 2 {
                    break;
                }
                let i = rng.gen_range(0..n - 1);
                // Local perturbation: swap with a near neighbour.
                let j = (i + 1 + rng.gen_range(0..16)).min(n - 1);
                v.swap(i, j);
            }
            v
        }
        Workload::FewDistinct(k) => {
            let k = k.max(1);
            (0..n).map(|_| rng.gen_range(0..k)).collect()
        }
        Workload::Zipf(s) => {
            let zipf = ZipfSampler::new(n.max(2) as u64, s);
            (0..n).map(|_| zipf.sample(&mut rng)).collect()
        }
        Workload::AllEqual => vec![0xDEAD_BEEF; n],
        Workload::Sawtooth(period) => {
            let period = period.max(1);
            (0..n as u64).map(|i| i % period).collect()
        }
    }
}

/// Rejection-free Zipf sampler via the inverse-CDF integral approximation
/// (Gray et al., "Quickly generating billion-record synthetic databases").
pub struct ZipfSampler {
    n: u64,
    s: f64,
    /// Normalisation constant `H_{n,s}` (approximated).
    h: f64,
}

impl ZipfSampler {
    /// Sampler over ranks `1..=n` with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Self {
        let s = s.max(1e-6);
        // Approximate the generalized harmonic number by its integral.
        let h = if (s - 1.0).abs() < 1e-9 {
            (n as f64).ln() + 0.5772
        } else {
            ((n as f64).powf(1.0 - s) - 1.0) / (1.0 - s) + 1.0
        };
        Self { n, s, h }
    }

    /// Draw one rank (1-based).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let target = u * self.h;
        // Invert the integral approximation.
        let rank = if (self.s - 1.0).abs() < 1e-9 {
            (target - 0.5772).exp()
        } else {
            ((1.0 - self.s) * (target - 1.0) + 1.0).powf(1.0 / (1.0 - self.s))
        };
        (rank.max(1.0).min(self.n as f64)) as u64
    }
}

impl Distribution<u64> for ZipfSampler {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        ZipfSampler::sample(self, rng)
    }
}

/// Sortedness fraction: adjacent pairs already in order (1.0 = sorted).
pub fn sortedness(v: &[u64]) -> f64 {
    if v.len() < 2 {
        return 1.0;
    }
    let ok = v.windows(2).filter(|w| w[0] <= w[1]).count();
    ok as f64 / (v.len() - 1) as f64
}

/// Number of distinct values (exact; O(n log n)).
pub fn distinct_count(v: &[u64]) -> usize {
    let mut s = v.to_vec();
    s.sort_unstable();
    s.dedup();
    s.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(Workload::UniformU64, 1000, 7);
        let b = generate(Workload::UniformU64, 1000, 7);
        let c = generate(Workload::UniformU64, 1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sorted_and_reverse_shapes() {
        assert_eq!(sortedness(&generate(Workload::Sorted, 1000, 0)), 1.0);
        assert_eq!(sortedness(&generate(Workload::Reverse, 1000, 0)), 0.0);
        let ns = generate(Workload::NearlySorted(0.05), 10_000, 1);
        let f = sortedness(&ns);
        assert!(f > 0.9 && f < 1.0, "nearly sorted fraction {f}");
    }

    #[test]
    fn few_distinct_counts() {
        let v = generate(Workload::FewDistinct(5), 10_000, 2);
        assert!(distinct_count(&v) <= 5);
        let v = generate(Workload::AllEqual, 100, 0);
        assert_eq!(distinct_count(&v), 1);
    }

    #[test]
    fn uniform_bounded_stays_in_range() {
        let v = generate(Workload::UniformBounded(100), 10_000, 3);
        assert!(v.iter().all(|&x| x < 100));
        assert!(distinct_count(&v) > 50, "should use most of the range");
    }

    #[test]
    fn zipf_is_skewed() {
        let v = generate(Workload::Zipf(1.2), 100_000, 4);
        // Rank 1 should be by far the most common value.
        let ones = v.iter().filter(|&&x| x == 1).count();
        assert!(
            ones > v.len() / 20,
            "rank-1 frequency {ones} too low for zipf"
        );
        assert!(v.iter().all(|&x| x >= 1));
    }

    #[test]
    fn zipf_respects_rank_bound() {
        let s = ZipfSampler::new(50, 1.1);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let r = s.sample(&mut rng);
            assert!((1..=50).contains(&r));
        }
    }

    #[test]
    fn sawtooth_shape() {
        let v = generate(Workload::Sawtooth(10), 100, 0);
        assert_eq!(v[..10], (0..10).collect::<Vec<u64>>()[..]);
        assert_eq!(v[10], 0);
        assert_eq!(distinct_count(&v), 10);
        // Degenerate period clamps to 1 (all zero), never divides by zero.
        assert_eq!(distinct_count(&generate(Workload::Sawtooth(0), 50, 0)), 1);
    }

    #[test]
    fn lengths_match() {
        for w in [
            Workload::UniformU64,
            Workload::Sorted,
            Workload::Reverse,
            Workload::NearlySorted(0.1),
            Workload::FewDistinct(3),
            Workload::Zipf(1.0),
            Workload::AllEqual,
            Workload::Sawtooth(64),
        ] {
            assert_eq!(generate(w, 123, 9).len(), 123);
            assert_eq!(generate(w, 0, 9).len(), 0);
        }
    }
}
