#[test]
fn dma_pipelined_with_host_threads_matches_sequential() {
    use tlmm_core::nmsort::{nmsort, NmSortConfig};
    use tlmm_model::ScratchpadParams;
    use tlmm_scratchpad::TwoLevel;
    let run = |threads: usize| {
        let tl = TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap());
        let v: Vec<u64> = (0..300_000u64).rev().collect();
        let input = tl.far_from_vec(v);
        let cfg = NmSortConfig {
            use_dma: true,
            threads,
            ..Default::default()
        };
        let r = nmsort(&tl, input, &cfg).unwrap();
        assert!(r
            .output
            .as_slice_uncharged()
            .windows(2)
            .all(|w| w[0] <= w[1]));
        tl.ledger().snapshot()
    };
    let a = run(2);
    let b = run(1);
    assert_eq!(a.far_bytes, b.far_bytes);
    assert_eq!(a.near_bytes, b.near_bytes);
}
