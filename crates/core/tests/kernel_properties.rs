//! Differential property tests for the kernel layer.
//!
//! Two oracles, two directions:
//! * `radix_sort` / `sort_kernel` must agree with `slice::sort_unstable`
//!   on every workload shape the experiments use — uniform, sorted,
//!   reverse, nearly-sorted, few-distinct, Zipf, all-equal, sawtooth —
//!   and for every [`RadixKey`] type (`u64`, `u32`, `i64` with negatives).
//! * The branchless [`LoserTree`] must be observationally identical to the
//!   pre-rewrite [`ReferenceLoserTree`]: same emitted sequence *and* same
//!   comparison count, on randomized run sets including empty runs.

use proptest::prelude::*;
use tlmm_core::kernels::reference::{merge_into_slice_ref, ReferenceLoserTree};
use tlmm_core::kernels::{radix_sort, sort_kernel, RadixKey};
use tlmm_core::losertree::{merge_into_slice, LoserTree};
use tlmm_testkit::KERNEL_SHAPES as SHAPES;
use tlmm_workloads::generate;

fn check_radix<T: RadixKey + std::fmt::Debug>(mut v: Vec<T>) {
    let mut expect = v.clone();
    expect.sort_unstable();
    radix_sort(&mut v);
    assert_eq!(v, expect);
}

fn arb_runs() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(
        proptest::collection::vec(0u64..500, 0..300).prop_map(|mut v| {
            v.sort_unstable();
            v
        }),
        0..14,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn radix_matches_std_on_all_workload_shapes(
        shape_idx in 0usize..SHAPES.len(),
        n in 0usize..6_000,
        seed in any::<u64>(),
    ) {
        let v = generate(SHAPES[shape_idx], n, seed);
        check_radix(v);
    }

    #[test]
    fn radix_matches_std_for_all_key_types(
        v in proptest::collection::vec(any::<u64>(), 0..4_000),
    ) {
        // Reinterpret the same bits as each key type; i64 halves are
        // negative, exercising the sign-flip transform.
        check_radix(v.clone());
        check_radix(v.iter().map(|&x| x as u32).collect::<Vec<u32>>());
        check_radix(v.iter().map(|&x| x as i64).collect::<Vec<i64>>());
    }

    #[test]
    fn sort_kernel_matches_std_across_threshold(
        v in proptest::collection::vec(any::<u64>(), 0..2_000),
    ) {
        // Sizes straddle RADIX_MIN_LEN, so both dispatch arms are hit.
        let mut a = v.clone();
        let mut expect = v;
        expect.sort_unstable();
        sort_kernel(&mut a);
        prop_assert_eq!(a, expect);
    }

    #[test]
    fn loser_tree_matches_reference_sequence_and_comparisons(
        runs in arb_runs(),
    ) {
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut new_lt = LoserTree::new(refs.clone());
        let mut old_lt = ReferenceLoserTree::new(refs);
        loop {
            let (a, b) = (new_lt.next_element(), old_lt.next_element());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(new_lt.comparisons(), old_lt.comparisons());
    }

    #[test]
    fn merge_into_slice_matches_reference(runs in arb_runs()) {
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let mut a = vec![0u64; total];
        let cmps_new = merge_into_slice(&refs, &mut a);
        let mut b = vec![0u64; total];
        let cmps_old = merge_into_slice_ref(&refs, &mut b);
        prop_assert_eq!(a, b);
        prop_assert_eq!(cmps_new, cmps_old);
    }
}
