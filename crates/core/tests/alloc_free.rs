//! Regression test: striped charging must be allocation-free on the hot
//! path. `charge_io_striped` / `charge_compute_striped` run once per
//! transfer inside every merge round; they used to collect a `Vec` of
//! stripe ranges per call.
//!
//! The counting allocator wraps `System` and counts every `alloc` call.
//! Lazily-initialized state (telemetry counter registry entries, phase
//! trace lane vectors, thread-locals) is warmed up by running the exact
//! same call pattern first, then the measured window must allocate zero
//! times.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tlmm_core::extsort::RegionLevel;
use tlmm_core::par::{charge_compute_striped, charge_io_striped};
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::{Dir, TwoLevel};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed atomic
// side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn charge_round(tl: &TwoLevel, lanes: usize) {
    charge_io_striped(tl, RegionLevel::Far, Dir::Read, 1 << 16, lanes);
    charge_io_striped(tl, RegionLevel::Near, Dir::Write, 1 << 16, lanes);
    charge_io_striped(tl, RegionLevel::Far, Dir::Write, 12_345, lanes);
    charge_compute_striped(tl, 100_000, lanes);
}

#[test]
fn striped_charging_is_alloc_free() {
    let tl = TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap());
    tl.begin_phase("alloc_free_probe");

    // Warm up every lazy registration the charge path touches.
    for _ in 0..4 {
        charge_round(&tl, 8);
    }

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    for _ in 0..256 {
        charge_round(&tl, 8);
    }
    let after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "striped charging allocated {} times across 256 warm rounds",
        after - before
    );
    tl.end_phase();
}
