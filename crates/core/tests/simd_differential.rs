//! Differential tests: every runtime-dispatched SIMD kernel against its
//! scalar definition, on the same inputs, in the same process.
//!
//! The scalar forms in `kernels::simd::scalar` are the semantic spec; the
//! AVX2 forms must be observationally identical. Each property here runs a
//! kernel twice — dispatch forced off, then forced on — and asserts equal
//! outputs, across all eight experiment workload shapes and the three
//! `RadixKey` types (`u64`, `u32`, `i64`). On hosts without AVX2 the
//! force-on is a no-op and the comparisons hold trivially; CI also runs the
//! whole kernel suite under `TLMM_NO_SIMD=1` so the scalar-only binary
//! stays exercised.
//!
//! The dispatch flag is process-global, so every toggle happens under one
//! test-local mutex — the rest of the suite never toggles it.

use proptest::prelude::*;
use std::sync::Mutex;
use tlmm_core::kernels::simd;
use tlmm_core::kernels::{radix_sort, RadixKey};
use tlmm_core::losertree::merge_into_slice;
use tlmm_testkit::KERNEL_SHAPES as SHAPES;
use tlmm_workloads::generate;

/// Serializes dispatch toggles: the SIMD on/off state is process-global
/// and these tests run on the harness's thread pool.
static DISPATCH: Mutex<()> = Mutex::new(());

/// Run `f` with SIMD forced off, then forced on (when the host allows),
/// restoring the startup decision after; returns both results.
fn both_paths<R>(f: impl Fn() -> R) -> (R, R) {
    let _guard = tlmm_testkit::serial_guard(&DISPATCH);
    let initial = simd::enabled();
    simd::set_enabled(false);
    let off = f();
    simd::set_enabled(true);
    let on = f();
    simd::set_enabled(initial);
    (off, on)
}

fn check_sorted_scans<T: tlmm_core::SortElem + std::fmt::Debug>(sorted: &[T], pivot: &T) {
    let (off, on) = both_paths(|| {
        (
            simd::partition_point_le(sorted, pivot),
            simd::count_le(sorted, pivot),
        )
    });
    assert_eq!(off, on, "scan kernels diverged at pivot {pivot:?}");
    // Both equal the `partition_point` definition.
    let want = sorted.partition_point(|x| x <= pivot);
    assert_eq!(off, (want, want));
}

fn check_radix_both_paths<T: RadixKey + std::fmt::Debug>(v: &[T]) {
    let (off, on) = both_paths(|| {
        let mut data = v.to_vec();
        radix_sort(&mut data);
        data
    });
    let mut expect = v.to_vec();
    expect.sort_unstable();
    assert_eq!(off, expect, "scalar radix_sort mismatch");
    assert_eq!(on, expect, "SIMD radix_sort mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn boundary_scans_agree_on_all_shapes(
        shape_idx in 0usize..SHAPES.len(),
        n in 0usize..3_000,
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let mut v = generate(SHAPES[shape_idx], n, seed);
        v.sort_unstable();
        // Pivots: an element (hits long equal prefixes), its neighbors,
        // and the extremes (empty / full prefix).
        let mut pivots = vec![0u64, u64::MAX];
        if !v.is_empty() {
            let p = v[(pick % v.len() as u64) as usize];
            pivots.extend([p, p.wrapping_sub(1), p.saturating_add(1)]);
        }
        for p in pivots {
            check_sorted_scans(&v, &p);
        }
    }

    #[test]
    fn boundary_scans_agree_for_all_key_types(
        v in proptest::collection::vec(any::<u64>(), 0..2_000),
        pick in any::<u64>(),
    ) {
        let pivot = if v.is_empty() { 0 } else { v[(pick % v.len() as u64) as usize] };
        let mut v64 = v.clone();
        v64.sort_unstable();
        check_sorted_scans(&v64, &pivot);
        let mut v32: Vec<u32> = v.iter().map(|&x| x as u32).collect();
        v32.sort_unstable();
        check_sorted_scans(&v32, &(pivot as u32));
        let mut vi: Vec<i64> = v.iter().map(|&x| x as i64).collect();
        vi.sort_unstable();
        check_sorted_scans(&vi, &(pivot as i64));
    }

    #[test]
    fn radix_passes_agree_on_all_shapes(
        shape_idx in 0usize..SHAPES.len(),
        n in 0usize..4_000,
        seed in any::<u64>(),
    ) {
        // End-to-end through the histogram + scatter integration points.
        let v = generate(SHAPES[shape_idx], n, seed);
        check_radix_both_paths(&v);
    }

    #[test]
    fn radix_passes_agree_for_all_key_types(
        v in proptest::collection::vec(any::<u64>(), 0..3_000),
    ) {
        check_radix_both_paths(&v);
        check_radix_both_paths(&v.iter().map(|&x| x as u32).collect::<Vec<u32>>());
        check_radix_both_paths(&v.iter().map(|&x| x as i64).collect::<Vec<i64>>());
    }

    #[test]
    fn merge_pair_agrees_on_all_shapes(
        shape_idx in 0usize..SHAPES.len(),
        n in 0usize..3_000,
        split in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let v = generate(SHAPES[shape_idx], n, seed);
        let cut = (v.len() as f64 * split) as usize;
        let (mut a, mut b) = (v[..cut].to_vec(), v[cut..].to_vec());
        a.sort_unstable();
        b.sort_unstable();
        let (off, on) = both_paths(|| {
            let mut out = vec![0u64; v.len()];
            simd::merge_pair(&a, &b, &mut out);
            out
        });
        let mut expect = v.clone();
        expect.sort_unstable();
        prop_assert_eq!(&off, &expect);
        prop_assert_eq!(&on, &expect);
    }

    #[test]
    fn merge_into_slice_output_and_counts_toggle_invariant(
        runs in proptest::collection::vec(
            proptest::collection::vec(0u64..500, 0..300).prop_map(|mut v| {
                v.sort_unstable();
                v
            }),
            0..14,
        ),
    ) {
        // The k-way merge pre-merges short runs through the dispatched
        // pair kernel but charges the analytic model, so both the output
        // and the comparison ledger must be dispatch-independent.
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let ((out_off, cmps_off), (out_on, cmps_on)) = both_paths(|| {
            let mut out = vec![0u64; total];
            let cmps = merge_into_slice(&refs, &mut out);
            (out, cmps)
        });
        prop_assert_eq!(out_off, out_on);
        prop_assert_eq!(cmps_off, cmps_on);
    }
}
