//! Schedule-fuzzing differential tests for the executor (Theorem 10 `p′`).
//!
//! The deterministic executor permutes stage schedules by seed while
//! arbitrating every charged transfer over `p′` slots. Two laws must hold
//! on every (scheduler seed, worker count, slot count, workload, fault
//! plan) combination:
//!
//! 1. **Output correctness** — the sorted output equals `slice::sort`.
//! 2. **Ledger invariance** — the charge ledger is byte-identical to the
//!    executor-free sequential oracle: arbitration reorders and delays
//!    transfers but never changes what is charged.

use proptest::prelude::*;
use tlmm_core::nmsort::{nmsort, NmSortConfig};
use tlmm_core::oblivious::{spms_sort, squaresort_sort, ObliviousConfig};
use tlmm_core::parsort::{par_scratchpad_sort, ParSortConfig};
use tlmm_model::{CostSnapshot, ScratchpadParams};
use tlmm_scratchpad::{ExecConfig, FaultPlan, TwoLevel};
use tlmm_testkit::{LANES, SHAPES};
use tlmm_workloads::{generate, Workload};

fn tl() -> TwoLevel {
    TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
}

fn nmsort_snapshot(
    input: &[u64],
    lanes: usize,
    exec: Option<ExecConfig>,
    fault_seed: Option<u64>,
) -> (Vec<u64>, CostSnapshot) {
    let tl = tl();
    if let Some(cfg) = exec {
        tl.install_executor(cfg).unwrap();
    }
    if let Some(fs) = fault_seed {
        tl.install_fault_plan(FaultPlan::seeded(fs));
    }
    let r = nmsort(
        &tl,
        tl.far_from_vec(input.to_vec()),
        &NmSortConfig {
            sim_lanes: lanes,
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    (
        r.output.as_slice_uncharged().to_vec(),
        tl.ledger().snapshot(),
    )
}

/// Like [`nmsort_snapshot`] but DMA-pipelined, with the host-thread
/// fan-out under test too: `threads > 1` moves the raw ingest copies to
/// a background thread, changing WHEN pending transfers retire but
/// never what was charged.
fn nmsort_dma_snapshot(
    input: &[u64],
    lanes: usize,
    exec: Option<ExecConfig>,
    fault_seed: Option<u64>,
    threads: usize,
) -> (Vec<u64>, CostSnapshot) {
    let tl = tl();
    if let Some(cfg) = exec {
        tl.install_executor(cfg).unwrap();
    }
    if let Some(fs) = fault_seed {
        tl.install_fault_plan(FaultPlan::seeded(fs));
    }
    let r = nmsort(
        &tl,
        tl.far_from_vec(input.to_vec()),
        &NmSortConfig {
            sim_lanes: lanes,
            threads,
            use_dma: true,
            ..Default::default()
        },
    )
    .unwrap();
    (
        r.output.as_slice_uncharged().to_vec(),
        tl.ledger().snapshot(),
    )
}

fn parsort_snapshot(
    input: &[u64],
    lanes: usize,
    exec: Option<ExecConfig>,
    fault_seed: Option<u64>,
) -> (Vec<u64>, CostSnapshot) {
    let tl = tl();
    if let Some(cfg) = exec {
        tl.install_executor(cfg).unwrap();
    }
    if let Some(fs) = fault_seed {
        tl.install_fault_plan(FaultPlan::seeded(fs));
    }
    let (out, _) = par_scratchpad_sort(
        &tl,
        tl.far_from_vec(input.to_vec()),
        &ParSortConfig {
            lanes,
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    (out.as_slice_uncharged().to_vec(), tl.ledger().snapshot())
}

/// One oblivious run (SPMS or SquareSort) under an optional executor and
/// fault plan — the cache-oblivious engines face the same two laws through
/// the exact same charging API, with zero hooks of their own.
fn oblivious_snapshot(
    spms: bool,
    input: &[u64],
    lanes: usize,
    exec: Option<ExecConfig>,
    fault_seed: Option<u64>,
) -> (Vec<u64>, CostSnapshot) {
    let tl = tl();
    if let Some(cfg) = exec {
        tl.install_executor(cfg).unwrap();
    }
    if let Some(fs) = fault_seed {
        tl.install_fault_plan(FaultPlan::seeded(fs));
    }
    let cfg = ObliviousConfig {
        lanes,
        threads: 1,
        ..Default::default()
    };
    let arr = tl.far_from_vec(input.to_vec());
    let (out, _report) = if spms {
        spms_sort(&tl, arr, &cfg).unwrap()
    } else {
        squaresort_sort(&tl, arr, &cfg).unwrap()
    };
    (out.as_slice_uncharged().to_vec(), tl.ledger().snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn nmsort_ledger_invariant_under_schedule_fuzzing(
        shape_ix in 0usize..SHAPES.len(),
        lanes_ix in 0usize..LANES.len(),
        n in 0usize..12_000,
        data_seed in any::<u64>(),
        exec_seed in any::<u64>(),
        workers in 1usize..16,
        with_faults in any::<bool>(),
    ) {
        let input = generate(SHAPES[shape_ix], n, data_seed);
        let lanes = LANES[lanes_ix];
        let slots = 1 + exec_seed as usize % workers;
        let fault_seed = with_faults.then_some(data_seed ^ 0xFA17);
        let mut expect = input.clone();
        expect.sort_unstable();

        let (oracle_out, oracle_snap) = nmsort_snapshot(&input, lanes, None, fault_seed);
        let exec = ExecConfig::deterministic(workers, slots, exec_seed);
        let (out, snap) = nmsort_snapshot(&input, lanes, Some(exec), fault_seed);

        prop_assert_eq!(&oracle_out, &expect);
        prop_assert_eq!(&out, &expect);
        prop_assert_eq!(snap, oracle_snap);
    }

    /// Retirement-order fuzz for the DMA pipeline: arbitrary executor
    /// schedules AND host-threaded retirement (background ingest copies)
    /// must leave the charged ledger bit-identical to the sequential
    /// oracle — the arena may reorder retires, never charges.
    #[test]
    fn nmsort_dma_ledger_invariant_under_schedule_and_retirement_fuzzing(
        shape_ix in 0usize..SHAPES.len(),
        lanes_ix in 0usize..LANES.len(),
        n in 0usize..12_000,
        data_seed in any::<u64>(),
        exec_seed in any::<u64>(),
        workers in 1usize..16,
        with_faults in any::<bool>(),
    ) {
        let input = generate(SHAPES[shape_ix], n, data_seed);
        let lanes = LANES[lanes_ix];
        let slots = 1 + exec_seed as usize % workers;
        let fault_seed = with_faults.then_some(data_seed ^ 0xD7A);
        let mut expect = input.clone();
        expect.sort_unstable();

        let (oracle_out, oracle_snap) = nmsort_dma_snapshot(&input, lanes, None, fault_seed, 1);
        let exec = ExecConfig::deterministic(workers, slots, exec_seed);
        let (out, snap) = nmsort_dma_snapshot(&input, lanes, Some(exec), fault_seed, 1);
        let (threaded_out, threaded_snap) =
            nmsort_dma_snapshot(&input, lanes, None, fault_seed, 2);

        prop_assert_eq!(&oracle_out, &expect);
        prop_assert_eq!(&out, &expect);
        prop_assert_eq!(&threaded_out, &expect);
        prop_assert_eq!(snap, oracle_snap.clone());
        prop_assert_eq!(threaded_snap, oracle_snap);
    }

    #[test]
    fn parsort_ledger_invariant_under_schedule_fuzzing(
        shape_ix in 0usize..SHAPES.len(),
        lanes_ix in 0usize..LANES.len(),
        n in 0usize..12_000,
        data_seed in any::<u64>(),
        exec_seed in any::<u64>(),
        workers in 1usize..16,
        with_faults in any::<bool>(),
    ) {
        let input = generate(SHAPES[shape_ix], n, data_seed);
        let lanes = LANES[lanes_ix];
        let slots = 1 + exec_seed as usize % workers;
        let fault_seed = with_faults.then_some(data_seed ^ 0x5EED);
        let mut expect = input.clone();
        expect.sort_unstable();

        let (oracle_out, oracle_snap) = parsort_snapshot(&input, lanes, None, fault_seed);
        let exec = ExecConfig::deterministic(workers, slots, exec_seed);
        let (out, snap) = parsort_snapshot(&input, lanes, Some(exec), fault_seed);

        prop_assert_eq!(&oracle_out, &expect);
        prop_assert_eq!(&out, &expect);
        prop_assert_eq!(snap, oracle_snap);
    }

    #[test]
    fn spms_ledger_invariant_under_schedule_fuzzing(
        shape_ix in 0usize..SHAPES.len(),
        lanes_ix in 0usize..LANES.len(),
        n in 0usize..12_000,
        data_seed in any::<u64>(),
        exec_seed in any::<u64>(),
        workers in 1usize..16,
        with_faults in any::<bool>(),
    ) {
        let input = generate(SHAPES[shape_ix], n, data_seed);
        let lanes = LANES[lanes_ix];
        let slots = 1 + exec_seed as usize % workers;
        let fault_seed = with_faults.then_some(data_seed ^ 0x0B11);
        let mut expect = input.clone();
        expect.sort_unstable();

        let (oracle_out, oracle_snap) = oblivious_snapshot(true, &input, lanes, None, fault_seed);
        let exec = ExecConfig::deterministic(workers, slots, exec_seed);
        let (out, snap) = oblivious_snapshot(true, &input, lanes, Some(exec), fault_seed);

        prop_assert_eq!(&oracle_out, &expect);
        prop_assert_eq!(&out, &expect);
        prop_assert_eq!(snap, oracle_snap);
    }

    #[test]
    fn squaresort_ledger_invariant_under_schedule_fuzzing(
        shape_ix in 0usize..SHAPES.len(),
        lanes_ix in 0usize..LANES.len(),
        n in 0usize..12_000,
        data_seed in any::<u64>(),
        exec_seed in any::<u64>(),
        workers in 1usize..16,
        with_faults in any::<bool>(),
    ) {
        let input = generate(SHAPES[shape_ix], n, data_seed);
        let lanes = LANES[lanes_ix];
        let slots = 1 + exec_seed as usize % workers;
        let fault_seed = with_faults.then_some(data_seed ^ 0x50A8);
        let mut expect = input.clone();
        expect.sort_unstable();

        let (oracle_out, oracle_snap) = oblivious_snapshot(false, &input, lanes, None, fault_seed);
        let exec = ExecConfig::deterministic(workers, slots, exec_seed);
        let (out, snap) = oblivious_snapshot(false, &input, lanes, Some(exec), fault_seed);

        prop_assert_eq!(&oracle_out, &expect);
        prop_assert_eq!(&out, &expect);
        prop_assert_eq!(snap, oracle_snap);
    }

    #[test]
    fn exec_report_is_replayable_and_conserved(
        exec_seed in any::<u64>(),
        workers in 1usize..12,
        n in 1000usize..8000,
    ) {
        // Same (seed, p, p') over the same run: the full report — makespan,
        // per-slot busy, per-worker waits — replays bit-for-bit.
        let slots = 1 + exec_seed as usize % workers;
        let input = generate(Workload::UniformU64, n, 42);
        let run = || {
            let tl = tl();
            let ex = tl
                .install_executor(ExecConfig::deterministic(workers, slots, exec_seed))
                .unwrap();
            nmsort(
                &tl,
                tl.far_from_vec(input.clone()),
                &NmSortConfig { sim_lanes: 8, threads: 1, ..Default::default() },
            )
            .unwrap();
            ex.report()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        // Conservation: every arbitrated byte is booked on exactly one slot.
        prop_assert_eq!(a.per_slot_busy_units.iter().sum::<u64>(), a.total_bytes);
        // Worker clocks decompose into service + wait.
        for w in &a.per_worker {
            prop_assert_eq!(w.clock_units, w.bytes + w.wait_units);
        }
    }
}

#[test]
fn ledger_identical_across_seeds_workers_and_slots() {
    // The acceptance-criteria matrix in one deterministic test: for a fixed
    // sort config, every (p, p', exec seed) — including p' = 1, the
    // fully-serialized arbiter — yields the identical ledger, equal to the
    // executor-free oracle.
    let input = generate(Workload::UniformU64, 40_000, 7);
    let (oracle_out, oracle_snap) = nmsort_snapshot(&input, 8, None, None);
    let mut expect = input.clone();
    expect.sort_unstable();
    assert_eq!(oracle_out, expect);
    for (workers, slots) in [(1, 1), (2, 1), (2, 2), (8, 1), (8, 4), (16, 16)] {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let exec = ExecConfig::deterministic(workers, slots, seed);
            let (out, snap) = nmsort_snapshot(&input, 8, Some(exec), None);
            assert_eq!(out, expect, "p={workers} p'={slots} seed={seed}");
            assert_eq!(snap, oracle_snap, "p={workers} p'={slots} seed={seed}");
        }
    }
}

#[test]
fn contention_surfaces_in_trace_only_when_slots_are_scarce() {
    let input = generate(Workload::UniformU64, 40_000, 11);
    let wait_of = |workers: usize, slots: usize| -> u64 {
        let tl = tl();
        tl.install_executor(ExecConfig::deterministic(workers, slots, 3))
            .unwrap();
        nmsort(
            &tl,
            tl.far_from_vec(input.clone()),
            &NmSortConfig {
                sim_lanes: 8,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        tl.take_trace().total().slot_wait_units
    };
    // Eight lanes over eight workers and one slot: heavy contention.
    let starved = wait_of(8, 1);
    assert!(starved > 0, "p'=1 under 8 lanes must record slot waits");
    // One worker cannot contend with itself.
    assert_eq!(wait_of(1, 1), 0);
}
