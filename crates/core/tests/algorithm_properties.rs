//! Property tests on the algorithmic primitives: every merge/sort variant
//! must agree with the standard library on arbitrary inputs, and the
//! accounting must obey its conservation laws.

use proptest::prelude::*;
use tlmm_core::baseline::{baseline_sort, BaselineConfig};
use tlmm_core::extsort::{external_sort, ExtSortConfig, RegionLevel};
use tlmm_core::losertree::{merge_into, merge_into_slice, LoserTree};
use tlmm_core::nmsort::{nmsort, ChunkSorter, NmSortConfig};
use tlmm_core::pmerge::parallel_merge;
use tlmm_core::quicksort::external_quicksort;
use tlmm_model::ScratchpadParams;
use tlmm_scratchpad::TwoLevel;

fn tl() -> TwoLevel {
    TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
}

fn arb_runs() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(
        proptest::collection::vec(0u64..1000, 0..400).prop_map(|mut v| {
            v.sort_unstable();
            v
        }),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn loser_tree_merges_like_std(runs in arb_runs()) {
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut out = Vec::new();
        merge_into(&refs, &mut out);
        let mut expect: Vec<u64> = runs.concat();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn merge_variants_agree(runs in arb_runs(), ways in 1usize..8) {
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let mut a = vec![0u64; total];
        merge_into_slice(&refs, &mut a);
        let mut b = vec![0u64; total];
        parallel_merge(&refs, &mut b, ways, 1);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn loser_tree_iterator_is_sorted_and_complete(runs in arb_runs()) {
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let lt = LoserTree::new(refs);
        let out: Vec<u64> = lt.collect();
        prop_assert_eq!(out.len(), total);
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn extsort_and_quicksort_agree_with_std(
        mut v in proptest::collection::vec(any::<u64>(), 0..20_000),
        run_elems in 2usize..4096,
        fanout in 2usize..32,
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();

        let tl1 = tl();
        let mut data = v.clone();
        let mut scratch = vec![0u64; data.len()];
        let cfg = ExtSortConfig {
            run_elems: Some(run_elems),
            fanout: Some(fanout),
            ..Default::default()
        };
        let out = external_sort(&tl1, RegionLevel::Near, &mut data, &mut scratch, &cfg);
        let result = if out.in_scratch { &scratch } else { &data };
        prop_assert_eq!(result, &expect);

        let tl2 = tl();
        external_quicksort(&tl2, RegionLevel::Near, &mut v, 4);
        prop_assert_eq!(&v, &expect);
    }

    #[test]
    fn nmsort_both_chunk_sorters_agree(
        v in proptest::collection::vec(any::<u64>(), 0..30_000),
        chunk in 64usize..8_000,
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        for sorter in [ChunkSorter::MultiwayMerge, ChunkSorter::Quicksort] {
            let tl = tl();
            let input = tl.far_from_vec(v.clone());
            let cfg = NmSortConfig {
                chunk_elems: Some(chunk),
                chunk_sorter: sorter,
                threads: 1,
                ..Default::default()
            };
            let r = nmsort(&tl, input, &cfg).unwrap();
            prop_assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
        }
    }

    #[test]
    fn baseline_cost_grows_with_input(
        n1 in 1_000usize..10_000,
        grow in 2usize..4,
    ) {
        let run = |n: usize| {
            let tl = tl();
            let v: Vec<u64> = (0..n as u64).rev().collect();
            baseline_sort(&tl, tl.far_from_vec(v), &BaselineConfig {
                sim_lanes: 4,
                threads: 1,
                ..Default::default()
            }).unwrap();
            tl.ledger().snapshot().far_bytes
        };
        let small = run(n1);
        let big = run(n1 * grow);
        prop_assert!(big > small, "cost must grow: {} vs {}", small, big);
    }

    #[test]
    fn sort_works_for_key_value_pairs(
        v in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..20_000),
    ) {
        // The library is generic over Ord + Copy: records sort too.
        let v: Vec<(u32, u32)> = v;
        let mut expect = v.clone();
        expect.sort_unstable();
        let tl = tl();
        let input = tl.far_from_vec(v);
        let r = nmsort(&tl, input, &NmSortConfig {
            threads: 1,
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
    }
}
