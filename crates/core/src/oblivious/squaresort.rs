//! SquareSort — cache-oblivious √n-block recursion (Koucký–Matějka).
//!
//! Split the input into ~√n blocks of ~√n elements, sort each block
//! recursively, then combine the sorted blocks with a balanced *binary*
//! merge tree — ⌈lg √n⌉ full streaming passes per recursion level. The
//! recursion never consults a machine parameter; its `Θ((n/B)·lg(n/M))`
//! transfer profile emerges from the machine-side residency adapter
//! ([`super::Ctx`]) charging the merge passes of scratchpad-fitting
//! subtrees at near rates: once a subtree fits, its remaining lg passes
//! are cheap, so only ~lg(n/M) binary passes ever touch far memory.
//!
//! This is the *costly* oblivious opponent: where SPMS completes a level
//! in two passes via √n-way bucket merges, SquareSort pays a logarithmic
//! pass stack — exactly the gap the `fig_crossover` experiment plots.

use super::{ceil_sqrt, Ctx, ObliviousConfig, ObliviousReport};
use crate::extsort::{merge_rounds, RegionLevel};
use crate::par::{charged_copy, CopyKind};
use crate::{SortElem, SortError};
use tlmm_scratchpad::trace::{current_lane, with_lane};
use tlmm_scratchpad::{FarArray, TwoLevel};

/// Sort `input` with SquareSort. Returns the sorted array and a summary of
/// the work performed. Fails fast on `cfg.lanes == 0`.
pub fn squaresort_sort<T: SortElem>(
    tl: &TwoLevel,
    input: FarArray<T>,
    cfg: &ObliviousConfig,
) -> Result<(FarArray<T>, ObliviousReport), SortError> {
    super::validate(cfg)?;
    // Entry / exit phase boundaries — see `spms_sort` for the rationale.
    tl.checkpoint()?;
    let _phase = tl.phase("squaresort.sort");
    let mut data = input.into_vec();
    let mut scratch = vec![T::default(); data.len()];
    let cx = Ctx::new::<T>(tl, cfg);
    sort_rec(&cx, &mut data, &mut scratch, cfg.lanes, true, 1);
    tl.checkpoint()?;
    Ok((tl.far_from_vec(data), cx.report()))
}

/// One SquareSort recursion node (result left in `data`, sorted).
fn sort_rec<T: SortElem>(
    cx: &Ctx<'_>,
    data: &mut [T],
    scratch: &mut [T],
    lanes: usize,
    parent_far: bool,
    depth: u32,
) {
    let n = data.len();
    cx.note_depth(depth);
    if n <= 1 {
        return;
    }
    let level = cx.level(n);
    let entered = parent_far && level == RegionLevel::Near;
    if entered {
        cx.ingest::<T>(n, lanes);
    }
    if n <= cx.base_elems {
        cx.base_case(data, level, lanes);
    } else {
        node(cx, data, scratch, lanes, level, depth);
    }
    if entered {
        cx.writeback::<T>(n, lanes);
    }
}

fn node<T: SortElem>(
    cx: &Ctx<'_>,
    data: &mut [T],
    scratch: &mut [T],
    lanes: usize,
    level: RegionLevel,
    depth: u32,
) {
    let n = data.len();
    let _elem = std::mem::size_of::<T>();
    let block = ceil_sqrt(n);
    let n_blocks = n.div_ceil(block);
    let child_far = level == RegionLevel::Far;

    // ---- 1. Recursively sort each √n block ---------------------------
    let child_lanes = (lanes / n_blocks).max(1);
    let base = current_lane();
    let sort_block = |(i, (d, s)): (usize, (&mut [T], &mut [T]))| {
        with_lane(base + (i * child_lanes) % lanes, || {
            sort_rec(cx, d, s, child_lanes, child_far, depth + 1);
        })
    };
    if cx.threads > 1 {
        let children: Vec<(&mut [T], &mut [T])> = data
            .chunks_mut(block)
            .zip(scratch.chunks_mut(block))
            .collect();
        crate::pool::run_indexed(cx.threads, children, |i, ds| sort_block((i, ds)));
    } else {
        data.chunks_mut(block)
            .zip(scratch.chunks_mut(block))
            .enumerate()
            .for_each(sort_block);
    }

    // ---- 2. Balanced binary merge tree over the sorted blocks --------
    // ⌈lg √n⌉ rounds, each a full fault-gated streaming pass ping-ponging
    // between the segment and its scratch twin.
    let bytes = std::mem::size_of_val(data) as u64;
    cx.preflight_stream(level, bytes, lanes);
    let bounds: Vec<usize> = (0..=n_blocks).map(|i| (i * block).min(n)).collect();
    let (in_scratch, rounds, cmps) =
        merge_rounds(cx.tl, level, data, scratch, bounds, 2, lanes, cx.threads);
    cx.add_comparisons(cmps);
    cx.add_passes(rounds as u64);

    // An odd round count leaves the result in scratch; a real binary
    // mergesort pays the same final relocation pass, so charge it.
    if in_scratch {
        let kind = match level {
            RegionLevel::Near => CopyKind::NearToNear,
            RegionLevel::Far => CopyKind::FarToFar,
        };
        cx.preflight_stream(level, bytes, lanes);
        charged_copy(cx.tl, kind, &scratch[..n], data, lanes, cx.threads);
        cx.add_passes(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlmm_model::ScratchpadParams;
    use tlmm_scratchpad::FaultPlan;

    fn tl() -> TwoLevel {
        // B=64, rho=4, M=1MiB, Z=16KiB: near cap = 32Ki u64 elements.
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn seq_cfg() -> ObliviousConfig {
        ObliviousConfig {
            lanes: 4,
            threads: 1,
            ..Default::default()
        }
    }

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn sorts_various_sizes_and_shapes() {
        for n in [0usize, 1, 2, 3, 17, 1024, 1025, 4096, 40_000, 120_000] {
            let tl = tl();
            let v = random_vec(n, n as u64);
            let mut expect = v.clone();
            expect.sort_unstable();
            let (out, _) = squaresort_sort(&tl, tl.far_from_vec(v), &seq_cfg()).unwrap();
            assert_eq!(out.into_vec(), expect, "n={n}");
        }
        for v in [
            vec![7u64; 10_000],
            (0..10_000u64).collect::<Vec<_>>(),
            (0..10_000u64).rev().collect(),
        ] {
            let tl = tl();
            let mut expect = v.clone();
            expect.sort_unstable();
            let (out, _) = squaresort_sort(&tl, tl.far_from_vec(v), &seq_cfg()).unwrap();
            assert_eq!(out.into_vec(), expect);
        }
    }

    #[test]
    fn near_resident_input_pays_exactly_one_far_roundtrip() {
        let tl = tl();
        let n = 20_000usize;
        let (out, rep) =
            squaresort_sort(&tl, tl.far_from_vec(random_vec(n, 9)), &seq_cfg()).unwrap();
        assert!(out.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
        let s = tl.ledger().snapshot();
        assert_eq!(s.far_bytes, 2 * (n as u64) * 8, "ingest + writeback only");
        assert!(s.near_bytes > s.far_bytes);
        assert_eq!(rep.resident_subtrees, 1);
    }

    #[test]
    fn binary_merging_outstreams_spms_beyond_residency() {
        // Past the residency cap the lg(√n) binary passes all hit far
        // memory: SquareSort's far traffic must exceed SPMS's two-pass
        // level cost on the same input.
        let n = 200_000usize;
        let v = random_vec(n, 10);
        let square = {
            let tl = tl();
            let (out, _) = squaresort_sort(&tl, tl.far_from_vec(v.clone()), &seq_cfg()).unwrap();
            assert!(out.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
            tl.ledger().snapshot().far_bytes
        };
        let spms = {
            let tl = tl();
            let (out, _) = super::super::spms_sort(&tl, tl.far_from_vec(v), &seq_cfg()).unwrap();
            assert!(out.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
            tl.ledger().snapshot().far_bytes
        };
        assert!(
            square > spms,
            "binary tree ({square} far B) must outstream √n-way buckets ({spms} far B)"
        );
    }

    #[test]
    fn parallel_and_sequential_charge_identically() {
        let snap = |threads: usize| {
            let tl = tl();
            let cfg = ObliviousConfig {
                lanes: 4,
                threads,
                ..Default::default()
            };
            let (out, _) =
                squaresort_sort(&tl, tl.far_from_vec(random_vec(60_000, 3)), &cfg).unwrap();
            assert!(out.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
            tl.ledger().snapshot()
        };
        assert_eq!(snap(4), snap(1));
    }

    #[test]
    fn faults_degrade_but_never_discount() {
        let run_seeded = |fault: Option<u64>| {
            let tl = tl();
            if let Some(seed) = fault {
                tl.install_fault_plan(FaultPlan::seeded(seed));
            }
            let (out, rep) =
                squaresort_sort(&tl, tl.far_from_vec(random_vec(50_000, 4)), &seq_cfg()).unwrap();
            assert!(out.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
            (tl.ledger().snapshot(), rep)
        };
        let (clean, _) = run_seeded(None);
        let (faulted, rep) = run_seeded(Some(11));
        assert!(faulted.far_bytes >= clean.far_bytes);
        assert!(faulted.near_bytes >= clean.near_bytes);
        assert!(rep.restreams > 0, "seed 11 must fire at least one fault");
    }

    #[test]
    fn zero_lanes_rejected_at_the_edge() {
        let tl = tl();
        let cfg = ObliviousConfig {
            lanes: 0,
            ..Default::default()
        };
        match squaresort_sort(&tl, tl.far_from_vec(vec![1u64, 0]), &cfg) {
            Err(SortError::BadConfig { .. }) => {}
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }
}
