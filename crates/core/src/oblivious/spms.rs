//! SPMS — Sample, Partition, and Merge Sort (Cole–Ramachandran).
//!
//! The deterministic resource-oblivious sort: split the input into ~√n
//! groups, sort each recursively, draw a *strided* sample from every sorted
//! group (deterministic — no RNG anywhere), merge the per-group sample runs
//! into one sorted sample, pick √n−1 evenly spaced pivots from it, binary-
//! search every group against the pivots, and finish each of the √n buckets
//! with a single k-way loser-tree merge of its (already sorted) group
//! segments. Partitioning and merging interleave: the bucket merge *is* the
//! completion step, so one recursion level costs exactly two streaming
//! passes over the data (bucket merges into scratch, charged copy back)
//! plus the lower-order sample traffic.
//!
//! Control flow depends only on `n`. The machine's [`super::Ctx`] decides
//! which memory level each pass is charged against and charges the far
//! ingest/writeback boundary when a subtree becomes scratchpad-resident —
//! see the module docs of [`super`] for the residency rationale.

use super::{ceil_sqrt, Ctx, ObliviousConfig, ObliviousReport};
use crate::extsort::RegionLevel;
use crate::par::{charge_compute_striped, charge_io_striped, charged_copy, CopyKind};
use crate::{ceil_lg, SortElem, SortError};
use tlmm_scratchpad::trace::{current_lane, with_lane};
use tlmm_scratchpad::{Dir, FarArray, TwoLevel};

/// Sort `input` with SPMS. Returns the sorted array and a summary of the
/// work performed. Fails fast on `cfg.lanes == 0`.
pub fn spms_sort<T: SortElem>(
    tl: &TwoLevel,
    input: FarArray<T>,
    cfg: &ObliviousConfig,
) -> Result<(FarArray<T>, ObliviousReport), SortError> {
    super::validate(cfg)?;
    // Entry / exit are this engine's phase boundaries: the oblivious
    // recursion holds no scratchpad arrays (data lives in host vecs), so
    // cancellation is checked before any work and a unit-budget deadline
    // trips at completion with all work honestly charged.
    tl.checkpoint()?;
    let _phase = tl.phase("spms.sort");
    let mut data = input.into_vec();
    let mut scratch = vec![T::default(); data.len()];
    let cx = Ctx::new::<T>(tl, cfg);
    sort_rec(&cx, &mut data, &mut scratch, cfg.lanes, true, 1);
    tl.checkpoint()?;
    Ok((tl.far_from_vec(data), cx.report()))
}

/// One SPMS recursion node over `data` (result left in `data`, sorted).
/// `parent_far` is true when the enclosing segment streams against far
/// memory — the node charges the residency boundary if it is the topmost
/// scratchpad-fitting segment on its root path.
fn sort_rec<T: SortElem>(
    cx: &Ctx<'_>,
    data: &mut [T],
    scratch: &mut [T],
    lanes: usize,
    parent_far: bool,
    depth: u32,
) {
    let n = data.len();
    cx.note_depth(depth);
    if n <= 1 {
        return;
    }
    let level = cx.level(n);
    let entered = parent_far && level == RegionLevel::Near;
    if entered {
        cx.ingest::<T>(n, lanes);
    }
    if n <= cx.base_elems {
        cx.base_case(data, level, lanes);
    } else {
        node(cx, data, scratch, lanes, level, depth);
    }
    if entered {
        cx.writeback::<T>(n, lanes);
    }
}

fn node<T: SortElem>(
    cx: &Ctx<'_>,
    data: &mut [T],
    scratch: &mut [T],
    lanes: usize,
    level: RegionLevel,
    depth: u32,
) {
    let n = data.len();
    let elem = std::mem::size_of::<T>();
    // ~√n groups of ~√n elements; the last may be short.
    let k = ceil_sqrt(n);
    let group = n.div_ceil(k);
    let n_groups = n.div_ceil(group);
    let child_far = level == RegionLevel::Far;

    // ---- 1. Recursively sort each group ------------------------------
    // Groups distribute round-robin over the lanes (each child charges on
    // one lane when there are enough groups to go around, otherwise the
    // children share the lane budget).
    let child_lanes = (lanes / n_groups).max(1);
    let base = current_lane();
    let sort_group = |(i, (d, s)): (usize, (&mut [T], &mut [T]))| {
        with_lane(base + (i * child_lanes) % lanes, || {
            sort_rec(cx, d, s, child_lanes, child_far, depth + 1);
        })
    };
    if cx.threads > 1 {
        let children: Vec<(&mut [T], &mut [T])> = data
            .chunks_mut(group)
            .zip(scratch.chunks_mut(group))
            .collect();
        crate::pool::run_indexed(cx.threads, children, |i, ds| sort_group((i, ds)));
    } else {
        data.chunks_mut(group)
            .zip(scratch.chunks_mut(group))
            .enumerate()
            .for_each(sort_group);
    }

    // ---- 2. Deterministic strided sample + pivots --------------------
    // Every ⌈√g⌉-th element of every sorted group: ~n^(3/4) elements in
    // ~√n already-sorted runs. Gathering is strided, so it is charged as
    // random block touches, not a streamed pass.
    let stride = ceil_sqrt(group).max(1);
    let sample_runs: Vec<Vec<T>> = data
        .chunks(group)
        .map(|g| g.iter().step_by(stride).copied().collect())
        .collect();
    let sample_len: usize = sample_runs.iter().map(Vec::len).sum();
    let sample_bytes = (sample_len * elem) as u64;
    match level {
        RegionLevel::Far => cx
            .tl
            .charge_far_random(Dir::Read, sample_len as u64, sample_bytes),
        RegionLevel::Near => cx
            .tl
            .charge_near_random(Dir::Read, sample_len as u64, sample_bytes),
    }
    // Merge the sorted sample runs into one sorted sample: one small
    // streaming pass over the sample.
    let mut sample = vec![T::default(); sample_len];
    let run_refs: Vec<&[T]> = sample_runs.iter().map(Vec::as_slice).collect();
    cx.preflight_stream(level, sample_bytes, lanes);
    charge_io_striped(cx.tl, level, Dir::Read, sample_bytes, lanes);
    let sample_cmps = crate::losertree::merge_into_slice(&run_refs, &mut sample);
    charge_compute_striped(cx.tl, sample_cmps, lanes);
    charge_io_striped(cx.tl, level, Dir::Write, sample_bytes, lanes);
    cx.add_comparisons(sample_cmps);
    // √n−1 evenly spaced pivots carve √n buckets.
    let pivots: Vec<T> = (1..n_groups)
        .map(|j| sample[j * sample_len / n_groups])
        .collect();

    // ---- 3. Partition: binary-search every group against the pivots --
    // Boundary metadata is cache-resident (O(√n·√n) = O(n) usize, but each
    // group's row is computed from its own sorted slice in cache); the
    // search comparisons are charged as compute.
    let groups: Vec<&[T]> = data.chunks(group).collect();
    let mut bounds: Vec<Vec<usize>> = Vec::with_capacity(groups.len());
    for g in &groups {
        let mut row = Vec::with_capacity(pivots.len() + 2);
        row.push(0);
        for p in &pivots {
            row.push(g.partition_point(|x| x < p));
        }
        row.push(g.len());
        // partition_point can regress across equal pivots; make the row
        // monotone so segments never overlap.
        for i in 1..row.len() {
            if row[i] < row[i - 1] {
                row[i] = row[i - 1];
            }
        }
        bounds.push(row);
    }
    let search_cmps = (groups.len() * pivots.len()) as u64 * ceil_lg(group);
    charge_compute_striped(cx.tl, search_cmps, lanes);
    cx.add_comparisons(search_cmps);

    // ---- 4. Bucket merges: one k-way merge per bucket into scratch ----
    // Reading the group segments and writing the merged buckets is one full
    // streaming pass over the node. Buckets round-robin over lanes.
    let n_buckets = n_groups;
    let bucket_len = |b: usize| -> usize {
        groups
            .iter()
            .zip(&bounds)
            .map(|(_, row)| row[b + 1] - row[b])
            .sum()
    };
    let mut bucket_slices: Vec<&mut [T]> = Vec::with_capacity(n_buckets);
    {
        let mut rest: &mut [T] = scratch;
        for b in 0..n_buckets {
            let (out, tail) = rest.split_at_mut(bucket_len(b));
            bucket_slices.push(out);
            rest = tail;
        }
    }
    let groups_ref = &groups;
    let bounds_ref = &bounds;
    let merge_bucket = |(b, out): (usize, &mut [T])| {
        with_lane(base + b % lanes, || {
            let segs: Vec<&[T]> = groups_ref
                .iter()
                .zip(bounds_ref)
                .map(|(g, row)| &g[row[b]..row[b + 1]])
                .collect();
            let bytes = std::mem::size_of_val(out) as u64;
            cx.preflight_stream(level, bytes, 1);
            charge_io_striped(cx.tl, level, Dir::Read, bytes, 1);
            let cmps = crate::losertree::merge_into_slice(&segs, out);
            cx.tl.charge_compute(cmps);
            charge_io_striped(cx.tl, level, Dir::Write, bytes, 1);
            cx.add_comparisons(cmps);
        })
    };
    if cx.threads > 1 {
        crate::pool::run_indexed(cx.threads, bucket_slices, |b, out| merge_bucket((b, out)));
    } else {
        bucket_slices.into_iter().enumerate().for_each(merge_bucket);
    }
    cx.add_passes(1);

    // ---- 5. Copy the concatenated buckets back: the second pass -------
    let kind = match level {
        RegionLevel::Near => CopyKind::NearToNear,
        RegionLevel::Far => CopyKind::FarToFar,
    };
    cx.preflight_stream(level, std::mem::size_of_val(data) as u64, lanes);
    charged_copy(cx.tl, kind, &scratch[..n], data, lanes, cx.threads);
    cx.add_passes(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlmm_model::ScratchpadParams;
    use tlmm_scratchpad::FaultPlan;

    fn tl() -> TwoLevel {
        // B=64, rho=4, M=1MiB, Z=16KiB: near cap = 32Ki u64 elements.
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn seq_cfg() -> ObliviousConfig {
        ObliviousConfig {
            lanes: 4,
            threads: 1,
            ..Default::default()
        }
    }

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    fn run(v: Vec<u64>, cfg: &ObliviousConfig) -> (Vec<u64>, ObliviousReport) {
        let tl = tl();
        let (out, rep) = spms_sort(&tl, tl.far_from_vec(v), cfg).unwrap();
        (out.into_vec(), rep)
    }

    #[test]
    fn sorts_various_sizes_and_shapes() {
        for n in [0usize, 1, 2, 3, 17, 1024, 1025, 4096, 40_000, 120_000] {
            let v = random_vec(n, n as u64);
            let mut expect = v.clone();
            expect.sort_unstable();
            let (got, _) = run(v, &seq_cfg());
            assert_eq!(got, expect, "n={n}");
        }
        for v in [
            vec![7u64; 10_000],
            (0..10_000u64).collect(),
            (0..10_000u64).rev().collect(),
        ] {
            let mut expect = v.clone();
            expect.sort_unstable();
            let (got, _) = run(v, &seq_cfg());
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn near_resident_input_pays_exactly_one_far_roundtrip() {
        // 20_000 u64 = 160 KB ≤ M/4: the whole sort is one far ingest and
        // one far writeback; every working pass is near traffic.
        let tl = tl();
        let n = 20_000usize;
        let (out, rep) = spms_sort(&tl, tl.far_from_vec(random_vec(n, 9)), &seq_cfg()).unwrap();
        assert!(out.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
        let s = tl.ledger().snapshot();
        assert_eq!(s.far_bytes, 2 * (n as u64) * 8, "ingest + writeback only");
        assert!(s.near_bytes > s.far_bytes, "working passes must be near");
        assert_eq!(rep.resident_subtrees, 1, "root is the resident subtree");
    }

    #[test]
    fn far_input_streams_more_than_a_roundtrip() {
        // 200_000 u64 = 1.6 MB > M/4: the root streams against far memory.
        let tl = tl();
        let n = 200_000usize;
        let (out, rep) = spms_sort(&tl, tl.far_from_vec(random_vec(n, 10)), &seq_cfg()).unwrap();
        assert!(out.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
        let s = tl.ledger().snapshot();
        assert!(
            s.far_bytes > 4 * (n as u64) * 8,
            "root passes + child ingests must exceed two far roundtrips: {}",
            s.far_bytes
        );
        assert!(rep.resident_subtrees > 1);
        assert!(rep.max_depth >= 2);
    }

    #[test]
    fn parallel_and_sequential_charge_identically() {
        let snap = |threads: usize| {
            let tl = tl();
            let cfg = ObliviousConfig {
                lanes: 4,
                threads,
                ..Default::default()
            };
            let (out, _) = spms_sort(&tl, tl.far_from_vec(random_vec(60_000, 3)), &cfg).unwrap();
            assert!(out.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
            tl.ledger().snapshot()
        };
        assert_eq!(snap(4), snap(1));
    }

    #[test]
    fn faults_degrade_but_never_discount() {
        let run_seeded = |fault: Option<u64>| {
            let tl = tl();
            if let Some(seed) = fault {
                tl.install_fault_plan(FaultPlan::seeded(seed));
            }
            let (out, rep) =
                spms_sort(&tl, tl.far_from_vec(random_vec(50_000, 4)), &seq_cfg()).unwrap();
            assert!(out.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
            (tl.ledger().snapshot(), rep)
        };
        let (clean, _) = run_seeded(None);
        let (faulted, rep) = run_seeded(Some(11));
        assert!(faulted.far_bytes >= clean.far_bytes);
        assert!(faulted.near_bytes >= clean.near_bytes);
        assert!(rep.restreams > 0, "seed 11 must fire at least one fault");
    }

    #[test]
    fn zero_lanes_rejected_at_the_edge() {
        let tl = tl();
        let cfg = ObliviousConfig {
            lanes: 0,
            ..Default::default()
        };
        match spms_sort(&tl, tl.far_from_vec(vec![1u64, 0]), &cfg) {
            Err(SortError::BadConfig { .. }) => {}
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }
}
