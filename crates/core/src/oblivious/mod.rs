//! Cache-*oblivious* sorting engines under the shared charging model.
//!
//! The aware engines (NMsort, seqsort, parsort) size their chunks, runs and
//! fanouts from `M` and `Z`. The engines in this module do not: their
//! control flow — recursion shape, pass structure, sample sizes — depends
//! only on `n`. They are the serious scratchpad-oblivious opponents the
//! paper's comparison needs (ROADMAP item 4):
//!
//! * [`spms`] — **SPMS** (Cole–Ramachandran, *Resource Oblivious Sorting on
//!   Multicores*): recursively sort ~√n groups, draw a deterministic strided
//!   sample, partition every group against the sample pivots, and finish
//!   each bucket with one k-way loser-tree merge — sample-sort partitioning
//!   interleaved with merging, no machine parameter anywhere.
//! * [`squaresort`] — **SquareSort** (Koucký–Matějka): recursively sort √n
//!   blocks of √n elements, then combine them with a balanced *binary*
//!   merge tree — the classic `Θ((n/B)·lg(n/M))` cache-oblivious mergesort
//!   cost profile, paid honestly pass by pass.
//!
//! # Where the machine goes when the algorithm is oblivious
//!
//! A cache-oblivious algorithm still *runs on* a machine; the ideal-cache
//! assumption says the memory system transparently keeps a working set
//! resident once it fits. Here that assumption is [`Residency`], which is
//! part of the simulated machine, not the algorithm: a recursion node whose
//! data + ping-pong scratch fit comfortably in the scratchpad is charged at
//! near rates, with one explicit far ingest when its subtree is entered and
//! one far writeback when it is left (exactly the base-case boundary
//! charging `seqsort` performs). Everything larger streams against far
//! memory. The algorithms never read the threshold — they ask "charge this
//! pass for a segment of `n` elements" and the machine answers.
//!
//! Every byte flows through `TwoLevel::charge_far*`/`charge_near*` (via
//! [`crate::par::charge_io_striped`]/[`crate::par::charged_copy`]), so the
//! arbiter's `TransferGrant`s, the fault injector's preflight rolls and the
//! flight recorder instrument these engines with zero new hooks — the
//! existing golden-ledger, schedule-fuzzing and trace-invariant harnesses
//! apply verbatim.

pub mod spms;
pub mod squaresort;

pub use spms::spms_sort;
pub use squaresort::squaresort_sort;

use crate::extsort::RegionLevel;
use crate::par::{charge_io_striped, striped_ranges};
use crate::SortElem;
use std::sync::atomic::{AtomicU64, Ordering};
use tlmm_scratchpad::trace::{current_lane, with_lane};
use tlmm_scratchpad::{Dir, FaultDecision, FaultOp, StagingArena, TwoLevel};

/// Tuning knobs shared by both oblivious engines. None of these encode a
/// memory-hierarchy size: `base_elems` is a constant recursion cutoff (the
/// usual "O(1) base case, engineered constant" of cache-oblivious practice)
/// and the lane/thread knobs only affect attribution and host threading.
#[derive(Debug, Clone)]
pub struct ObliviousConfig {
    /// Virtual lanes to attribute work to (simulated cores). Default 8.
    pub lanes: usize,
    /// Host worker threads across recursion children and bucket merges
    /// (1 = run inline). Charges are identical at every thread count.
    pub threads: usize,
    /// Recursion cutoff in elements: segments at most this long are sorted
    /// with one read pass, an in-cache kernel sort, and one write pass.
    /// A constant — deliberately *not* derived from `M` or `Z`.
    pub base_elems: usize,
}

impl Default for ObliviousConfig {
    fn default() -> Self {
        Self {
            lanes: 8,
            threads: crate::pool::host_threads(),
            base_elems: 1024,
        }
    }
}

/// What an oblivious engine did, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObliviousReport {
    /// Recursion subtrees that fit the scratchpad and were charged one far
    /// ingest + one far writeback (the residency boundary).
    pub resident_subtrees: u64,
    /// Full streaming passes over segment data (merges, distributes,
    /// copy-backs) — the quantity the crossover figure plots.
    pub streaming_passes: u64,
    /// Comparisons charged as compute.
    pub comparisons: u64,
    /// Fault-induced re-streamed passes (aborted or delayed streams are
    /// charged again in full — degraded runs are never cheaper).
    pub restreams: u64,
    /// Deepest recursion level reached (root = 1).
    pub max_depth: u32,
}

/// Charging context threaded through both recursions: the `TwoLevel` being
/// charged, the machine-side residency threshold, and atomic tallies (the
/// recursions fan children out over [`crate::pool`] when configured).
pub(crate) struct Ctx<'a> {
    pub tl: &'a TwoLevel,
    /// Largest segment (in elements) the machine keeps near-resident —
    /// data plus equal-sized ping-pong scratch within half the scratchpad.
    near_cap_elems: usize,
    /// Transfer ledger: the oblivious engines move every byte
    /// synchronously (ideal-cache streaming has no pending transfers),
    /// so each ingest/writeback is recorded as a sync transfer. The
    /// arena never allocates here — no capacity is reserved.
    arena: StagingArena,
    pub base_elems: usize,
    pub threads: usize,
    resident_subtrees: AtomicU64,
    streaming_passes: AtomicU64,
    comparisons: AtomicU64,
    restreams: AtomicU64,
    max_depth: AtomicU64,
}

impl<'a> Ctx<'a> {
    pub fn new<T>(tl: &'a TwoLevel, cfg: &ObliviousConfig) -> Self {
        let elem = std::mem::size_of::<T>().max(1);
        // Data + scratch both resident within M/2 leaves the other half for
        // the machine's own working state — the same comfortable-fit margin
        // the aware engines use when sizing chunks. The validated form
        // lives on `ScratchpadParams`, shared with admission control.
        let near_cap_elems = tl.params().resident_cap_elems(elem);
        Ctx {
            tl,
            near_cap_elems,
            arena: StagingArena::new(tl),
            base_elems: cfg.base_elems.max(2),
            threads: cfg.threads,
            resident_subtrees: AtomicU64::new(0),
            streaming_passes: AtomicU64::new(0),
            comparisons: AtomicU64::new(0),
            restreams: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        }
    }

    /// The machine's residency answer for a segment of `elems` elements.
    /// This is the ideal-cache assumption made explicit; the algorithms
    /// never branch on the threshold itself.
    pub fn level(&self, elems: usize) -> RegionLevel {
        if elems <= self.near_cap_elems {
            RegionLevel::Near
        } else {
            RegionLevel::Far
        }
    }

    pub fn note_depth(&self, depth: u32) {
        self.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    pub fn add_comparisons(&self, n: u64) {
        self.comparisons.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_passes(&self, n: u64) {
        self.streaming_passes.fetch_add(n, Ordering::Relaxed);
    }

    /// Fault-gate one streaming pass of `bytes` at `level`. An aborted or
    /// delayed stream wastes its inbound read, which is charged again in
    /// full before the pass proceeds — honest accounting: faults only ever
    /// add traffic.
    pub fn preflight_stream(&self, level: RegionLevel, bytes: u64, lanes: usize) {
        let op = match level {
            RegionLevel::Near => FaultOp::NearStage,
            RegionLevel::Far => FaultOp::FarStage,
        };
        match self.tl.preflight(op) {
            FaultDecision::Proceed => {}
            FaultDecision::Fail(_) | FaultDecision::Delay(_) => {
                charge_io_striped(self.tl, level, Dir::Read, bytes, lanes);
                self.restreams.fetch_add(1, Ordering::Relaxed);
                tlmm_telemetry::counter!("degradation.oblivious_restream").incr();
            }
        }
    }

    /// Charge the far ingest of a newly near-resident subtree: stream the
    /// segment out of DRAM into the scratchpad once, in lane stripes.
    pub fn ingest<T>(&self, elems: usize, lanes: usize) {
        let bytes = (elems * std::mem::size_of::<T>()) as u64;
        match self.tl.preflight(FaultOp::FarToNear) {
            FaultDecision::Proceed => {}
            FaultDecision::Fail(_) | FaultDecision::Delay(_) => {
                charge_io_striped(self.tl, RegionLevel::Far, Dir::Read, bytes, lanes);
                self.restreams.fetch_add(1, Ordering::Relaxed);
                tlmm_telemetry::counter!("degradation.oblivious_restream").incr();
            }
        }
        let base = current_lane();
        for (i, r) in striped_ranges(bytes as usize, lanes).enumerate() {
            with_lane(base + i, || {
                self.tl.charge_far_io(Dir::Read, r.len() as u64);
                self.tl.charge_near_io(Dir::Write, r.len() as u64);
            });
        }
        self.arena.note_sync_transfer(Dir::Read, bytes);
        self.resident_subtrees.fetch_add(1, Ordering::Relaxed);
    }

    /// Charge the far writeback when a near-resident subtree is left.
    pub fn writeback<T>(&self, elems: usize, lanes: usize) {
        let bytes = (elems * std::mem::size_of::<T>()) as u64;
        match self.tl.preflight(FaultOp::NearToFar) {
            FaultDecision::Proceed => {}
            FaultDecision::Fail(_) | FaultDecision::Delay(_) => {
                charge_io_striped(self.tl, RegionLevel::Near, Dir::Read, bytes, lanes);
                self.restreams.fetch_add(1, Ordering::Relaxed);
                tlmm_telemetry::counter!("degradation.oblivious_restream").incr();
            }
        }
        let base = current_lane();
        for (i, r) in striped_ranges(bytes as usize, lanes).enumerate() {
            with_lane(base + i, || {
                self.tl.charge_near_io(Dir::Read, r.len() as u64);
                self.tl.charge_far_io(Dir::Write, r.len() as u64);
            });
        }
        self.arena.note_sync_transfer(Dir::Write, bytes);
    }

    /// Sort a base-case segment: one fault-gated read pass, the in-cache
    /// kernel sort, one write pass, `n·⌈lg n⌉` compute.
    pub fn base_case<T: SortElem>(&self, data: &mut [T], level: RegionLevel, lanes: usize) {
        let bytes = std::mem::size_of_val(data) as u64;
        self.preflight_stream(level, bytes, lanes);
        charge_io_striped(self.tl, level, Dir::Read, bytes, lanes);
        crate::kernels::sort_kernel(data);
        let cmps = data.len() as u64 * crate::ceil_lg(data.len());
        crate::par::charge_compute_striped(self.tl, cmps, lanes);
        charge_io_striped(self.tl, level, Dir::Write, bytes, lanes);
        self.add_comparisons(cmps);
        self.add_passes(1);
    }

    pub fn report(&self) -> ObliviousReport {
        ObliviousReport {
            resident_subtrees: self.resident_subtrees.load(Ordering::Relaxed),
            streaming_passes: self.streaming_passes.load(Ordering::Relaxed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
            restreams: self.restreams.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed) as u32,
        }
    }
}

/// Integer `⌈√n⌉` — the recursion splitter both engines share. Exact for
/// all `usize` values (no float rounding at 2⁵³).
pub(crate) fn ceil_sqrt(n: usize) -> usize {
    if n <= 1 {
        return n;
    }
    let mut x = (n as f64).sqrt() as usize;
    // Float sqrt can land one off in either direction near perfect squares.
    while x.saturating_mul(x) >= n {
        x -= 1;
    }
    while x.saturating_mul(x) < n {
        x += 1;
    }
    x
}

/// Validate the shared config at the API edge (matching
/// `ParSortConfig::lanes == 0` handling).
pub(crate) fn validate(cfg: &ObliviousConfig) -> Result<(), crate::SortError> {
    if cfg.lanes == 0 {
        return Err(crate::SortError::BadConfig {
            reason: "ObliviousConfig::lanes must be at least 1",
        });
    }
    crate::pool::validate_threads(cfg.threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_sqrt_exact() {
        for n in 0usize..2000 {
            let s = ceil_sqrt(n);
            if n > 0 {
                assert!(s * s >= n, "n={n} s={s}");
                assert!((s - 1) * (s - 1) < n || s <= 1, "n={n} s={s}");
            }
        }
        assert_eq!(ceil_sqrt(1 << 40), 1 << 20);
        assert_eq!(ceil_sqrt((1 << 40) + 1), (1 << 20) + 1);
    }
}
