//! Parallel multiway merge via sampled multisequence splitting.
//!
//! NMsort's Phase 2 merges `Θ(N/M)` sorted chunk segments; the baseline
//! merges `p` sorted runs. Both want the merge itself parallel. We split the
//! output into near-equal parts by *sampling* splitter values from the
//! segments, computing exact per-segment boundaries with binary searches,
//! and merging each part independently with a loser tree — the same
//! multiway splitting idea the MCSTL parallel merge uses, with sampling in
//! place of exact multisequence selection.
//!
//! Splits are exact (parts are disjoint and ordered) but balance is only
//! probabilistic; heavily duplicated keys degrade balance, never
//! correctness.

use crate::losertree::merge_into_slice;
use crate::SortElem;
use tlmm_scratchpad::trace::with_lane;

/// Merge `segments` (each sorted) into `out`, split into up to `ways`
/// independent parts. Parts are charged to virtual lanes `0..ways`; with
/// `threads` > 1 they fan out on the sized worker pool. Returns total
/// comparisons.
///
/// # Panics
/// Panics if `out.len()` differs from the total segment length.
pub fn parallel_merge<T: SortElem>(
    segments: &[&[T]],
    out: &mut [T],
    ways: usize,
    threads: usize,
) -> u64 {
    let total: usize = segments.iter().map(|s| s.len()).sum();
    assert_eq!(out.len(), total, "output must fit the merge exactly");
    let ways = ways.max(1);
    if ways == 1 || total < 4 * ways || segments.len() <= 1 {
        return merge_into_slice(segments, out);
    }

    // --- Sample splitter values -------------------------------------
    let mut sample: Vec<T> = Vec::with_capacity(16 * ways);
    for seg in segments {
        if seg.is_empty() {
            continue;
        }
        let want = (16 * ways * seg.len() / total).max(1);
        let step = (seg.len() / want).max(1);
        sample.extend(seg.iter().step_by(step).copied());
    }
    sample.sort_unstable();
    sample.dedup();
    let mut splitters: Vec<T> = (1..ways)
        .map(|t| sample[(t * sample.len() / ways).min(sample.len() - 1)])
        .collect();
    splitters.dedup();

    // --- Exact boundaries per (splitter, segment) --------------------
    // boundaries[t][k] = first index of segment k beyond part t.
    let mut boundaries: Vec<Vec<usize>> = Vec::with_capacity(splitters.len() + 1);
    for s in &splitters {
        boundaries.push(
            segments
                .iter()
                .map(|seg| seg.partition_point(|x| x <= s))
                .collect(),
        );
    }
    boundaries.push(segments.iter().map(|seg| seg.len()).collect());

    // --- Build disjoint part descriptors -----------------------------
    struct Part<'a, T> {
        subs: Vec<&'a [T]>,
        len: usize,
    }
    let mut parts: Vec<Part<'_, T>> = Vec::with_capacity(boundaries.len());
    let mut prev: Vec<usize> = vec![0; segments.len()];
    for b in &boundaries {
        let subs: Vec<&[T]> = segments
            .iter()
            .zip(prev.iter().zip(b.iter()))
            .map(|(seg, (&lo, &hi))| &seg[lo..hi])
            .collect();
        let len = subs.iter().map(|s| s.len()).sum();
        parts.push(Part { subs, len });
        prev.clone_from(b);
    }

    // --- Carve `out` and merge each part ------------------------------
    let mut out_slices: Vec<&mut [T]> = Vec::with_capacity(parts.len());
    let mut rest = out;
    for p in &parts {
        let (a, b) = rest.split_at_mut(p.len);
        out_slices.push(a);
        rest = b;
    }

    let merge_part = |(t, (part, out)): (usize, (&Part<'_, T>, &mut [T]))| -> u64 {
        with_lane(t % ways, || merge_into_slice(&part.subs, out))
    };

    if threads > 1 {
        let items: Vec<(&Part<'_, T>, &mut [T])> = parts.iter().zip(out_slices).collect();
        crate::pool::map_indexed(threads, items, |t, po| merge_part((t, po)))
            .into_iter()
            .sum()
    } else {
        parts
            .iter()
            .zip(out_slices)
            .enumerate()
            .map(merge_part)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check(segments: Vec<Vec<u64>>, ways: usize, threads: usize) {
        let refs: Vec<&[u64]> = segments.iter().map(|s| s.as_slice()).collect();
        let total: usize = segments.iter().map(|s| s.len()).sum();
        let mut out = vec![0u64; total];
        parallel_merge(&refs, &mut out, ways, threads);
        let mut expect: Vec<u64> = segments.concat();
        expect.sort_unstable();
        assert_eq!(out, expect, "ways={ways} threads={threads}");
    }

    fn random_sorted(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn merges_correctly_across_ways() {
        let segs: Vec<Vec<u64>> = (0..6)
            .map(|i| random_sorted(1000 + i * 37, i as u64))
            .collect();
        for ways in [1, 2, 4, 8, 16] {
            check(segs.clone(), ways, 1);
            check(segs.clone(), ways, 4);
        }
    }

    #[test]
    fn handles_empty_and_tiny_segments() {
        check(vec![vec![], vec![1, 2], vec![], vec![3]], 4, 1);
        check(vec![vec![]], 4, 1);
        check(vec![], 4, 1);
        check(vec![vec![5]], 8, 4);
    }

    #[test]
    fn handles_all_equal_keys() {
        check(vec![vec![7; 500], vec![7; 300], vec![7; 200]], 8, 4);
    }

    #[test]
    fn handles_disjoint_ranges() {
        check(
            vec![
                (0..1000).collect(),
                (1000..2000).collect(),
                (2000..3000).collect(),
            ],
            4,
            4,
        );
    }

    #[test]
    fn handles_skewed_sizes() {
        check(
            vec![random_sorted(100_000, 1), vec![5], random_sorted(10, 2)],
            8,
            4,
        );
    }

    #[test]
    fn comparisons_counted() {
        let segs: Vec<Vec<u64>> = (0..4).map(|i| random_sorted(5000, i)).collect();
        let refs: Vec<&[u64]> = segs.iter().map(|s| s.as_slice()).collect();
        let mut out = vec![0u64; 20_000];
        let cmps = parallel_merge(&refs, &mut out, 4, 1);
        assert!(cmps >= 20_000 / 2, "cmps={cmps}");
        assert!(cmps <= 20_000 * 4, "cmps={cmps}");
    }
}
