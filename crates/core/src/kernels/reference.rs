//! Pre-kernel reference implementations, kept verbatim as oracles.
//!
//! [`ReferenceLoserTree`] is the original branchy, `Option`-replay loser
//! tree the crate shipped before the branchless rewrite in
//! [`crate::losertree`]. It stays here so (a) equivalence tests can assert
//! the rewrite emits the identical element sequence *and* the identical
//! comparison count on arbitrary run sets, and (b) `kernel_bench` can
//! measure the before→after wall-clock delta on the real code, not a
//! synthetic stand-in.

/// The original loser tree: `Option<T>` heads re-read from the runs on
/// every match, branchy three-way compare in the replay loop.
pub struct ReferenceLoserTree<'a, T> {
    runs: Vec<&'a [T]>,
    pos: Vec<usize>,
    tree: Vec<usize>,
    k_pad: usize,
    comparisons: u64,
}

impl<'a, T: Ord + Copy> ReferenceLoserTree<'a, T> {
    /// Build a tree over `runs`. Empty runs are allowed.
    pub fn new(runs: Vec<&'a [T]>) -> Self {
        let k = runs.len().max(1);
        let k_pad = k.next_power_of_two();
        let pos = vec![0; runs.len()];
        let mut lt = Self {
            runs,
            pos,
            tree: vec![usize::MAX; k_pad],
            k_pad,
            comparisons: 0,
        };
        lt.rebuild();
        lt
    }

    #[inline]
    fn head(&self, r: usize) -> Option<T> {
        if r >= self.runs.len() {
            return None;
        }
        self.runs[r].get(self.pos[r]).copied()
    }

    fn rebuild(&mut self) {
        let mut winners = vec![usize::MAX; 2 * self.k_pad];
        for leaf in 0..self.k_pad {
            winners[self.k_pad + leaf] = leaf;
        }
        for node in (1..self.k_pad).rev() {
            let a = winners[2 * node];
            let b = winners[2 * node + 1];
            let (w, l) = self.play(a, b);
            winners[node] = w;
            self.tree[node] = l;
        }
        self.tree[0] = winners.get(1).copied().unwrap_or(usize::MAX);
    }

    #[inline]
    fn play(&mut self, a: usize, b: usize) -> (usize, usize) {
        match (self.head(a), self.head(b)) {
            (Some(x), Some(y)) => {
                self.comparisons += 1;
                match x.cmp(&y) {
                    core::cmp::Ordering::Less => (a, b),
                    core::cmp::Ordering::Greater => (b, a),
                    core::cmp::Ordering::Equal => (a.min(b), a.max(b)),
                }
            }
            (Some(_), None) => (a, b),
            (None, Some(_)) => (b, a),
            (None, None) => (a.min(b), a.max(b)),
        }
    }

    /// Pop the globally smallest remaining element.
    pub fn next_element(&mut self) -> Option<T> {
        let w = self.tree[0];
        let val = self.head(w)?;
        self.pos[w] += 1;
        let mut cur = w;
        let mut node = (self.k_pad + w) / 2;
        while node >= 1 {
            let opponent = self.tree[node];
            let (win, lose) = self.play(cur, opponent);
            self.tree[node] = lose;
            cur = win;
            node /= 2;
        }
        self.tree[0] = cur;
        Some(val)
    }

    /// Total comparisons performed.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

impl<T: Ord + Copy> Iterator for ReferenceLoserTree<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.next_element()
    }
}

/// Reference k-way merge into an exactly-sized slice; returns comparisons.
/// Mirrors `losertree::merge_into_slice` minus the 0/1-run fast paths so
/// benchmarks compare the tree loops, not the memcpy shortcuts.
///
/// # Panics
/// Panics if `out.len()` differs from the total run length.
pub fn merge_into_slice_ref<T: Ord + Copy>(runs: &[&[T]], out: &mut [T]) -> u64 {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert_eq!(out.len(), total, "output slice must fit the merge exactly");
    match runs.len() {
        0 => 0,
        1 => {
            out.copy_from_slice(runs[0]);
            0
        }
        _ => {
            let mut lt = ReferenceLoserTree::new(runs.to_vec());
            for slot in out.iter_mut() {
                *slot = lt.next_element().expect("run length accounting broken");
            }
            lt.comparisons()
        }
    }
}

/// Reference run formation: `sort_unstable` on every run — the "before"
/// side of the `kernel_bench` run-formation cell.
pub fn form_runs_ref<T: Ord>(data: &mut [T], run_elems: usize) {
    for run in data.chunks_mut(run_elems.max(2)) {
        run.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_merge_sorts() {
        let runs = [vec![1u64, 4, 9], vec![2, 5], vec![0, 3, 8], vec![]];
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut out = vec![0u64; 8];
        let cmps = merge_into_slice_ref(&refs, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 8, 9]);
        assert!(cmps > 0);
    }

    #[test]
    fn reference_run_formation_sorts_each_run() {
        let mut v = vec![5u64, 3, 1, 9, 7, 2, 8, 0];
        form_runs_ref(&mut v, 4);
        assert_eq!(v, vec![1, 3, 5, 9, 0, 2, 7, 8]);
    }
}
