//! Wall-clock kernel layer: the host-side inner loops every sorter runs on.
//!
//! The paper's analysis charges *simulated* costs (block transfers,
//! comparisons) to the [`tlmm_scratchpad::TwoLevel`] ledger; those charges
//! are fixed by the algorithms and never change here. What this module owns
//! is the **host wall clock** of the same work — the thing the bench
//! trajectory (`BENCH_kernels.json`) is judged on:
//!
//! * [`radix`] — an MSD hybrid radix sort over [`RadixKey`] element types
//!   (order-preserving bit transforms for `u64`/`u32`/`i64`): min/max
//!   prefix skip, one wide counting scatter, cache-resident bucket
//!   finishing. Used for Phase-1 run formation everywhere a chunk or run
//!   is sorted in cache.
//! * [`sort_kernel`] — the routing entry point: radix for key types at
//!   run-formation sizes, `slice::sort_unstable` otherwise. All sorters
//!   (`extsort`, `baseline`, `quicksort` base case, and through them
//!   `nmsort`/`seqsort`) call this instead of `sort_unstable` directly.
//! * [`reference`] — the pre-kernel implementations (branchy loser tree,
//!   comparison-only run formation), kept as the differential oracle for
//!   equivalence tests and as the "before" side of `kernel_bench`.
//!
//! **Cost-ledger invariant.** Kernel selection must never change simulated
//! results: callers keep charging the comparison-model cost
//! (`n·⌈lg n⌉` compute for a formation sort, `⌈lg k⌉` per merged element)
//! regardless of which kernel ran, because the machine being simulated
//! executes the paper's comparison-based algorithm — the radix kernel is a
//! host-side stand-in that produces the identical permutation faster. See
//! DESIGN.md §10.

pub mod radix;
pub mod reference;
pub mod simd;

pub use radix::{radix_sort, RadixKey};

use crate::SortElem;
use core::any::Any;

/// Below this length a comparison sort beats the radix passes' fixed costs
/// (histogramming + a scratch buffer); measured crossover on u64 is a few
/// hundred elements.
pub const RADIX_MIN_LEN: usize = 256;

/// The radix kernel for `T`, if `T` is one of the [`RadixKey`] types —
/// resolved with a safe `Any` downcast of the concrete `fn` pointer (no
/// `unsafe`, no specialization): when `T` *is* `u64`, `fn(&mut [u64])` and
/// `fn(&mut [T])` are the same type and the downcast succeeds.
#[inline]
pub fn radix_kernel<T: SortElem>() -> Option<fn(&mut [T])> {
    macro_rules! route {
        ($ty:ty) => {
            let f: fn(&mut [$ty]) = radix::radix_sort::<$ty>;
            if let Some(f) = <dyn Any>::downcast_ref::<fn(&mut [T])>(&f) {
                return Some(*f);
            }
        };
    }
    route!(u64);
    route!(u32);
    route!(i64);
    None
}

/// Sort `data` with the fastest available host kernel: MSD hybrid radix for
/// [`RadixKey`] types at or above [`RADIX_MIN_LEN`], `sort_unstable`
/// otherwise. Produces the identical permutation either way; callers charge
/// the comparison-model compute cost themselves (see the module docs).
#[inline]
pub fn sort_kernel<T: SortElem>(data: &mut [T]) {
    let flight = tlmm_telemetry::flight::enabled();
    if data.len() >= RADIX_MIN_LEN {
        if let Some(f) = radix_kernel::<T>() {
            if flight {
                tlmm_telemetry::flight::span_event(true, "kernel.radix_sort");
            }
            f(data);
            tlmm_telemetry::counter!("core.kernels.radix_sorts").incr();
            if flight {
                tlmm_telemetry::flight::span_event(false, "kernel.radix_sort");
            }
            return;
        }
    }
    if flight {
        tlmm_telemetry::flight::span_event(true, "kernel.sort_unstable");
    }
    data.sort_unstable();
    if flight {
        tlmm_telemetry::flight::span_event(false, "kernel.sort_unstable");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn radix_kernel_resolves_only_for_key_types() {
        assert!(radix_kernel::<u64>().is_some());
        assert!(radix_kernel::<u32>().is_some());
        assert!(radix_kernel::<i64>().is_some());
        assert!(radix_kernel::<u8>().is_none());
        assert!(radix_kernel::<u16>().is_none());
        assert!(radix_kernel::<(u64, u64)>().is_none());
    }

    #[test]
    fn sort_kernel_sorts_radix_and_fallback_types() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut a: Vec<u64> = (0..10_000).map(|_| rng.gen()).collect();
        let mut ea = a.clone();
        ea.sort_unstable();
        sort_kernel(&mut a);
        assert_eq!(a, ea);

        let mut b: Vec<(u64, u64)> = (0..10_000).map(|_| (rng.gen(), rng.gen())).collect();
        let mut eb = b.clone();
        eb.sort_unstable();
        sort_kernel(&mut b);
        assert_eq!(b, eb);
    }

    #[test]
    fn sort_kernel_small_inputs_take_comparison_path() {
        // Below the threshold both paths must still sort.
        for n in [0usize, 1, 2, 3, 255] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let mut v: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            let mut e = v.clone();
            e.sort_unstable();
            sort_kernel(&mut v);
            assert_eq!(v, e, "n={n}");
        }
    }
}
