//! MSD hybrid radix sort over order-preserving integer key transforms.
//!
//! Run formation is the compute-heaviest part of every sorter here: Phase 1
//! of NMsort alone sorts the entire input in scratchpad-sized pieces. A
//! comparison sort pays `Θ(n lg n)` branchy comparisons; this kernel pays
//! one branch-free counting scatter plus small cache-resident finishing
//! sorts — without touching the I/O-level analysis, which still charges the
//! comparison model's costs (see `kernels` module docs).
//!
//! Shape, chosen by microbenchmark on the dev host (DESIGN.md §10 records
//! the measurements and the variants that lost):
//!
//! * a **min/max pre-pass** finds the common high-bit prefix of the
//!   transformed keys, so low-entropy inputs (small ranges, few distinct
//!   values, sign-skewed `i64`) spend their digit budget only on bits that
//!   actually differ — and all-equal inputs return after one read pass;
//! * a **counting fast path** when the pre-pass shows the key range is
//!   comparable to `n` (zipf ranks, sawtooth, few-distinct, permutations):
//!   count every exact key, then *reconstruct* the sorted output as
//!   run-length-encoded values — keys are bijective, so no element needs
//!   to move at all. This is what fixed the zipf run-formation regression:
//!   a scatter digit cannot separate a head-heavy distribution (the top
//!   ranks share one bucket), but a per-value count is indifferent to skew;
//! * **one wide MSD scatter** (digit width picked from `n` so buckets
//!   average ~32 elements, capped at [`MAX_DIGIT_BITS`] to keep the
//!   histogram + offset tables L1/L2-resident) moves every element to its
//!   bucket in a single counting pass;
//! * each bucket is then finished **in cache**: insertion sort up to
//!   [`INSERTION_MAX`] elements, `slice::sort_unstable` above that, and
//!   nothing at all when the scatter already consumed every differing key
//!   bit (equal keys ⇒ identical elements for the primitive key types).
//!
//! Earlier LSD (8-bit ping-pong passes) and recursive-MSD variants measured
//! *slower* than `sort_unstable` on uniform `u64` on this host — multiple
//! full-array scatter passes are memory-bound here, so the design spends
//! exactly one.

/// An element with a fixed-width integer sort key whose order is preserved
/// by mapping into `u64` space.
///
/// Implementations must guarantee `a <= b ⇔ a.radix_key() <= b.radix_key()`,
/// that only the low [`KEY_BITS`](RadixKey::KEY_BITS) bits of the key are
/// ever set, and that the map is a *bijection* inverted by
/// [`from_radix_key`](RadixKey::from_radix_key) — equal keys mean identical
/// elements, which both the bucket-finishing step and the counting
/// fast path (which *reconstructs* elements from key counts) rely on.
pub trait RadixKey: Copy + Ord + 'static {
    /// Significant bits in the transformed key.
    const KEY_BITS: u32;
    /// Order-preserving map into unsigned key space.
    fn radix_key(self) -> u64;
    /// Inverse of [`radix_key`](RadixKey::radix_key):
    /// `from_radix_key(x.radix_key()) == x` for every element.
    fn from_radix_key(key: u64) -> Self;
}

impl RadixKey for u64 {
    const KEY_BITS: u32 = 64;
    #[inline(always)]
    fn radix_key(self) -> u64 {
        self
    }
    #[inline(always)]
    fn from_radix_key(key: u64) -> Self {
        key
    }
}

impl RadixKey for u32 {
    const KEY_BITS: u32 = 32;
    #[inline(always)]
    fn radix_key(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_radix_key(key: u64) -> Self {
        key as u32
    }
}

impl RadixKey for i64 {
    const KEY_BITS: u32 = 64;
    /// Flip the sign bit: maps `i64::MIN..=i64::MAX` monotonically onto
    /// `0..=u64::MAX`.
    #[inline(always)]
    fn radix_key(self) -> u64 {
        (self as u64) ^ (1u64 << 63)
    }
    #[inline(always)]
    fn from_radix_key(key: u64) -> Self {
        (key ^ (1u64 << 63)) as i64
    }
}

/// Buckets at or below this length finish with insertion sort; above it,
/// `sort_unstable`. Crossover measured on the dev host.
const INSERTION_MAX: usize = 24;
/// Cap on the scatter's digit width: 2^12 buckets keep the histogram and
/// offset tables (2 × 16 KiB of `u32`) cache-resident during the scatter.
const MAX_DIGIT_BITS: u32 = 12;
/// Digit width targets buckets of ~2^5 elements: small enough to finish in
/// L1, large enough that per-bucket fixed costs amortize.
const TARGET_LG_BUCKET: u32 = 5;
/// Below this the setup passes can't pay for themselves.
const MSD_MIN_LEN: usize = 64;
/// Buckets at or above this recurse instead of `sort_unstable`: only
/// genuinely skewed inputs (zipf, clustered) produce them, and the
/// recursion's min/max pre-pass re-narrows the key range so the next
/// scatter spreads them. Uniform inputs never hit this path.
const RECURSE_MIN: usize = 1 << 12;
/// Cap on the counting fast path's table: 2^22 `u32` counters (16 MiB)
/// scan in well under a millisecond; anything larger would dominate the
/// work it replaces.
const COUNTING_MAX_KEYS: u64 = 1 << 22;
/// Key span of the dense-head split's exact-count table: 4096 `u32`
/// counters stay L1-resident while the single partition pass streams.
const HEAD_SPAN: u64 = 1 << 12;
/// Keys sampled (evenly strided) to estimate how much mass sits within
/// [`HEAD_SPAN`] of the minimum.
const HEAD_SAMPLES: usize = 32;

/// Sort `data` in place with one wide MSD counting scatter on
/// [`RadixKey::radix_key`] plus cache-resident bucket finishing.
pub fn radix_sort<T: RadixKey>(data: &mut [T]) {
    let n = data.len();
    if n < MSD_MIN_LEN {
        data.sort_unstable();
        return;
    }

    // Min/max of the transformed keys: the XOR's leading zeros are the
    // shared prefix no digit needs to inspect.
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    for &x in data.iter() {
        let k = x.radix_key();
        lo = lo.min(k);
        hi = hi.max(k);
    }
    if lo == hi {
        return; // one distinct key ⇒ identical elements
    }
    // Counting fast path: when the key *range* is comparable to `n` (zipf
    // ranks, sawtooth periods, few-distinct pools, near-permutations), a
    // per-value count plus run-length reconstruction replaces the scatter,
    // the finishing sorts and the copy-back with one L1-friendly counting
    // pass and one sequential write — and skew is free, since a hot key is
    // just a large count. The bijective key contract makes reconstruction
    // exact.
    let range = hi - lo;
    if range < COUNTING_MAX_KEYS && range / 4 < n as u64 {
        counting_sort_span(data, lo, range as usize + 1);
        return;
    }
    // Dense-head split: a wide range can still hide a head-heavy
    // distribution whose mode sits at the minimum (zipf ranks sorted in
    // scratchpad-sized chunks: each chunk spans ~n keys but most elements
    // are tiny). A strided sample estimates the mass within HEAD_SPAN of
    // `lo`; when at least half the input lives there, one partition pass
    // exact-counts the head and a comparison sort finishes the sparse
    // spill — two passes instead of scatter + skewed-bucket finishing.
    if range >= HEAD_SPAN {
        let step = (n / HEAD_SAMPLES).max(1);
        let mut taken = 0usize;
        let mut within = 0usize;
        for x in data.iter().step_by(step) {
            taken += 1;
            if x.radix_key() - lo < HEAD_SPAN {
                within += 1;
            }
        }
        if within * 2 >= taken {
            dense_head_split(data, lo);
            return;
        }
    }
    let bits = 64 - (lo ^ hi).leading_zeros();
    let lg_n = usize::BITS - (n - 1).leading_zeros();
    let width = lg_n
        .saturating_sub(TARGET_LG_BUCKET)
        .clamp(6, MAX_DIGIT_BITS)
        .min(bits);
    let shift = bits - width;
    let buckets = 1usize << width;
    let mask = (buckets - 1) as u64;

    // Histogram and scatter have vectorized forms for identity-keyed `u64`
    // (8-lane digit extraction); other key types — and `TLMM_NO_SIMD=1` —
    // take the scalar loops. Identical counts and placements either way.
    let mut hist = vec![0u32; buckets];
    if !super::simd::radix_histogram(data, shift, mask, &mut hist) {
        for &x in data.iter() {
            hist[((x.radix_key() >> shift) & mask) as usize] += 1;
        }
    }
    // Exclusive prefix sums -> per-bucket write cursors.
    let mut cursors = vec![0u32; buckets];
    let mut sum = 0u32;
    for (c, &h) in cursors.iter_mut().zip(hist.iter()) {
        *c = sum;
        sum += h;
    }
    let mut scratch: Vec<T> = Vec::with_capacity(n);
    scratch.extend_from_slice(data);
    if !super::simd::radix_scatter(data, shift, mask, &mut cursors, &mut scratch) {
        for &x in data.iter() {
            let b = ((x.radix_key() >> shift) & mask) as usize;
            scratch[cursors[b] as usize] = x;
            cursors[b] += 1;
        }
    }

    // Finish each bucket while it is cache-hot; `cursors[b]` is now the end
    // of bucket `b`.
    let mut start = 0usize;
    for &end in cursors.iter() {
        let end = end as usize;
        let bucket = &mut scratch[start..end];
        // shift == 0 means the scatter consumed every differing key bit:
        // the bucket holds one distinct key and is already in order.
        if bucket.len() > 1 && shift > 0 {
            if bucket.len() <= INSERTION_MAX {
                insertion_sort(bucket);
            } else if shift < 22 && (1usize << shift) / 4 <= bucket.len() {
                // Adaptive skew handling: the scatter left only `shift`
                // low bits unresolved, so every element here shares the
                // key prefix above them. When that residual span is small
                // relative to the bucket's occupancy, count-and-
                // reconstruct directly — a skewed (zipf head) bucket that
                // would previously re-pay min/max + histogram + scatter in
                // a recursive call finishes in two cheap passes instead.
                let base = (bucket[0].radix_key() >> shift) << shift;
                counting_sort_span(bucket, base, 1usize << shift);
            } else if bucket.len() >= RECURSE_MIN {
                // Skew with a wide residual span: recurse — the nested
                // min/max pre-pass confines the next scatter to the bits
                // this level left (`< shift` of them), so depth is bounded
                // by KEY_BITS / 6, and the recursion's own counting fast
                // path catches clustered values once the range narrows.
                radix_sort(bucket);
            } else {
                bucket.sort_unstable();
            }
        }
        start = end;
    }
    data.copy_from_slice(&scratch);
}

/// Counting sort by exact key over `span` consecutive key values starting
/// at `base`: one counting pass, then the output is *reconstructed* as
/// run-length-encoded values via [`RadixKey::from_radix_key`] — no element
/// is moved, so no scratch buffer and no scatter. Correct because the key
/// map is bijective (equal keys ⇒ identical elements).
fn counting_sort_span<T: RadixKey>(data: &mut [T], base: u64, span: usize) {
    let mut counts = vec![0u32; span];
    for &x in data.iter() {
        counts[(x.radix_key() - base) as usize] += 1;
    }
    let mut i = 0usize;
    for (k, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let v = T::from_radix_key(base + k as u64);
        data[i..i + c as usize].fill(v);
        i += c as usize;
    }
}

/// Partition the input into a dense head (keys within [`HEAD_SPAN`] of
/// `lo`, exact-counted in an L1-resident table) and a sparse spill (all
/// larger keys, comparison-sorted). Every head key precedes every spill
/// key, so the output is the reconstructed head runs followed by the
/// sorted spill.
fn dense_head_split<T: RadixKey>(data: &mut [T], lo: u64) {
    let mut counts = vec![0u32; HEAD_SPAN as usize];
    let mut spill: Vec<T> = Vec::new();
    for &x in data.iter() {
        let k = x.radix_key() - lo;
        if k < HEAD_SPAN {
            counts[k as usize] += 1;
        } else {
            spill.push(x);
        }
    }
    spill.sort_unstable();
    let mut i = 0usize;
    for (k, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let v = T::from_radix_key(lo + k as u64);
        data[i..i + c as usize].fill(v);
        i += c as usize;
    }
    data[i..].copy_from_slice(&spill);
}

/// Plain insertion sort: optimal below ~24 elements where `sort_unstable`'s
/// per-call dispatch dominates.
fn insertion_sort<T: Copy + Ord>(v: &mut [T]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && v[j - 1] > x {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check<T: RadixKey + std::fmt::Debug>(mut v: Vec<T>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_u64_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        check((0..10_000).map(|_| rng.gen::<u64>()).collect());
        check((0..5_000u64).collect());
        check((0..5_000u64).rev().collect());
        check(vec![42u64; 3_000]); // all-equal: min/max pre-pass early out
        check((0..5_000).map(|i| (i % 7) as u64).collect());
        check(vec![u64::MAX, 0, u64::MAX, 1, u64::MAX - 1]);
        check(Vec::<u64>::new());
        check(vec![9u64]);
    }

    #[test]
    fn sorts_u32() {
        let mut rng = StdRng::seed_from_u64(2);
        check((0..10_000).map(|_| rng.gen::<u32>()).collect());
        check(vec![u32::MAX, 0, 1, u32::MAX - 1]);
    }

    #[test]
    fn sorts_i64_with_negatives() {
        let mut rng = StdRng::seed_from_u64(3);
        check((0..10_000).map(|_| rng.gen::<i64>()).collect());
        check(vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN + 1]);
        check((-5_000..5_000).rev().collect::<Vec<i64>>());
    }

    #[test]
    fn key_transforms_preserve_order() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let (a, b) = (rng.gen::<i64>(), rng.gen::<i64>());
            assert_eq!(a <= b, a.radix_key() <= b.radix_key(), "{a} vs {b}");
        }
        for _ in 0..1_000 {
            let (a, b) = (rng.gen::<u32>(), rng.gen::<u32>());
            assert_eq!(a <= b, a.radix_key() <= b.radix_key());
        }
    }

    #[test]
    fn low_entropy_inputs_narrow_the_digit_and_stay_correct() {
        // Keys confined to one byte: the min/max pre-pass narrows the
        // scatter to the 8 differing bits.
        let mut rng = StdRng::seed_from_u64(5);
        check((0..20_000).map(|_| rng.gen_range(0u64..256)).collect());
        // Two distinct keys an enormous distance apart: width clamps to
        // the differing-bit count.
        check(
            (0..10_000)
                .map(|i| if i % 3 == 0 { u64::MAX } else { 1 })
                .collect(),
        );
    }

    #[test]
    fn counting_path_handles_skew_and_permutations() {
        let mut rng = StdRng::seed_from_u64(8);
        // Zipf-ish head-heavy ranks in 1..=n: range ≈ n triggers the
        // counting path; the head value's huge count must reconstruct.
        check(
            (0..50_000)
                .map(|_| {
                    let r: f64 = rng.gen();
                    (1.0 / (1.0 - r).powf(0.8)).min(50_000.0) as u64
                })
                .collect(),
        );
        // Permutations and reversed ranges: range == n - 1.
        check((0..50_000u64).rev().collect());
        // Signed keys through the bijection's inverse.
        check((-25_000..25_000).rev().collect::<Vec<i64>>());
        check((0..50_000).map(|_| rng.gen_range(-64i64..64)).collect());
        // u32 through the widening inverse.
        check((0..50_000).map(|_| rng.gen_range(0u32..4096)).collect());
    }

    #[test]
    fn dense_head_split_handles_wide_range_head_heavy_chunks() {
        // Run-formation shape: zipf-ish ranks whose range spans the full
        // array but whose mass sits at the minimum — plus far outliers so
        // the range stays far too wide for the counting fast path.
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u64> = (0..30_000)
            .map(|_| {
                let r: f64 = rng.gen();
                (1.0 / (1.0 - r).powf(1.5)) as u64
            })
            .collect();
        v.extend((0..300).map(|_| rng.gen::<u64>()));
        check(v);
        // Head exactly at a nonzero minimum.
        check(
            (0..30_000)
                .map(|i| {
                    if i % 10 == 0 {
                        1_000_000 + rng.gen_range(0u64..100_000_000)
                    } else {
                        1_000_000 + rng.gen_range(0u64..100)
                    }
                })
                .collect(),
        );
    }

    #[test]
    fn counting_span_reconstructs_exactly() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u64> = (0..10_000).map(|_| rng.gen_range(100u64..612)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        counting_sort_span(&mut v, 100, 512);
        assert_eq!(v, expect);
    }

    #[test]
    fn wide_range_with_giant_residual_bucket_still_sorts() {
        // Range too wide for the top-level counting path (two far-apart
        // clusters), but each cluster lands in one giant bucket whose
        // residual span the adaptive finishing resolves by counting.
        let mut rng = StdRng::seed_from_u64(10);
        let mut v: Vec<u64> = (0..40_000)
            .map(|_| (1u64 << 40) + rng.gen_range(0u64..128))
            .collect();
        v.extend((0..40_000).map(|_| rng.gen_range(0u64..128)));
        check(v);
    }

    #[test]
    fn clustered_ranges_exercise_every_bucket_path() {
        // Tight cluster + outliers: most buckets tiny (insertion path),
        // one giant (sort_unstable path), many empty.
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u64> = (0..30_000)
            .map(|_| 1_000_000 + rng.gen_range(0u64..64))
            .collect();
        v.extend((0..100).map(|_| rng.gen::<u64>()));
        check(v);
    }
}
