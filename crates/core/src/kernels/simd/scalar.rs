//! Portable scalar forms of the vectorized kernels.
//!
//! These are the *semantic definitions*: every AVX2 kernel in
//! [`super::avx2`] must be observationally equivalent to its function here.
//! They run whenever the host lacks AVX2, `TLMM_NO_SIMD=1` is set, or the
//! element type is not one the vector layer specializes.

/// First index of (sorted) `s` holding an element `> pivot`.
#[inline]
pub fn partition_point_le<T: Ord>(s: &[T], pivot: &T) -> usize {
    s.partition_point(|x| x <= pivot)
}

/// Length of the longest `<= pivot` prefix of (sorted) `s`, found by a
/// forward linear scan — the boundary walk of `bucketize`, which inspects
/// each element once plus the first exceeding one.
#[inline]
pub fn count_le<T: Ord>(s: &[T], pivot: &T) -> usize {
    let mut i = 0;
    while i < s.len() && s[i] <= *pivot {
        i += 1;
    }
    i
}

/// Classic two-way merge of sorted runs `a` and `b` into `out`
/// (`out.len() == a.len() + b.len()`), ties taking `a` first (stable).
pub fn merge_pair<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    debug_assert_eq!(out.len(), a.len() + b.len(), "merge_pair size mismatch");
    let (mut i, mut j) = (0usize, 0usize);
    for slot in out.iter_mut() {
        let take_a = if i < a.len() {
            j >= b.len() || a[i] <= b[j]
        } else {
            false
        };
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_le_stops_at_first_greater() {
        let v = [1u64, 2, 2, 3, 9];
        assert_eq!(count_le(&v, &0), 0);
        assert_eq!(count_le(&v, &2), 3);
        assert_eq!(count_le(&v, &9), 5);
        assert_eq!(count_le::<u64>(&[], &5), 0);
    }

    #[test]
    fn merge_pair_is_stable_on_ties() {
        // Tag ties so stability is observable: equal keys compare equal on
        // the first tuple field only if the second also matches — so use a
        // key-only wrapper ordering via (key, src) pairs merged on key.
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        struct E(u64, u8);
        impl Ord for E {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0)
            }
        }
        impl PartialOrd for E {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        let a = [E(1, 0), E(5, 0), E(5, 0)];
        let b = [E(1, 1), E(5, 1), E(7, 1)];
        let mut out = [E(0, 0); 6];
        merge_pair(&a, &b, &mut out);
        assert_eq!(out, [E(1, 0), E(1, 1), E(5, 0), E(5, 0), E(5, 1), E(7, 1)]);
    }
}
