//! Hand-vectorized AVX2 kernels for `u64` keys.
//!
//! Every public function here is a *safe* wrapper whose body enters an
//! `unsafe` `#[target_feature(enable = "avx2")]` implementation. Callers
//! must only reach these through [`super`]'s dispatchers, which gate on
//! [`super::enabled`] (host AVX2 detected, `TLMM_NO_SIMD` unset); the
//! wrappers re-verify detection in debug builds.
//!
//! AVX2 has no unsigned 64-bit compare, so ordered comparisons run in the
//! signed domain after XOR-ing each lane with `1 << 63` (maps `u64` order
//! onto `i64` order). All loads/stores are unaligned (`loadu`/`storeu`) —
//! run slices come from arbitrary offsets inside chunk buffers.

#![allow(unsafe_code)]

use core::arch::x86_64::*;

/// `u64 → i64` order-preserving bias (flips the sign bit lane-wise).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn bias(v: __m256i) -> __m256i {
    _mm256_xor_si256(v, _mm256_set1_epi64x(i64::MIN))
}

/// Lane-wise unsigned `a > b` mask.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn gt_u64(a: __m256i, b: __m256i) -> __m256i {
    _mm256_cmpgt_epi64(bias(a), bias(b))
}

/// Lane-wise unsigned (min, max).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn minmax_u64(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
    let a_gt = gt_u64(a, b);
    (
        _mm256_blendv_epi8(a, b, a_gt),
        _mm256_blendv_epi8(b, a, a_gt),
    )
}

fn debug_check_avx2() {
    debug_assert!(
        is_x86_feature_detected!("avx2"),
        "AVX2 kernel reached without host support; dispatch must gate on simd::enabled()"
    );
}

// ---------------------------------------------------------------------------
// Boundary scans
// ---------------------------------------------------------------------------

/// See [`super::count_le`]: longest `<= pivot` prefix of sorted `s`.
pub fn count_le_u64(s: &[u64], pivot: &u64) -> usize {
    debug_check_avx2();
    // SAFETY: dispatch gates on AVX2 detection before routing here.
    unsafe { count_le_impl(s, *pivot) }
}

#[target_feature(enable = "avx2")]
unsafe fn count_le_impl(s: &[u64], pivot: u64) -> usize {
    let vp = bias(_mm256_set1_epi64x(pivot as i64));
    let mut i = 0usize;
    // 4 lanes per step; the slice is sorted, so the first lane holding an
    // element > pivot ends the scan (trailing_zeros of the movemask).
    while i + 4 <= s.len() {
        let v = _mm256_loadu_si256(s.as_ptr().add(i).cast());
        let gt = _mm256_cmpgt_epi64(bias(v), vp);
        let m = _mm256_movemask_pd(_mm256_castsi256_pd(gt)) as u32;
        if m != 0 {
            return i + m.trailing_zeros() as usize;
        }
        i += 4;
    }
    while i < s.len() && s[i] <= pivot {
        i += 1;
    }
    i
}

/// See [`super::partition_point_le`]: binary search narrowed to a small
/// window, finished with the SIMD linear scan.
pub fn partition_point_le_u64(s: &[u64], pivot: &u64) -> usize {
    debug_check_avx2();
    let p = *pivot;
    let (mut lo, mut hi) = (0usize, s.len());
    // Keep halving until the window fits a few vector steps.
    while hi - lo > 32 {
        let mid = lo + (hi - lo) / 2;
        if s[mid] <= p {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    // SAFETY: dispatch gates on AVX2 detection before routing here.
    lo + unsafe { count_le_impl(&s[lo..hi], p) }
}

// ---------------------------------------------------------------------------
// Radix histogram + scatter
// ---------------------------------------------------------------------------

/// See [`super::radix_histogram`]: digit counts of `(x >> shift) & mask`.
pub fn radix_histogram_u64(data: &[u64], shift: u32, mask: u64, hist: &mut [u32]) {
    debug_check_avx2();
    // SAFETY: dispatch gates on AVX2 detection before routing here.
    unsafe { radix_histogram_impl(data, shift, mask, hist) }
}

#[target_feature(enable = "avx2")]
unsafe fn radix_histogram_impl(data: &[u64], shift: u32, mask: u64, hist: &mut [u32]) {
    let vshift = _mm_cvtsi64_si128(shift as i64);
    let vmask = _mm256_set1_epi64x(mask as i64);
    let mut digits = [0u64; 8];
    let mut i = 0usize;
    // 8 keys per step: two 4-lane digit extractions, then eight unrolled
    // counter increments from the spilled digit buffer (the increments are
    // inherently scalar — AVX2 has no conflict detection — but the shifts
    // and masks vectorize).
    while i + 8 <= data.len() {
        let v0 = _mm256_loadu_si256(data.as_ptr().add(i).cast());
        let v1 = _mm256_loadu_si256(data.as_ptr().add(i + 4).cast());
        let d0 = _mm256_and_si256(_mm256_srl_epi64(v0, vshift), vmask);
        let d1 = _mm256_and_si256(_mm256_srl_epi64(v1, vshift), vmask);
        _mm256_storeu_si256(digits.as_mut_ptr().cast(), d0);
        _mm256_storeu_si256(digits.as_mut_ptr().add(4).cast(), d1);
        hist[digits[0] as usize] += 1;
        hist[digits[1] as usize] += 1;
        hist[digits[2] as usize] += 1;
        hist[digits[3] as usize] += 1;
        hist[digits[4] as usize] += 1;
        hist[digits[5] as usize] += 1;
        hist[digits[6] as usize] += 1;
        hist[digits[7] as usize] += 1;
        i += 8;
    }
    for &x in &data[i..] {
        hist[((x >> shift) & mask) as usize] += 1;
    }
}

/// See [`super::radix_scatter`]: scatter by digit through `cursors`.
pub fn radix_scatter_u64(
    data: &[u64],
    shift: u32,
    mask: u64,
    cursors: &mut [u32],
    scratch: &mut [u64],
) {
    debug_check_avx2();
    // SAFETY: dispatch gates on AVX2 detection before routing here.
    unsafe { radix_scatter_impl(data, shift, mask, cursors, scratch) }
}

#[target_feature(enable = "avx2")]
unsafe fn radix_scatter_impl(
    data: &[u64],
    shift: u32,
    mask: u64,
    cursors: &mut [u32],
    scratch: &mut [u64],
) {
    let vshift = _mm_cvtsi64_si128(shift as i64);
    let vmask = _mm256_set1_epi64x(mask as i64);
    let mut digits = [0u64; 8];
    let mut i = 0usize;
    // Batched digit extraction feeding scalar scatter stores (the stores
    // must stay in input order for radix stability, so they cannot be
    // reordered into gather/scatter lanes).
    while i + 8 <= data.len() {
        let v0 = _mm256_loadu_si256(data.as_ptr().add(i).cast());
        let v1 = _mm256_loadu_si256(data.as_ptr().add(i + 4).cast());
        let d0 = _mm256_and_si256(_mm256_srl_epi64(v0, vshift), vmask);
        let d1 = _mm256_and_si256(_mm256_srl_epi64(v1, vshift), vmask);
        _mm256_storeu_si256(digits.as_mut_ptr().cast(), d0);
        _mm256_storeu_si256(digits.as_mut_ptr().add(4).cast(), d1);
        for j in 0..8 {
            let b = digits[j] as usize;
            scratch[cursors[b] as usize] = data[i + j];
            cursors[b] += 1;
        }
        i += 8;
    }
    for &x in &data[i..] {
        let b = ((x >> shift) & mask) as usize;
        scratch[cursors[b] as usize] = x;
        cursors[b] += 1;
    }
}

// ---------------------------------------------------------------------------
// 4-wide bitonic merge network
// ---------------------------------------------------------------------------

/// Sort a 4-lane *bitonic* sequence ascending with the 2-step cleaner
/// (half exchange, then adjacent-pair exchange).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn bitonic4_clean(v: __m256i) -> __m256i {
    // Step 1: compare lanes {0,1} with {2,3} (swap 128-bit halves).
    let t = _mm256_permute4x64_epi64(v, 0b01_00_11_10);
    let (mn, mx) = minmax_u64(v, t);
    // Keep mins in lanes 0,1 and maxes in lanes 2,3.
    let v = _mm256_blend_epi32(mn, mx, 0b1111_0000);
    // Step 2: compare adjacent lanes {0,2} with {1,3}.
    let t = _mm256_permute4x64_epi64(v, 0b10_11_00_01);
    let (mn, mx) = minmax_u64(v, t);
    // Keep mins in lanes 0,2 and maxes in lanes 1,3.
    _mm256_blend_epi32(mn, mx, 0b1100_1100)
}

/// Merge two ascending 4-lane registers into an ascending 8-sequence,
/// returned as (low 4, high 4): reverse `b`, lane-wise min/max forms two
/// bitonic halves, clean each.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn bitonic_merge8(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
    let br = _mm256_permute4x64_epi64(b, 0b00_01_10_11);
    let (lo, hi) = minmax_u64(a, br);
    (bitonic4_clean(lo), bitonic4_clean(hi))
}

/// See [`super::merge_pair`]: merge sorted `a` and `b` into `out` with the
/// 4-wide bitonic network, streaming 4 outputs per step.
pub fn merge_pair_u64(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_check_avx2();
    assert_eq!(out.len(), a.len() + b.len(), "merge_pair size mismatch");
    if a.len() < 4 || b.len() < 4 {
        super::scalar::merge_pair(a, b, out);
        return;
    }
    // SAFETY: dispatch gates on AVX2 detection before routing here; length
    // preconditions checked above.
    unsafe { merge_pair_impl(a, b, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn merge_pair_impl(a: &[u64], b: &[u64], out: &mut [u64]) {
    // Stream-merge invariant (the classic SIMD two-way merge): hold 8
    // elements in registers, emit the low 4, keep the high 4, refill from
    // whichever run's next element is smaller. Every register element
    // originates below its run's read head, so the emitted low half is
    // bounded by both heads — the output is globally sorted.
    let mut va = _mm256_loadu_si256(a.as_ptr().cast());
    let mut vb = _mm256_loadu_si256(b.as_ptr().cast());
    let (mut ia, mut ib, mut o) = (4usize, 4usize, 0usize);
    loop {
        let (lo, hi) = bitonic_merge8(va, vb);
        _mm256_storeu_si256(out.as_mut_ptr().add(o).cast(), lo);
        o += 4;
        vb = hi;
        // Refill from the run whose head is smaller — loading from the
        // *other* run would emit elements ahead of the smaller unread head.
        // If the smaller-head run cannot supply a full block, leave the
        // register loop and finish scalar.
        let a_head_smaller = match (ia < a.len(), ib < b.len()) {
            (true, true) => a[ia] <= b[ib],
            (true, false) => true,
            (false, true) => false,
            (false, false) => break,
        };
        if a_head_smaller {
            if ia + 4 > a.len() {
                break;
            }
            va = _mm256_loadu_si256(a.as_ptr().add(ia).cast());
            ia += 4;
        } else {
            if ib + 4 > b.len() {
                break;
            }
            va = _mm256_loadu_si256(b.as_ptr().add(ib).cast());
            ib += 4;
        }
    }
    // Fewer than 4 elements remain in at least one run: spill the held
    // register and finish with a scalar 3-way merge of (held, a-tail,
    // b-tail).
    let mut held = [0u64; 4];
    _mm256_storeu_si256(held.as_mut_ptr().cast(), vb);
    let (mut h, mut i, mut j) = (0usize, ia, ib);
    while o < out.len() {
        // Smallest of the three heads; `held` is sorted ascending.
        let hv = if h < 4 { Some(held[h]) } else { None };
        let av = if i < a.len() { Some(a[i]) } else { None };
        let bv = if j < b.len() { Some(b[j]) } else { None };
        let take_h = hv.is_some()
            && av.is_none_or(|x| hv.expect("checked") <= x)
            && bv.is_none_or(|x| hv.expect("checked") <= x);
        if take_h {
            out[o] = held[h];
            h += 1;
        } else if av.is_some() && bv.is_none_or(|x| av.expect("checked") <= x) {
            out[o] = a[i];
            i += 1;
        } else {
            out[o] = b[j];
            j += 1;
        }
        o += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn has_avx2() -> bool {
        is_x86_feature_detected!("avx2")
    }

    #[test]
    fn count_and_partition_match_scalar() {
        if !has_avx2() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..300 {
            let n = rng.gen_range(0usize..400);
            let dense = rng.gen_bool(0.5);
            let mut v: Vec<u64> = (0..n)
                .map(|_| {
                    if dense {
                        rng.gen_range(0..32)
                    } else {
                        rng.gen()
                    }
                })
                .collect();
            v.sort_unstable();
            let p = if dense {
                rng.gen_range(0..40)
            } else {
                rng.gen()
            };
            let want = v.partition_point(|x| *x <= p);
            assert_eq!(count_le_u64(&v, &p), want);
            assert_eq!(partition_point_le_u64(&v, &p), want);
        }
    }

    #[test]
    fn histogram_matches_scalar_loop() {
        if !has_avx2() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let n = rng.gen_range(0usize..600);
            let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            let bits = rng.gen_range(1u32..9);
            let shift = rng.gen_range(0u32..(64 - bits));
            let mask = (1u64 << bits) - 1;
            let buckets = 1usize << bits;
            let mut got = vec![0u32; buckets];
            radix_histogram_u64(&data, shift, mask, &mut got);
            let mut want = vec![0u32; buckets];
            for &x in &data {
                want[((x >> shift) & mask) as usize] += 1;
            }
            assert_eq!(got, want);
        }
    }

    #[test]
    fn scatter_matches_scalar_loop() {
        if !has_avx2() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let n = rng.gen_range(0usize..600);
            let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            let bits = rng.gen_range(1u32..7);
            let shift = rng.gen_range(0u32..(64 - bits));
            let mask = (1u64 << bits) - 1;
            let buckets = 1usize << bits;
            let mut hist = vec![0u32; buckets];
            for &x in &data {
                hist[((x >> shift) & mask) as usize] += 1;
            }
            let starts: Vec<u32> = hist
                .iter()
                .scan(0u32, |acc, &c| {
                    let s = *acc;
                    *acc += c;
                    Some(s)
                })
                .collect();
            let run = |simd: bool| {
                let mut cursors = starts.clone();
                let mut scratch = vec![0u64; n];
                if simd {
                    radix_scatter_u64(&data, shift, mask, &mut cursors, &mut scratch);
                } else {
                    for &x in &data {
                        let b = ((x >> shift) & mask) as usize;
                        scratch[cursors[b] as usize] = x;
                        cursors[b] += 1;
                    }
                }
                (cursors, scratch)
            };
            assert_eq!(run(true), run(false));
        }
    }

    #[test]
    fn merge_pair_matches_scalar_merge() {
        if !has_avx2() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..300 {
            let la = rng.gen_range(0usize..300);
            let lb = rng.gen_range(0usize..300);
            let dense = rng.gen_bool(0.4);
            let mut gen = |len: usize| -> Vec<u64> {
                let mut v: Vec<u64> = (0..len)
                    .map(|_| {
                        if dense {
                            rng.gen_range(0..16)
                        } else {
                            rng.gen_range(0..1000)
                        }
                    })
                    .collect();
                v.sort_unstable();
                v
            };
            let a = gen(la);
            let b = gen(lb);
            let mut got = vec![0u64; la + lb];
            merge_pair_u64(&a, &b, &mut got);
            let mut want = vec![0u64; la + lb];
            crate::kernels::simd::scalar::merge_pair(&a, &b, &mut want);
            assert_eq!(got, want, "la={la} lb={lb}");
        }
    }

    #[test]
    fn merge_pair_adversarial_blocks() {
        if !has_avx2() {
            return;
        }
        // One run entirely below, entirely above, and interleaved in blocks
        // of 4 — the refill decision's edge cases.
        let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
            ((0..64).collect(), (64..128).collect()),
            ((64..128).collect(), (0..64).collect()),
            (
                (0..64).map(|x| x * 2).collect(),
                (0..64).map(|x| x * 2 + 1).collect(),
            ),
            (vec![5; 40], vec![5; 44]),
            ((0..8).collect(), (4..100).collect()),
        ];
        for (a, b) in cases {
            let mut got = vec![0u64; a.len() + b.len()];
            merge_pair_u64(&a, &b, &mut got);
            let mut want = [a.clone(), b.clone()].concat();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }
}
