//! Runtime-dispatched vectorized kernels (AVX2 + portable scalar fallback).
//!
//! The hot inner loops of the kernel layer — bucket-boundary scans, the
//! radix sort's histogram and scatter passes, and two-way run pre-merging —
//! have a hand-vectorized x86-64 AVX2 form selected **once** at startup via
//! `std::arch` feature detection. Every entry point in this module routes
//! to the AVX2 form when (a) the host supports AVX2, (b) the element type
//! is `u64` (the repo's benchmark key type), and (c) `TLMM_NO_SIMD=1` is
//! not set; otherwise the portable scalar form in [`scalar`] runs. The
//! scalar forms are the semantic definition: the AVX2 forms must be
//! observationally identical (same outputs, same elements inspected), which
//! the differential proptests in `tests/simd_differential.rs` assert across
//! workload shapes and key types.
//!
//! **Cost-ledger invariant.** Dispatch never changes simulated charges:
//! callers charge scan lengths and comparison counts from the *data* (or
//! from the analytic two-way merge model, see [`pair_merge_cost`]), not
//! from which kernel executed. `CostSnapshot` ledgers are byte-identical
//! with SIMD forced off — asserted in-binary by `parallel_bench` and by the
//! golden-ledger replay tests. See DESIGN.md §15.

pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub mod avx2;

use crate::SortElem;
#[cfg(target_arch = "x86_64")]
use core::any::Any;
use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state dispatch flag: 0 = undecided, 1 = scalar, 2 = AVX2.
static STATE: AtomicU8 = AtomicU8::new(0);

const SCALAR: u8 = 1;
const VECTOR: u8 = 2;

fn host_supports_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Is the vectorized path active? Decided once from host feature detection
/// and the `TLMM_NO_SIMD` environment variable; later calls are one relaxed
/// atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let off = std::env::var_os("TLMM_NO_SIMD").is_some_and(|v| v != "0");
            let on = !off && host_supports_avx2();
            STATE.store(if on { VECTOR } else { SCALAR }, Ordering::Relaxed);
            on
        }
        SCALAR => false,
        _ => true,
    }
}

/// Force the dispatch decision (used by benches and differential tests to
/// compare both paths in one process). Enabling on a host without AVX2 is
/// a no-op; returns the resulting state.
pub fn set_enabled(on: bool) -> bool {
    let on = on && host_supports_avx2();
    STATE.store(if on { VECTOR } else { SCALAR }, Ordering::Relaxed);
    on
}

// Each dispatcher below routes its `u64`-specialized AVX2 kernel to the
// generic call site by naming the `u64` `fn` item and `Any`-downcasting the
// pointer to the `T`-typed signature — `Some` exactly when `T == u64` (the
// same trick as `crate::kernels::sort_kernel`'s `route!`).

/// `sorted.partition_point(|x| x <= pivot)`: first index holding an element
/// greater than `pivot`. The vector form finishes the binary search with a
/// SIMD linear scan over the final window; same result either way.
#[inline]
pub fn partition_point_le<T: SortElem>(sorted: &[T], pivot: &T) -> usize {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        let f: fn(&[u64], &u64) -> usize = avx2::partition_point_le_u64;
        if let Some(f) = <dyn Any>::downcast_ref::<fn(&[T], &T) -> usize>(&f).copied() {
            return f(sorted, pivot);
        }
    }
    scalar::partition_point_le(sorted, pivot)
}

/// Length of the longest prefix of (sorted) `sorted` whose elements are
/// `<= pivot` — the sequential boundary scan of `bucketize`. Both forms
/// inspect exactly the prefix plus the first exceeding element, so charged
/// scan lengths are dispatch-independent.
#[inline]
pub fn count_le<T: SortElem>(sorted: &[T], pivot: &T) -> usize {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        let f: fn(&[u64], &u64) -> usize = avx2::count_le_u64;
        if let Some(f) = <dyn Any>::downcast_ref::<fn(&[T], &T) -> usize>(&f).copied() {
            return f(sorted, pivot);
        }
    }
    scalar::count_le(sorted, pivot)
}

/// Fill `hist` with digit counts of `(key >> shift) & mask` over `data`.
/// Returns `true` when the vectorized form handled it (8-lane digit
/// extraction + unrolled counting); `false` means the caller must run its
/// scalar loop.
#[inline]
pub fn radix_histogram<T: super::RadixKey>(
    data: &[T],
    shift: u32,
    mask: u64,
    hist: &mut [u32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        let f: fn(&[u64], u32, u64, &mut [u32]) = avx2::radix_histogram_u64;
        if let Some(f) = <dyn Any>::downcast_ref::<fn(&[T], u32, u64, &mut [u32])>(&f).copied() {
            f(data, shift, mask, hist);
            return true;
        }
    }
    let _ = (data, shift, mask, hist);
    false
}

/// Scatter `data` into `scratch` by digit using the per-bucket `cursors`
/// (exclusive prefix sums on entry, bucket ends on exit). Returns `true`
/// when the vectorized form handled it (batched digit extraction feeding
/// the scatter writes).
#[inline]
pub fn radix_scatter<T: super::RadixKey>(
    data: &[T],
    shift: u32,
    mask: u64,
    cursors: &mut [u32],
    scratch: &mut [T],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        let f: fn(&[u64], u32, u64, &mut [u32], &mut [u64]) = avx2::radix_scatter_u64;
        if let Some(f) =
            <dyn Any>::downcast_ref::<fn(&[T], u32, u64, &mut [u32], &mut [T])>(&f).copied()
        {
            f(data, shift, mask, cursors, scratch);
            return true;
        }
    }
    let _ = (data, shift, mask, cursors, scratch);
    false
}

/// Merge two sorted runs into `out` (`out.len() == a.len() + b.len()`),
/// ties taking `a` first. The vector form runs a 4-wide bitonic merge
/// network; for the key types it routes (`u64`), equal keys are identical
/// elements, so its output sequence matches the scalar merge exactly.
///
/// Neither form counts comparisons — callers charge [`pair_merge_cost`],
/// the analytic two-way merge model, keeping ledgers dispatch-independent.
#[inline]
pub fn merge_pair<T: SortElem>(a: &[T], b: &[T], out: &mut [T]) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        let f: fn(&[u64], &[u64], &mut [u64]) = avx2::merge_pair_u64;
        if let Some(f) = <dyn Any>::downcast_ref::<fn(&[T], &[T], &mut [T])>(&f).copied() {
            f(a, b, out);
            return;
        }
    }
    scalar::merge_pair(a, b, out);
}

/// Comparisons the classic two-way merge loop performs on sorted runs `a`
/// and `b`: the loop compares once per emitted element until one run
/// exhausts, so the count is `a.len() + |{x ∈ b : x < a.last()}|` when `a`
/// exhausts first (ties prefer `a`, so `a` exhausts first on equal lasts)
/// and symmetrically otherwise. Exact — not a bound — which is what lets
/// both merge kernels charge the same simulated compute.
pub fn pair_merge_cost<T: Ord>(a: &[T], b: &[T]) -> u64 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let a_last = a.last().expect("nonempty");
    let b_last = b.last().expect("nonempty");
    if a_last <= b_last {
        a.len() as u64 + b.partition_point(|x| x < a_last) as u64
    } else {
        b.len() as u64 + a.partition_point(|x| x <= b_last) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn scalar_partition_and_count_agree_with_std() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let n = rng.gen_range(0usize..300);
            let mut v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            v.sort_unstable();
            let p = rng.gen_range(0u64..70);
            let want = v.partition_point(|x| *x <= p);
            assert_eq!(scalar::partition_point_le(&v, &p), want);
            assert_eq!(scalar::count_le(&v, &p), want);
        }
    }

    #[test]
    fn pair_merge_cost_matches_counted_loop() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..300 {
            let la = rng.gen_range(0usize..80);
            let lb = rng.gen_range(0usize..80);
            let mut a: Vec<u64> = (0..la).map(|_| rng.gen_range(0..40)).collect();
            let mut b: Vec<u64> = (0..lb).map(|_| rng.gen_range(0..40)).collect();
            a.sort_unstable();
            b.sort_unstable();
            // Reference: count the classic loop's comparisons directly.
            let (mut i, mut j, mut cmps) = (0usize, 0usize, 0u64);
            while i < a.len() && j < b.len() {
                cmps += 1;
                if a[i] <= b[j] {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            assert_eq!(pair_merge_cost(&a, &b), cmps, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn merged_pairs_are_sorted_and_complete() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let la = rng.gen_range(0usize..200);
            let lb = rng.gen_range(0usize..200);
            let mut a: Vec<u64> = (0..la).map(|_| rng.gen()).collect();
            let mut b: Vec<u64> = (0..lb).map(|_| rng.gen()).collect();
            a.sort_unstable();
            b.sort_unstable();
            let mut out = vec![0u64; la + lb];
            merge_pair(&a, &b, &mut out);
            let mut expect = [a, b].concat();
            expect.sort_unstable();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn dispatch_state_reports_and_toggles() {
        let initial = enabled();
        // Force-off always succeeds; force-on succeeds only with host AVX2.
        assert!(!set_enabled(false));
        assert!(!enabled());
        let on = set_enabled(true);
        assert_eq!(on, enabled());
        set_enabled(initial);
    }
}
