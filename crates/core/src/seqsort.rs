//! The sequential scratchpad sample sort of §III (Theorem 6).
//!
//! The randomized, theoretically optimal algorithm: recursively reduce the
//! input with *bucketizing scans* until every bucket fits in the scratchpad,
//! then sort buckets in the scratchpad.
//!
//! Each bucketizing scan: sample `m` pivots from the bucket and sort them in
//! the scratchpad (they stay resident for the whole scan); stream groups of
//! `M − Θ(m)` elements through the scratchpad, sorting each group there;
//! split the sorted group at the pivot boundaries and append every piece to
//! its bucket's DRAM region (paying up to two extra block transfers per
//! piece — the cost Lemma 4 bounds); recurse.
//!
//! Degenerate inputs (too few distinct keys for pivots to shrink a bucket)
//! fall back to a far-memory external sort for that bucket, preserving
//! correctness at the cost Theorem 1 predicts for a DRAM-only sort.

use crate::bucketize::bucket_positions;
use crate::extsort::{external_sort, ExtSortConfig, RegionLevel};
use crate::par::charge_io_striped;
use crate::{SortElem, SortError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlmm_scratchpad::trace::with_lane;
use tlmm_scratchpad::{Dir, FarArray, TwoLevel};

/// Tuning knobs for [`seq_scratchpad_sort`].
#[derive(Debug, Clone)]
pub struct SeqSortConfig {
    /// RNG seed for pivot sampling.
    pub seed: u64,
    /// Recursion safety cap; beyond it buckets are finished with a far
    /// external sort. The whp analysis (Lemma 5) makes hitting this cap on
    /// random inputs astronomically unlikely.
    pub max_depth: u32,
    /// Pivot count per scan. Default `Θ(M/B)` capped for practicality.
    pub n_pivots: Option<usize>,
    /// Virtual lanes cooperating on every scan (`p′` in §IV; 1 = the
    /// sequential algorithm of §III).
    pub lanes: usize,
    /// Host worker threads inside scans (1 = run inline).
    pub threads: usize,
}

impl Default for SeqSortConfig {
    fn default() -> Self {
        Self {
            seed: 0x0DD5_EED5,
            max_depth: 64,
            n_pivots: None,
            lanes: 1,
            threads: 1,
        }
    }
}

/// Statistics from a [`seq_scratchpad_sort`] run, for checking the paper's
/// recursion-depth analysis empirically.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqSortReport {
    /// Deepest recursion level reached (0 = input fit the scratchpad).
    pub max_depth: u32,
    /// Total bucketizing scans performed.
    pub scans: u64,
    /// Buckets finished by the degenerate far-sort fallback.
    pub fallback_buckets: u64,
}

struct Ctx<'a> {
    tl: &'a TwoLevel,
    rng: StdRng,
    cap_elems: usize,
    n_pivots: usize,
    max_depth: u32,
    lanes: usize,
    threads: usize,
    report: SeqSortReport,
}

/// Sort `input` with the sequential scratchpad sample sort; returns the
/// sorted array and recursion statistics.
pub fn seq_scratchpad_sort<T: SortElem>(
    tl: &TwoLevel,
    input: FarArray<T>,
    cfg: &SeqSortConfig,
) -> Result<(FarArray<T>, SeqSortReport), SortError> {
    let elem = std::mem::size_of::<T>();
    let m_elems = tl.params().scratchpad_capacity_elems(elem);
    // Data group + ping-pong scratch + resident pivots must share M.
    let cap_elems = (m_elems * 2 / 5).max(2);
    // Default pivot count: Lemma 5 allows Θ(M/B), but one level of
    // recursion only needs enough buckets to shrink below the scratchpad —
    // oversampling by 16x keeps buckets balanced whp without drowning the
    // run in per-bucket bookkeeping.
    let n_elems_hint = input.len().max(1);
    let n_pivots = cfg
        .n_pivots
        .unwrap_or_else(|| {
            ((tl.params().scratchpad_blocks() / 4) as usize)
                .min(cap_elems / 8)
                .min((16 * n_elems_hint / cap_elems).next_power_of_two().max(16))
        })
        .max(1);
    let mut ctx = Ctx {
        tl,
        rng: StdRng::seed_from_u64(cfg.seed),
        cap_elems,
        n_pivots,
        max_depth: cfg.max_depth,
        lanes: cfg.lanes.max(1),
        threads: cfg.threads.max(1),
        report: SeqSortReport::default(),
    };
    let data = input.into_vec();
    let sorted = sort_rec(&mut ctx, data, 0);
    let report = ctx.report;
    Ok((tl.far_from_vec(sorted), report))
}

fn sort_rec<T: SortElem>(ctx: &mut Ctx<'_>, data: Vec<T>, depth: u32) -> Vec<T> {
    let n = data.len();
    let tl = ctx.tl;
    let elem = std::mem::size_of::<T>() as u64;
    ctx.report.max_depth = ctx.report.max_depth.max(depth);
    if n <= 1 {
        return data;
    }

    // Base case: the bucket fits in the scratchpad (§III: "each subproblem
    // fits into the scratchpad, at which point it can be sorted rapidly").
    if n <= ctx.cap_elems {
        let mut data = data;
        charge_io_striped(tl, RegionLevel::Far, Dir::Read, n as u64 * elem, ctx.lanes);
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            n as u64 * elem,
            ctx.lanes,
        );
        let mut scratch = vec![T::default(); n];
        let out = external_sort(
            tl,
            RegionLevel::Near,
            &mut data,
            &mut scratch,
            &ExtSortConfig {
                lanes: ctx.lanes,
                threads: ctx.threads,
                ..Default::default()
            },
        );
        let sorted = if out.in_scratch { scratch } else { data };
        charge_io_striped(tl, RegionLevel::Near, Dir::Read, n as u64 * elem, ctx.lanes);
        charge_io_striped(tl, RegionLevel::Far, Dir::Write, n as u64 * elem, ctx.lanes);
        return sorted;
    }

    // Degenerate-depth fallback: sort this bucket in DRAM.
    if depth >= ctx.max_depth {
        ctx.report.fallback_buckets += 1;
        let mut data = data;
        let mut scratch = vec![T::default(); n];
        let out = external_sort(
            tl,
            RegionLevel::Far,
            &mut data,
            &mut scratch,
            &ExtSortConfig::default(),
        );
        return if out.in_scratch { scratch } else { data };
    }

    // --- Sample and sort pivots (resident for the whole scan) ----------
    let m = ctx.n_pivots.min(n);
    let mut pivots: Vec<T> = (0..m).map(|_| data[ctx.rng.gen_range(0..n)]).collect();
    tl.charge_far_random(Dir::Read, m as u64, m as u64 * elem);
    tl.charge_near_io(Dir::Write, m as u64 * elem);
    crate::extsort::cache_sort(tl, RegionLevel::Near, &mut pivots);
    pivots.dedup();

    // --- One bucketizing scan ------------------------------------------
    ctx.report.scans += 1;
    let group = ctx.cap_elems;
    let n_buckets = pivots.len() + 1;
    let mut buckets: Vec<Vec<T>> = (0..n_buckets).map(|_| Vec::new()).collect();
    let mut scratch = vec![T::default(); group];
    for piece in data.chunks(group) {
        let len = piece.len();
        // Ingest the group (all lanes cooperate on the stream — the
        // "parallel ingest" of §IV-C).
        charge_io_striped(
            tl,
            RegionLevel::Far,
            Dir::Read,
            len as u64 * elem,
            ctx.lanes,
        );
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            len as u64 * elem,
            ctx.lanes,
        );
        let mut work = piece.to_vec();
        let out = external_sort(
            tl,
            RegionLevel::Near,
            &mut work,
            &mut scratch[..len],
            &ExtSortConfig {
                lanes: ctx.lanes,
                threads: ctx.threads,
                ..Default::default()
            },
        );
        let sorted: &[T] = if out.in_scratch {
            &scratch[..len]
        } else {
            &work
        };
        // Boundaries within the sorted group.
        let pos = bucket_positions(
            tl,
            RegionLevel::Near,
            sorted,
            &pivots,
            ctx.lanes,
            ctx.threads,
        );
        // Append each piece to its bucket in DRAM: the piece streams out of
        // the scratchpad, plus up to two extra far blocks per piece for the
        // unaligned bucket ends (Lemma 4's accounting).
        let append_base = tlmm_scratchpad::trace::current_lane();
        for b in 0..n_buckets {
            let (lo, hi) = (pos[b] as usize, pos[b + 1] as usize);
            if hi > lo {
                let bytes = (hi - lo) as u64 * elem;
                // Each bucket's append (and its up-to-two extra boundary
                // blocks) is handled by the lane that owns the bucket.
                with_lane(append_base + b % ctx.lanes, || {
                    tl.charge_near_io(Dir::Read, bytes);
                    tl.charge_far_io(Dir::Write, bytes);
                    tl.charge_far_random(Dir::Write, 2, 0);
                });
                buckets[b].extend_from_slice(&sorted[lo..hi]);
            }
        }
    }
    drop(data);

    // --- Recurse and concatenate ----------------------------------------
    // In the parallel algorithm (§IV-C) small buckets are processed by
    // different processors concurrently: distribute buckets round-robin
    // across the lanes, each bucket's work charged wholly to its lane.
    let distribute = ctx.lanes > 1 && buckets.len() >= ctx.lanes;
    let outer_lanes = ctx.lanes;
    let mut out = Vec::with_capacity(n);
    for (bi, bucket) in buckets.into_iter().enumerate() {
        if bucket.len() == n {
            // Pivots failed to split (heavily duplicated keys): without the
            // guard this would recurse forever.
            ctx.report.fallback_buckets += 1;
            let mut b = bucket;
            let mut s = vec![T::default(); n];
            let o = external_sort(
                tl,
                RegionLevel::Far,
                &mut b,
                &mut s,
                &ExtSortConfig::default(),
            );
            out.extend_from_slice(if o.in_scratch { &s } else { &b });
        } else if distribute {
            ctx.lanes = 1;
            let sorted = with_lane(bi % outer_lanes, || sort_rec(ctx, bucket, depth + 1));
            ctx.lanes = outer_lanes;
            out.extend(sorted);
        } else {
            out.extend(sort_rec(ctx, bucket, depth + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    fn check(v: Vec<u64>) -> SeqSortReport {
        let tl = tl();
        let mut expect = v.clone();
        expect.sort_unstable();
        let (out, report) =
            seq_scratchpad_sort(&tl, tl.far_from_vec(v), &SeqSortConfig::default()).unwrap();
        assert_eq!(out.as_slice_uncharged(), expect.as_slice());
        report
    }

    #[test]
    fn sorts_small_inputs_in_scratchpad() {
        let r = check(random_vec(10_000, 1));
        assert_eq!(r.max_depth, 0);
        assert_eq!(r.scans, 0);
    }

    #[test]
    fn sorts_large_inputs_with_scans() {
        // cap ≈ 52k elems; 500k forces at least one bucketizing scan.
        let r = check(random_vec(500_000, 2));
        assert!(r.scans >= 1);
        assert!(r.max_depth >= 1);
        assert_eq!(r.fallback_buckets, 0, "random input should never fall back");
    }

    #[test]
    fn recursion_depth_matches_lemma5_scale() {
        // With m ≈ 4096 pivots and N/cap ≈ 10, one level should suffice whp.
        let r = check(random_vec(500_000, 3));
        assert!(r.max_depth <= 2, "depth {} too deep", r.max_depth);
    }

    #[test]
    fn handles_duplicates_via_fallback() {
        let r = check(vec![42u64; 300_000]);
        assert!(r.fallback_buckets >= 1);
    }

    #[test]
    fn handles_few_distinct() {
        check((0..300_000).map(|i| (i % 5) as u64).collect());
    }

    #[test]
    fn handles_presorted_and_reverse() {
        check((0..300_000u64).collect());
        check((0..300_000u64).rev().collect());
    }

    #[test]
    fn empty_and_singleton() {
        check(vec![]);
        check(vec![9]);
    }

    #[test]
    fn charges_far_and_near_traffic() {
        let tl = tl();
        let v = random_vec(400_000, 4);
        seq_scratchpad_sort(&tl, tl.far_from_vec(v), &SeqSortConfig::default()).unwrap();
        let s = tl.ledger().snapshot();
        assert!(s.far_bytes > 0);
        assert!(s.near_bytes > 0);
        // One scan + base sorting: far traffic should be a small number of
        // passes, not O(N lg N) bytes.
        let data_bytes = 400_000u64 * 8;
        assert!(s.far_bytes < 10 * data_bytes, "far {}", s.far_bytes);
    }

    #[test]
    fn deterministic_for_seed() {
        let run = || {
            let tl = tl();
            let v = random_vec(200_000, 5);
            seq_scratchpad_sort(&tl, tl.far_from_vec(v), &SeqSortConfig::default()).unwrap();
            tl.ledger().snapshot()
        };
        assert_eq!(run(), run());
    }
}
