//! Sized scoped worker pool for real host fan-out.
//!
//! Every sorter config used to carry a `parallel: bool` that handed fan-out
//! to whatever global thread count the rayon stand-in picked. The paper's
//! experimental regime (Table I) varies the core count explicitly, so the
//! configs now carry `threads: usize` and every fan-out site routes through
//! this module: a per-region [`std::thread::scope`] pool of exactly
//! `min(threads, tasks)` workers claiming tasks through an atomic cursor.
//!
//! Dynamic claiming (rather than static partitioning) keeps skewed task
//! sets — oversized NMsort buckets, unbalanced oblivious recursions — from
//! idling workers behind one long chunk.
//!
//! The pool performs **no simulated charging**: charges are attributed to
//! virtual lanes by the callers exactly as in sequential execution, which
//! is what keeps `CostSnapshot` ledgers byte-identical across thread
//! counts (asserted by every engine's `*_charge_identically` test and by
//! `parallel_bench` in-binary).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Host threads available to a default config: `available_parallelism()`,
/// or 1 when the runtime cannot tell.
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f(i, item)` for every item of `items`, fanning out over at most
/// `threads` scoped host threads. `threads <= 1` (or fewer than two items)
/// runs inline on the caller — bit-for-bit the sequential execution.
///
/// Panics in a worker propagate to the caller when the scope joins.
pub fn run_indexed<T, F>(threads: usize, items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    map_indexed(threads, items, f);
}

/// Like [`run_indexed`] but collects each task's result in input order.
pub fn map_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    // Task slots: each worker claims the next index from the cursor and
    // takes ownership of that slot's item. The mutexes are uncontended by
    // construction (one claimant per index) — they exist to move `T` out
    // of the shared vector safely.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("pool slot poisoned")
                    .take()
                    .expect("pool task claimed twice");
                *out[i].lock().expect("pool result slot poisoned") = Some(f(i, item));
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("pool result slot poisoned")
                .expect("pool task not executed")
        })
        .collect()
}

/// Validate a `threads` knob at an API edge: zero is a configuration error
/// (mirrors `lanes == 0` handling), not a silent clamp.
pub(crate) fn validate_threads(threads: usize) -> Result<(), crate::SortError> {
    if threads == 0 {
        return Err(crate::SortError::BadConfig {
            reason: "threads must be at least 1",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        for threads in [1usize, 2, 3, 8] {
            let items: Vec<usize> = (0..257).collect();
            let out = map_indexed(threads, items, |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let count = AtomicU64::new(0);
        run_indexed(4, (0..1000).collect::<Vec<u32>>(), |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn sequential_when_single_thread() {
        let ids = Mutex::new(HashSet::new());
        run_indexed(1, (0..64).collect::<Vec<u32>>(), |_, _| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids.len(), 1);
        assert!(ids.contains(&std::thread::current().id()));
    }

    #[test]
    fn fans_out_when_host_has_cores() {
        let ids = Mutex::new(HashSet::new());
        // Each task sleeps, releasing the CPU so another worker can claim
        // the next slot — on a single-core host instant tasks could all be
        // drained by whichever worker starts first.
        run_indexed(4, (0..64).collect::<Vec<u32>>(), |_, _| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let ids = ids.into_inner().unwrap();
        assert!(
            ids.len() > 1,
            "expected multiple workers, saw {}",
            ids.len()
        );
        assert!(ids.len() <= 4);
    }

    #[test]
    fn mutable_borrows_fan_out() {
        let mut data = vec![0u64; 1024];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(100).collect();
        run_indexed(3, chunks, |i, c| {
            for x in c.iter_mut() {
                *x = i as u64;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, (i / 100) as u64);
        }
    }

    #[test]
    fn zero_threads_rejected() {
        assert!(matches!(
            validate_threads(0),
            Err(crate::SortError::BadConfig { .. })
        ));
        assert!(validate_threads(1).is_ok());
    }
}
