//! External multiway mergesort against one memory level.
//!
//! This is the engine behind Corollary 3 ("sorting x elements that fit in
//! the scratchpad … using multi-way merge sort with a branching factor of
//! Z/B") and behind the far-memory baseline. It sorts a region resident in
//! one memory (near or far) by
//!
//! 1. **Run formation** — stream cache-sized pieces in, sort them with an
//!    in-cache sort, stream them back; then
//! 2. **Merge passes** — loser-tree merges of up to `fanout` runs at a time,
//!    ping-ponging between the region and an equally sized scratch region,
//!    until one run remains.
//!
//! Every streamed byte is charged to the [`TwoLevel`] ledger at the correct
//! block granularity for the level (`B` for far, `ρB` for near), and every
//! comparison is charged as compute. Work is attributed to `lanes` virtual
//! lanes in the same round-robin pattern a real parallel execution would
//! use; with [`ExtSortConfig::threads`] > 1 the host actually runs
//! runs/groups in parallel on a sized worker pool ([`crate::pool`]).

use crate::{ceil_lg, SortElem};
use tlmm_scratchpad::trace::{current_lane, with_lane};
use tlmm_scratchpad::{Backoff, Dir, FaultDecision, FaultOp, RetryClass, TwoLevel};

/// Which memory level the sorted region lives in (decides charge units and
/// default geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionLevel {
    /// The scratchpad (`ρB`-byte blocks).
    Near,
    /// Far memory (`B`-byte blocks).
    Far,
}

/// Tuning knobs for [`external_sort`].
#[derive(Debug, Clone)]
pub struct ExtSortConfig {
    /// Virtual lanes to attribute work to (simulated cores). Default 1.
    pub lanes: usize,
    /// Elements per formation run. Default: half the cache, so the run plus
    /// its working state stay cache-resident.
    pub run_elems: Option<usize>,
    /// Merge fan-in. Default: enough input buffers of one level-block each
    /// to half-fill the cache, clamped to `[2, 1024]`.
    pub fanout: Option<usize>,
    /// Host worker threads fanning out runs and merge groups (1 = run
    /// inline). Never affects simulated charges.
    pub threads: usize,
}

impl Default for ExtSortConfig {
    fn default() -> Self {
        Self {
            lanes: 1,
            run_elems: None,
            fanout: None,
            threads: 1,
        }
    }
}

/// What [`external_sort`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtSortOutcome {
    /// The sorted result is in the `scratch` slice rather than `data`.
    pub in_scratch: bool,
    /// Merge rounds executed (0 when a single run sufficed).
    pub rounds: u32,
    /// Formation runs created.
    pub runs: usize,
    /// Total comparisons charged.
    pub comparisons: u64,
}

#[inline]
fn charge_io<T>(tl: &TwoLevel, level: RegionLevel, dir: Dir, elems: usize) {
    let bytes = (elems * std::mem::size_of::<T>()) as u64;
    match level {
        RegionLevel::Near => tl.charge_near_io(dir, bytes),
        RegionLevel::Far => tl.charge_far_io(dir, bytes),
    }
}

/// Formation runs are sorted in-cache by one lane each, so a run must fit
/// that lane's *share* of the cache: `Z / lanes / 2`.
fn default_run_elems<T>(tl: &TwoLevel, lanes: usize) -> usize {
    let elem = std::mem::size_of::<T>().max(1);
    ((tl.params().cache_bytes as usize) / (2 * elem * lanes.max(1))).max(64)
}

fn default_fanout(tl: &TwoLevel, level: RegionLevel) -> usize {
    let blk = match level {
        RegionLevel::Near => tl.params().near_block_bytes(),
        RegionLevel::Far => tl.params().block_bytes,
    };
    ((tl.params().cache_bytes / (2 * blk)) as usize).clamp(2, 1024)
}

/// Sort `data` (resident at `level`) using `scratch` (same level, same
/// length) as merge ping-pong space. Returns where the result landed.
///
/// `data` and `scratch` are the raw region slices; this function charges
/// exactly the streaming a buffer-at-a-time implementation performs (see
/// the module docs of [`crate`] and `TwoLevel`'s low-level charging API).
pub fn external_sort<T: SortElem>(
    tl: &TwoLevel,
    level: RegionLevel,
    data: &mut [T],
    scratch: &mut [T],
    cfg: &ExtSortConfig,
) -> ExtSortOutcome {
    assert_eq!(
        data.len(),
        scratch.len(),
        "scratch region must match data region"
    );
    let n = data.len();
    if n <= 1 {
        return ExtSortOutcome {
            in_scratch: false,
            rounds: 0,
            runs: n,
            comparisons: 0,
        };
    }
    let lanes = cfg.lanes.max(1);
    let run_elems = cfg
        .run_elems
        .unwrap_or_else(|| default_run_elems::<T>(tl, lanes));
    let run_elems = run_elems.clamp(2, n);
    let fanout = cfg
        .fanout
        .unwrap_or_else(|| default_fanout(tl, level))
        .max(2);

    // ---- Run formation ------------------------------------------------
    let base = current_lane();
    let total_cmps = std::sync::atomic::AtomicU64::new(0);
    let stage_op = match level {
        RegionLevel::Near => FaultOp::NearStage,
        RegionLevel::Far => FaultOp::FarStage,
    };
    let form = |(i, run): (usize, &mut [T])| {
        with_lane(base + i % lanes, || {
            match tl.preflight(stage_op) {
                FaultDecision::Fail(_) => {
                    // The inbound formation stream aborted mid-run: the
                    // wasted read is charged and the run is streamed again
                    // (a single re-read, the `Restage` backoff budget).
                    charge_io::<T>(tl, level, Dir::Read, run.len());
                    Backoff::for_memory(tl, RetryClass::Restage).again();
                }
                FaultDecision::Delay(_) => {
                    charge_io::<T>(tl, level, Dir::Read, run.len());
                    tlmm_telemetry::counter!("degradation.extsort_delay").incr();
                }
                FaultDecision::Proceed => {}
            }
            charge_io::<T>(tl, level, Dir::Read, run.len());
            // Host kernel choice (radix vs comparison) never changes the
            // simulated charge below — see kernels module docs.
            crate::kernels::sort_kernel(run);
            let cmps = run.len() as u64 * ceil_lg(run.len());
            tl.charge_compute(cmps);
            charge_io::<T>(tl, level, Dir::Write, run.len());
            total_cmps.fetch_add(cmps, std::sync::atomic::Ordering::Relaxed);
        })
    };
    if cfg.threads > 1 {
        let runs: Vec<&mut [T]> = data.chunks_mut(run_elems).collect();
        crate::pool::run_indexed(cfg.threads, runs, |i, run| form((i, run)));
    } else {
        data.chunks_mut(run_elems).enumerate().for_each(form);
    }
    let n_runs = n.div_ceil(run_elems);

    // ---- Merge rounds --------------------------------------------------
    let bounds: Vec<usize> = (0..=n_runs).map(|i| (i * run_elems).min(n)).collect();
    let (in_scratch, rounds, merge_cmps) =
        merge_rounds(tl, level, data, scratch, bounds, fanout, lanes, cfg.threads);
    total_cmps.fetch_add(merge_cmps, std::sync::atomic::Ordering::Relaxed);

    ExtSortOutcome {
        in_scratch,
        rounds,
        runs: n_runs,
        comparisons: total_cmps.into_inner(),
    }
}

/// Repeatedly merge groups of up to `fanout` adjacent sorted runs (given by
/// `bounds` offsets) between `data` and `scratch` until one run remains.
/// Returns `(result_in_scratch, rounds, comparisons)`. Shared by
/// [`external_sort`] and the far-memory baseline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_rounds<T: SortElem>(
    tl: &TwoLevel,
    level: RegionLevel,
    data: &mut [T],
    scratch: &mut [T],
    mut bounds: Vec<usize>,
    fanout: usize,
    lanes: usize,
    threads: usize,
) -> (bool, u32, u64) {
    let n = data.len();
    let fanout = fanout.max(2);
    let lanes = lanes.max(1);
    let total_cmps = std::sync::atomic::AtomicU64::new(0);
    let mut src: &mut [T] = data;
    let mut dst: &mut [T] = scratch;
    let mut rounds = 0u32;
    while bounds.len() > 2 {
        let groups: Vec<(usize, usize)> = bounds[..bounds.len() - 1]
            .iter()
            .step_by(fanout)
            .enumerate()
            .map(|(g, _)| {
                let lo = g * fanout;
                let hi = (lo + fanout).min(bounds.len() - 1);
                (lo, hi)
            })
            .collect();

        // Split dst into one output slice per group (groups are adjacent).
        let mut out_slices: Vec<&mut [T]> = Vec::with_capacity(groups.len());
        {
            let mut rest: &mut [T] = dst;
            let mut consumed = 0usize;
            for &(lo, hi) in &groups {
                let len = bounds[hi] - bounds[lo];
                let (a, b) = rest.split_at_mut(bounds[lo] - consumed + len);
                // a contains [consumed .. bounds[hi]); keep only the tail
                // that belongs to this group.
                let off = bounds[lo] - consumed;
                out_slices.push(&mut a[off..]);
                consumed = bounds[hi];
                rest = b;
            }
        }

        let src_ref: &[T] = src;
        // When there are fewer groups than lanes (late rounds), each group's
        // merge is itself parallelized across its lane share — a group merge
        // charged to a single lane would put the whole stream on one core's
        // critical path, which is not how a multithreaded multiway merge
        // behaves.
        let n_groups = groups.len().max(1);
        let ways = lanes.div_ceil(n_groups);
        let base = current_lane();
        let merge_group = |(g, ((lo, hi), out)): (usize, (&(usize, usize), &mut [T]))| {
            let runs: Vec<&[T]> = (*lo..*hi)
                .map(|r| &src_ref[bounds[r]..bounds[r + 1]])
                .collect();
            let elems = out.len();
            let cmps = crate::pmerge::parallel_merge(&runs, out, ways, threads);
            // Charge IO and compute across this group's lane share.
            for j in 0..ways {
                let lane = base + (g + j * n_groups) % lanes;
                let share_lo = j * elems / ways;
                let share_hi = (j + 1) * elems / ways;
                let share = share_hi - share_lo;
                if share == 0 {
                    continue;
                }
                with_lane(lane, || {
                    charge_io::<T>(tl, level, Dir::Read, share);
                    charge_io::<T>(tl, level, Dir::Write, share);
                    tl.charge_compute(cmps * share as u64 / elems.max(1) as u64);
                });
            }
            total_cmps.fetch_add(cmps, std::sync::atomic::Ordering::Relaxed);
        };
        if threads > 1 {
            let items: Vec<(&(usize, usize), &mut [T])> = groups.iter().zip(out_slices).collect();
            crate::pool::run_indexed(threads, items, |g, go| merge_group((g, go)));
        } else {
            groups
                .iter()
                .zip(out_slices)
                .enumerate()
                .for_each(merge_group);
        }

        bounds = groups
            .iter()
            .map(|&(lo, _)| bounds[lo])
            .chain(std::iter::once(n))
            .collect();
        std::mem::swap(&mut src, &mut dst);
        rounds += 1;
    }

    (rounds % 2 == 1, rounds, total_cmps.into_inner())
}

/// Sort a small, cache-resident slice at `level`: one read, one in-cache
/// sort, one write. Used for pivot samples (§III-A).
pub fn cache_sort<T: SortElem>(tl: &TwoLevel, level: RegionLevel, data: &mut [T]) -> u64 {
    if data.len() <= 1 {
        return 0;
    }
    charge_io::<T>(tl, level, Dir::Read, data.len());
    crate::kernels::sort_kernel(data);
    let cmps = data.len() as u64 * ceil_lg(data.len());
    tl.charge_compute(cmps);
    charge_io::<T>(tl, level, Dir::Write, data.len());
    cmps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        // B=64, rho=4, M=1MiB, Z=16KiB => cache holds 2048 u64.
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    fn run_case(n: usize, cfg: &ExtSortConfig) {
        let tl = tl();
        let mut data = random_vec(n, n as u64);
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut scratch = vec![0u64; n];
        let out = external_sort(&tl, RegionLevel::Near, &mut data, &mut scratch, cfg);
        let result = if out.in_scratch { &scratch } else { &data };
        assert_eq!(result, &expect, "n={n} cfg={cfg:?}");
    }

    #[test]
    fn sorts_various_sizes_sequential() {
        for n in [0, 1, 2, 3, 100, 2048, 2049, 10_000, 100_000] {
            run_case(n, &ExtSortConfig::default());
        }
    }

    #[test]
    fn sorts_parallel_with_lanes() {
        run_case(
            50_000,
            &ExtSortConfig {
                lanes: 8,
                threads: 4,
                ..Default::default()
            },
        );
    }

    #[test]
    fn sorts_with_tiny_runs_and_fanout() {
        // Forces many merge rounds.
        run_case(
            10_000,
            &ExtSortConfig {
                run_elems: Some(16),
                fanout: Some(2),
                ..Default::default()
            },
        );
        run_case(
            10_000,
            &ExtSortConfig {
                run_elems: Some(7),
                fanout: Some(3),
                ..Default::default()
            },
        );
    }

    #[test]
    fn charges_expected_volume_single_round() {
        let tl = tl();
        let n = 8192usize; // run=1024 (Z/2 elems) -> 8 runs, fanout 32 -> 1 round
        let mut data = random_vec(n, 1);
        let mut scratch = vec![0u64; n];
        let out = external_sort(
            &tl,
            RegionLevel::Near,
            &mut data,
            &mut scratch,
            &ExtSortConfig::default(),
        );
        assert_eq!(out.rounds, 1);
        assert_eq!(out.runs, 8);
        let s = tl.ledger().snapshot();
        // Formation: read+write n; merge: read+write n. All near.
        assert_eq!(s.near_bytes, 4 * (n as u64) * 8);
        assert_eq!(s.far_bytes, 0);
        // Block math: bytes / (rho*B) since every streamed piece here is
        // block-aligned.
        assert_eq!(s.near_blocks(), 4 * (n as u64) * 8 / 256);
    }

    #[test]
    fn far_level_charges_far() {
        let tl = tl();
        let n = 4096usize;
        let mut data = random_vec(n, 2);
        let mut scratch = vec![0u64; n];
        external_sort(
            &tl,
            RegionLevel::Far,
            &mut data,
            &mut scratch,
            &ExtSortConfig::default(),
        );
        let s = tl.ledger().snapshot();
        assert_eq!(s.near_bytes, 0);
        assert!(s.far_bytes > 0);
    }

    #[test]
    fn presorted_and_reverse_inputs() {
        let tl = tl();
        for n in [5000usize, 12_345] {
            for gen in [0, 1] {
                let mut data: Vec<u64> = if gen == 0 {
                    (0..n as u64).collect()
                } else {
                    (0..n as u64).rev().collect()
                };
                let mut scratch = vec![0u64; n];
                let out = external_sort(
                    &tl,
                    RegionLevel::Near,
                    &mut data,
                    &mut scratch,
                    &ExtSortConfig::default(),
                );
                let result = if out.in_scratch { &scratch } else { &data };
                assert!(result.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn all_equal_elements() {
        let tl = tl();
        let n = 10_000;
        let mut data = vec![7u64; n];
        let mut scratch = vec![0u64; n];
        let out = external_sort(
            &tl,
            RegionLevel::Near,
            &mut data,
            &mut scratch,
            &ExtSortConfig::default(),
        );
        let result = if out.in_scratch { &scratch } else { &data };
        assert!(result.iter().all(|&v| v == 7));
    }

    #[test]
    fn parallel_and_sequential_charge_identically() {
        let run = |threads: usize| {
            let tl = tl();
            let mut data = random_vec(30_000, 9);
            let mut scratch = vec![0u64; 30_000];
            let cfg = ExtSortConfig {
                lanes: 4,
                threads,
                ..Default::default()
            };
            external_sort(&tl, RegionLevel::Near, &mut data, &mut scratch, &cfg);
            tl.ledger().snapshot()
        };
        let s_par = run(4);
        let s_seq = run(1);
        assert_eq!(s_par.near_bytes, s_seq.near_bytes);
        assert_eq!(s_par.near_blocks(), s_seq.near_blocks());
        assert_eq!(s_par.compute_ops, s_seq.compute_ops);
    }

    #[test]
    fn cache_sort_roundtrip() {
        let tl = tl();
        let mut v = vec![3u64, 1, 2];
        let cmps = cache_sort(&tl, RegionLevel::Near, &mut v);
        assert_eq!(v, vec![1, 2, 3]);
        assert!(cmps > 0);
        let s = tl.ledger().snapshot();
        assert_eq!(s.near_read_blocks, 1);
        assert_eq!(s.near_write_blocks, 1);
    }

    #[test]
    fn lane_attribution_spreads_work() {
        let tl = tl();
        tl.begin_phase("sort");
        let mut data = random_vec(16_384, 3);
        let mut scratch = vec![0u64; 16_384];
        external_sort(
            &tl,
            RegionLevel::Near,
            &mut data,
            &mut scratch,
            &ExtSortConfig {
                lanes: 4,
                run_elems: Some(2048),
                ..Default::default()
            },
        );
        tl.end_phase();
        let t = tl.take_trace();
        // 8 runs over 4 lanes: every lane formed 2 runs.
        assert_eq!(t.phases[0].active_lanes(), 4);
    }
}
