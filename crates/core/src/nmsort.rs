//! NMsort: the practical two-phase near-memory parallel sort (§IV-D).
//!
//! **Phase 1.** Stream `Θ(M)`-sized chunks of the input into the scratchpad;
//! sort each chunk there with a parallel external mergesort; write the
//! sorted chunk back to DRAM; and extract *bucket metadata* — per chunk, the
//! `BucketPos` array (first index of every bucket in the sorted chunk), and
//! globally the `BucketTot` array (aggregate bucket sizes), which stays
//! resident in the scratchpad for the whole run. Recording metadata instead
//! of eagerly scattering bucket elements avoids the many small DRAM
//! transfers that made the naive algorithm unable to exploit the scratchpad.
//!
//! **Phase 2.** Greedily take maximal runs of consecutive buckets whose
//! total size fits the scratchpad ("we batched thousands of buckets into one
//! transfer"); gather the corresponding segment of every sorted chunk into
//! the scratchpad; multiway-merge the segments (they are sorted); and stream
//! the merged batch to its final position in DRAM.
//!
//! Inputs with heavy duplication can produce single buckets larger than the
//! scratchpad; those are split by sampled sub-splitters and, in the limit
//! (too few distinct keys to split), merged directly from DRAM — correct for
//! arbitrary inputs, merely less scratchpad-accelerated, and counted
//! honestly either way.

use crate::bucketize::{accumulate_totals, bucket_positions, BucketPositions};
use crate::extsort::{external_sort, ExtSortConfig, RegionLevel};
use crate::par::{charge_compute_striped, charge_io_striped, charged_copy, CopyKind};
use crate::pmerge::parallel_merge;
use crate::quicksort::external_quicksort;
use crate::sample::{draw_pivots, PivotSample};
use crate::{SortElem, SortError};
use serde::{Deserialize, Serialize};
use tlmm_model::CostSnapshot;
use tlmm_scratchpad::trace::with_lane;
use tlmm_scratchpad::{
    with_faults_suppressed, ArenaBuf, Backoff, Dir, FarArray, FaultDecision, FaultOp, NearArray,
    RetryClass, StagingArena, TwoLevel,
};

/// Which algorithm sorts each chunk inside the scratchpad (§III-A: "Other
/// sorting algorithms could be used, such as quicksort").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkSorter {
    /// Multiway mergesort with fanout `Z/ρB` (Corollary 3; the paper's
    /// choice — "practically competitive" at hardware-realistic ρ).
    #[default]
    MultiwayMerge,
    /// External quicksort (Corollary 7; optimal only when ρ = Ω(lg M/Z)).
    Quicksort,
}

/// Tuning knobs for [`nmsort`].
#[derive(Debug, Clone)]
pub struct NmSortConfig {
    /// Virtual lanes (simulated cores) to attribute work to. The paper's
    /// Fig. 4 machine has 256.
    pub sim_lanes: usize,
    /// Elements per Phase-1 chunk. Default: 40 % of the scratchpad, leaving
    /// an equal-sized merge buffer plus bookkeeping space.
    pub chunk_elems: Option<usize>,
    /// Number of pivots (`m`, so `m+1` buckets). Default:
    /// `min(M/4B, chunk/8, 65536)`.
    pub n_pivots: Option<usize>,
    /// RNG seed for pivot sampling.
    pub seed: u64,
    /// Host worker threads fanning out real work (chunk copies, segment
    /// gathers, merges) in addition to virtual-lane accounting. `1` runs
    /// everything inline; never affects simulated charges.
    pub threads: usize,
    /// Mark ingest phases overlappable (DMA double-buffering semantics).
    pub use_dma: bool,
    /// In-scratchpad chunk sorting algorithm.
    pub chunk_sorter: ChunkSorter,
}

impl Default for NmSortConfig {
    fn default() -> Self {
        Self {
            sim_lanes: 8,
            chunk_elems: None,
            n_pivots: None,
            seed: 0x5EED_CAFE,
            threads: crate::pool::host_threads(),
            use_dma: false,
            chunk_sorter: ChunkSorter::MultiwayMerge,
        }
    }
}

/// Counts of every degradation-ladder action a run took; all zero on a
/// clean run over well-spread keys. Each ladder rung is also mirrored in a
/// `degradation.*` telemetry counter, so fleets can alert on them without
/// plumbing reports around.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationStats {
    /// Phase-1 chunk-size halvings after injected allocation failures.
    pub chunk_shrinks: u64,
    /// Retried small near allocations (pivot residence, bucket totals).
    pub alloc_retries: u64,
    /// Re-staged transfers after injected aborts (Phase-1 ingest and
    /// writeback; each aborted attempt was charged in full).
    pub transfer_retries: u64,
    /// Transfers that completed after an injected retransmission delay
    /// (charged twice).
    pub transfer_delays: u64,
    /// Cache staging streams re-read (or retransmitted) inside the chunk
    /// sorter after injected [`FaultOp::FarStage`]/[`FaultOp::NearStage`]
    /// events.
    pub stage_restages: u64,
    /// Operations forced through with injection suppressed after the retry
    /// budget ran out — the last rung of every ladder.
    pub forced_ops: u64,
    /// Phase-2 batches merged straight from DRAM because their gather could
    /// not be staged into the scratchpad.
    pub batch_fallbacks: u64,
    /// Oversized-bucket parts merged straight from DRAM (too few distinct
    /// keys to sub-split). Fires on duplicate-heavy inputs even without
    /// faults — a data-driven degradation, not a fault-driven one.
    pub dram_direct_parts: u64,
    /// DMA-overlapped Phase-1 transfers demoted to blocking synchronous
    /// copies after an injected [`FaultOp::DmaIssue`] abort (same bytes
    /// moved; only the overlap is lost).
    pub dma_fallbacks: u64,
}

impl DegradationStats {
    /// Total degradation events of any kind.
    pub fn total(&self) -> u64 {
        self.chunk_shrinks
            + self.alloc_retries
            + self.transfer_retries
            + self.transfer_delays
            + self.stage_restages
            + self.forced_ops
            + self.batch_fallbacks
            + self.dram_direct_parts
            + self.dma_fallbacks
    }

    /// Did any ladder rung fire?
    pub fn any(&self) -> bool {
        self.total() > 0
    }
}

/// Result of an [`nmsort`] run.
#[derive(Debug)]
pub struct NmSortReport<T> {
    /// The sorted output, resident in far memory.
    pub output: FarArray<T>,
    /// Phase-1 chunks processed.
    pub chunks: usize,
    /// Pivots used (after deduplication).
    pub n_pivots: usize,
    /// Phase-2 batches (bucket groups merged per scratchpad fill).
    pub batches: usize,
    /// Oversized buckets that required sub-splitting or streaming.
    pub oversized_buckets: usize,
    /// Degradation-ladder actions the run took (fault recovery and
    /// DRAM-direct fallbacks).
    pub degradations: DegradationStats,
    /// Ledger delta of the sampling step.
    pub sample_cost: CostSnapshot,
    /// Ledger delta of Phase 1.
    pub phase1_cost: CostSnapshot,
    /// Ledger delta of Phase 2.
    pub phase2_cost: CostSnapshot,
}

struct Geometry {
    chunk: usize,
    /// Chunk-sized staging buffers Phase 1 needs: 2 in blocking mode
    /// (current + sort scratch), 3 in DMA mode on multi-chunk inputs
    /// (current + sort scratch + the next chunk being gathered in the
    /// background — the double buffer).
    n_bufs: usize,
}

/// Chunk-derived counts: `(n_chunks, n_pivots)` for a given chunk size.
/// Factored out so the shrink ladder can recompute them after the chunk is
/// reduced under allocation pressure.
fn chunk_counts(tl: &TwoLevel, n: usize, chunk: usize, cfg: &NmSortConfig) -> (usize, usize) {
    let n_chunks = n.div_ceil(chunk.max(1)).max(1);
    let n_pivots = if n_chunks <= 1 {
        0
    } else {
        cfg.n_pivots
            .unwrap_or_else(|| {
                let by_blocks = (tl.params().scratchpad_blocks() / 4) as usize;
                by_blocks.min(chunk / 8).min(65_536)
            })
            .max(1)
    };
    (n_chunks, n_pivots)
}

fn geometry<T: SortElem>(
    tl: &TwoLevel,
    n: usize,
    cfg: &NmSortConfig,
) -> Result<Geometry, SortError> {
    let elem = std::mem::size_of::<T>();
    let m_elems = tl.params().scratchpad_capacity_elems(elem);
    // Both modes budget 4/5 of M for chunk buffers; DMA mode splits it
    // three ways (the third buffer is the double-buffered next chunk).
    let default_chunk = if cfg.use_dma {
        (m_elems * 4 / 15).max(2)
    } else {
        (m_elems * 2 / 5).max(2)
    };
    let chunk = cfg.chunk_elems.unwrap_or(default_chunk).clamp(1, n.max(1));
    let n_chunks = n.div_ceil(chunk.max(1)).max(1);
    let n_bufs = if cfg.use_dma && n_chunks > 1 { 3 } else { 2 };
    let (_n_chunks, n_pivots) = chunk_counts(tl, n, chunk, cfg);
    // Feasibility: the chunk buffers + pivots + totals must fit in M.
    let needed = (n_bufs * chunk * elem + n_pivots * elem + (n_pivots + 1) * 8) as u64;
    if needed > tl.params().scratchpad_bytes {
        return Err(SortError::ScratchpadTooSmall {
            needed,
            available: tl.params().scratchpad_bytes,
        });
    }
    Ok(Geometry { chunk, n_bufs })
}

/// Charge the full traffic of a far↔near copy of `bytes` without moving
/// data — the honest cost of an aborted or retransmitted staging attempt
/// (the payload crossed the channels and was discarded).
fn charge_copy_volume(tl: &TwoLevel, kind: CopyKind, bytes: u64, lanes: usize) {
    match kind {
        CopyKind::FarToNear => {
            charge_io_striped(tl, RegionLevel::Far, Dir::Read, bytes, lanes);
            charge_io_striped(tl, RegionLevel::Near, Dir::Write, bytes, lanes);
        }
        CopyKind::NearToFar => {
            charge_io_striped(tl, RegionLevel::Near, Dir::Read, bytes, lanes);
            charge_io_striped(tl, RegionLevel::Far, Dir::Write, bytes, lanes);
        }
        _ => unreachable!("staged copies move between far and near"),
    }
}

/// A [`charged_copy`] that consults the fault injector first and re-stages
/// on injected aborts: every aborted attempt is charged in full, bounded by
/// the [`Backoff`] policy's `Stage` budget before the copy is forced through.
#[allow(clippy::too_many_arguments)]
fn staged_copy_with_retry<T: SortElem>(
    tl: &TwoLevel,
    kind: CopyKind,
    src: &[T],
    dst: &mut [T],
    lanes: usize,
    threads: usize,
    stats: &mut DegradationStats,
) {
    let op = match kind {
        CopyKind::FarToNear => FaultOp::FarToNear,
        CopyKind::NearToFar => FaultOp::NearToFar,
        _ => unreachable!("staged copies move between far and near"),
    };
    let bytes = std::mem::size_of_val(src) as u64;
    let mut bo = Backoff::for_memory(tl, RetryClass::Stage);
    loop {
        match tl.preflight(op) {
            FaultDecision::Fail(_) => {
                charge_copy_volume(tl, kind, bytes, lanes);
                if bo.again() {
                    stats.transfer_retries += 1;
                } else {
                    bo.give_up();
                    stats.forced_ops += 1;
                    break;
                }
            }
            FaultDecision::Delay(_) => {
                charge_copy_volume(tl, kind, bytes, lanes);
                stats.transfer_delays += 1;
                tlmm_telemetry::counter!("degradation.transfer_delay").incr();
                break;
            }
            FaultDecision::Proceed => break,
        }
    }
    charged_copy(tl, kind, src, dst, lanes, threads);
}

/// Consult the injector's [`FaultOp::DmaIssue`] class before overlapping a
/// Phase-1 transfer with DMA. An injected abort demotes the transfer to a
/// blocking synchronous copy (the phase is simply not marked overlappable):
/// same bytes move, only the latency hiding is lost — the mildest rung of
/// the degradation ladder. Delay decisions keep the overlap.
fn dma_issue_allowed(tl: &TwoLevel, stats: &mut DegradationStats) -> bool {
    match tl.preflight(FaultOp::DmaIssue) {
        FaultDecision::Fail(_) => {
            stats.dma_fallbacks += 1;
            tlmm_telemetry::counter!("degradation.dma_abort").incr();
            tlmm_telemetry::counter!("degradation.dma_sync_fallback").incr();
            false
        }
        FaultDecision::Delay(_) | FaultDecision::Proceed => true,
    }
}

/// Injected fault events on the cache staging classes so far (the chunk
/// sorter recovers from these internally; see [`crate::extsort`]).
fn stage_event_count(tl: &TwoLevel) -> u64 {
    tl.fault_injector()
        .map(|inj| {
            inj.events()
                .iter()
                .filter(|e| matches!(e.op, FaultOp::FarStage | FaultOp::NearStage))
                .count() as u64
        })
        .unwrap_or(0)
}

/// Near allocation with bounded retry of injected refusals, then a forced
/// attempt with injection suppressed. Genuine capacity errors propagate
/// immediately.
fn near_alloc_with_retry<T: Copy + Default>(
    tl: &TwoLevel,
    len: usize,
    stats: &mut DegradationStats,
) -> Result<NearArray<T>, SortError> {
    let mut bo = Backoff::for_memory(tl, RetryClass::Alloc);
    while !bo.exhausted() {
        match tl.near_alloc::<T>(len) {
            Ok(a) => return Ok(a),
            Err(e) if e.is_injected() => {
                bo.again();
                stats.alloc_retries += 1;
            }
            Err(e) => return Err(e.into()),
        }
    }
    bo.give_up();
    stats.forced_ops += 1;
    with_faults_suppressed(|| tl.near_alloc::<T>(len)).map_err(SortError::from)
}

/// Allocate the chunk-sized staging buffers from the run's arena, halving
/// the chunk under injected allocation pressure (bounded by the
/// [`Backoff`] `Shrink` budget) before forcing the allocation through.
/// Returns the chunk size actually used. Arena growth is exact-fit, so the
/// scratchpad bytes reserved here match what direct `near_alloc` calls
/// would have reserved, shrink ladder included.
fn alloc_chunk_buffers<T: SortElem>(
    tl: &TwoLevel,
    arena: &StagingArena,
    mut chunk: usize,
    n_bufs: usize,
    stats: &mut DegradationStats,
) -> Result<(usize, Vec<ArenaBuf<T>>), SortError> {
    let try_alloc = |chunk: usize| -> Result<Vec<ArenaBuf<T>>, tlmm_scratchpad::SpError> {
        let mut bufs = Vec::with_capacity(n_bufs);
        for _ in 0..n_bufs {
            bufs.push(arena.alloc_array::<T>(chunk)?);
        }
        Ok(bufs)
    };
    let mut bo = Backoff::for_memory(tl, RetryClass::Shrink);
    loop {
        match try_alloc(chunk) {
            Ok(bufs) => return Ok((chunk, bufs)),
            Err(e) if e.is_injected() && chunk > 2 && bo.again() => {
                // Transient scratchpad pressure: degrade to a smaller chunk
                // (more Phase-1 chunks, same asymptotics) instead of failing.
                chunk = (chunk / 2).max(2);
                stats.chunk_shrinks += 1;
            }
            Err(e) if e.is_injected() => {
                bo.give_up();
                stats.forced_ops += 1;
                return with_faults_suppressed(|| try_alloc(chunk))
                    .map(|bufs| (chunk, bufs))
                    .map_err(SortError::from);
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// The preflight-and-charge half of a Phase-1 ingest, executed on the
/// issuing thread at issue time: the full [`staged_copy_with_retry`]
/// fault ladder plus the transfer's own charge. After this returns, the
/// ledger, trace, and fault log are settled; the raw byte copy may run on
/// a background worker that touches nothing but memory — which is what
/// keeps overlapped runs byte-identical to blocking ones.
fn ingest_issue_charges(tl: &TwoLevel, bytes: u64, lanes: usize, stats: &mut DegradationStats) {
    let mut bo = Backoff::for_memory(tl, RetryClass::Stage);
    loop {
        match tl.preflight(FaultOp::FarToNear) {
            FaultDecision::Fail(_) => {
                charge_copy_volume(tl, CopyKind::FarToNear, bytes, lanes);
                if bo.again() {
                    stats.transfer_retries += 1;
                } else {
                    bo.give_up();
                    stats.forced_ops += 1;
                    break;
                }
            }
            FaultDecision::Delay(_) => {
                charge_copy_volume(tl, CopyKind::FarToNear, bytes, lanes);
                stats.transfer_delays += 1;
                tlmm_telemetry::counter!("degradation.transfer_delay").incr();
                break;
            }
            FaultDecision::Proceed => break,
        }
    }
    // The transfer itself (same totals and lane striping as the
    // charge-half of `charged_copy`).
    charge_copy_volume(tl, CopyKind::FarToNear, bytes, lanes);
}

/// The sort → writeback → bounds tail of one Phase-1 chunk iteration,
/// shared by the blocking schedule and the DMA pipeline (where it runs
/// while the next chunk's gather is in flight on a background worker).
/// The caller owns the enclosing phase bracket and calls `end_phase`.
#[allow(clippy::too_many_arguments)]
fn p1_sort_writeback_bounds<T: SortElem>(
    tl: &TwoLevel,
    cfg: &NmSortConfig,
    ext_cfg: &ExtSortConfig,
    arena: &StagingArena,
    sample: &PivotSample<T>,
    chunk_buf: &mut ArenaBuf<T>,
    scratch_buf: &mut ArenaBuf<T>,
    sorted_chunks: &mut FarArray<T>,
    totals_buf: &mut NearArray<u64>,
    all_positions: &mut Vec<BucketPositions>,
    degradations: &mut DegradationStats,
    (lo, hi): (usize, usize),
    n_chunks: usize,
    lanes: usize,
) {
    let len = hi - lo;
    let elem_sz = std::mem::size_of::<T>();

    tl.begin_phase("nmsort.p1.sort");
    let sorted: &[T] = match cfg.chunk_sorter {
        ChunkSorter::MultiwayMerge => {
            let outcome = external_sort(
                tl,
                RegionLevel::Near,
                &mut chunk_buf.as_mut_slice_uncharged()[..len],
                &mut scratch_buf.as_mut_slice_uncharged()[..len],
                ext_cfg,
            );
            if outcome.in_scratch {
                &scratch_buf.as_slice_uncharged()[..len]
            } else {
                &chunk_buf.as_slice_uncharged()[..len]
            }
        }
        ChunkSorter::Quicksort => {
            external_quicksort(
                tl,
                RegionLevel::Near,
                &mut chunk_buf.as_mut_slice_uncharged()[..len],
                lanes,
            );
            &chunk_buf.as_slice_uncharged()[..len]
        }
    };

    tl.begin_phase("nmsort.p1.writeback");
    if cfg.use_dma && dma_issue_allowed(tl, degradations) {
        tl.mark_phase_overlappable();
    }
    staged_copy_with_retry(
        tl,
        CopyKind::NearToFar,
        sorted,
        &mut sorted_chunks.as_mut_slice_uncharged()[lo..hi],
        lanes,
        cfg.threads,
        degradations,
    );
    arena.note_sync_transfer(Dir::Write, (len * elem_sz) as u64);

    if n_chunks > 1 {
        tl.begin_phase("nmsort.p1.bounds");
        let pos = bucket_positions(
            tl,
            RegionLevel::Near,
            sorted,
            &sample.pivots,
            lanes,
            cfg.threads,
        );
        accumulate_totals(tl, totals_buf.as_mut_slice_uncharged(), &pos, lanes);
        // BucketPos for this chunk goes to DRAM (the auxiliary array of
        // Fig. 2(c)); the write is a cooperative stream like the data
        // transfers.
        charge_io_striped(
            tl,
            RegionLevel::Far,
            Dir::Write,
            (pos.len() * 8) as u64,
            lanes,
        );
        all_positions.push(pos);
    }
}

/// Greedy batch plan over buckets: maximal consecutive groups with total
/// size ≤ `cap`. A single bucket larger than `cap` forms its own batch.
fn plan_batches(totals: &[u64], cap: u64) -> Vec<(usize, usize)> {
    let mut batches = Vec::new();
    let mut lo = 0usize;
    let mut acc = 0u64;
    for (i, &t) in totals.iter().enumerate() {
        if acc > 0 && acc + t > cap {
            batches.push((lo, i));
            lo = i;
            acc = 0;
        }
        acc += t;
    }
    if acc > 0 || lo < totals.len() {
        batches.push((lo, totals.len()));
    }
    batches.retain(|(a, b)| a < b);
    batches
}

/// Sort `input` with NMsort; returns the sorted output and a report.
pub fn nmsort<T: SortElem>(
    tl: &TwoLevel,
    input: FarArray<T>,
    cfg: &NmSortConfig,
) -> Result<NmSortReport<T>, SortError> {
    let n = input.len();
    let lanes = cfg.sim_lanes.max(1);
    crate::pool::validate_threads(cfg.threads)?;
    if n == 0 {
        return Ok(NmSortReport {
            output: input,
            chunks: 0,
            n_pivots: 0,
            batches: 0,
            oversized_buckets: 0,
            degradations: DegradationStats::default(),
            sample_cost: CostSnapshot::default(),
            phase1_cost: CostSnapshot::default(),
            phase2_cost: CostSnapshot::default(),
        });
    }
    let _run_span = tlmm_telemetry::span!("nmsort");
    let geo = geometry::<T>(tl, n, cfg)?;
    let base = tl.ledger().snapshot();
    let mut degradations = DegradationStats::default();
    // Stage-class faults are handled (and charged) inside the chunk sorter;
    // attribute them to this run by event-log delta.
    let stage_events_base = stage_event_count(tl);

    // ---- Scratchpad allocations ---------------------------------------
    // All chunk staging lives in a generation-based arena: chunk_buf
    // (ingest + gather space), scratch_buf (sort ping-pong + merge
    // output), and in DMA mode next_buf (the incoming double-buffered
    // chunk). Allocated before sampling so that an allocation-pressure
    // chunk shrink can still influence the default pivot count.
    let arena = StagingArena::new(tl);
    let (chunk, bufs) =
        alloc_chunk_buffers::<T>(tl, &arena, geo.chunk, geo.n_bufs, &mut degradations)?;
    let mut bufs = bufs.into_iter();
    let mut chunk_buf = bufs.next().expect("chunk buffer");
    let mut scratch_buf = bufs.next().expect("scratch buffer");
    let mut next_buf = bufs.next();
    let n_chunks = n.div_ceil(chunk.max(1)).max(1);
    // The pivot count stays anchored to the *pre-shrink* geometry: a
    // degraded run must never sample fewer pivots (and so pay less far
    // traffic) than the clean run would. The shrunk chunk only affects how
    // many Phase-1 chunks there are; the smaller buffers always still hold
    // the pre-shrink pivot set.
    let n_pivots = if n_chunks <= 1 {
        0
    } else {
        let (_, p) = chunk_counts(tl, n, geo.chunk, cfg);
        p.max(1)
    };

    // ---- Pivot sample (kept resident in the scratchpad) ---------------
    tl.begin_phase("nmsort.sample");
    let sample: PivotSample<T> = if n_chunks > 1 {
        draw_pivots(tl, &input, n_pivots, cfg.seed, lanes)
    } else {
        PivotSample {
            pivots: Vec::new(),
            drawn: 0,
        }
    };
    tl.end_phase();
    let after_sample = tl.ledger().snapshot();

    // pivot_res reserves the resident sample; totals = BucketTot.
    let _pivot_res = near_alloc_with_retry::<T>(tl, sample.pivots.len(), &mut degradations)?;
    let mut totals_buf = near_alloc_with_retry::<u64>(tl, sample.n_buckets(), &mut degradations)?;

    // ---- Phase 1 --------------------------------------------------------
    let mut sorted_chunks = tl.far_alloc::<T>(n);
    let mut all_positions: Vec<BucketPositions> = Vec::with_capacity(n_chunks);
    let ext_cfg = ExtSortConfig {
        lanes,
        threads: cfg.threads,
        ..Default::default()
    };
    let elem_sz = std::mem::size_of::<T>();
    // The double-buffered DMA pipeline needs a third buffer and at least
    // two chunks (the shrink ladder may have consumed the third buffer's
    // headroom — then the run degrades to the blocking schedule).
    let pipelined = cfg.use_dma && n_chunks > 1 && next_buf.is_some();

    if pipelined {
        // Prime the pipeline: the first chunk has nothing to hide behind,
        // so its ingest is synchronous and not overlappable.
        tl.begin_phase("nmsort.p1.ingest");
        let hi0 = chunk.min(n);
        staged_copy_with_retry(
            tl,
            CopyKind::FarToNear,
            &input.as_slice_uncharged()[..hi0],
            &mut chunk_buf.as_mut_slice_uncharged()[..hi0],
            lanes,
            cfg.threads,
            &mut degradations,
        );
        arena.note_sync_transfer(Dir::Read, (hi0 * elem_sz) as u64);
    }
    for k in 0..n_chunks {
        // Phase boundary: cooperative cancellation / deadline check.
        tl.checkpoint()?;
        let lo = k * chunk;
        let hi = ((k + 1) * chunk).min(n);
        let len = hi - lo;

        if !pipelined {
            tl.begin_phase("nmsort.p1.ingest");
            staged_copy_with_retry(
                tl,
                CopyKind::FarToNear,
                &input.as_slice_uncharged()[lo..hi],
                &mut chunk_buf.as_mut_slice_uncharged()[..len],
                lanes,
                cfg.threads,
                &mut degradations,
            );
            arena.note_sync_transfer(Dir::Read, (len * elem_sz) as u64);
            p1_sort_writeback_bounds(
                tl,
                cfg,
                &ext_cfg,
                &arena,
                &sample,
                &mut chunk_buf,
                &mut scratch_buf,
                &mut sorted_chunks,
                &mut totals_buf,
                &mut all_positions,
                &mut degradations,
                (lo, hi),
                n_chunks,
                lanes,
            );
            tl.end_phase();
            continue;
        }

        // Issue the gather of chunk k+1 *before* sorting chunk k. Every
        // preflight and ledger charge lands on the issuing thread right
        // here, at issue time; the background worker below only moves
        // bytes — which is what keeps overlapped runs byte-identical to
        // blocking ones. The phase is overlappable, so the flow engine
        // charges max(ingest(k+1), sort(k)) instead of their sum.
        let mut pending = None;
        if k + 1 < n_chunks {
            let nlo = (k + 1) * chunk;
            let nhi = ((k + 2) * chunk).min(n);
            let nbytes = ((nhi - nlo) * elem_sz) as u64;
            let nb = next_buf.as_mut().expect("pipelined mode has a next buffer");
            tl.begin_phase("nmsort.p1.ingest");
            if dma_issue_allowed(tl, &mut degradations) {
                tl.mark_phase_overlappable();
                ingest_issue_charges(tl, nbytes, lanes, &mut degradations);
                let id = nb.issue(Dir::Read, nbytes).map_err(SortError::from)?;
                if cfg.threads > 1 {
                    pending = Some((id, nlo, nhi));
                } else {
                    // One host thread: the copy runs inline at issue time.
                    // Identical charges; the overlap is simulated only.
                    nb.transfer_fill(&input.as_slice_uncharged()[nlo..nhi], 0);
                    arena.retire(id).map_err(SortError::from)?;
                }
            } else {
                // Injected DmaIssue abort: demoted to a blocking copy in
                // the same phase slot — same bytes move, overlap lost.
                staged_copy_with_retry(
                    tl,
                    CopyKind::FarToNear,
                    &input.as_slice_uncharged()[nlo..nhi],
                    &mut nb.as_mut_slice_uncharged()[..nhi - nlo],
                    lanes,
                    cfg.threads,
                    &mut degradations,
                );
                arena.note_sync_transfer(Dir::Read, nbytes);
            }
        }

        if let Some((id, nlo, nhi)) = pending {
            // Sort chunk k while the gather of chunk k+1 is in flight.
            // The read-before-retire guard on next_buf stays armed the
            // whole time; the worker writes through the transfer path.
            let nb = next_buf.as_mut().expect("pipelined mode has a next buffer");
            let src = input.as_slice_uncharged();
            std::thread::scope(|s| {
                s.spawn(move || nb.transfer_fill(&src[nlo..nhi], 0));
                p1_sort_writeback_bounds(
                    tl,
                    cfg,
                    &ext_cfg,
                    &arena,
                    &sample,
                    &mut chunk_buf,
                    &mut scratch_buf,
                    &mut sorted_chunks,
                    &mut totals_buf,
                    &mut all_positions,
                    &mut degradations,
                    (lo, hi),
                    n_chunks,
                    lanes,
                );
            });
            arena.retire(id).map_err(SortError::from)?;
        } else {
            p1_sort_writeback_bounds(
                tl,
                cfg,
                &ext_cfg,
                &arena,
                &sample,
                &mut chunk_buf,
                &mut scratch_buf,
                &mut sorted_chunks,
                &mut totals_buf,
                &mut all_positions,
                &mut degradations,
                (lo, hi),
                n_chunks,
                lanes,
            );
        }
        tl.end_phase();
        if k + 1 < n_chunks {
            std::mem::swap(
                &mut chunk_buf,
                next_buf.as_mut().expect("pipelined mode has a next buffer"),
            );
        }
    }
    // Phase 2 needs only two buffers; freeing the double buffer here
    // exercises the arena's free path on every DMA run.
    drop(next_buf);
    let after_p1 = tl.ledger().snapshot();

    // ---- Phase 2 --------------------------------------------------------
    let mut batches_run = 0usize;
    let mut oversized = 0usize;
    let elem = std::mem::size_of::<T>() as u64;
    let output = if n_chunks == 1 {
        // The single sorted chunk already is the final list.
        sorted_chunks
    } else {
        let mut output = tl.far_alloc::<T>(n);
        // Read BucketTot (resident in near) to plan batches (Fig. 3(a)).
        tl.begin_phase("nmsort.p2.plan");
        let totals: Vec<u64> = totals_buf.as_slice_uncharged().to_vec();
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Read,
            (totals.len() * 8) as u64,
            lanes,
        );
        let cap = chunk as u64;
        let batches = plan_batches(&totals, cap);
        batches_run = batches.len();

        let chunk_starts: Vec<usize> = (0..n_chunks).map(|k| k * chunk).collect();
        let mut out_off = 0usize;
        for (blo, bhi) in batches {
            // Phase boundary: cooperative cancellation / deadline check.
            tl.checkpoint()?;
            let total: u64 = totals[blo..bhi].iter().sum();
            if total == 0 {
                continue;
            }
            if total <= cap {
                // Can this batch be staged into the scratchpad right now?
                tl.begin_phase("nmsort.p2.gather");
                let decision = tl.preflight(FaultOp::FarToNear);
                if let FaultDecision::Delay(_) = decision {
                    charge_copy_volume(tl, CopyKind::FarToNear, total * elem, lanes);
                    degradations.transfer_delays += 1;
                    tlmm_telemetry::counter!("degradation.transfer_delay").incr();
                }
                if let FaultDecision::Fail(_) = decision {
                    // The gather aborted mid-flight: charge the lost staging
                    // attempt and merge this batch straight from DRAM — the
                    // same fallback §IV-D uses for unsplittable buckets.
                    charge_copy_volume(tl, CopyKind::FarToNear, total * elem, lanes);
                    degradations.batch_fallbacks += 1;
                    tlmm_telemetry::counter!("degradation.p2_dram_direct").incr();
                    merge_batch_from_far(
                        tl,
                        &sorted_chunks,
                        &all_positions,
                        &chunk_starts,
                        (blo, bhi),
                        &mut output,
                        out_off,
                        total as usize,
                        lanes,
                        cfg.threads,
                    );
                } else {
                    merge_batch_via_scratchpad(
                        tl,
                        &sorted_chunks,
                        &all_positions,
                        &chunk_starts,
                        (blo, bhi),
                        &mut chunk_buf,
                        &mut scratch_buf,
                        &mut output,
                        out_off,
                        total as usize,
                        lanes,
                        cfg.threads,
                    );
                }
            } else {
                oversized += 1;
                tlmm_telemetry::counter!("nmsort.oversized_bucket").incr();
                let direct_parts = merge_oversized_bucket(
                    tl,
                    &sorted_chunks,
                    &all_positions,
                    &chunk_starts,
                    (blo, bhi),
                    &mut chunk_buf,
                    &mut scratch_buf,
                    &mut output,
                    out_off,
                    total as usize,
                    lanes,
                    cfg.threads,
                );
                degradations.dram_direct_parts += direct_parts as u64;
            }
            out_off += total as usize;
        }
        debug_assert_eq!(out_off, n, "batches must cover the input exactly");
        output
    };

    let after_p2 = tl.ledger().snapshot();
    degradations.stage_restages = stage_event_count(tl) - stage_events_base;
    if degradations.any() {
        tlmm_telemetry::counter!("degradation.runs").incr();
    }
    Ok(NmSortReport {
        output,
        chunks: n_chunks,
        n_pivots: sample.pivots.len(),
        batches: batches_run,
        oversized_buckets: oversized,
        degradations,
        sample_cost: after_sample.since(&base),
        phase1_cost: after_p1.since(&after_sample),
        phase2_cost: after_p2.since(&after_p1),
    })
}

/// Phase-2 fallback when a batch cannot be staged: merge its segments
/// straight from DRAM into the output, never touching the scratchpad. Far
/// traffic matches the staged path (one read + one write of the batch);
/// what is lost is the near-memory acceleration, not correctness.
#[allow(clippy::too_many_arguments)]
fn merge_batch_from_far<T: SortElem>(
    tl: &TwoLevel,
    sorted_chunks: &FarArray<T>,
    all_positions: &[BucketPositions],
    chunk_starts: &[usize],
    bucket_range: (usize, usize),
    output: &mut FarArray<T>,
    out_off: usize,
    total: usize,
    lanes: usize,
    threads: usize,
) {
    let elem = std::mem::size_of::<T>() as u64;
    let segs = batch_segments(all_positions, chunk_starts, bucket_range);
    tl.begin_phase("nmsort.p2.stream_far");
    let src = sorted_chunks.as_slice_uncharged();
    // Reading each chunk's BucketPos boundary pair from DRAM.
    tl.charge_far_random(Dir::Read, 2 * segs.len() as u64, 16 * segs.len() as u64);
    let seg_slices: Vec<&[T]> = segs.iter().map(|&(a, b)| &src[a..b]).collect();
    let out = &mut output.as_mut_slice_uncharged()[out_off..out_off + total];
    let cmps = parallel_merge(&seg_slices, out, lanes, threads);
    charge_io_striped(tl, RegionLevel::Far, Dir::Read, total as u64 * elem, lanes);
    charge_io_striped(tl, RegionLevel::Far, Dir::Write, total as u64 * elem, lanes);
    charge_compute_striped(tl, cmps, lanes);
    tl.end_phase();
}

/// Per-chunk segment of a bucket range: `(chunk_global_lo, chunk_global_hi)`
/// element offsets into the `sorted_chunks` array.
fn batch_segments(
    all_positions: &[BucketPositions],
    chunk_starts: &[usize],
    (blo, bhi): (usize, usize),
) -> Vec<(usize, usize)> {
    all_positions
        .iter()
        .zip(chunk_starts)
        .map(|(pos, &start)| (start + pos[blo] as usize, start + pos[bhi] as usize))
        .collect()
}

/// Standard Phase-2 batch: gather segments into the scratchpad, merge them
/// there, stream the result out.
#[allow(clippy::too_many_arguments)]
fn merge_batch_via_scratchpad<T: SortElem>(
    tl: &TwoLevel,
    sorted_chunks: &FarArray<T>,
    all_positions: &[BucketPositions],
    chunk_starts: &[usize],
    bucket_range: (usize, usize),
    gather_buf: &mut ArenaBuf<T>,
    merge_buf: &mut ArenaBuf<T>,
    output: &mut FarArray<T>,
    out_off: usize,
    total: usize,
    lanes: usize,
    threads: usize,
) {
    let elem = std::mem::size_of::<T>() as u64;
    let segs = batch_segments(all_positions, chunk_starts, bucket_range);

    // -- Gather: one parallel transfer per chunk segment ----------------
    tl.begin_phase("nmsort.p2.gather");
    gather_buf
        .arena()
        .note_sync_transfer(Dir::Read, total as u64 * elem);
    let src = sorted_chunks.as_slice_uncharged();
    let gather = gather_buf.as_mut_slice_uncharged();
    {
        // Carve the gather buffer into per-segment destinations.
        let mut dsts: Vec<&mut [T]> = Vec::with_capacity(segs.len());
        let mut rest = &mut gather[..total];
        for &(lo, hi) in &segs {
            let (a, b) = rest.split_at_mut(hi - lo);
            dsts.push(a);
            rest = b;
        }
        let copy_one = |(k, (&(lo, hi), dst)): (usize, (&(usize, usize), &mut [T]))| {
            with_lane(k % lanes, || {
                // Reading this chunk's BucketPos boundary pair from DRAM.
                tl.charge_far_random(Dir::Read, 2, 16);
                if hi > lo {
                    dst.copy_from_slice(&src[lo..hi]);
                }
            })
        };
        if let Some(ex) = tl.executor() {
            // The installed executor owns the gather schedule: seeded
            // permutation in deterministic mode, its worker pool in host
            // mode. Lane attribution stays positional (k % lanes), so the
            // trace is invariant under the permutation.
            let copy_one = &copy_one;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = segs
                .iter()
                .zip(dsts)
                .enumerate()
                .map(|(k, (seg, dst))| {
                    Box::new(move || copy_one((k, (seg, dst)))) as Box<dyn FnOnce() + Send>
                })
                .collect();
            ex.run_tasks(tasks);
        } else if threads > 1 {
            let items: Vec<(&(usize, usize), &mut [T])> = segs.iter().zip(dsts).collect();
            crate::pool::run_indexed(threads, items, |k, sd| copy_one((k, sd)));
        } else {
            segs.iter().zip(dsts).enumerate().for_each(copy_one);
        }
        // The gather streams the whole batch; all lanes cooperate on the
        // transfer (segments are subdivided further on a real machine), so
        // the volume is charged striped rather than one-lane-per-chunk.
        charge_io_striped(tl, RegionLevel::Far, Dir::Read, total as u64 * elem, lanes);
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            total as u64 * elem,
            lanes,
        );
    }

    // -- Merge inside the scratchpad -------------------------------------
    tl.begin_phase("nmsort.p2.merge");
    {
        let gather: &[T] = gather_buf.as_slice_uncharged();
        let mut seg_slices: Vec<&[T]> = Vec::with_capacity(segs.len());
        let mut cursor = 0usize;
        for &(lo, hi) in &segs {
            seg_slices.push(&gather[cursor..cursor + (hi - lo)]);
            cursor += hi - lo;
        }
        let out = &mut merge_buf.as_mut_slice_uncharged()[..total];
        let cmps = parallel_merge(&seg_slices, out, lanes, threads);
        // Merge streams the batch through cache once each way.
        charge_io_striped(tl, RegionLevel::Near, Dir::Read, total as u64 * elem, lanes);
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            total as u64 * elem,
            lanes,
        );
        charge_compute_striped(tl, cmps, lanes);
    }

    // -- Stream the merged batch to its final DRAM position -------------
    tl.begin_phase("nmsort.p2.writeout");
    merge_buf
        .arena()
        .note_sync_transfer(Dir::Write, total as u64 * elem);
    charged_copy(
        tl,
        CopyKind::NearToFar,
        &merge_buf.as_slice_uncharged()[..total],
        &mut output.as_mut_slice_uncharged()[out_off..out_off + total],
        lanes,
        threads,
    );
    tl.end_phase();
}

/// A single bucket larger than the scratchpad: split it into
/// scratchpad-sized parts by sampled sub-splitters and run each part as a
/// normal batch; parts that still do not fit (too few distinct keys) are
/// merged straight from DRAM. Returns how many parts took the DRAM-direct
/// path.
#[allow(clippy::too_many_arguments)]
fn merge_oversized_bucket<T: SortElem>(
    tl: &TwoLevel,
    sorted_chunks: &FarArray<T>,
    all_positions: &[BucketPositions],
    chunk_starts: &[usize],
    bucket_range: (usize, usize),
    gather_buf: &mut ArenaBuf<T>,
    merge_buf: &mut ArenaBuf<T>,
    output: &mut FarArray<T>,
    out_off: usize,
    total: usize,
    lanes: usize,
    threads: usize,
) -> usize {
    let elem = std::mem::size_of::<T>() as u64;
    let cap = gather_buf.len();
    let segs = batch_segments(all_positions, chunk_starts, bucket_range);
    let src = sorted_chunks.as_slice_uncharged();

    // Sample sub-splitters from the bucket's segments (random far reads).
    tl.begin_phase("nmsort.p2.subsplit");
    let n_parts = total.div_ceil(cap / 2) + 1;
    let mut sample: Vec<T> = Vec::new();
    for &(lo, hi) in &segs {
        let len = hi - lo;
        if len == 0 {
            continue;
        }
        let want = ((16 * n_parts * len) / total).max(1);
        let step = (len / want).max(1);
        sample.extend(src[lo..hi].iter().step_by(step).copied());
    }
    tl.charge_far_random(Dir::Read, sample.len() as u64, sample.len() as u64 * elem);
    crate::kernels::sort_kernel(&mut sample);
    tl.charge_compute(sample.len() as u64 * crate::ceil_lg(sample.len()));
    sample.dedup();
    let mut splitters: Vec<T> = (1..n_parts)
        .map(|t| sample[(t * sample.len() / n_parts).min(sample.len() - 1)])
        .collect();
    splitters.dedup();

    // Per-splitter boundaries inside each segment (binary searches on DRAM).
    let mut cuts: Vec<Vec<usize>> = Vec::with_capacity(splitters.len() + 1);
    for s in &splitters {
        let row: Vec<usize> = segs
            .iter()
            .map(|&(lo, hi)| lo + src[lo..hi].partition_point(|x| x <= s))
            .collect();
        tl.charge_far_random(
            Dir::Read,
            segs.len() as u64 * crate::ceil_lg(total),
            segs.len() as u64 * crate::ceil_lg(total) * elem,
        );
        cuts.push(row);
    }
    cuts.push(segs.iter().map(|&(_, hi)| hi).collect());
    tl.end_phase();

    // Run each part.
    let mut dram_direct = 0usize;
    let mut part_off = out_off;
    let mut prev: Vec<usize> = segs.iter().map(|&(lo, _)| lo).collect();
    for row in cuts {
        let part_segs: Vec<(usize, usize)> = prev.iter().zip(&row).map(|(&a, &b)| (a, b)).collect();
        let part_total: usize = part_segs.iter().map(|&(a, b)| b - a).sum();
        prev = row;
        if part_total == 0 {
            continue;
        }
        if part_total <= cap {
            merge_part_via_scratchpad(
                tl, src, &part_segs, gather_buf, merge_buf, output, part_off, part_total, lanes,
                threads,
            );
        } else {
            // Degenerate duplication: merge straight from DRAM.
            dram_direct += 1;
            tlmm_telemetry::counter!("nmsort.dram_direct_part").incr();
            tl.begin_phase("nmsort.p2.stream_far");
            let seg_slices: Vec<&[T]> = part_segs.iter().map(|&(a, b)| &src[a..b]).collect();
            let out = &mut output.as_mut_slice_uncharged()[part_off..part_off + part_total];
            let cmps = parallel_merge(&seg_slices, out, lanes, threads);
            charge_io_striped(
                tl,
                RegionLevel::Far,
                Dir::Read,
                part_total as u64 * elem,
                lanes,
            );
            charge_io_striped(
                tl,
                RegionLevel::Far,
                Dir::Write,
                part_total as u64 * elem,
                lanes,
            );
            charge_compute_striped(tl, cmps, lanes);
            tl.end_phase();
        }
        part_off += part_total;
    }
    debug_assert_eq!(
        part_off,
        out_off + total,
        "oversized parts must cover bucket"
    );
    dram_direct
}

/// Gather + merge + writeout for an explicit segment list (used by the
/// oversized-bucket path).
#[allow(clippy::too_many_arguments)]
fn merge_part_via_scratchpad<T: SortElem>(
    tl: &TwoLevel,
    src: &[T],
    part_segs: &[(usize, usize)],
    gather_buf: &mut ArenaBuf<T>,
    merge_buf: &mut ArenaBuf<T>,
    output: &mut FarArray<T>,
    out_off: usize,
    total: usize,
    lanes: usize,
    threads: usize,
) {
    let elem = std::mem::size_of::<T>() as u64;
    tl.begin_phase("nmsort.p2.gather");
    gather_buf
        .arena()
        .note_sync_transfer(Dir::Read, total as u64 * elem);
    {
        let gather = &mut gather_buf.as_mut_slice_uncharged()[..total];
        let mut cursor = 0usize;
        for &(lo, hi) in part_segs {
            gather[cursor..cursor + (hi - lo)].copy_from_slice(&src[lo..hi]);
            cursor += hi - lo;
        }
        charge_io_striped(tl, RegionLevel::Far, Dir::Read, total as u64 * elem, lanes);
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            total as u64 * elem,
            lanes,
        );
    }
    tl.begin_phase("nmsort.p2.merge");
    {
        let gather: &[T] = gather_buf.as_slice_uncharged();
        let mut seg_slices: Vec<&[T]> = Vec::with_capacity(part_segs.len());
        let mut cursor = 0usize;
        for &(lo, hi) in part_segs {
            seg_slices.push(&gather[cursor..cursor + (hi - lo)]);
            cursor += hi - lo;
        }
        let out = &mut merge_buf.as_mut_slice_uncharged()[..total];
        let cmps = parallel_merge(&seg_slices, out, lanes, threads);
        charge_io_striped(tl, RegionLevel::Near, Dir::Read, total as u64 * elem, lanes);
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            total as u64 * elem,
            lanes,
        );
        charge_compute_striped(tl, cmps, lanes);
    }
    tl.begin_phase("nmsort.p2.writeout");
    merge_buf
        .arena()
        .note_sync_transfer(Dir::Write, total as u64 * elem);
    charged_copy(
        tl,
        CopyKind::NearToFar,
        &merge_buf.as_slice_uncharged()[..total],
        &mut output.as_mut_slice_uncharged()[out_off..out_off + total],
        lanes,
        threads,
    );
    tl.end_phase();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlmm_model::ScratchpadParams;

    fn tl_small() -> TwoLevel {
        // M = 1 MiB, Z = 16 KiB, B = 64, rho = 4.
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    fn assert_sorted_matches(report: &NmSortReport<u64>, mut expect: Vec<u64>) {
        expect.sort_unstable();
        assert_eq!(report.output.as_slice_uncharged(), expect.as_slice());
    }

    #[test]
    fn sorts_multi_chunk_input() {
        let tl = tl_small();
        // M holds 131072 u64; chunk ≈ 52428; use n = 500k for ~10 chunks.
        let v = random_vec(500_000, 42);
        let input = tl.far_from_vec(v.clone());
        let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert!(report.chunks >= 8, "chunks = {}", report.chunks);
        assert!(report.batches >= 2);
        assert_sorted_matches(&report, v);
    }

    #[test]
    fn sorts_single_chunk_input() {
        let tl = tl_small();
        let v = random_vec(10_000, 1);
        let input = tl.far_from_vec(v.clone());
        let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert_eq!(report.chunks, 1);
        assert_eq!(report.n_pivots, 0);
        assert_sorted_matches(&report, v);
    }

    #[test]
    fn sorts_empty_and_tiny() {
        let tl = tl_small();
        for n in [0usize, 1, 2, 3] {
            let v = random_vec(n, n as u64);
            let input = tl.far_from_vec(v.clone());
            let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
            assert_sorted_matches(&report, v);
        }
    }

    #[test]
    fn sorts_presorted_reverse_and_equal() {
        let tl = tl_small();
        let n = 300_000usize;
        let cases: Vec<Vec<u64>> = vec![
            (0..n as u64).collect(),
            (0..n as u64).rev().collect(),
            vec![7; n],
        ];
        for v in cases {
            let input = tl.far_from_vec(v.clone());
            let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
            assert_sorted_matches(&report, v);
        }
    }

    #[test]
    fn all_equal_forces_oversized_bucket_path() {
        let tl = tl_small();
        let n = 400_000usize;
        let v = vec![99u64; n];
        let input = tl.far_from_vec(v.clone());
        let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert!(report.oversized_buckets >= 1);
        assert_sorted_matches(&report, v);
    }

    #[test]
    fn few_distinct_keys() {
        let tl = tl_small();
        let n = 400_000usize;
        let v: Vec<u64> = (0..n).map(|i| (i % 3) as u64).collect();
        let input = tl.far_from_vec(v.clone());
        let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert_sorted_matches(&report, v);
    }

    #[test]
    fn respects_explicit_geometry() {
        let tl = tl_small();
        let v = random_vec(100_000, 5);
        let input = tl.far_from_vec(v.clone());
        let cfg = NmSortConfig {
            chunk_elems: Some(10_000),
            n_pivots: Some(100),
            ..Default::default()
        };
        let report = nmsort(&tl, input, &cfg).unwrap();
        assert_eq!(report.chunks, 10);
        assert!(report.n_pivots <= 100);
        assert_sorted_matches(&report, v);
    }

    #[test]
    fn rejects_oversized_chunk_config() {
        let tl = tl_small();
        let input = tl.far_from_vec(random_vec(100_000, 6));
        let cfg = NmSortConfig {
            chunk_elems: Some(100_000), // 2x 800KB buffers > 1MB scratchpad
            ..Default::default()
        };
        match nmsort(&tl, input, &cfg) {
            Err(SortError::ScratchpadTooSmall { .. }) => {}
            other => panic!("expected ScratchpadTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn sequential_and_parallel_agree_on_ledger() {
        let run = |threads: usize| {
            let tl = tl_small();
            let input = tl.far_from_vec(random_vec(200_000, 7));
            let cfg = NmSortConfig {
                threads,
                ..Default::default()
            };
            nmsort(&tl, input, &cfg).unwrap();
            tl.ledger().snapshot()
        };
        let a = run(4);
        let b = run(1);
        assert_eq!(a.far_bytes, b.far_bytes);
        assert_eq!(a.near_bytes, b.near_bytes);
    }

    #[test]
    fn far_traffic_is_a_few_passes() {
        // NMsort's DRAM traffic should be ~4 passes over the data
        // (ingest read, writeback write, gather read, writeout write) plus
        // metadata — far below a DRAM-only sort's traffic.
        let tl = tl_small();
        let n = 500_000usize;
        let input = tl.far_from_vec(random_vec(n, 8));
        nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        let s = tl.ledger().snapshot();
        let data_bytes = (n * 8) as u64;
        assert!(s.far_bytes >= 4 * data_bytes, "far {} B", s.far_bytes);
        assert!(s.far_bytes <= 5 * data_bytes, "far {} B", s.far_bytes);
        // Near traffic dominates far traffic (the whole point).
        assert!(s.near_bytes > s.far_bytes);
    }

    #[test]
    fn phase_costs_partition_total() {
        let tl = tl_small();
        let input = tl.far_from_vec(random_vec(300_000, 9));
        let r = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        let s = tl.ledger().snapshot();
        let sum = r.sample_cost + r.phase1_cost + r.phase2_cost;
        assert_eq!(sum.far_bytes, s.far_bytes);
        assert_eq!(sum.near_bytes, s.near_bytes);
        assert_eq!(sum.compute_ops, s.compute_ops);
    }

    #[test]
    fn trace_has_expected_phases() {
        let tl = tl_small();
        let input = tl.far_from_vec(random_vec(300_000, 10));
        nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        let t = tl.take_trace();
        let names: std::collections::HashSet<&str> =
            t.phases.iter().map(|p| p.name.as_str()).collect();
        for expected in [
            "nmsort.sample",
            "nmsort.p1.ingest",
            "nmsort.p1.sort",
            "nmsort.p1.writeback",
            "nmsort.p1.bounds",
            "nmsort.p2.gather",
            "nmsort.p2.merge",
            "nmsort.p2.writeout",
        ] {
            assert!(names.contains(expected), "missing phase {expected}");
        }
    }

    #[test]
    fn dma_marks_ingest_overlappable() {
        let tl = tl_small();
        let input = tl.far_from_vec(random_vec(200_000, 11));
        let cfg = NmSortConfig {
            use_dma: true,
            ..Default::default()
        };
        nmsort(&tl, input, &cfg).unwrap();
        let t = tl.take_trace();
        // Pipelined schedule: the priming ingest of chunk 0 has nothing to
        // hide behind (synchronous); every later ingest is issued before
        // the previous chunk's sort and overlaps it.
        let ingest: Vec<bool> = t
            .phases
            .iter()
            .filter(|p| p.name == "nmsort.p1.ingest")
            .map(|p| p.overlappable)
            .collect();
        assert!(ingest.len() >= 2, "expected multiple ingest phases");
        assert!(!ingest[0], "priming ingest must be synchronous");
        assert!(
            ingest[1..].iter().all(|&o| o),
            "steady-state ingests must overlap: {ingest:?}"
        );
        assert!(t
            .phases
            .iter()
            .filter(|p| p.name == "nmsort.p1.sort")
            .all(|p| !p.overlappable));
        assert!(t
            .phases
            .iter()
            .filter(|p| p.name == "nmsort.p1.writeback")
            .all(|p| p.overlappable));
    }

    #[test]
    fn quicksort_chunk_sorter_sorts_and_costs_more_near_traffic() {
        let run = |sorter: ChunkSorter| {
            let tl = tl_small();
            let v = random_vec(300_000, 21);
            let mut expect = v.clone();
            expect.sort_unstable();
            let input = tl.far_from_vec(v);
            let cfg = NmSortConfig {
                chunk_sorter: sorter,
                ..Default::default()
            };
            let r = nmsort(&tl, input, &cfg).unwrap();
            assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
            tl.ledger().snapshot().near_blocks()
        };
        let merge = run(ChunkSorter::MultiwayMerge);
        let quick = run(ChunkSorter::Quicksort);
        // rho = 4 on this geometry is below Corollary 7's optimality point,
        // so quicksort should stream more near blocks.
        assert!(quick > merge, "quick {quick} vs merge {merge}");
    }

    #[test]
    fn chunk_shrinks_on_injected_alloc_failure() {
        let tl = tl_small();
        // Fail the very first near allocation: the chunk-buffer ladder must
        // halve the chunk and carry on.
        tl.install_fault_plan(tlmm_scratchpad::FaultPlan::none(1).fail_kth(FaultOp::NearAlloc, 0));
        let v = random_vec(300_000, 31);
        let input = tl.far_from_vec(v.clone());
        let clean_chunks = {
            let tl2 = tl_small();
            let input2 = tl2.far_from_vec(v.clone());
            nmsort(&tl2, input2, &NmSortConfig::default())
                .unwrap()
                .chunks
        };
        let r = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert_eq!(r.degradations.chunk_shrinks, 1);
        assert!(r.chunks > clean_chunks, "{} vs {}", r.chunks, clean_chunks);
        assert_sorted_matches(&r, v);
    }

    #[test]
    fn batch_gather_failure_falls_back_to_dram_direct() {
        let tl = tl_small();
        // Phase 1 of a ~6-chunk run consumes 6 far→near preflights (ingest);
        // fail the 7th, which is the first Phase-2 batch gather.
        let v = random_vec(300_000, 32);
        let probe = {
            let tl2 = tl_small();
            let input2 = tl2.far_from_vec(v.clone());
            nmsort(&tl2, input2, &NmSortConfig::default())
                .unwrap()
                .chunks
        };
        tl.install_fault_plan(
            tlmm_scratchpad::FaultPlan::none(1).fail_kth(FaultOp::FarToNear, probe as u64),
        );
        let input = tl.far_from_vec(v.clone());
        let r = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert_eq!(r.degradations.batch_fallbacks, 1);
        assert_sorted_matches(&r, v);
    }

    #[test]
    fn degrades_gracefully_and_never_cheapens_under_mixed_faults() {
        let v = random_vec(300_000, 33);
        let clean = {
            let tl = tl_small();
            let input = tl.far_from_vec(v.clone());
            let r = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
            assert!(!r.degradations.any());
            tl.ledger().snapshot()
        };
        for seed in 0..4u64 {
            let tl = tl_small();
            tl.install_fault_plan(tlmm_scratchpad::FaultPlan::seeded(seed));
            let input = tl.far_from_vec(v.clone());
            let r = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
            assert_sorted_matches(&r, v.clone());
            let s = tl.ledger().snapshot();
            // Honest accounting: faults can only add DRAM traffic.
            assert!(
                s.far_bytes >= clean.far_bytes,
                "seed {seed}: degraded {} < clean {}",
                s.far_bytes,
                clean.far_bytes
            );
            if tl.faults_injected() > 0 {
                assert!(r.degradations.any(), "seed {seed}: faults fired silently");
            }
        }
    }

    #[test]
    fn degraded_trace_records_fault_counts() {
        let tl = tl_small();
        tl.install_fault_plan(
            tlmm_scratchpad::FaultPlan::none(1)
                .fail_kth(FaultOp::FarToNear, 0)
                .fail_kth(FaultOp::NearToFar, 2),
        );
        let v = random_vec(300_000, 34);
        let input = tl.far_from_vec(v.clone());
        let r = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert_sorted_matches(&r, v);
        assert_eq!(tl.take_trace().faults(), 2);
    }

    #[test]
    fn plan_batches_greedy() {
        assert_eq!(plan_batches(&[5, 5, 5], 10), vec![(0, 2), (2, 3)]);
        assert_eq!(plan_batches(&[20], 10), vec![(0, 1)]);
        assert_eq!(plan_batches(&[3, 20, 3], 10), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(plan_batches(&[], 10), Vec::<(usize, usize)>::new());
        assert_eq!(plan_batches(&[0, 0, 4], 10), vec![(0, 3)]);
    }
}
